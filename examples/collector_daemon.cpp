// Telemetry collector as an OS process (DESIGN.md §12).
//
// Joins a manager daemon's hub as a leaf and registers the well-known
// "dust-collector" endpoint; the hub then forwards every kDataBlocks /
// kDataDegrade frame that streaming clients emit. Blocks are reassembled,
// decompressed, verified, and adopted into a local TSDB, and at the end of
// the run the collector prints one parseable line:
//
//   FINAL samples=N batches=N blocks=N declared_gaps=N undeclared=N
//         verify_failures=N out_of_order=N
//
// Exit code 0 means the no-silent-loss contract held: every missing batch
// was covered by a prior declaration, every block verified, nothing arrived
// out of order.
//
//   ./build/examples/collector_daemon --port N [--run-ms MS]
//       [--endpoint NAME]
//
// The process also serves its MetricRegistry at "dust-obs-collector"
// (wire::ObsResponder) so the manager's fleet observability plane scrapes
// collector-side counters (samples adopted, undeclared gaps) and stitches
// collector ingest spans into fleet traces.
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>

#include "dataplane/collector.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "wire/obs_scrape.hpp"
#include "wire/socket_transport.hpp"

int main(int argc, char** argv) {
  using namespace dust;
  util::init_log_level_from_env();
  std::uint16_t port = 0;
  std::int64_t run_ms = 5000;
  std::string endpoint = "dust-collector";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::stoul(argv[++i]));
    } else if (arg == "--run-ms" && i + 1 < argc) {
      run_ms = std::stoll(argv[++i]);
    } else if (arg == "--endpoint" && i + 1 < argc) {
      endpoint = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " --port N [--run-ms MS] [--endpoint NAME]\n";
      return 2;
    }
  }
  if (port == 0) {
    std::cerr << "collector_daemon: --port is required\n";
    return 2;
  }

  // Own span-id block before any span is recorded: collector ingest spans
  // must not collide with other daemons' in a stitched fleet trace.
  obs::seed_span_ids(std::hash<std::string>{}("collector"));

  wire::SocketTransportConfig config;
  config.role = wire::SocketTransportConfig::Role::kLeaf;
  config.port = port;
  wire::SocketTransport transport(config);
  dataplane::Collector collector(transport, endpoint);
  wire::ObsResponder obs_responder(transport, "collector");

  // Registered and announced to the hub on the next poll round; READY lets a
  // harness order "collector routable" before it starts any streamer.
  std::cout << "READY " << endpoint << "\n" << std::flush;

  const auto t0 = std::chrono::steady_clock::now();
  const auto wall_ms = [&t0] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  while (wall_ms() < run_ms) transport.poll_once(5);

  const dataplane::CollectorStats& stats = collector.stats();
  std::cout << "FINAL samples=" << stats.samples << " batches=" << stats.batches
            << " blocks=" << stats.blocks
            << " declared_gaps=" << stats.declared_gap_batches
            << " undeclared=" << stats.undeclared_gap_batches
            << " verify_failures=" << stats.verify_failures
            << " out_of_order=" << stats.out_of_order << "\n"
            << std::flush;
  return collector.loss_fully_declared() ? 0 : 1;
}
