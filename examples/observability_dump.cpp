// Observability: run the Fig. 4 scenario end-to-end (manager, clients,
// simulated transport, a telemetry agent), then scrape the global metric
// registry and print the whole observability surface — metric table, recent
// spans, reconstructed causal offload chains, watchdog alerts, the
// flight-recorder timeline tail, and a Prometheus text exposition.
//
//   cmake --build build && ./build/examples/observability_dump
#include <iostream>
#include <memory>

#include "core/client.hpp"
#include "core/manager.hpp"
#include "graph/topology.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "telemetry/agent.hpp"
#include "telemetry/tsdb.hpp"

int main() {
  using namespace dust;
  obs::set_enabled(true);
  obs::MetricRegistry::global().reset();
  obs::FlightRecorder::global().clear();
  obs::reset_trace_ids();

  // 1. The paper's illustrative 7-node network (Fig. 4): busy switch S1
  //    (node 0), offload candidates S2 (1) and S6 (5).
  graph::Graph g(7);
  g.add_edge(0, 3);
  g.add_edge(3, 1);
  g.add_edge(3, 4);
  g.add_edge(4, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 6);
  g.add_edge(3, 5);
  net::NetworkState state(std::move(g));
  for (graph::EdgeId e = 0; e < state.edge_count(); ++e)
    state.set_link(e, net::LinkState{.bandwidth_mbps = 10000.0,
                                     .utilization = 0.5});
  state.set_node_utilization(0, 93.0);
  state.set_node_utilization(1, 42.0);
  state.set_node_utilization(5, 52.0);
  for (graph::NodeId v : {2u, 3u, 4u, 6u}) state.set_node_utilization(v, 70.0);
  state.set_monitoring_data_mb(0, 80.0);

  // 2. Protocol actors over the simulated transport.
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(7));
  core::ManagerConfig config;
  config.update_interval_ms = 1000;
  config.placement_period_ms = 5000;
  config.keepalive_timeout_ms = 4000;
  config.keepalive_check_period_ms = 1000;
  core::DustManager manager(sim, transport,
                            core::Nmdb(std::move(state), core::Thresholds{}),
                            config);
  std::vector<std::unique_ptr<core::DustClient>> clients;
  for (graph::NodeId v = 0; v < 7; ++v) {
    clients.push_back(std::make_unique<core::DustClient>(
        sim, transport, v, core::ClientConfig{.keepalive_interval_ms = 1000},
        util::Rng(100 + v)));
  }
  clients[0]->set_reported_state(93.0, 80.0, 10);
  clients[1]->set_reported_state(42.0, 5.0, 10);
  clients[5]->set_reported_state(52.0, 5.0, 10);
  for (graph::NodeId v : {2u, 3u, 4u, 6u})
    clients[v]->set_reported_state(70.0, 5.0, 10);
  for (auto& client : clients) client->start();
  manager.start();

  // A health watchdog with a demo-tight NMDB staleness limit (the production
  // default is 180 s): with 1 s STATs and 5 s placement cycles the planning
  // view is several hundred ms old, so the rule fires visibly below.
  obs::WatchdogConfig watchdog_config;
  watchdog_config.staleness_limit_ms = 100.0;
  obs::Watchdog watchdog(obs::MetricRegistry::global(), watchdog_config);
  (void)watchdog.evaluate(sim.now());  // first call only primes the windows

  // 3. Run the scenario: handshakes, STATs, placement cycles, offloads;
  //    then a congestion episode shedding the busy node's kLow telemetry.
  sim.run_until(12000);
  transport.set_congested(true);
  telemetry::DeviceSnapshot snapshot;
  snapshot.timestamp_ms = sim.now();
  snapshot.device_cpu_percent = 93.0;
  snapshot.rx_mbps = 9000.0;
  snapshot.tx_mbps = 8000.0;
  clients[0]->publish_snapshot(snapshot);
  sim.run_until(sim.now() + 1000);
  transport.set_congested(false);

  // 4. A monitoring agent ingesting into a Tsdb (the telemetry layer).
  telemetry::Tsdb db;
  telemetry::MonitorAgent agent("interface.rxtx.rates",
                                telemetry::AgentCostModel{}, 1000);
  agent.bind(db);
  util::Rng rng(3);
  for (int tick = 0; tick < 10; ++tick) {
    snapshot.timestamp_ms += 1000;
    agent.sample(snapshot, db, rng);
  }

  // 5. Evaluate the watchdog over the run's window, then scrape once and
  //    export everything: metrics, spans, causal chains, alerts, the
  //    flight-recorder tail, and the Prometheus exposition.
  const std::vector<obs::Alert> alerts = watchdog.evaluate(sim.now());
  const obs::RegistrySnapshot scrape = obs::MetricRegistry::global().snapshot();
  obs::to_table(scrape).print(std::cout);
  std::cout << '\n';
  obs::spans_to_table(scrape).print(std::cout);

  std::cout << "\n--- causal offload chains ---\n";
  for (const obs::TraceTree& trace : obs::assemble_traces(scrape))
    if (trace.find("offload_request") != nullptr)
      std::cout << "trace " << trace.trace_id << " (" << trace.spans.size()
                << " spans): " << trace.chain() << '\n';

  std::cout << "\n--- watchdog alerts ---\n";
  for (const obs::Alert& alert : alerts)
    std::cout << alert.rule << " @ " << alert.sim_ms << " ms: "
              << alert.message << '\n';
  if (alerts.empty()) std::cout << "(none)\n";

  std::cout << "\n--- flight recorder (last 20 events) ---\n";
  obs::write_flight_text(obs::FlightRecorder::global().tail(20), std::cout);

  std::cout << "\n--- prometheus exposition ---\n";
  obs::write_prometheus(scrape, std::cout);
  return 0;
}
