// DUST-Manager as an OS process (DESIGN.md §11).
//
// Binds a wire::SocketTransport hub, waits until every node in the scenario
// has reported a STAT over the wire, runs one placement cycle, then keeps
// supervising keepalives (substituting dead destinations with replicas)
// until --run-ms elapses. Protocol state machine and solver are exactly the
// in-process ones — only the transport differs.
//
//   ./build/examples/manager_daemon [--port N] [--scenario FILE]
//       [--run-ms MS] [--settle-ms MS] [--metrics FILE]
//       [--obs-scrape-ms MS] [--obs-export FILE] [--obs-trace-out FILE]
//
// Machine-readable stdout (consumed by tests/wire_daemon_test):
//   PORT <listen-port>                     once the hub is bound
//   HFR <hex-bits> <value>                 heuristic HFR at the gated NMDB
//   CYCLE offloads=<n>                     after the placement cycle
//   ASSIGN <busy> <dest> <amount-hex>      one per created relationship
//   FINAL offloads=<n> keepalive_failures=<n> redirects=<n>
//   FINAL_ASSIGN <busy> <dest> <amount-hex>
//   OBS nodes=<n> applied=<n> rejected=<n> spans=<n>   fleet scrape summary
//   OBS_NODE <name> seq=<n> bytes=<n>      one per scraped node
//   OBS_ALERT rule=<rule> node=<name>      one per fleet watchdog alert
//   OBS_STITCHED trace=<id> processes=<n>  best cross-process trace
//
// With --obs-scrape-ms > 0 (default 500) the manager becomes the fleet
// observability plane (DESIGN.md §15): it discovers every "dust-obs-*"
// responder on the hub, pulls delta snapshots on that cadence, merges them
// (plus its own registry, as node "manager") into an obs::Aggregator, and
// runs the fleet watchdog over the merged view. --obs-export writes the
// fleet Prometheus text (node-labelled series); --obs-trace-out writes the
// stitched cross-process Perfetto trace.
//
// Doubles are printed as IEEE-754 bit patterns so equivalence checks are
// bit-exact, never epsilon-ish.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <set>
#include <string>

#include "core/heuristic.hpp"
#include "core/manager.hpp"
#include "core/scenario.hpp"
#include "obs/aggregator.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "obs/metrics.hpp"
#include "wire/demo_scenario.hpp"
#include "wire/obs_scrape.hpp"
#include "wire/socket_transport.hpp"

namespace {

std::uint64_t bits(double value) { return std::bit_cast<std::uint64_t>(value); }

}  // namespace

int main(int argc, char** argv) {
  using namespace dust;
  util::init_log_level_from_env();
  std::uint16_t port = 0;
  std::string scenario_file;
  std::string metrics_file;
  std::string obs_export_file;
  std::string obs_trace_file;
  std::int64_t run_ms = 10000;
  std::int64_t settle_ms = 15000;
  std::int64_t obs_scrape_ms = 500;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::stoul(argv[++i]));
    } else if (arg == "--scenario" && i + 1 < argc) {
      scenario_file = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_file = argv[++i];
    } else if (arg == "--run-ms" && i + 1 < argc) {
      run_ms = std::stoll(argv[++i]);
    } else if (arg == "--settle-ms" && i + 1 < argc) {
      settle_ms = std::stoll(argv[++i]);
    } else if (arg == "--obs-scrape-ms" && i + 1 < argc) {
      obs_scrape_ms = std::stoll(argv[++i]);
    } else if (arg == "--obs-export" && i + 1 < argc) {
      obs_export_file = argv[++i];
    } else if (arg == "--obs-trace-out" && i + 1 < argc) {
      obs_trace_file = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--port N] [--scenario FILE] [--run-ms MS]"
                   " [--settle-ms MS] [--metrics FILE] [--obs-scrape-ms MS]"
                   " [--obs-export FILE] [--obs-trace-out FILE]\n";
      return 2;
    }
  }
  // Disjoint span-id block: this process's spans must not collide with the
  // clients'/collector's when the aggregator stitches fleet traces.
  obs::seed_span_ids(std::hash<std::string>{}("manager"));

  core::Nmdb nmdb = [&] {
    if (scenario_file.empty()) return wire::demo_nmdb();
    std::ifstream file(scenario_file);
    if (!file) {
      std::cerr << "cannot open " << scenario_file << "\n";
      std::exit(2);
    }
    return core::load_scenario(file);
  }();
  const std::size_t fleet = nmdb.node_count();

  sim::Simulator sim;
  wire::SocketTransportConfig wire_config;
  wire_config.role = wire::SocketTransportConfig::Role::kHub;
  wire_config.port = port;
  wire_config.now = [&sim] { return sim.now(); };
  wire::SocketTransport transport(wire_config);
  std::cout << "PORT " << transport.listen_port() << "\n" << std::flush;

  // Wall-clock protocol cadences: tight enough that a full daemon run —
  // handshakes, STAT gate, placement, a keepalive death, and the REP
  // substitution — fits in a few seconds of real time.
  core::ManagerConfig config;
  config.update_interval_ms = 200;
  config.placement_period_ms = 1LL << 40;  // cycles are driven manually below
  config.keepalive_timeout_ms = 1500;
  config.keepalive_check_period_ms = 200;
  core::DustManager manager(sim, transport, std::move(nmdb), config);
  manager.start();

  // Fleet observability plane: scrape every dust-obs-* responder announced
  // on the hub, merge the deltas (plus this process's own registry, as node
  // "manager"), and run fleet watchdog rules over the merged view.
  obs::Aggregator aggregator;
  wire::ObsScraper scraper(transport, aggregator, "dust-obs-scraper");
  obs::FleetWatchdog fleet_dog;

  const auto t0 = std::chrono::steady_clock::now();
  const auto wall_ms = [&t0] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  std::int64_t next_obs_at = obs_scrape_ms;
  // The pump: socket events feed protocol handlers; the simulator clock
  // tracks the wall so PeriodicTasks (keepalive sweeps) fire in real time.
  const auto pump = [&] {
    transport.poll_once(5);
    sim.run_until(wall_ms());
    if (obs_scrape_ms > 0 && wall_ms() >= next_obs_at) {
      const std::int64_t now = wall_ms();
      aggregator.ingest_local("manager", obs::MetricRegistry::global(), now);
      scraper.scrape(now);
      for (const obs::FleetAlert& alert : fleet_dog.evaluate(aggregator, now))
        std::cout << "OBS_ALERT rule=" << alert.rule << " node=" << alert.node
                  << "\n"
                  << std::flush;
      next_obs_at = now + obs_scrape_ms;
    }
  };

  while (manager.nodes_reporting() < fleet) {
    if (wall_ms() > settle_ms) {
      std::cerr << "manager_daemon: only " << manager.nodes_reporting() << "/"
                << fleet << " nodes reported within " << settle_ms << " ms\n";
      return 3;
    }
    pump();
  }

  // The fleet is fully visible: the NMDB now reflects wire-reported STATs.
  // Heuristic first (it reads the same NMDB the cycle will plan on), then
  // the cycle itself.
  const core::HeuristicResult heuristic =
      core::HeuristicEngine().run(manager.nmdb());
  std::cout << "HFR " << std::hex << bits(heuristic.hfr_percent()) << std::dec
            << " " << heuristic.hfr_percent() << "\n";
  manager.run_placement_cycle();
  std::cout << "CYCLE offloads=" << manager.active_offload_count() << "\n";
  for (const core::ActiveOffload& offload : manager.active_offloads())
    std::cout << "ASSIGN " << offload.busy << " " << offload.destination << " "
              << std::hex << bits(offload.amount) << std::dec << "\n";
  std::cout << std::flush;

  while (wall_ms() < run_ms) pump();

  std::cout << "FINAL offloads=" << manager.active_offload_count()
            << " keepalive_failures=" << manager.keepalive_failures()
            << " redirects=" << manager.redirects() << "\n";
  for (const core::ActiveOffload& offload : manager.active_offloads())
    std::cout << "FINAL_ASSIGN " << offload.busy << " " << offload.destination
              << " " << std::hex << bits(offload.amount) << std::dec << "\n";
  std::cout << std::flush;

  if (obs_scrape_ms > 0) {
    // One last sweep so snapshots still in flight land before the summary.
    aggregator.ingest_local("manager", obs::MetricRegistry::global(),
                            wall_ms());
    scraper.scrape(wall_ms());
    for (int i = 0; i < 40; ++i) transport.poll_once(5);

    std::uint64_t applied = 0;
    std::uint64_t rejected = 0;
    for (const std::string& node : aggregator.nodes()) {
      const obs::FleetNodeStatus* status = aggregator.status(node);
      applied += status->snapshots_applied;
      rejected += status->snapshots_rejected;
    }
    std::cout << "OBS nodes=" << aggregator.nodes().size()
              << " applied=" << applied << " rejected=" << rejected
              << " spans=" << aggregator.span_count() << "\n";
    for (const std::string& node : aggregator.nodes()) {
      const obs::FleetNodeStatus* status = aggregator.status(node);
      std::cout << "OBS_NODE " << node << " seq=" << status->applied_seq
                << " bytes=" << status->bytes_received << "\n";
    }
    // Best stitched trace: the chain whose spans come from the most
    // distinct processes (the track prefix before '/' names the node).
    const obs::RegistrySnapshot traces = aggregator.trace_snapshot();
    std::uint64_t best_trace = 0;
    std::size_t best_processes = 0;
    for (const obs::TraceTree& tree : obs::assemble_traces(traces)) {
      std::set<std::string> processes;
      for (const obs::SpanRecord& span : tree.spans)
        processes.insert(span.track.substr(0, span.track.find('/')));
      if (processes.size() > best_processes) {
        best_processes = processes.size();
        best_trace = tree.trace_id;
      }
    }
    if (best_trace != 0)
      std::cout << "OBS_STITCHED trace=" << best_trace
                << " processes=" << best_processes << "\n";
    std::cout << std::flush;
    if (!obs_export_file.empty()) {
      std::ofstream out(obs_export_file);
      aggregator.write_prometheus(out);
    }
    if (!obs_trace_file.empty()) {
      std::ofstream out(obs_trace_file);
      obs::write_perfetto(traces, out);
    }
  }

  if (!metrics_file.empty()) {
    std::ofstream out(metrics_file);
    obs::write_prometheus(obs::MetricRegistry::global().snapshot(), out);
  }
  return 0;
}
