// One manager shard of a federated DUST fleet as an OS process
// (DESIGN.md §16).
//
// Runs the demo fleet scenario (federation/demo_fleet.hpp): a 12-node ring
// split into two 6-node domains. The process binds the shard's own hub
// (its clients connect there, exactly like the single-manager daemon),
// opens one leaf link per neighboring shard for the manager-to-manager
// plane, and wraps the unmodified core::DustManager in a FederatedManager:
// local solves against the masked domain view, residual overflow delegated
// to the least-loaded neighbor, epochs fencing every federation frame.
//
//   ./build/examples/federation_daemon --shard S --port P
//       [--peer T=HOST:PORT]...   neighbor shard hubs (federation links)
//       [--observer ENDPOINT]...  extra broadcast targets (the standby)
//       [--standby HOST:PORT]     standby mode: watch the primary at
//                                 HOST:PORT; on silence bind --port and
//                                 take the domain over (epoch bump)
//       [--run-ms MS] [--settle-ms MS] [--cycle-ms MS] [--digest-ms MS]
//       [--silence-ms MS] [--die-at-ms MS]
//
// --die-at-ms exits abruptly (no teardown) to simulate a primary crash;
// the standby then detects silence, re-binds the same port, and clients
// re-home through the wire layer's reconnect listener.
//
// Machine-readable stdout (consumed by tests/federation_daemon_test):
//   PORT <listen-port>                 hub bound (primary / after takeover)
//   STANDBY watching=<host:port>       standby armed
//   REPORTING n=<n>                    every in-domain client STATed
//   STARTED shard=<s> epoch=<e>        federated cycles running
//   ASSIGN <busy> <dest> <amount-hex> <local|ext-dest|ext-origin>
//   REMOVE <busy> <dest>               a relationship went away
//   DELEGATION confirmed=<n>          a peer granted one of our requests
//   SILENT after_ms=<ms>               standby: primary went quiet
//   TAKEOVER epoch=<e>                 standby became the primary
//   FED shard=<s> epoch=<e> requested=.. confirmed=.. granted=..
//       rejected=.. refused=.. stale=.. takeovers=..
//   FINAL offloads=<n> keepalive_failures=<n> redirects=<n>
//   FINAL_ASSIGN <busy> <dest> <amount-hex> <flavor>
//
// Doubles print as IEEE-754 bit patterns so the forked test compares
// bit-exactly.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string_view>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/manager.hpp"
#include "federation/demo_fleet.hpp"
#include "federation/federated_manager.hpp"
#include "util/log.hpp"
#include "wire/obs_scrape.hpp"
#include "wire/socket_transport.hpp"

namespace {

using namespace dust;

std::uint64_t bits(double value) { return std::bit_cast<std::uint64_t>(value); }

std::int64_t wall_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The shard solves only what its clients report: start from the demo
/// topology with zero load so out-of-domain nodes (whose clients report to
/// other shards) never look busy here.
core::Nmdb blank_fleet_nmdb() {
  net::NetworkState state(federation::demo_fleet_nmdb().network().graph());
  return core::Nmdb(std::move(state), core::Thresholds{});
}

struct Options {
  std::uint32_t shard = 0;
  std::uint16_t port = 0;
  std::vector<std::pair<std::uint32_t, std::string>> peers;  // shard, host:port
  std::vector<std::string> observers;
  std::string standby_target;  // host:port of the primary to watch
  std::int64_t run_ms = 10000;
  std::int64_t settle_ms = 15000;
  std::int64_t cycle_ms = 1000;
  std::int64_t digest_ms = 400;
  std::int64_t silence_ms = 2000;
  std::int64_t die_at_ms = -1;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --shard S --port P [--peer T=HOST:PORT]..."
               " [--observer ENDPOINT]... [--standby HOST:PORT]"
               " [--run-ms MS] [--settle-ms MS] [--cycle-ms MS]"
               " [--digest-ms MS] [--silence-ms MS] [--die-at-ms MS]\n";
  std::exit(2);
}

std::pair<std::string, std::uint16_t> split_host_port(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos) return {s, 0};
  return {s.substr(0, colon),
          static_cast<std::uint16_t>(std::stoul(s.substr(colon + 1)))};
}

/// Runs the shard as primary on an already-bound hub until the deadline.
/// `fed` may start as a standby — `take_over` flips it via become_primary().
int run_primary(sim::Simulator& sim, wire::SocketTransport& hub,
                std::map<std::string, std::unique_ptr<wire::SocketTransport>>&
                    peer_links,
                federation::FederatedManager& fed, const Options& options,
                const std::chrono::steady_clock::time_point& t0,
                bool take_over) {
  const auto pump = [&] {
    hub.poll_once(1);
    for (auto& [endpoint, link] : peer_links) link->poll_once(0);
    sim.run_until(wall_since(t0));
  };

  if (take_over) {
    fed.become_primary();
    std::cout << "TAKEOVER epoch=" << fed.epoch() << "\n" << std::flush;
  }

  const std::size_t expect =
      federation::demo_fleet_partition().members[options.shard].size();
  bool reporting_printed = false;
  bool started = take_over;  // become_primary already started the cycles
  // Last printed relationship set, for ASSIGN/REMOVE change detection.
  std::map<std::pair<graph::NodeId, graph::NodeId>, double> shown;
  std::uint64_t shown_confirmed = 0;

  while (wall_since(t0) < options.run_ms) {
    if (options.die_at_ms >= 0 && wall_since(t0) >= options.die_at_ms) {
      // Crash, don't shut down: the standby must see silence, not a FIN-clean
      // goodbye, and clients must land in their reconnect loops.
      std::_Exit(7);
    }
    pump();
    const std::size_t reporting = fed.manager().nodes_reporting();
    if (!reporting_printed && reporting >= expect) {
      std::cout << "REPORTING n=" << reporting << "\n" << std::flush;
      reporting_printed = true;
    }
    if (!started && reporting_printed) {
      // Every in-domain client has STATed: digests and solves now describe
      // real load, never the blank bring-up view.
      fed.start();
      std::cout << "STARTED shard=" << fed.shard() << " epoch=" << fed.epoch()
                << "\n"
                << std::flush;
      started = true;
    }
    if (!started) {
      if (wall_since(t0) > options.settle_ms) {
        std::cerr << "federation_daemon: only " << reporting << "/" << expect
                  << " in-domain nodes reported within " << options.settle_ms
                  << " ms\n";
        return 3;
      }
      continue;
    }
    // Relationship churn, printed as it happens (the primary may be killed
    // before FINAL, so the test needs the live feed).
    std::map<std::pair<graph::NodeId, graph::NodeId>, double> current;
    std::map<std::pair<graph::NodeId, graph::NodeId>, const char*> flavor;
    for (const core::ActiveOffload& offload : fed.manager().active_offloads()) {
      const auto key = std::make_pair(offload.busy, offload.destination);
      current[key] = offload.amount;
      flavor[key] = offload.external_origin        ? "ext-origin"
                    : offload.external_destination ? "ext-dest"
                                                   : "local";
    }
    for (const auto& [key, amount] : current)
      if (shown.find(key) == shown.end())
        std::cout << "ASSIGN " << key.first << " " << key.second << " "
                  << std::hex << bits(amount) << std::dec << " " << flavor[key]
                  << "\n"
                  << std::flush;
    for (const auto& [key, amount] : shown)
      if (current.find(key) == current.end())
        std::cout << "REMOVE " << key.first << " " << key.second << "\n"
                  << std::flush;
    shown = std::move(current);
    if (fed.stats().delegations_confirmed != shown_confirmed) {
      shown_confirmed = fed.stats().delegations_confirmed;
      std::cout << "DELEGATION confirmed=" << shown_confirmed << "\n"
                << std::flush;
    }
  }

  const federation::FederationStats& stats = fed.stats();
  std::cout << "FED shard=" << fed.shard() << " epoch=" << fed.epoch()
            << " requested=" << stats.delegations_requested
            << " confirmed=" << stats.delegations_confirmed
            << " granted=" << stats.delegations_granted
            << " rejected=" << stats.delegations_rejected
            << " refused=" << stats.delegations_refused
            << " stale=" << stats.stale_frames_rejected
            << " takeovers=" << stats.takeovers << "\n";
  std::cout << "FINAL offloads=" << fed.manager().active_offload_count()
            << " keepalive_failures=" << fed.manager().keepalive_failures()
            << " redirects=" << fed.manager().redirects() << "\n";
  for (const core::ActiveOffload& offload : fed.manager().active_offloads())
    std::cout << "FINAL_ASSIGN " << offload.busy << " " << offload.destination
              << " " << std::hex << bits(offload.amount) << std::dec << " "
              << (offload.external_origin        ? "ext-origin"
                  : offload.external_destination ? "ext-dest"
                                                 : "local")
              << "\n";
  std::cout << std::flush;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::init_log_level_from_env();
  Options options;
  bool have_shard = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shard" && i + 1 < argc) {
      options.shard = static_cast<std::uint32_t>(std::stoul(argv[++i]));
      have_shard = true;
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = static_cast<std::uint16_t>(std::stoul(argv[++i]));
    } else if (arg == "--peer" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) usage(argv[0]);
      options.peers.emplace_back(
          static_cast<std::uint32_t>(std::stoul(spec.substr(0, eq))),
          spec.substr(eq + 1));
    } else if (arg == "--observer" && i + 1 < argc) {
      options.observers.push_back(argv[++i]);
    } else if (arg == "--standby" && i + 1 < argc) {
      options.standby_target = argv[++i];
    } else if (arg == "--run-ms" && i + 1 < argc) {
      options.run_ms = std::stoll(argv[++i]);
    } else if (arg == "--settle-ms" && i + 1 < argc) {
      options.settle_ms = std::stoll(argv[++i]);
    } else if (arg == "--cycle-ms" && i + 1 < argc) {
      options.cycle_ms = std::stoll(argv[++i]);
    } else if (arg == "--digest-ms" && i + 1 < argc) {
      options.digest_ms = std::stoll(argv[++i]);
    } else if (arg == "--silence-ms" && i + 1 < argc) {
      options.silence_ms = std::stoll(argv[++i]);
    } else if (arg == "--die-at-ms" && i + 1 < argc) {
      options.die_at_ms = std::stoll(argv[++i]);
    } else {
      usage(argv[0]);
    }
  }
  if (!have_shard) usage(argv[0]);

  const auto t0 = std::chrono::steady_clock::now();
  sim::Simulator sim;
  const federation::DomainPartition partition =
      federation::demo_fleet_partition();

  federation::FederatedManagerConfig fed_config;
  fed_config.shard = options.shard;
  fed_config.digest_period_ms = options.digest_ms;
  fed_config.digest_stale_ms = 10 * options.digest_ms;
  fed_config.delegation_timeout_ms = 5 * options.cycle_ms;
  fed_config.primary_silence_timeout_ms = options.silence_ms;
  fed_config.manager.update_interval_ms = 200;
  fed_config.manager.placement_period_ms = options.cycle_ms;  // federated cycle
  fed_config.manager.keepalive_timeout_ms = 1500;
  fed_config.manager.keepalive_check_period_ms = 200;
  // A request that raced a dying destination or a mid-takeover client must
  // not dangle unacknowledged forever.
  fed_config.manager.offload_request_retry_ms = 2 * options.cycle_ms;

  // --- standby: watch the primary until it goes silent --------------------
  std::uint64_t seen_epoch = 1;
  if (!options.standby_target.empty()) {
    const auto [host, port] = split_host_port(options.standby_target);
    wire::SocketTransportConfig watch_config;
    watch_config.role = wire::SocketTransportConfig::Role::kLeaf;
    watch_config.host = host;
    watch_config.port = port;
    watch_config.now = [&sim] { return sim.now(); };
    auto watch = std::make_unique<wire::SocketTransport>(watch_config);
    // The primary broadcasts hellos/digests to this endpoint (its
    // --observer list); receiving them is the liveness signal.
    watch->register_endpoint(
        federation::standby_federation_endpoint(options.shard),
        [](const sim::Envelope&) {});
    std::int64_t last_activity = wall_since(t0);
    watch->set_federation_handler([&](wire::Frame&& frame) {
      std::uint32_t src = ~0u;
      std::uint64_t epoch = 0;
      switch (frame.type) {
        case wire::FrameType::kShardHello:
          src = frame.shard_hello.shard;
          epoch = frame.shard_hello.epoch;
          break;
        case wire::FrameType::kCapacityDigest:
          src = frame.capacity_digest.shard;
          epoch = frame.capacity_digest.epoch;
          break;
        case wire::FrameType::kDelegateRequest:
          src = frame.delegate_request.shard;
          epoch = frame.delegate_request.epoch;
          break;
        case wire::FrameType::kDelegateReply:
          src = frame.delegate_reply.shard;
          epoch = frame.delegate_reply.epoch;
          break;
        case wire::FrameType::kDomainHandoff:
          src = frame.domain_handoff.domain;
          epoch = frame.domain_handoff.epoch;
          break;
        default:
          return;
      }
      if (src == options.shard) {
        last_activity = wall_since(t0);
        seen_epoch = std::max(seen_epoch, epoch);
      }
    });
    std::cout << "STANDBY watching=" << options.standby_target << "\n"
              << std::flush;
    while (wall_since(t0) - last_activity < options.silence_ms) {
      if (wall_since(t0) >= options.run_ms) return 0;  // primary outlived us
      watch->poll_once(5);
      sim.run_until(wall_since(t0));
    }
    std::cout << "SILENT after_ms=" << options.silence_ms << "\n"
              << std::flush;
    watch.reset();  // release the link before claiming the primary's port
  }

  // --- bind the shard hub (primary immediately; standby: port takeover) ---
  std::unique_ptr<wire::SocketTransport> hub;
  while (hub == nullptr) {
    try {
      wire::SocketTransportConfig hub_config;
      hub_config.role = wire::SocketTransportConfig::Role::kHub;
      hub_config.port = options.port;
      hub_config.now = [&sim] { return sim.now(); };
      hub = std::make_unique<wire::SocketTransport>(hub_config);
    } catch (const std::runtime_error&) {
      // The dead primary's listener may linger briefly; keep claiming.
      if (wall_since(t0) > options.settle_ms) {
        std::cerr << "federation_daemon: cannot bind port " << options.port
                  << "\n";
        return 4;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  std::cout << "PORT " << hub->listen_port() << "\n" << std::flush;

  // Federation-plane endpoint: inbound peer frames are addressed here and
  // land on the transport's federation handler.
  hub->register_endpoint(federation::federation_endpoint(options.shard),
                         [](const sim::Envelope&) {});
  // This process's metrics, scrapable by a multi-hub fleet_top.
  wire::ObsResponder obs_responder(*hub,
                                   "shard" + std::to_string(options.shard));

  // One leaf link per neighbor shard's hub, keyed by federation endpoint.
  std::map<std::string, std::unique_ptr<wire::SocketTransport>> peer_links;
  for (const auto& [peer_shard, target] : options.peers) {
    const auto [host, port] = split_host_port(target);
    wire::SocketTransportConfig link_config;
    link_config.role = wire::SocketTransportConfig::Role::kLeaf;
    link_config.host = host;
    link_config.port = port;
    link_config.now = [&sim] { return sim.now(); };
    peer_links.emplace(federation::federation_endpoint(peer_shard),
                       std::make_unique<wire::SocketTransport>(link_config));
  }

  const bool take_over = !options.standby_target.empty();
  fed_config.standby = take_over;
  fed_config.epoch = seen_epoch;
  federation::FederatedManager fed(sim, *hub, blank_fleet_nmdb(), partition,
                                   fed_config);
  for (const auto& [peer_shard, target] : options.peers) fed.add_peer(peer_shard);
  for (const std::string& observer : options.observers)
    fed.add_observer(observer);
  fed.set_peer_sender([&](wire::Frame&& frame) {
    const auto link = peer_links.find(frame.to);
    if (link != peer_links.end()) return link->second->send_frame(frame);
    return hub->send_frame(frame);  // observers announce themselves on the hub
  });
  hub->set_federation_handler(
      [&](wire::Frame&& frame) { fed.handle_peer_frame(std::move(frame)); });
  // Cross-domain client traffic (the busy client's AgentTransfer to a
  // destination homed on a peer shard, and any telemetry flowing back) has
  // no route on this hub; bridge it over the federation link toward the
  // destination node's home shard.
  hub->set_gateway([&](const wire::Frame& frame) {
    constexpr std::string_view kClientPrefix = "dust-client-";
    if (frame.to.rfind(kClientPrefix, 0) != 0) return false;
    graph::NodeId node = 0;
    try {
      node = static_cast<graph::NodeId>(
          std::stoul(frame.to.substr(kClientPrefix.size())));
    } catch (const std::exception&) {
      return false;
    }
    if (node >= partition.home.size()) return false;
    const std::uint32_t owner = partition.home[node];
    if (owner == options.shard) return false;
    const auto link = peer_links.find(federation::federation_endpoint(owner));
    if (link == peer_links.end()) return false;
    return link->second->send_frame(frame);
  });
  // Replies from a peer hub arrive on the leaf link toward it.
  for (auto& [endpoint, link] : peer_links)
    link->set_federation_handler(
        [&](wire::Frame&& frame) { fed.handle_peer_frame(std::move(frame)); });

  return run_primary(sim, *hub, peer_links, fed, options, t0, take_over);
}
