// Quickstart: build a small network, mark node loads, run the DUST
// optimization engine, and print where the monitoring load goes.
//
//   cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "core/optimizer.hpp"
#include "graph/topology.hpp"
#include "util/table.hpp"

int main() {
  using namespace dust;

  // 1. Topology: the paper's illustrative 7-node network (Fig. 4) — one
  //    busy switch S1, two offload candidates S2 and S6, relays in between.
  graph::Graph g(7);
  g.add_edge(0, 3);  // e1: S1-S4
  g.add_edge(3, 1);  // e2: S4-S2
  g.add_edge(3, 4);  // e3: S4-S5
  g.add_edge(4, 1);  // e4: S5-S2
  g.add_edge(1, 2);  // e5: S2-S3
  g.add_edge(2, 6);  // e6: S3-S7
  g.add_edge(3, 5);  // e7: S4-S6

  // 2. Dynamic state: per-link utilized bandwidth and per-node load.
  net::NetworkState state(std::move(g));
  for (graph::EdgeId e = 0; e < state.edge_count(); ++e)
    state.set_link(e, net::LinkState{.bandwidth_mbps = 10000.0,
                                     .utilization = 0.5});
  state.set_node_utilization(0, 93.0);   // S1: busy (Cs = 13)
  state.set_node_utilization(1, 42.0);   // S2: candidate (Cd = 18)
  state.set_node_utilization(5, 52.0);   // S6: candidate (Cd = 8)
  for (graph::NodeId v : {2u, 3u, 4u, 6u}) state.set_node_utilization(v, 70.0);
  state.set_monitoring_data_mb(0, 80.0);  // D_1 = 80 Mb to move

  // 3. NMDB + thresholds (Cmax = 80, COmax = 60, x_min = 10 by default).
  core::Nmdb nmdb(std::move(state), core::Thresholds{});
  std::cout << "Δ_io = " << nmdb.default_thresholds().delta_io()
            << " (recommended >= " << core::Thresholds::kRecommendedKio
            << ")\n";

  // 4. Optimize: minimize β = Σ x_ij · Trmin(i,j) over controllable routes.
  core::OptimizerOptions options;
  options.placement.max_hops = 4;
  const core::PlacementResult result =
      core::OptimizationEngine(options).run(nmdb);

  std::cout << "status: " << solver::to_string(result.status)
            << ", objective β = " << result.objective << " s\n";
  util::Table table("offload plan");
  table.set_precision(4).header(
      {"busy_node", "destination", "amount_%cap", "trmin_s"});
  for (const core::Assignment& a : result.assignments)
    table.row({std::string("S") + std::to_string(a.from + 1),
               std::string("S") + std::to_string(a.to + 1), a.amount,
               a.trmin_seconds});
  table.print(std::cout);
  return 0;
}
