// Scenario CLI: load a scenario file, run the ILP optimizer and the one-hop
// heuristic, and print the offload plans (optionally the topology as DOT).
//
//   ./build/examples/scenario_cli <scenario-file> [max_hops] [--dot]
//   ./build/examples/scenario_cli <scenario-file> --trace <trace-file>
//   ./build/examples/scenario_cli <scenario-file> --trace-out <out.json>
//   ./build/examples/scenario_cli <scenario-file> --obs-top
//   ./build/examples/scenario_cli --demo            # built-in Fig. 4 demo
//   ./build/examples/scenario_cli --attack=capacity-lie|blackhole|flap
//                                 [--topology=fat-tree|random]
//
// --attack runs the crafted byzantine scenario of that kind (DESIGN.md §14)
// twice — trust-blind and trust-weighted — and prints the differential: how
// many of the expected telemetry samples each mode actually delivered, how
// often keepalives failed, and how far the attacker's trust fell. Exit 0
// iff both runs hold every invariant and trust weighting improved delivery.
//
// Scenario format: see src/core/scenario.hpp. Trace format (CSV
// "<time_ms>,<node>,<utilization>[,<data_mb>]"): see src/core/replay.hpp.
// --trace-out runs the scenario live (manager, one DUST-Client per node) and
// writes the reconstructed causal span trees as Perfetto/Chrome trace-event
// JSON (open in ui.perfetto.dev). --transport picks the live run's plumbing:
// "sim" (default) is the in-memory bus; "socket" pushes every message
// through the wire codec and real loopback TCP (manager on a
// wire::SocketTransport hub, all clients on a leaf) — same protocol run,
// bytes actually framed and reassembled.
//
// --obs-top runs the same live protocol and renders the fleet-top dashboard
// (obs::Aggregator::write_top — per-node scrape status, biggest counters,
// histogram tails) once per virtual second when stdout is a terminal, and a
// final dashboard either way. Combines with --trace-out and --transport.
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/attacks.hpp"
#include "check/runner.hpp"
#include "core/client.hpp"
#include "core/heuristic.hpp"
#include "core/manager.hpp"
#include "core/optimizer.hpp"
#include "core/replay.hpp"
#include "core/scenario.hpp"
#include "dataplane/block_streamer.hpp"
#include "dataplane/collector.hpp"
#include "graph/dot.hpp"
#include "obs/aggregator.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"
#include "wire/socket_transport.hpp"

namespace {

constexpr const char* kDemoScenario = R"(# paper Fig. 4: S1 busy, S2/S6 candidates
nodes 7
thresholds 80 60 10
edge 0 3 1000 1.0   # e1 S1-S4
edge 3 1 1000 1.0   # e2 S4-S2
edge 3 4 1000 1.0   # e3 S4-S5
edge 4 1 1000 1.0   # e4 S5-S2
edge 1 2 1000 1.0   # e5 S2-S3
edge 2 6 1000 1.0   # e6 S3-S7
edge 3 5 1000 1.0   # e7 S4-S6
load 0 93 80
load 1 42 10
load 5 52 10
load 2 70 10
load 3 70 10
load 4 70 10
load 6 70 10
)";

void print_plan(const std::string& title,
                const std::vector<dust::core::Assignment>& plan) {
  dust::util::Table table(title);
  table.set_precision(4).header({"from", "to", "amount_%cap", "trmin_s"});
  for (const dust::core::Assignment& a : plan)
    table.row({static_cast<std::int64_t>(a.from),
               static_cast<std::int64_t>(a.to), a.amount, a.trmin_seconds});
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dust;
  if (argc < 2) {
    std::cerr << "usage: " << argv[0]
              << " <scenario-file>|--demo [max_hops] [--dot]"
                 " [--trace <csv>] [--trace-out <json>] [--obs-top]"
                 " [--transport=sim|socket]\n       "
              << argv[0]
              << " --attack=capacity-lie|blackhole|flap"
                 " [--topology=fat-tree|random]\n";
    return 2;
  }

  if (std::string(argv[1]).rfind("--attack=", 0) == 0) {
    const std::string which = std::string(argv[1]).substr(9);
    check::AttackKind kind;
    if (which == "capacity-lie") {
      kind = check::AttackKind::kCapacityLie;
    } else if (which == "blackhole") {
      kind = check::AttackKind::kBlackhole;
    } else if (which == "flap") {
      kind = check::AttackKind::kKeepaliveFlap;
    } else {
      std::cerr << "unknown attack '" << which
                << "' (capacity-lie|blackhole|flap)\n";
      return 2;
    }
    check::TopologyKind topology = check::TopologyKind::kFatTree;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--topology=fat-tree") {
        topology = check::TopologyKind::kFatTree;
      } else if (arg == "--topology=random") {
        topology = check::TopologyKind::kRandomRegular;
      } else {
        std::cerr << "unknown option '" << arg
                  << "' (--topology=fat-tree|random)\n";
        return 2;
      }
    }

    const check::ScenarioSpec spec = check::make_attack_spec(kind, topology);
    std::cout << "byzantine scenario: " << check::to_string(kind) << " on "
              << check::to_string(spec.topology) << ", " << spec.node_count
              << " nodes, attacker node " << spec.attacks.front().node
              << ", " << spec.duration_ms / 1000 << " s\n\n";
    const check::TrustComparison c = check::compare_trust_placement(spec);

    util::Table table("trust-blind vs trust-weighted");
    table.set_precision(3).header({"metric", "blind", "trusted"});
    table.row({std::string("delivered samples (%)"),
               c.blind.delivered_fraction() * 100.0,
               c.trusted.delivered_fraction() * 100.0});
    table.row({std::string("offloads created"),
               static_cast<std::int64_t>(c.blind.offloads_created),
               static_cast<std::int64_t>(c.trusted.offloads_created)});
    table.row({std::string("keepalive failures"),
               static_cast<std::int64_t>(c.blind.keepalive_failures),
               static_cast<std::int64_t>(c.trusted.keepalive_failures)});
    table.row({std::string("trust evictions"),
               static_cast<std::int64_t>(c.blind.trust_evictions),
               static_cast<std::int64_t>(c.trusted.trust_evictions)});
    table.row({std::string("min node trust"), c.blind.min_trust,
               c.trusted.min_trust});
    table.row({std::string("invariant violations"),
               static_cast<std::int64_t>(c.blind.violations.size()),
               static_cast<std::int64_t>(c.trusted.violations.size())});
    table.print(std::cout);

    const std::vector<check::Violation> verdict =
        check::check_trust_improvement(c);
    for (const check::Violation& v : c.blind.violations)
      std::cout << "blind:   " << v.invariant << ": " << v.detail << "\n";
    for (const check::Violation& v : c.trusted.violations)
      std::cout << "trusted: " << v.invariant << ": " << v.detail << "\n";
    for (const check::Violation& v : verdict)
      std::cout << "verdict: " << v.invariant << ": " << v.detail << "\n";
    const bool ok = c.blind.passed() && c.trusted.passed() && verdict.empty();
    std::cout << "\nO7 verdict: "
              << (ok ? "trust weighting improves delivery under this attack"
                     : "FAILED")
              << "\n";
    return ok ? 0 : 1;
  }
  std::uint32_t max_hops = 0;
  bool dot = false;
  bool socket_transport = false;
  bool obs_top = false;
  std::string trace_file;
  std::string trace_out_file;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dot") {
      dot = true;
    } else if (arg == "--obs-top") {
      obs_top = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_file = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out_file = argv[++i];
    } else if (arg.rfind("--transport=", 0) == 0) {
      const std::string which = arg.substr(12);
      if (which == "socket") {
        socket_transport = true;
      } else if (which != "sim") {
        std::cerr << "unknown transport '" << which << "' (sim|socket)\n";
        return 2;
      }
    } else {
      max_hops = static_cast<std::uint32_t>(std::stoul(arg));
    }
  }

  core::Nmdb nmdb = [&] {
    const std::string source = argv[1];
    if (source == "--demo") {
      std::istringstream demo(kDemoScenario);
      return core::load_scenario(demo);
    }
    std::ifstream file(source);
    if (!file) {
      std::cerr << "cannot open " << source << "\n";
      std::exit(2);
    }
    return core::load_scenario(file);
  }();

  std::cout << "scenario: " << nmdb.node_count() << " nodes, "
            << nmdb.network().edge_count() << " links, "
            << nmdb.busy_nodes().size() << " busy, "
            << nmdb.candidate_nodes().size() << " candidates, ΣCs="
            << nmdb.total_excess() << " ΣCd=" << nmdb.total_spare() << "\n\n";

  if (!trace_out_file.empty() || obs_top) {
    // Live protocol run: the scenario's nodes become DUST-Clients reporting
    // their configured load to a manager over the simulated transport; the
    // causal span trees the run produces are exported as Perfetto JSON.
    obs::set_enabled(true);
    obs::MetricRegistry::global().reset();
    obs::FlightRecorder::global().clear();
    obs::reset_trace_ids();

    // --obs-top: the run's registry is folded through the fleet aggregator
    // (single node "local" — every in-process component shares one
    // registry) and rendered as the fleet-top dashboard each virtual
    // second. Live redraw only on a terminal; CI gets the final frame.
    obs::Aggregator aggregator;
    const bool live_redraw = obs_top && isatty(1) != 0;
    const auto obs_tick = [&](sim::TimeMs t) {
      if (!obs_top) return;
      aggregator.ingest_local("local", obs::MetricRegistry::global(),
                              static_cast<std::int64_t>(t));
      if (live_redraw) {
        std::cout << "\033[H\033[2J";
        aggregator.write_top(std::cout, static_cast<std::int64_t>(t));
        std::cout << std::flush;
      }
    };

    sim::Simulator sim;
    sim::Transport sim_transport(sim, util::Rng(7));
    // --transport=socket: manager on a loopback hub, every client on one
    // leaf. Same protocol objects, but each hop is codec-framed and crosses
    // real TCP.
    std::unique_ptr<wire::SocketTransport> hub;
    std::unique_ptr<wire::SocketTransport> leaf;
    std::unique_ptr<dataplane::Collector> collector;
    std::unique_ptr<dataplane::BlockStreamer> streamer;
    telemetry::Tsdb node_telemetry;
    std::vector<telemetry::MetricId> node_metrics;
    if (socket_transport) {
      wire::SocketTransportConfig hub_config;
      hub_config.role = wire::SocketTransportConfig::Role::kHub;
      hub_config.now = [&sim] { return sim.now(); };
      hub = std::make_unique<wire::SocketTransport>(hub_config);
      wire::SocketTransportConfig leaf_config;
      leaf_config.role = wire::SocketTransportConfig::Role::kLeaf;
      leaf_config.port = hub->listen_port();
      leaf_config.now = [&sim] { return sim.now(); };
      leaf = std::make_unique<wire::SocketTransport>(leaf_config);
      // The data plane rides the same sockets as the protocol (DESIGN.md
      // §12): each node's utilization telemetry is appended to a leaf-side
      // TSDB and streamed as sealed Gorilla blocks to a collector endpoint
      // on the hub — the manager's control decisions and the monitoring
      // data itself cross the same wire, at different QoS.
      collector = std::make_unique<dataplane::Collector>(*hub,
                                                         "dust-collector");
      for (graph::NodeId v = 0; v < nmdb.node_count(); ++v)
        node_metrics.push_back(
            node_telemetry.register_metric(telemetry::MetricDescriptor{
                "node" + std::to_string(v) + ".utilization.percent", "%",
                telemetry::MetricKind::kGauge}));
      leaf->register_endpoint("dust-streamer-0", [](const sim::Envelope&) {});
      dataplane::BlockStreamerConfig streamer_config;
      streamer_config.owner = 0;
      streamer_config.local_endpoint = "dust-streamer-0";
      streamer = std::make_unique<dataplane::BlockStreamer>(
          *leaf, node_telemetry, streamer_config);
    }
    sim::TransportBase& manager_transport =
        socket_transport ? static_cast<sim::TransportBase&>(*hub)
                         : sim_transport;
    sim::TransportBase& client_transport =
        socket_transport ? static_cast<sim::TransportBase&>(*leaf)
                         : sim_transport;
    core::ManagerConfig config;
    config.update_interval_ms = 1000;
    config.placement_period_ms = 5000;
    config.keepalive_timeout_ms = 4000;
    config.keepalive_check_period_ms = 1000;
    core::DustManager manager(sim, manager_transport, nmdb, config);
    std::vector<std::unique_ptr<core::DustClient>> clients;
    for (graph::NodeId v = 0; v < nmdb.node_count(); ++v) {
      core::ClientConfig client_config;
      client_config.offload_capable = nmdb.offload_capable(v);
      client_config.keepalive_interval_ms = 1000;
      client_config.platform_factor = nmdb.platform_factor(v);
      clients.push_back(std::make_unique<core::DustClient>(
          sim, client_transport, v, client_config, util::Rng(100 + v)));
      clients.back()->set_reported_state(
          nmdb.network().node_utilization(v),
          nmdb.network().monitoring_data_mb(v),
          std::max<std::uint32_t>(1, nmdb.agent_count(v)));
    }
    for (auto& client : clients) client->start();
    manager.start();
    if (socket_transport) {
      // Step virtual time, draining both socket loops to quiescence between
      // steps — handshakes + several placement cycles, byte-exact framing.
      // Every second of virtual time each node's reported utilization is
      // sampled into the TSDB and the streamer ships whatever sealed.
      for (sim::TimeMs t = 0; t <= 30000; t += 50) {
        sim.run_until(t);
        if (t % 1000 == 0) {
          for (graph::NodeId v = 0; v < nmdb.node_count(); ++v)
            node_telemetry.append(
                node_metrics[v],
                telemetry::Sample{static_cast<std::int64_t>(t),
                                  nmdb.network().node_utilization(v)});
          streamer->pump();
          obs_tick(t);
        }
        while (hub->poll_once(1) + leaf->poll_once(1) > 0) {
        }
      }
      streamer->flush();
      while (hub->poll_once(1) + leaf->poll_once(1) > 0) {
      }
    } else if (obs_top) {
      for (sim::TimeMs t = 1000; t <= 30000; t += 1000) {
        sim.run_until(t);
        obs_tick(t);
      }
    } else {
      sim.run_until(30000);  // handshakes + several placement cycles
    }

    const obs::RegistrySnapshot scrape =
        obs::MetricRegistry::global().snapshot();
    if (!trace_out_file.empty()) {
      std::ofstream out(trace_out_file);
      if (!out) {
        std::cerr << "cannot write " << trace_out_file << "\n";
        return 2;
      }
      obs::write_perfetto(scrape, out);

      const std::vector<obs::TraceTree> traces = obs::assemble_traces(scrape);
      std::cout << "wrote " << trace_out_file << ": " << scrape.spans.size()
                << " spans in " << traces.size()
                << " traces (open in ui.perfetto.dev)\n";
      for (const obs::TraceTree& trace : traces)
        if (trace.find("offload_request") != nullptr)
          std::cout << "  trace " << trace.trace_id << ": " << trace.chain()
                    << "\n";
    }
    if (obs_top) {
      // Final frame (the only one in a pipe/CI), then a parseable line.
      aggregator.ingest_local("local", obs::MetricRegistry::global(),
                              static_cast<std::int64_t>(sim.now()));
      aggregator.write_top(std::cout, static_cast<std::int64_t>(sim.now()));
      const obs::FleetNodeStatus* local = aggregator.status("local");
      std::cout << "OBS_TOP nodes=" << aggregator.nodes().size()
                << " applied=" << (local != nullptr ? local->snapshots_applied : 0)
                << " spans=" << aggregator.span_count() << "\n";
    }
    std::cout << "active offloads after " << sim.now() / 1000
              << " s: " << manager.active_offload_count() << "\n";
    if (socket_transport) {
      const dataplane::CollectorStats& dp = collector->stats();
      std::cout << "data plane: " << dp.samples << " samples in "
                << dp.batches << " batches -> dust-collector ("
                << (collector->loss_fully_declared()
                        ? "all loss declared"
                        : "UNDECLARED LOSS")
                << ")\n";
    }
    return 0;
  }

  if (!trace_file.empty()) {
    std::ifstream trace_in(trace_file);
    if (!trace_in) {
      std::cerr << "cannot open trace " << trace_file << "\n";
      return 2;
    }
    const auto trace = core::load_trace(trace_in);
    core::ReplayOptions replay_options;
    replay_options.optimizer.placement.max_hops = max_hops;
    replay_options.optimizer.placement.evaluator =
        net::EvaluatorMode::kHopBoundedDp;
    const core::ReplayReport report =
        core::replay_trace(nmdb, trace, replay_options);
    util::Table table("trace replay report");
    table.set_precision(3).header({"metric", "value"});
    table.row({std::string("updates applied"),
               static_cast<std::int64_t>(report.updates_applied)});
    table.row({std::string("placement cycles"),
               static_cast<std::int64_t>(report.placement_cycles)});
    table.row({std::string("cycles with offloads"),
               static_cast<std::int64_t>(report.cycles_with_offloads)});
    table.row({std::string("capacity moved (%-points)"),
               report.total_offloaded});
    table.row({std::string("unplaced (%-points)"), report.total_unplaced});
    table.row({std::string("overloaded node-cycles (%)"),
               report.overload_fraction() * 100.0});
    table.print(std::cout);
    return 0;
  }

  core::OptimizerOptions options;
  options.placement.max_hops = max_hops;
  options.allow_partial = true;
  const core::PlacementResult opt = core::OptimizationEngine(options).run(nmdb);
  std::cout << "ILP: " << solver::to_string(opt.status) << ", β = "
            << opt.objective << " s, unplaced = " << opt.unplaced << "\n";
  print_plan("ILP offload plan", opt.assignments);

  const core::HeuristicResult heuristic = core::HeuristicEngine().run(nmdb);
  std::cout << "\nheuristic: HFR = " << heuristic.hfr_percent()
            << "%, β = " << heuristic.objective << " s\n";
  print_plan("heuristic offload plan", heuristic.assignments);

  if (dot) {
    graph::DotOptions dot_options;
    dot_options.node_color = [&nmdb](graph::NodeId v) -> std::string {
      switch (nmdb.role(v)) {
        case core::NodeRole::kBusy: return "tomato";
        case core::NodeRole::kOffloadCandidate: return "gold";
        default: return "";
      }
    };
    std::cout << "\n";
    graph::write_dot(std::cout, nmdb.network().graph(), dot_options);
  }
  return opt.optimal() ? 0 : 1;
}
