// Zone partitioning at scale (the paper's §V-B recommendation): split a
// 16-k fat-tree (320 switches) into zones of at most 80 nodes and run the
// optimization per zone. Compares cost and runtime against one global solve.
//
//   ./build/examples/zone_partitioning [k] [zone_size]
#include <cstdlib>
#include <iostream>

#include "core/zones.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dust;
  const std::uint32_t k =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;
  const std::size_t zone_size =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 80;

  util::Rng rng(2024);
  net::NetworkState state = net::make_random_state(
      graph::FatTree(k).graph(), net::LinkProfile{}, net::NodeLoadProfile{},
      rng);
  core::Nmdb nmdb(std::move(state), core::Thresholds{});
  std::cout << k << "-k fat-tree: " << nmdb.node_count() << " nodes, "
            << nmdb.network().edge_count() << " links; "
            << nmdb.busy_nodes().size() << " busy, "
            << nmdb.candidate_nodes().size() << " candidates\n";

  core::OptimizerOptions options;
  options.placement.max_hops = 4;
  options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
  options.placement.parallel_trmin = true;
  options.allow_partial = true;

  util::Timer global_timer;
  const core::PlacementResult global =
      core::OptimizationEngine(options).run(nmdb);
  const double global_seconds = global_timer.seconds();

  util::Timer zoned_timer;
  const core::ZonedResult zoned =
      core::optimize_by_zones(nmdb, zone_size, options);
  const double zoned_seconds = zoned_timer.seconds();

  util::Table table("global vs zoned optimization");
  table.set_precision(4).header(
      {"approach", "zones", "objective_beta", "unplaced_%cap", "wall_s"});
  table.row({std::string("global"), std::int64_t{1}, global.objective,
             global.unplaced, global_seconds});
  table.row({std::string("zoned (<=" + std::to_string(zone_size) + " nodes)"),
             static_cast<std::int64_t>(zoned.zones), zoned.objective,
             zoned.unplaced, zoned_seconds});
  table.print(std::cout);

  std::cout << "\nzoned cost premium: "
            << (global.objective > 0
                    ? (zoned.objective / global.objective - 1.0) * 100.0
                    : 0.0)
            << "% — the price of keeping each optimization within a zone\n";
  return 0;
}
