// Data-center scenario (the paper's Fig. 5 testbed, end to end): a 4-k
// fat-tree pod of simulated switches running the full DUST control plane —
// DUST-Manager, per-switch DUST-Clients, device models with the 10 standard
// monitoring agents, VxLAN-like overlay traffic — over the simulated
// transport. Shows the busy switch being detected, its agents transferred,
// and CPU/memory recovering, with before/after stats like Fig. 6.
#include <iostream>
#include <memory>

#include "core/client.hpp"
#include "core/manager.hpp"
#include "graph/topology.hpp"
#include "sim/overlay_traffic.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace dust;

  const graph::FatTree topo(4);
  const std::size_t n = topo.graph().node_count();

  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(1));

  // Device-scale thresholds: the simulated switch idles at ~15% CPU and
  // runs ~31% with local monitoring, so "busy" starts at 25%.
  core::Thresholds thresholds;
  thresholds.c_max = 25.0;
  thresholds.co_max = 20.0;
  thresholds.x_min = 5.0;

  net::NetworkState state(topo.graph());
  core::ManagerConfig config;
  config.update_interval_ms = 2000;
  config.placement_period_ms = 10000;
  config.keepalive_timeout_ms = 10000;
  core::DustManager manager(sim, transport,
                            core::Nmdb(std::move(state), thresholds), config);

  // Node 0 (a core switch stand-in) is the DUT with all 10 agents; edge
  // switches idle lower and act as offload candidates.
  std::vector<std::unique_ptr<sim::MonitoredNode>> devices;
  std::vector<std::unique_ptr<core::DustClient>> clients;
  for (graph::NodeId v = 0; v < n; ++v) {
    const bool dut = v == 0;
    devices.push_back(std::make_unique<sim::MonitoredNode>(
        topo.node_name(v), sim::NodeResources{8, 16384.0}, dut ? 15.0 : 10.0,
        dut ? 0.62 * 16384.0 : 0.45 * 16384.0));
    if (dut)
      for (auto& agent : telemetry::standard_agents())
        devices.back()->add_local_agent(agent);
    clients.push_back(std::make_unique<core::DustClient>(
        sim, transport, v, core::ClientConfig{.keepalive_interval_ms = 2000},
        util::Rng(100 + v), devices.back().get()));
    clients.back()->start();
  }
  manager.start();

  sim::OverlayTraffic traffic{sim::OverlayTrafficProfile{}};
  util::Rng rng(7);
  util::RunningStats before_cpu, before_mem, after_cpu, after_mem;

  const int total_seconds = 240;
  for (int t = 0; t < total_seconds; ++t) {
    const sim::TrafficTick tick = traffic.next(rng);
    for (graph::NodeId v = 0; v < n; ++v) {
      // Only the DUT sees heavy overlay traffic; others carry background.
      const double rx = v == 0 ? tick.rx_mbps : 2000.0;
      const sim::TickStats stats =
          devices[v]->tick(sim.now(), 1000, rx, 0.0, rng);
      if (v == 0) {
        (manager.active_offload_count() ? after_cpu : before_cpu)
            .add(stats.device_cpu_percent);
        (manager.active_offload_count() ? after_mem : before_mem)
            .add(stats.memory_percent);
      }
      clients[v]->send_stat();
      // Stream remote snapshots for any offloaded agents.
      telemetry::DeviceSnapshot snap;
      snap.timestamp_ms = sim.now();
      snap.rx_mbps = rx;
      clients[v]->publish_snapshot(snap);
    }
    sim.run_until(sim.now() + 1000);
  }

  std::cout << "placement cycles: " << manager.placement_cycles()
            << ", active offloads: " << manager.active_offload_count() << "\n";
  for (const core::ActiveOffload& offload : manager.active_offloads())
    std::cout << "  " << topo.node_name(offload.busy) << " -> "
              << topo.node_name(offload.destination) << "  ("
              << offload.agents << " agents, " << offload.amount
              << "% capacity)\n";

  util::Table table("DUT resource utilization (like Fig. 6)");
  table.set_precision(1).header({"metric", "before offload", "after offload"});
  table.row({std::string("device CPU (%)"), before_cpu.mean(), after_cpu.mean()});
  table.row({std::string("device memory (%)"), before_mem.mean(),
             after_mem.mean()});
  table.print(std::cout);

  std::cout << "\ntransport: " << transport.sent() << " msgs sent, "
            << transport.delivered() << " delivered, " << transport.dropped()
            << " dropped\n";
  return 0;
}
