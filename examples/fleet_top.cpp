// fleet_top — the fleet observability plane in one binary (DESIGN.md §15).
//
// Three "nodes" inside one process, glued by real loopback TCP: a hub and
// three leaves. Leaves node-a and node-b serve their own isolated
// MetricRegistry through a wire::ObsResponder and churn synthetic metrics
// each round; node-idle serves a registry that never changes, so every
// scrape of it exercises the hot-tick clean path (no frame, no allocation).
// The hub runs the same ObsScraper + obs::Aggregator + obs::FleetWatchdog
// stack manager_daemon runs, merges its own registry as node "hub", and
// renders the fleet-top dashboard.
//
//   ./build/examples/fleet_top [--rounds N] [--watch]
//   ./build/examples/fleet_top --shard-hub S=HOST:PORT... [--rounds N]
//       [--interval-ms MS] [--watch]
//
// --watch redraws the dashboard every round (ANSI clear); the default is
// one final dashboard, which is what CI wants. Each round also records one
// cross-node trace (root on the hub, one child span per churning leaf) so
// the run doubles as a stitching smoke.
//
// --shard-hub switches to federated-fleet mode (DESIGN.md §16): instead of
// the in-process demo, fleet_top opens one leaf link per shard hub and
// scrapes that shard's federation_daemon responder ("dust-obs-shard<S>")
// into a single shared Aggregator. ObsScraper discovery only sees
// endpoints announced on its own hub, so a fleet with one hub per shard
// needs exactly this: one scraper per hub, one merged dashboard. Rounds
// are paced by --interval-ms (default 250) of wall clock.
//
// Machine-readable final line (the verify-all obs smoke target greps it):
//
//   FLEET nodes=<n> applied=<n> rejected=<n> clean=<n> spans=<n>
//         stitched_processes=<n> alerts=<n>
//
// (multi-hub mode prints `FLEET nodes=... applied=... rejected=...
// hubs=<h> alerts=<n>` instead — there is no idle leaf to keep clean.)
//
// Exit 0 iff the hub and both churning leaves merged, no snapshot was
// rejected, the idle leaf answered every scrape clean without ever sending
// a frame, and at least one trace stitched spans from all three tracks.
// Multi-hub mode: exit 0 iff every shard's responder merged and no
// snapshot was rejected.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/aggregator.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "wire/obs_scrape.hpp"
#include "wire/socket_transport.hpp"

namespace {

/// Federated-fleet mode: one leaf + scraper per shard hub, one merged
/// dashboard. `shard_hubs` holds (shard id, "HOST:PORT").
int run_multi_hub(
    const std::vector<std::pair<std::uint32_t, std::string>>& shard_hubs,
    std::size_t rounds, std::int64_t interval_ms, bool watch) {
  using namespace dust;
  struct HubLink {
    std::uint32_t shard;
    std::unique_ptr<wire::SocketTransport> leaf;
    std::unique_ptr<wire::ObsScraper> scraper;
  };
  obs::Aggregator aggregator;
  std::vector<HubLink> links;
  for (const auto& [shard, target] : shard_hubs) {
    const std::size_t colon = target.rfind(':');
    wire::SocketTransportConfig leaf_config;
    leaf_config.role = wire::SocketTransportConfig::Role::kLeaf;
    leaf_config.host = colon == std::string::npos ? target
                                                  : target.substr(0, colon);
    leaf_config.port = colon == std::string::npos
                           ? 0
                           : static_cast<std::uint16_t>(
                                 std::stoul(target.substr(colon + 1)));
    auto leaf = std::make_unique<wire::SocketTransport>(leaf_config);
    // A leaf never learns the hub's endpoint names, so discovery is off and
    // the shard daemon's responder is the one explicit target.
    wire::ObsScraperConfig scraper_config;
    scraper_config.targets = {"dust-obs-shard" + std::to_string(shard)};
    scraper_config.discover = false;
    auto scraper = std::make_unique<wire::ObsScraper>(
        *leaf, aggregator, "dust-obs-fleet-top-" + std::to_string(shard),
        scraper_config);
    links.push_back(HubLink{shard, std::move(leaf), std::move(scraper)});
  }

  obs::FleetWatchdog fleet_dog;
  const bool live_redraw = watch && isatty(1) != 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t alerts = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    for (HubLink& link : links) link.scraper->scrape(now);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(interval_ms);
    while (std::chrono::steady_clock::now() < deadline)
      for (HubLink& link : links) link.leaf->poll_once(5);
    alerts += fleet_dog.evaluate(aggregator, now).size();
    if (live_redraw) {
      std::cout << "\033[H\033[2J";
      aggregator.write_top(std::cout, now);
      std::cout << std::flush;
    }
  }
  if (!live_redraw)
    aggregator.write_top(
        std::cout, std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count());

  std::uint64_t applied = 0;
  std::uint64_t rejected = 0;
  for (const std::string& node : aggregator.nodes()) {
    applied += aggregator.status(node)->snapshots_applied;
    rejected += aggregator.status(node)->snapshots_rejected;
  }
  std::cout << "FLEET nodes=" << aggregator.nodes().size()
            << " applied=" << applied << " rejected=" << rejected
            << " hubs=" << links.size() << " alerts=" << alerts << "\n"
            << std::flush;
  bool merged_all = true;
  for (const HubLink& link : links)
    merged_all = merged_all &&
                 aggregator.status("shard" + std::to_string(link.shard)) !=
                     nullptr;
  return merged_all && rejected == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dust;
  util::init_log_level_from_env();
  std::size_t rounds = 20;
  std::int64_t interval_ms = 250;
  bool watch = false;
  std::vector<std::pair<std::uint32_t, std::string>> shard_hubs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rounds" && i + 1 < argc) {
      rounds = std::stoul(argv[++i]);
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::stoll(argv[++i]);
    } else if (arg == "--shard-hub" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::cerr << "fleet_top: --shard-hub wants S=HOST:PORT\n";
        return 2;
      }
      shard_hubs.emplace_back(
          static_cast<std::uint32_t>(std::stoul(spec.substr(0, eq))),
          spec.substr(eq + 1));
    } else if (arg == "--watch") {
      watch = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--rounds N] [--watch] |"
                   " --shard-hub S=HOST:PORT... [--rounds N]"
                   " [--interval-ms MS] [--watch]\n";
      return 2;
    }
  }
  if (!shard_hubs.empty())
    return run_multi_hub(shard_hubs, rounds, interval_ms, watch);

  wire::SocketTransportConfig hub_config;
  hub_config.role = wire::SocketTransportConfig::Role::kHub;
  wire::SocketTransport hub(hub_config);
  const auto make_leaf = [&] {
    wire::SocketTransportConfig leaf_config;
    leaf_config.role = wire::SocketTransportConfig::Role::kLeaf;
    leaf_config.port = hub.listen_port();
    return std::make_unique<wire::SocketTransport>(leaf_config);
  };
  auto leaf_a = make_leaf();
  auto leaf_b = make_leaf();
  auto leaf_idle = make_leaf();

  // Isolated registries: each leaf models a separate process with its own
  // metric namespace, exactly what the snapshot codec was built to carry.
  obs::MetricRegistry registry_a;
  obs::MetricRegistry registry_b;
  obs::MetricRegistry registry_idle;
  wire::ObsResponder responder_a(*leaf_a, "node-a", registry_a);
  wire::ObsResponder responder_b(*leaf_b, "node-b", registry_b);
  wire::ObsResponder responder_idle(*leaf_idle, "node-idle", registry_idle);

  obs::Aggregator aggregator;
  wire::ObsScraper scraper(hub, aggregator, "dust-obs-scraper");
  obs::FleetWatchdog fleet_dog;

  // Drain until several consecutive idle passes: poll_once counts local
  // deliveries only, so a pass that just flushed reply bytes into a socket
  // looks quiescent while the frame is still in flight toward the hub.
  const auto pump = [&] {
    for (int idle = 0; idle < 3;) {
      const std::size_t delivered = hub.poll_once(1) + leaf_a->poll_once(1) +
                                    leaf_b->poll_once(1) +
                                    leaf_idle->poll_once(1);
      idle = delivered == 0 ? idle + 1 : 0;
    }
  };
  pump();  // leaf announces reach the hub; responders become discoverable

  obs::Counter& packets_a = registry_a.counter("demo_packets_total");
  obs::Counter& packets_b = registry_b.counter("demo_packets_total");
  obs::Gauge& depth_a = registry_a.gauge("demo_queue_depth");
  obs::Gauge& depth_b = registry_b.gauge("demo_queue_depth");
  obs::Histogram& latency_a = registry_a.histogram("demo_latency_ms");
  obs::Histogram& latency_b = registry_b.histogram("demo_latency_ms");

  util::Rng rng(42);
  const bool live_redraw = watch && isatty(1) != 0;
  std::size_t alerts = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::int64_t now = static_cast<std::int64_t>(round) * 100;
    // Synthetic churn: node-b runs "hotter" so the dashboard ranking and
    // the merged histogram tail have something to show.
    packets_a.inc(10 + (round % 3));
    packets_b.inc(25 + (round % 7));
    depth_a.set(static_cast<double>(round % 5));
    depth_b.set(static_cast<double>(round % 11));
    latency_a.observe(rng.uniform(0.5, 2.0));
    latency_b.observe(rng.uniform(1.0, round % 4 == 0 ? 50.0 : 4.0));
    // One cross-node trace per round: hub root, a child span per leaf. The
    // children live in the leaves' registries and only meet the root once
    // the aggregator merges their snapshots — that is the stitch.
    const obs::TraceContext root = obs::record_instant(
        obs::MetricRegistry::global(), "fleet_tick", "hub", {}, now);
    obs::record_instant(registry_a, "leaf_work", "node-a", root, now);
    obs::record_instant(registry_b, "leaf_work", "node-b", root, now);

    aggregator.ingest_local("hub", obs::MetricRegistry::global(), now);
    scraper.scrape(now);
    pump();
    alerts += fleet_dog.evaluate(aggregator, now).size();
    if (live_redraw) {
      std::cout << "\033[H\033[2J";
      aggregator.write_top(std::cout, now);
      std::cout << std::flush;
    }
  }

  const std::int64_t end_ms = static_cast<std::int64_t>(rounds) * 100;
  if (!live_redraw) aggregator.write_top(std::cout, end_ms);

  // Best stitched trace: distinct track prefixes (before '/') = processes.
  std::size_t stitched_processes = 0;
  for (const obs::TraceTree& tree :
       obs::assemble_traces(aggregator.trace_snapshot())) {
    std::set<std::string> processes;
    for (const obs::SpanRecord& span : tree.spans)
      processes.insert(span.track.substr(0, span.track.find('/')));
    stitched_processes = std::max(stitched_processes, processes.size());
  }

  std::uint64_t applied = 0;
  std::uint64_t rejected = 0;
  for (const std::string& node : aggregator.nodes()) {
    applied += aggregator.status(node)->snapshots_applied;
    rejected += aggregator.status(node)->snapshots_rejected;
  }
  std::cout << "FLEET nodes=" << aggregator.nodes().size()
            << " applied=" << applied << " rejected=" << rejected
            << " clean=" << responder_idle.clean_scrapes()
            << " spans=" << aggregator.span_count()
            << " stitched_processes=" << stitched_processes
            << " alerts=" << alerts << "\n"
            << std::flush;

  const bool merged = aggregator.status("hub") != nullptr &&
                      aggregator.status("node-a") != nullptr &&
                      aggregator.status("node-b") != nullptr;
  const bool idle_clean = responder_idle.snapshots_sent() == 0 &&
                          responder_idle.clean_scrapes() >= rounds / 2;
  return merged && rejected == 0 && idle_clean && stitched_processes >= 3 ? 0
                                                                          : 1;
}
