// fleet_top — the fleet observability plane in one binary (DESIGN.md §15).
//
// Three "nodes" inside one process, glued by real loopback TCP: a hub and
// three leaves. Leaves node-a and node-b serve their own isolated
// MetricRegistry through a wire::ObsResponder and churn synthetic metrics
// each round; node-idle serves a registry that never changes, so every
// scrape of it exercises the hot-tick clean path (no frame, no allocation).
// The hub runs the same ObsScraper + obs::Aggregator + obs::FleetWatchdog
// stack manager_daemon runs, merges its own registry as node "hub", and
// renders the fleet-top dashboard.
//
//   ./build/examples/fleet_top [--rounds N] [--watch]
//
// --watch redraws the dashboard every round (ANSI clear); the default is
// one final dashboard, which is what CI wants. Each round also records one
// cross-node trace (root on the hub, one child span per churning leaf) so
// the run doubles as a stitching smoke.
//
// Machine-readable final line (the verify-all obs smoke target greps it):
//
//   FLEET nodes=<n> applied=<n> rejected=<n> clean=<n> spans=<n>
//         stitched_processes=<n> alerts=<n>
//
// Exit 0 iff the hub and both churning leaves merged, no snapshot was
// rejected, the idle leaf answered every scrape clean without ever sending
// a frame, and at least one trace stitched spans from all three tracks.
#include <unistd.h>

#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "obs/aggregator.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "wire/obs_scrape.hpp"
#include "wire/socket_transport.hpp"

int main(int argc, char** argv) {
  using namespace dust;
  util::init_log_level_from_env();
  std::size_t rounds = 20;
  bool watch = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rounds" && i + 1 < argc) {
      rounds = std::stoul(argv[++i]);
    } else if (arg == "--watch") {
      watch = true;
    } else {
      std::cerr << "usage: " << argv[0] << " [--rounds N] [--watch]\n";
      return 2;
    }
  }

  wire::SocketTransportConfig hub_config;
  hub_config.role = wire::SocketTransportConfig::Role::kHub;
  wire::SocketTransport hub(hub_config);
  const auto make_leaf = [&] {
    wire::SocketTransportConfig leaf_config;
    leaf_config.role = wire::SocketTransportConfig::Role::kLeaf;
    leaf_config.port = hub.listen_port();
    return std::make_unique<wire::SocketTransport>(leaf_config);
  };
  auto leaf_a = make_leaf();
  auto leaf_b = make_leaf();
  auto leaf_idle = make_leaf();

  // Isolated registries: each leaf models a separate process with its own
  // metric namespace, exactly what the snapshot codec was built to carry.
  obs::MetricRegistry registry_a;
  obs::MetricRegistry registry_b;
  obs::MetricRegistry registry_idle;
  wire::ObsResponder responder_a(*leaf_a, "node-a", registry_a);
  wire::ObsResponder responder_b(*leaf_b, "node-b", registry_b);
  wire::ObsResponder responder_idle(*leaf_idle, "node-idle", registry_idle);

  obs::Aggregator aggregator;
  wire::ObsScraper scraper(hub, aggregator, "dust-obs-scraper");
  obs::FleetWatchdog fleet_dog;

  // Drain until several consecutive idle passes: poll_once counts local
  // deliveries only, so a pass that just flushed reply bytes into a socket
  // looks quiescent while the frame is still in flight toward the hub.
  const auto pump = [&] {
    for (int idle = 0; idle < 3;) {
      const std::size_t delivered = hub.poll_once(1) + leaf_a->poll_once(1) +
                                    leaf_b->poll_once(1) +
                                    leaf_idle->poll_once(1);
      idle = delivered == 0 ? idle + 1 : 0;
    }
  };
  pump();  // leaf announces reach the hub; responders become discoverable

  obs::Counter& packets_a = registry_a.counter("demo_packets_total");
  obs::Counter& packets_b = registry_b.counter("demo_packets_total");
  obs::Gauge& depth_a = registry_a.gauge("demo_queue_depth");
  obs::Gauge& depth_b = registry_b.gauge("demo_queue_depth");
  obs::Histogram& latency_a = registry_a.histogram("demo_latency_ms");
  obs::Histogram& latency_b = registry_b.histogram("demo_latency_ms");

  util::Rng rng(42);
  const bool live_redraw = watch && isatty(1) != 0;
  std::size_t alerts = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::int64_t now = static_cast<std::int64_t>(round) * 100;
    // Synthetic churn: node-b runs "hotter" so the dashboard ranking and
    // the merged histogram tail have something to show.
    packets_a.inc(10 + (round % 3));
    packets_b.inc(25 + (round % 7));
    depth_a.set(static_cast<double>(round % 5));
    depth_b.set(static_cast<double>(round % 11));
    latency_a.observe(rng.uniform(0.5, 2.0));
    latency_b.observe(rng.uniform(1.0, round % 4 == 0 ? 50.0 : 4.0));
    // One cross-node trace per round: hub root, a child span per leaf. The
    // children live in the leaves' registries and only meet the root once
    // the aggregator merges their snapshots — that is the stitch.
    const obs::TraceContext root = obs::record_instant(
        obs::MetricRegistry::global(), "fleet_tick", "hub", {}, now);
    obs::record_instant(registry_a, "leaf_work", "node-a", root, now);
    obs::record_instant(registry_b, "leaf_work", "node-b", root, now);

    aggregator.ingest_local("hub", obs::MetricRegistry::global(), now);
    scraper.scrape(now);
    pump();
    alerts += fleet_dog.evaluate(aggregator, now).size();
    if (live_redraw) {
      std::cout << "\033[H\033[2J";
      aggregator.write_top(std::cout, now);
      std::cout << std::flush;
    }
  }

  const std::int64_t end_ms = static_cast<std::int64_t>(rounds) * 100;
  if (!live_redraw) aggregator.write_top(std::cout, end_ms);

  // Best stitched trace: distinct track prefixes (before '/') = processes.
  std::size_t stitched_processes = 0;
  for (const obs::TraceTree& tree :
       obs::assemble_traces(aggregator.trace_snapshot())) {
    std::set<std::string> processes;
    for (const obs::SpanRecord& span : tree.spans)
      processes.insert(span.track.substr(0, span.track.find('/')));
    stitched_processes = std::max(stitched_processes, processes.size());
  }

  std::uint64_t applied = 0;
  std::uint64_t rejected = 0;
  for (const std::string& node : aggregator.nodes()) {
    applied += aggregator.status(node)->snapshots_applied;
    rejected += aggregator.status(node)->snapshots_rejected;
  }
  std::cout << "FLEET nodes=" << aggregator.nodes().size()
            << " applied=" << applied << " rejected=" << rejected
            << " clean=" << responder_idle.clean_scrapes()
            << " spans=" << aggregator.span_count()
            << " stitched_processes=" << stitched_processes
            << " alerts=" << alerts << "\n"
            << std::flush;

  const bool merged = aggregator.status("hub") != nullptr &&
                      aggregator.status("node-a") != nullptr &&
                      aggregator.status("node-b") != nullptr;
  const bool idle_clean = responder_idle.snapshots_sent() == 0 &&
                          responder_idle.clean_scrapes() >= rounds / 2;
  return merged && rejected == 0 && idle_clean && stitched_processes >= 3 ? 0
                                                                          : 1;
}
