// Heuristic vs ILP, side by side: run both engines plus the greedy/random
// baselines on the same random fat-tree scenarios and print a comparison of
// cost, completeness, and runtime — the trade-off §V-B discusses.
//
//   ./build/examples/heuristic_vs_ilp [k] [iterations]
#include <cstdlib>
#include <iostream>

#include "core/baselines.hpp"
#include "core/heuristic.hpp"
#include "core/optimizer.hpp"
#include "graph/topology.hpp"
#include "net/traffic.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dust;
  const std::uint32_t k =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  const std::size_t iterations =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 25;

  struct Row {
    util::RunningStats objective, seconds, shipped;
  };
  Row ilp, heuristic, greedy, random_rows;
  std::size_t counted = 0;

  util::Rng root(99);
  for (std::size_t i = 0; i < iterations; ++i) {
    util::Rng rng = root.fork(i);
    net::NetworkState state = net::make_random_state(
        graph::FatTree(k).graph(), net::LinkProfile{}, net::NodeLoadProfile{},
        rng);
    core::Nmdb nmdb(std::move(state), core::Thresholds{});
    if (nmdb.busy_nodes().empty()) continue;
    ++counted;
    const double total_excess = nmdb.total_excess();

    core::OptimizerOptions options;
    options.placement.max_hops = 4;
    options.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;
    options.allow_partial = true;
    const core::PlacementResult opt = core::OptimizationEngine(options).run(nmdb);
    ilp.objective.add(opt.objective);
    ilp.seconds.add(opt.build_seconds + opt.solve_seconds);
    ilp.shipped.add((total_excess - opt.unplaced) / total_excess * 100.0);

    const core::HeuristicResult h = core::HeuristicEngine().run(nmdb);
    heuristic.objective.add(h.objective);
    heuristic.seconds.add(h.solve_seconds);
    heuristic.shipped.add(100.0 - h.hfr_percent());

    const core::BaselineResult g = core::greedy_nearest_placement(nmdb, 4);
    greedy.objective.add(g.objective);
    greedy.seconds.add(g.solve_seconds);
    greedy.shipped.add((total_excess - g.unplaced) / total_excess * 100.0);

    util::Rng baseline_rng = rng.fork(777);
    const core::BaselineResult r = core::random_placement(nmdb, baseline_rng, 4);
    random_rows.objective.add(r.objective);
    random_rows.seconds.add(r.solve_seconds);
    random_rows.shipped.add((total_excess - r.unplaced) / total_excess * 100.0);
  }

  std::cout << k << "-k fat-tree, " << counted << " scenarios with busy nodes\n";
  util::Table table("placement strategies compared");
  table.set_precision(5).header(
      {"strategy", "avg_objective_beta", "avg_offloaded_%", "avg_time_s"});
  auto add = [&table](const char* name, const Row& row) {
    table.row({std::string(name), row.objective.mean(), row.shipped.mean(),
               row.seconds.mean()});
  };
  add("ILP optimizer (max-hop 4)", ilp);
  add("one-hop heuristic (Alg. 1)", heuristic);
  add("greedy nearest (max-hop 4)", greedy);
  add("random placement (max-hop 4)", random_rows);
  table.print(std::cout);

  std::cout << "\nreading: ILP minimizes cost at full coverage; the heuristic "
               "trades a little coverage (its HFR) for near-zero runtime; "
               "random shows what optimization buys\n";
  return 0;
}
