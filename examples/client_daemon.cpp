// DUST-Clients as an OS process (DESIGN.md §11).
//
// Hosts one DustClient per node listed in --nodes, all sharing a single
// wire::SocketTransport leaf connected to the manager daemon's hub. Each
// client reports the load its node has in the scenario file (constant, like
// the protocol tests' scripted state), so a fleet of daemons reproduces the
// exact NMDB an in-process run of the same scenario would build.
//
//   ./build/examples/client_daemon --port N --nodes 0,1,2
//       [--scenario FILE] [--manager ENDPOINT] [--run-ms MS] [--die-at-ms MS]
//       [--stream] [--stream-samples N] [--stream-delay-ms MS]
//
// --manager points every hosted client at a non-default manager endpoint —
// in a federated fleet each shard's manager answers on
// "dust-manager-shard<s>" (DESIGN.md §16). When the hub link drops and
// comes back (e.g. a standby took over the shard's port), the transport's
// reconnect listener re-homes every client: fresh Offload-capable + STAT
// outrun any stale backlog, so the new primary rebuilds its domain view
// immediately.
//
// --die-at-ms exits the process abruptly (no teardown, sockets reset by the
// OS) to simulate a node crash: the manager sees keepalive loss and must
// substitute a replica destination.
//
// --stream turns the first listed node into a telemetry origin: a local
// TSDB is pre-filled with --stream-samples deterministic samples on each of
// two series, then drained through a dataplane::BlockStreamer toward the
// "dust-collector" endpoint (a collector_daemon leaf on the same hub). The
// flush waits --stream-delay-ms so the collector's announce has reached the
// hub before the first kDataBlocks frame needs a route.
//
// The process serves its MetricRegistry at "dust-obs-client-<first node>"
// (wire::ObsResponder), so a manager_daemon running the fleet observability
// plane scrapes it like any other node. Span ids are seeded per process so
// stitched fleet traces never collide.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/scenario.hpp"
#include "dataplane/block_streamer.hpp"
#include "obs/trace.hpp"
#include "telemetry/tsdb.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "wire/demo_scenario.hpp"
#include "wire/obs_scrape.hpp"
#include "wire/socket_transport.hpp"

namespace {

std::vector<dust::graph::NodeId> parse_nodes(const std::string& list) {
  std::vector<dust::graph::NodeId> nodes;
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t end = list.find(',', pos);
    if (end == std::string::npos) end = list.size();
    nodes.push_back(static_cast<dust::graph::NodeId>(
        std::stoul(list.substr(pos, end - pos))));
    pos = end + 1;
  }
  return nodes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dust;
  util::init_log_level_from_env();
  std::uint16_t port = 0;
  std::string scenario_file;
  std::string manager_endpoint;
  std::vector<graph::NodeId> nodes;
  std::int64_t run_ms = 10000;
  std::int64_t die_at_ms = -1;
  bool stream = false;
  std::size_t stream_samples = 2000;
  std::int64_t stream_delay_ms = 1000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::stoul(argv[++i]));
    } else if (arg == "--nodes" && i + 1 < argc) {
      nodes = parse_nodes(argv[++i]);
    } else if (arg == "--scenario" && i + 1 < argc) {
      scenario_file = argv[++i];
    } else if (arg == "--manager" && i + 1 < argc) {
      manager_endpoint = argv[++i];
    } else if (arg == "--run-ms" && i + 1 < argc) {
      run_ms = std::stoll(argv[++i]);
    } else if (arg == "--die-at-ms" && i + 1 < argc) {
      die_at_ms = std::stoll(argv[++i]);
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--stream-samples" && i + 1 < argc) {
      stream_samples = std::stoul(argv[++i]);
    } else if (arg == "--stream-delay-ms" && i + 1 < argc) {
      stream_delay_ms = std::stoll(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0]
                << " --port N --nodes 0,1,2 [--scenario FILE]"
                   " [--manager ENDPOINT] [--run-ms MS] [--die-at-ms MS]"
                   " [--stream] [--stream-samples N] [--stream-delay-ms MS]\n";
      return 2;
    }
  }
  if (port == 0 || nodes.empty()) {
    std::cerr << "client_daemon: --port and --nodes are required\n";
    return 2;
  }

  core::Nmdb nmdb = [&] {
    if (scenario_file.empty()) return wire::demo_nmdb();
    std::ifstream file(scenario_file);
    if (!file) {
      std::cerr << "cannot open " << scenario_file << "\n";
      std::exit(2);
    }
    return core::load_scenario(file);
  }();

  const std::string obs_node = "client-" + std::to_string(nodes.front());
  // Before any span allocation: this process's span ids must live in their
  // own block or stitched fleet traces would collide across daemons.
  obs::seed_span_ids(std::hash<std::string>{}(obs_node));

  sim::Simulator sim;
  wire::SocketTransportConfig wire_config;
  wire_config.role = wire::SocketTransportConfig::Role::kLeaf;
  wire_config.port = port;
  wire_config.now = [&sim] { return sim.now(); };
  wire::SocketTransport transport(wire_config);
  wire::ObsResponder obs_responder(transport, obs_node);

  std::vector<std::unique_ptr<core::DustClient>> clients;
  for (const graph::NodeId node : nodes) {
    if (node >= nmdb.node_count()) {
      std::cerr << "client_daemon: node " << node << " not in scenario\n";
      return 2;
    }
    core::ClientConfig config;
    config.offload_capable = nmdb.offload_capable(node);
    config.platform_factor = nmdb.platform_factor(node);
    config.keepalive_interval_ms = 300;
    if (!manager_endpoint.empty()) config.manager = manager_endpoint;
    clients.push_back(std::make_unique<core::DustClient>(
        sim, transport, node, config, util::Rng(100 + node)));
    clients.back()->set_reported_state(
        nmdb.network().node_utilization(node),
        nmdb.network().monitoring_data_mb(node),
        std::max<std::uint32_t>(1, nmdb.agent_count(node)));
    clients.back()->start();
  }

  // The hub link came back after dropping (manager restart or a standby
  // taking over the shard's port): re-home every client so the fresh
  // Offload-capable + STAT outrun whatever stale backlog flushes next.
  transport.set_reconnect_listener([&clients] {
    for (auto& client : clients) client->rehome();
  });

  // --stream: the first node doubles as a telemetry origin. Content is
  // deterministic (seeded by node id) so the harness knows the exact sample
  // count the collector must account for.
  telemetry::Tsdb tsdb;
  std::unique_ptr<dataplane::BlockStreamer> streamer;
  if (stream) {
    const graph::NodeId origin = nodes.front();
    util::Rng content_rng(500 + origin);
    std::vector<telemetry::MetricId> metrics;
    for (const char* name : {"device.cpu.percent", "device.rx.mbps"})
      metrics.push_back(tsdb.register_metric(telemetry::MetricDescriptor{
          name, "units", telemetry::MetricKind::kGauge}));
    double level = 50.0;
    for (std::size_t i = 0; i < stream_samples; ++i) {
      level += content_rng.uniform(-0.5, 0.5);
      for (std::size_t m = 0; m < metrics.size(); ++m)
        tsdb.append(metrics[m],
                    telemetry::Sample{static_cast<std::int64_t>(i) * 100,
                                      level + static_cast<double>(m)});
    }
    const std::string endpoint =
        "dust-streamer-" + std::to_string(origin);
    transport.register_endpoint(endpoint, [](const sim::Envelope&) {});
    dataplane::BlockStreamerConfig streamer_config;
    streamer_config.owner = origin;
    streamer_config.local_endpoint = endpoint;
    streamer = std::make_unique<dataplane::BlockStreamer>(transport, tsdb,
                                                          streamer_config);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto wall_ms = [&t0] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  bool flushed = false;
  while (wall_ms() < run_ms) {
    if (die_at_ms >= 0 && wall_ms() >= die_at_ms) {
      // Crash, don't shut down: skip every destructor so the kernel resets
      // the connection mid-protocol, exactly like a dying device.
      std::_Exit(7);
    }
    if (streamer != nullptr && wall_ms() >= stream_delay_ms) {
      // Parent data-block batches under the latest offload chain that
      // reached this host, so collector ingest joins the same fleet trace.
      streamer->set_trace(clients.front()->last_host_trace());
      if (!flushed) {
        streamer->flush();
        flushed = true;
      } else {
        streamer->pump();
      }
    }
    transport.poll_once(5);
    sim.run_until(wall_ms());
  }
  return 0;
}
