// Telemetry pipeline tour: monitoring agents sampling a simulated switch
// into a Gorilla-compressed TSDB, alert rules firing on CPU overload, the
// Time-Series Federation aggregating across nodes — and finally the data
// plane (DESIGN.md §12): both devices' TSDBs drained as sealed Gorilla
// blocks over real loopback TCP into a dataplane::Collector that verifies
// every block and attests that no loss went undeclared.
#include <iostream>

#include "dataplane/block_streamer.hpp"
#include "dataplane/collector.hpp"
#include "sim/node.hpp"
#include "sim/overlay_traffic.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/federation.hpp"
#include "util/table.hpp"
#include "wire/socket_transport.hpp"

int main() {
  using namespace dust;

  // Two switches with the paper's 10 standard agents each.
  sim::MonitoredNode busy("leaf1", sim::NodeResources{8, 16384.0}, 15.0,
                          0.62 * 16384.0);
  sim::MonitoredNode calm("leaf2", sim::NodeResources{8, 16384.0}, 10.0,
                          0.45 * 16384.0);
  for (auto& agent : telemetry::standard_agents()) {
    busy.add_local_agent(agent);
    calm.add_local_agent(agent);
  }

  // Alert: device CPU (as self-observed by the cpu/memory agent) above 28%
  // for at least 10 s.
  telemetry::AlertEngine alerts;
  const auto overload = alerts.add_rule(
      {"cpu-overload", "system.cpu.memory.value", telemetry::Comparison::kAbove,
       28.0, 10000});

  sim::OverlayTraffic heavy{sim::OverlayTrafficProfile{}};
  util::Rng rng(11);
  std::int64_t fired_at = -1;
  for (int t = 0; t < 300; ++t) {
    const std::int64_t now = 1000LL * t;
    const auto tick = heavy.next(rng);
    busy.tick(now, 1000, tick.rx_mbps, tick.tx_mbps, rng);  // ~31% CPU
    calm.tick(now, 1000, 1500.0, 0.0, rng);                 // ~12% CPU
    alerts.evaluate(busy.tsdb(), now);
    if (fired_at < 0 && alerts.state(overload) == telemetry::AlertState::kFiring)
      fired_at = now;
  }

  std::cout << "alert 'cpu-overload' state: "
            << telemetry::to_string(alerts.state(overload));
  if (fired_at >= 0) std::cout << " (fired at t=" << fired_at / 1000 << " s)";
  std::cout << "\nalert transitions recorded: " << alerts.history().size()
            << "\n\n";

  // Federation: network-wide view over both nodes' TSDBs.
  telemetry::Federation federation;
  federation.add_member("leaf1", &busy.tsdb());
  federation.add_member("leaf2", &calm.tsdb());

  util::Table table("federated view: interface.rxtx.rates.value (Mbps)");
  table.set_precision(1).header({"node", "mean", "max"});
  for (const auto& [node, mean_value] : federation.aggregate_per_node(
           "interface.rxtx.rates.value", 0, 400000, telemetry::Aggregation::kMean)) {
    const auto per_max = federation.aggregate_per_node(
        "interface.rxtx.rates.value", 0, 400000, telemetry::Aggregation::kMax);
    table.row({node, mean_value, per_max.at(node)});
  }
  table.print(std::cout);

  const std::size_t raw_bytes = 2 * 10 * 3 * 300 * 16;  // samples x 16 B
  std::cout << "\nTSDB storage (Gorilla-compressed): "
            << federation.total_storage_bytes() << " bytes vs ~" << raw_bytes
            << " raw (" << static_cast<double>(raw_bytes) /
                              federation.total_storage_bytes()
            << "x compression)\n";

  // The data plane: what the sections above built stays on the device only
  // until a placement decision moves its monitoring load — then the blocks
  // themselves must travel. Drain both TSDBs through BlockStreamers over a
  // real loopback socket into a Collector and let it audit the transfer.
  wire::SocketTransportConfig hub_config;
  hub_config.role = wire::SocketTransportConfig::Role::kHub;
  wire::SocketTransport hub(hub_config);
  wire::SocketTransportConfig leaf_config;
  leaf_config.role = wire::SocketTransportConfig::Role::kLeaf;
  leaf_config.port = hub.listen_port();
  wire::SocketTransport leaf(leaf_config);
  dataplane::Collector collector(hub, "dust-collector");

  std::uint64_t shipped = 0;
  for (auto* node : {&busy, &calm}) {
    const dust::graph::NodeId owner = node == &busy ? 1 : 2;
    const std::string endpoint = "dust-streamer-" + std::to_string(owner);
    leaf.register_endpoint(endpoint, [](const sim::Envelope&) {});
    dataplane::BlockStreamerConfig config;
    config.owner = owner;
    config.local_endpoint = endpoint;
    dataplane::BlockStreamer streamer(leaf, node->tsdb(), config);
    streamer.flush();
    shipped += streamer.stats().samples_sent;
  }
  for (int spins = 0; spins < 1000 && collector.stats().samples < shipped;
       ++spins) {
    leaf.poll_once(1);
    hub.poll_once(1);
  }

  const dataplane::CollectorStats& dp = collector.stats();
  std::cout << "\ndata plane: " << dp.samples << "/" << shipped
            << " samples in " << dp.batches << " batches ("
            << dp.blocks << " blocks) -> dust-collector, "
            << (collector.loss_fully_declared() && dp.samples == shipped
                    ? "every block verified, all loss declared"
                    : "TRANSFER INCOMPLETE")
            << "\n";
  return collector.loss_fully_declared() && dp.samples == shipped ? 0 : 1;
}
