# Empty dependencies file for bench_abl_heuristic_radius.
# This may be replaced when dependencies are built.
