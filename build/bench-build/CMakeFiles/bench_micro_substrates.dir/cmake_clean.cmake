file(REMOVE_RECURSE
  "../bench/bench_micro_substrates"
  "../bench/bench_micro_substrates.pdb"
  "CMakeFiles/bench_micro_substrates.dir/bench_micro_substrates.cpp.o"
  "CMakeFiles/bench_micro_substrates.dir/bench_micro_substrates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
