# Empty compiler generated dependencies file for bench_fig07_infeasible_rate.
# This may be replaced when dependencies are built.
