# Empty compiler generated dependencies file for bench_fig01_monitor_cpu.
# This may be replaced when dependencies are built.
