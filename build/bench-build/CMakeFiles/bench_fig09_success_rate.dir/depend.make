# Empty dependencies file for bench_fig09_success_rate.
# This may be replaced when dependencies are built.
