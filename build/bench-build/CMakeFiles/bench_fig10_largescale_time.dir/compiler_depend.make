# Empty compiler generated dependencies file for bench_fig10_largescale_time.
# This may be replaced when dependencies are built.
