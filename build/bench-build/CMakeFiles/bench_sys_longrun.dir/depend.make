# Empty dependencies file for bench_sys_longrun.
# This may be replaced when dependencies are built.
