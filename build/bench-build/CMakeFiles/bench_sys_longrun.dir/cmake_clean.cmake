file(REMOVE_RECURSE
  "../bench/bench_sys_longrun"
  "../bench/bench_sys_longrun.pdb"
  "CMakeFiles/bench_sys_longrun.dir/bench_sys_longrun.cpp.o"
  "CMakeFiles/bench_sys_longrun.dir/bench_sys_longrun.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sys_longrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
