file(REMOVE_RECURSE
  "../bench/bench_sys_control_plane"
  "../bench/bench_sys_control_plane.pdb"
  "CMakeFiles/bench_sys_control_plane.dir/bench_sys_control_plane.cpp.o"
  "CMakeFiles/bench_sys_control_plane.dir/bench_sys_control_plane.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sys_control_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
