file(REMOVE_RECURSE
  "../bench/bench_fig12_heuristic_scale"
  "../bench/bench_fig12_heuristic_scale.pdb"
  "CMakeFiles/bench_fig12_heuristic_scale.dir/bench_fig12_heuristic_scale.cpp.o"
  "CMakeFiles/bench_fig12_heuristic_scale.dir/bench_fig12_heuristic_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_heuristic_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
