# Empty dependencies file for bench_fig12_heuristic_scale.
# This may be replaced when dependencies are built.
