# Empty compiler generated dependencies file for bench_abl_zones.
# This may be replaced when dependencies are built.
