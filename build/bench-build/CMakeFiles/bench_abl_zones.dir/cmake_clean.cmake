file(REMOVE_RECURSE
  "../bench/bench_abl_zones"
  "../bench/bench_abl_zones.pdb"
  "CMakeFiles/bench_abl_zones.dir/bench_abl_zones.cpp.o"
  "CMakeFiles/bench_abl_zones.dir/bench_abl_zones.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
