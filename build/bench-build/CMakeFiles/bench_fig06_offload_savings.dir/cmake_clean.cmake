file(REMOVE_RECURSE
  "../bench/bench_fig06_offload_savings"
  "../bench/bench_fig06_offload_savings.pdb"
  "CMakeFiles/bench_fig06_offload_savings.dir/bench_fig06_offload_savings.cpp.o"
  "CMakeFiles/bench_fig06_offload_savings.dir/bench_fig06_offload_savings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_offload_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
