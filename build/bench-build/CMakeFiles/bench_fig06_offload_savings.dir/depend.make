# Empty dependencies file for bench_fig06_offload_savings.
# This may be replaced when dependencies are built.
