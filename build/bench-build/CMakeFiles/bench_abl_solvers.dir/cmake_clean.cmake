file(REMOVE_RECURSE
  "../bench/bench_abl_solvers"
  "../bench/bench_abl_solvers.pdb"
  "CMakeFiles/bench_abl_solvers.dir/bench_abl_solvers.cpp.o"
  "CMakeFiles/bench_abl_solvers.dir/bench_abl_solvers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
