# Empty compiler generated dependencies file for bench_abl_solvers.
# This may be replaced when dependencies are built.
