# Empty compiler generated dependencies file for bench_abl_path_eval.
# This may be replaced when dependencies are built.
