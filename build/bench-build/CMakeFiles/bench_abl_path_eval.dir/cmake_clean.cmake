file(REMOVE_RECURSE
  "../bench/bench_abl_path_eval"
  "../bench/bench_abl_path_eval.pdb"
  "CMakeFiles/bench_abl_path_eval.dir/bench_abl_path_eval.cpp.o"
  "CMakeFiles/bench_abl_path_eval.dir/bench_abl_path_eval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_path_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
