file(REMOVE_RECURSE
  "../bench/bench_abl_sampling_accuracy"
  "../bench/bench_abl_sampling_accuracy.pdb"
  "CMakeFiles/bench_abl_sampling_accuracy.dir/bench_abl_sampling_accuracy.cpp.o"
  "CMakeFiles/bench_abl_sampling_accuracy.dir/bench_abl_sampling_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_sampling_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
