# Empty compiler generated dependencies file for heuristic_vs_ilp.
# This may be replaced when dependencies are built.
