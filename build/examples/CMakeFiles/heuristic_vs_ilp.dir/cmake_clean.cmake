file(REMOVE_RECURSE
  "CMakeFiles/heuristic_vs_ilp.dir/heuristic_vs_ilp.cpp.o"
  "CMakeFiles/heuristic_vs_ilp.dir/heuristic_vs_ilp.cpp.o.d"
  "heuristic_vs_ilp"
  "heuristic_vs_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristic_vs_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
