file(REMOVE_RECURSE
  "CMakeFiles/telemetry_pipeline.dir/telemetry_pipeline.cpp.o"
  "CMakeFiles/telemetry_pipeline.dir/telemetry_pipeline.cpp.o.d"
  "telemetry_pipeline"
  "telemetry_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
