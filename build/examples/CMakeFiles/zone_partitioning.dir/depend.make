# Empty dependencies file for zone_partitioning.
# This may be replaced when dependencies are built.
