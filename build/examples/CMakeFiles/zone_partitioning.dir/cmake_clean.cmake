file(REMOVE_RECURSE
  "CMakeFiles/zone_partitioning.dir/zone_partitioning.cpp.o"
  "CMakeFiles/zone_partitioning.dir/zone_partitioning.cpp.o.d"
  "zone_partitioning"
  "zone_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
