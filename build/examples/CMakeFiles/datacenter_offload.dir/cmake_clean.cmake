file(REMOVE_RECURSE
  "CMakeFiles/datacenter_offload.dir/datacenter_offload.cpp.o"
  "CMakeFiles/datacenter_offload.dir/datacenter_offload.cpp.o.d"
  "datacenter_offload"
  "datacenter_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
