# Empty dependencies file for datacenter_offload.
# This may be replaced when dependencies are built.
