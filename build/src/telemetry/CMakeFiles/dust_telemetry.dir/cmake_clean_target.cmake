file(REMOVE_RECURSE
  "libdust_telemetry.a"
)
