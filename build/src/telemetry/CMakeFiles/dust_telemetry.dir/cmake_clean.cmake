file(REMOVE_RECURSE
  "CMakeFiles/dust_telemetry.dir/agent.cpp.o"
  "CMakeFiles/dust_telemetry.dir/agent.cpp.o.d"
  "CMakeFiles/dust_telemetry.dir/alerts.cpp.o"
  "CMakeFiles/dust_telemetry.dir/alerts.cpp.o.d"
  "CMakeFiles/dust_telemetry.dir/federation.cpp.o"
  "CMakeFiles/dust_telemetry.dir/federation.cpp.o.d"
  "CMakeFiles/dust_telemetry.dir/gorilla.cpp.o"
  "CMakeFiles/dust_telemetry.dir/gorilla.cpp.o.d"
  "CMakeFiles/dust_telemetry.dir/packet.cpp.o"
  "CMakeFiles/dust_telemetry.dir/packet.cpp.o.d"
  "CMakeFiles/dust_telemetry.dir/sampled_flow.cpp.o"
  "CMakeFiles/dust_telemetry.dir/sampled_flow.cpp.o.d"
  "CMakeFiles/dust_telemetry.dir/tsdb.cpp.o"
  "CMakeFiles/dust_telemetry.dir/tsdb.cpp.o.d"
  "libdust_telemetry.a"
  "libdust_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dust_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
