# Empty dependencies file for dust_telemetry.
# This may be replaced when dependencies are built.
