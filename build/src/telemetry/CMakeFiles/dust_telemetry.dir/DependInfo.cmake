
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/agent.cpp" "src/telemetry/CMakeFiles/dust_telemetry.dir/agent.cpp.o" "gcc" "src/telemetry/CMakeFiles/dust_telemetry.dir/agent.cpp.o.d"
  "/root/repo/src/telemetry/alerts.cpp" "src/telemetry/CMakeFiles/dust_telemetry.dir/alerts.cpp.o" "gcc" "src/telemetry/CMakeFiles/dust_telemetry.dir/alerts.cpp.o.d"
  "/root/repo/src/telemetry/federation.cpp" "src/telemetry/CMakeFiles/dust_telemetry.dir/federation.cpp.o" "gcc" "src/telemetry/CMakeFiles/dust_telemetry.dir/federation.cpp.o.d"
  "/root/repo/src/telemetry/gorilla.cpp" "src/telemetry/CMakeFiles/dust_telemetry.dir/gorilla.cpp.o" "gcc" "src/telemetry/CMakeFiles/dust_telemetry.dir/gorilla.cpp.o.d"
  "/root/repo/src/telemetry/packet.cpp" "src/telemetry/CMakeFiles/dust_telemetry.dir/packet.cpp.o" "gcc" "src/telemetry/CMakeFiles/dust_telemetry.dir/packet.cpp.o.d"
  "/root/repo/src/telemetry/sampled_flow.cpp" "src/telemetry/CMakeFiles/dust_telemetry.dir/sampled_flow.cpp.o" "gcc" "src/telemetry/CMakeFiles/dust_telemetry.dir/sampled_flow.cpp.o.d"
  "/root/repo/src/telemetry/tsdb.cpp" "src/telemetry/CMakeFiles/dust_telemetry.dir/tsdb.cpp.o" "gcc" "src/telemetry/CMakeFiles/dust_telemetry.dir/tsdb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
