file(REMOVE_RECURSE
  "libdust_solver.a"
)
