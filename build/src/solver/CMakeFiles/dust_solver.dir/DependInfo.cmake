
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/branch_and_bound.cpp" "src/solver/CMakeFiles/dust_solver.dir/branch_and_bound.cpp.o" "gcc" "src/solver/CMakeFiles/dust_solver.dir/branch_and_bound.cpp.o.d"
  "/root/repo/src/solver/lp.cpp" "src/solver/CMakeFiles/dust_solver.dir/lp.cpp.o" "gcc" "src/solver/CMakeFiles/dust_solver.dir/lp.cpp.o.d"
  "/root/repo/src/solver/lp_format.cpp" "src/solver/CMakeFiles/dust_solver.dir/lp_format.cpp.o" "gcc" "src/solver/CMakeFiles/dust_solver.dir/lp_format.cpp.o.d"
  "/root/repo/src/solver/min_cost_flow.cpp" "src/solver/CMakeFiles/dust_solver.dir/min_cost_flow.cpp.o" "gcc" "src/solver/CMakeFiles/dust_solver.dir/min_cost_flow.cpp.o.d"
  "/root/repo/src/solver/simplex.cpp" "src/solver/CMakeFiles/dust_solver.dir/simplex.cpp.o" "gcc" "src/solver/CMakeFiles/dust_solver.dir/simplex.cpp.o.d"
  "/root/repo/src/solver/transportation.cpp" "src/solver/CMakeFiles/dust_solver.dir/transportation.cpp.o" "gcc" "src/solver/CMakeFiles/dust_solver.dir/transportation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
