# Empty dependencies file for dust_solver.
# This may be replaced when dependencies are built.
