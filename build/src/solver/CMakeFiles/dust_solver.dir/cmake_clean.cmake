file(REMOVE_RECURSE
  "CMakeFiles/dust_solver.dir/branch_and_bound.cpp.o"
  "CMakeFiles/dust_solver.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/dust_solver.dir/lp.cpp.o"
  "CMakeFiles/dust_solver.dir/lp.cpp.o.d"
  "CMakeFiles/dust_solver.dir/lp_format.cpp.o"
  "CMakeFiles/dust_solver.dir/lp_format.cpp.o.d"
  "CMakeFiles/dust_solver.dir/min_cost_flow.cpp.o"
  "CMakeFiles/dust_solver.dir/min_cost_flow.cpp.o.d"
  "CMakeFiles/dust_solver.dir/simplex.cpp.o"
  "CMakeFiles/dust_solver.dir/simplex.cpp.o.d"
  "CMakeFiles/dust_solver.dir/transportation.cpp.o"
  "CMakeFiles/dust_solver.dir/transportation.cpp.o.d"
  "libdust_solver.a"
  "libdust_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dust_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
