# Empty dependencies file for dust_sim.
# This may be replaced when dependencies are built.
