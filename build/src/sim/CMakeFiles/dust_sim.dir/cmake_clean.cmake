file(REMOVE_RECURSE
  "CMakeFiles/dust_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dust_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/dust_sim.dir/node.cpp.o"
  "CMakeFiles/dust_sim.dir/node.cpp.o.d"
  "CMakeFiles/dust_sim.dir/overlay_traffic.cpp.o"
  "CMakeFiles/dust_sim.dir/overlay_traffic.cpp.o.d"
  "CMakeFiles/dust_sim.dir/transport.cpp.o"
  "CMakeFiles/dust_sim.dir/transport.cpp.o.d"
  "libdust_sim.a"
  "libdust_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dust_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
