file(REMOVE_RECURSE
  "libdust_sim.a"
)
