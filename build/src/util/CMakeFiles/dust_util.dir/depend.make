# Empty dependencies file for dust_util.
# This may be replaced when dependencies are built.
