file(REMOVE_RECURSE
  "libdust_util.a"
)
