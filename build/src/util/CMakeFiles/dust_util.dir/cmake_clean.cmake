file(REMOVE_RECURSE
  "CMakeFiles/dust_util.dir/log.cpp.o"
  "CMakeFiles/dust_util.dir/log.cpp.o.d"
  "CMakeFiles/dust_util.dir/rng.cpp.o"
  "CMakeFiles/dust_util.dir/rng.cpp.o.d"
  "CMakeFiles/dust_util.dir/stats.cpp.o"
  "CMakeFiles/dust_util.dir/stats.cpp.o.d"
  "CMakeFiles/dust_util.dir/table.cpp.o"
  "CMakeFiles/dust_util.dir/table.cpp.o.d"
  "CMakeFiles/dust_util.dir/thread_pool.cpp.o"
  "CMakeFiles/dust_util.dir/thread_pool.cpp.o.d"
  "libdust_util.a"
  "libdust_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dust_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
