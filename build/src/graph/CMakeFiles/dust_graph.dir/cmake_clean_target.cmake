file(REMOVE_RECURSE
  "libdust_graph.a"
)
