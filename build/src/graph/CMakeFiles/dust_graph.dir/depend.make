# Empty dependencies file for dust_graph.
# This may be replaced when dependencies are built.
