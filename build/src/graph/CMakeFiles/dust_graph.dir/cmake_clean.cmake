file(REMOVE_RECURSE
  "CMakeFiles/dust_graph.dir/dot.cpp.o"
  "CMakeFiles/dust_graph.dir/dot.cpp.o.d"
  "CMakeFiles/dust_graph.dir/graph.cpp.o"
  "CMakeFiles/dust_graph.dir/graph.cpp.o.d"
  "CMakeFiles/dust_graph.dir/paths.cpp.o"
  "CMakeFiles/dust_graph.dir/paths.cpp.o.d"
  "CMakeFiles/dust_graph.dir/topology.cpp.o"
  "CMakeFiles/dust_graph.dir/topology.cpp.o.d"
  "libdust_graph.a"
  "libdust_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dust_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
