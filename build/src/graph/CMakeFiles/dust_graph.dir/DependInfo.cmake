
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dot.cpp" "src/graph/CMakeFiles/dust_graph.dir/dot.cpp.o" "gcc" "src/graph/CMakeFiles/dust_graph.dir/dot.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/dust_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/dust_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/paths.cpp" "src/graph/CMakeFiles/dust_graph.dir/paths.cpp.o" "gcc" "src/graph/CMakeFiles/dust_graph.dir/paths.cpp.o.d"
  "/root/repo/src/graph/topology.cpp" "src/graph/CMakeFiles/dust_graph.dir/topology.cpp.o" "gcc" "src/graph/CMakeFiles/dust_graph.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dust_util.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/dust_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
