# Empty compiler generated dependencies file for dust_core.
# This may be replaced when dependencies are built.
