file(REMOVE_RECURSE
  "libdust_core.a"
)
