
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/dust_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/dust_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/client.cpp.o.d"
  "/root/repo/src/core/heuristic.cpp" "src/core/CMakeFiles/dust_core.dir/heuristic.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/heuristic.cpp.o.d"
  "/root/repo/src/core/manager.cpp" "src/core/CMakeFiles/dust_core.dir/manager.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/manager.cpp.o.d"
  "/root/repo/src/core/multi_resource.cpp" "src/core/CMakeFiles/dust_core.dir/multi_resource.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/multi_resource.cpp.o.d"
  "/root/repo/src/core/nmdb.cpp" "src/core/CMakeFiles/dust_core.dir/nmdb.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/nmdb.cpp.o.d"
  "/root/repo/src/core/nms.cpp" "src/core/CMakeFiles/dust_core.dir/nms.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/nms.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/dust_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/dust_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/replay.cpp" "src/core/CMakeFiles/dust_core.dir/replay.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/replay.cpp.o.d"
  "/root/repo/src/core/routes.cpp" "src/core/CMakeFiles/dust_core.dir/routes.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/routes.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/dust_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/dust_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/types.cpp.o.d"
  "/root/repo/src/core/zones.cpp" "src/core/CMakeFiles/dust_core.dir/zones.cpp.o" "gcc" "src/core/CMakeFiles/dust_core.dir/zones.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dust_net.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/dust_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dust_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/dust_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dust_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
