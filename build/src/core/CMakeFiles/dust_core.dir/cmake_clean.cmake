file(REMOVE_RECURSE
  "CMakeFiles/dust_core.dir/baselines.cpp.o"
  "CMakeFiles/dust_core.dir/baselines.cpp.o.d"
  "CMakeFiles/dust_core.dir/client.cpp.o"
  "CMakeFiles/dust_core.dir/client.cpp.o.d"
  "CMakeFiles/dust_core.dir/heuristic.cpp.o"
  "CMakeFiles/dust_core.dir/heuristic.cpp.o.d"
  "CMakeFiles/dust_core.dir/manager.cpp.o"
  "CMakeFiles/dust_core.dir/manager.cpp.o.d"
  "CMakeFiles/dust_core.dir/multi_resource.cpp.o"
  "CMakeFiles/dust_core.dir/multi_resource.cpp.o.d"
  "CMakeFiles/dust_core.dir/nmdb.cpp.o"
  "CMakeFiles/dust_core.dir/nmdb.cpp.o.d"
  "CMakeFiles/dust_core.dir/nms.cpp.o"
  "CMakeFiles/dust_core.dir/nms.cpp.o.d"
  "CMakeFiles/dust_core.dir/optimizer.cpp.o"
  "CMakeFiles/dust_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/dust_core.dir/placement.cpp.o"
  "CMakeFiles/dust_core.dir/placement.cpp.o.d"
  "CMakeFiles/dust_core.dir/replay.cpp.o"
  "CMakeFiles/dust_core.dir/replay.cpp.o.d"
  "CMakeFiles/dust_core.dir/routes.cpp.o"
  "CMakeFiles/dust_core.dir/routes.cpp.o.d"
  "CMakeFiles/dust_core.dir/scenario.cpp.o"
  "CMakeFiles/dust_core.dir/scenario.cpp.o.d"
  "CMakeFiles/dust_core.dir/types.cpp.o"
  "CMakeFiles/dust_core.dir/types.cpp.o.d"
  "CMakeFiles/dust_core.dir/zones.cpp.o"
  "CMakeFiles/dust_core.dir/zones.cpp.o.d"
  "libdust_core.a"
  "libdust_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dust_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
