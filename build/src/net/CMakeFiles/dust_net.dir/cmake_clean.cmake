file(REMOVE_RECURSE
  "CMakeFiles/dust_net.dir/diagnosis.cpp.o"
  "CMakeFiles/dust_net.dir/diagnosis.cpp.o.d"
  "CMakeFiles/dust_net.dir/network_state.cpp.o"
  "CMakeFiles/dust_net.dir/network_state.cpp.o.d"
  "CMakeFiles/dust_net.dir/response_time.cpp.o"
  "CMakeFiles/dust_net.dir/response_time.cpp.o.d"
  "CMakeFiles/dust_net.dir/traffic.cpp.o"
  "CMakeFiles/dust_net.dir/traffic.cpp.o.d"
  "libdust_net.a"
  "libdust_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dust_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
