# Empty dependencies file for dust_net.
# This may be replaced when dependencies are built.
