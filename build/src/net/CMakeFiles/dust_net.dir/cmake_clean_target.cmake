file(REMOVE_RECURSE
  "libdust_net.a"
)
