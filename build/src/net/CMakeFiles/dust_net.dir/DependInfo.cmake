
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/diagnosis.cpp" "src/net/CMakeFiles/dust_net.dir/diagnosis.cpp.o" "gcc" "src/net/CMakeFiles/dust_net.dir/diagnosis.cpp.o.d"
  "/root/repo/src/net/network_state.cpp" "src/net/CMakeFiles/dust_net.dir/network_state.cpp.o" "gcc" "src/net/CMakeFiles/dust_net.dir/network_state.cpp.o.d"
  "/root/repo/src/net/response_time.cpp" "src/net/CMakeFiles/dust_net.dir/response_time.cpp.o" "gcc" "src/net/CMakeFiles/dust_net.dir/response_time.cpp.o.d"
  "/root/repo/src/net/traffic.cpp" "src/net/CMakeFiles/dust_net.dir/traffic.cpp.o" "gcc" "src/net/CMakeFiles/dust_net.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dust_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dust_util.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/dust_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
