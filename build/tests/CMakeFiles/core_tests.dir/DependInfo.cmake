
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_baselines_test.cpp" "tests/CMakeFiles/core_tests.dir/core_baselines_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_baselines_test.cpp.o.d"
  "/root/repo/tests/core_heterogeneity_test.cpp" "tests/CMakeFiles/core_tests.dir/core_heterogeneity_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_heterogeneity_test.cpp.o.d"
  "/root/repo/tests/core_heuristic_test.cpp" "tests/CMakeFiles/core_tests.dir/core_heuristic_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_heuristic_test.cpp.o.d"
  "/root/repo/tests/core_multi_resource_test.cpp" "tests/CMakeFiles/core_tests.dir/core_multi_resource_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_multi_resource_test.cpp.o.d"
  "/root/repo/tests/core_nmdb_test.cpp" "tests/CMakeFiles/core_tests.dir/core_nmdb_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_nmdb_test.cpp.o.d"
  "/root/repo/tests/core_nms_test.cpp" "tests/CMakeFiles/core_tests.dir/core_nms_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_nms_test.cpp.o.d"
  "/root/repo/tests/core_optimizer_test.cpp" "tests/CMakeFiles/core_tests.dir/core_optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_optimizer_test.cpp.o.d"
  "/root/repo/tests/core_placement_test.cpp" "tests/CMakeFiles/core_tests.dir/core_placement_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_placement_test.cpp.o.d"
  "/root/repo/tests/core_replay_test.cpp" "tests/CMakeFiles/core_tests.dir/core_replay_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_replay_test.cpp.o.d"
  "/root/repo/tests/core_routes_test.cpp" "tests/CMakeFiles/core_tests.dir/core_routes_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_routes_test.cpp.o.d"
  "/root/repo/tests/core_scenario_test.cpp" "tests/CMakeFiles/core_tests.dir/core_scenario_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_scenario_test.cpp.o.d"
  "/root/repo/tests/core_types_test.cpp" "tests/CMakeFiles/core_tests.dir/core_types_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_types_test.cpp.o.d"
  "/root/repo/tests/core_whatif_test.cpp" "tests/CMakeFiles/core_tests.dir/core_whatif_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_whatif_test.cpp.o.d"
  "/root/repo/tests/core_zones_partition_test.cpp" "tests/CMakeFiles/core_tests.dir/core_zones_partition_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_zones_partition_test.cpp.o.d"
  "/root/repo/tests/core_zones_test.cpp" "tests/CMakeFiles/core_tests.dir/core_zones_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core_zones_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dust_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dust_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/dust_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dust_net.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/dust_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dust_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
