file(REMOVE_RECURSE
  "CMakeFiles/telemetry_tests.dir/telemetry_agent_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry_agent_test.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry_alerts_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry_alerts_test.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry_federation_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry_federation_test.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry_gorilla_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry_gorilla_test.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry_packet_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry_packet_test.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry_persistence_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry_persistence_test.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry_sampled_flow_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry_sampled_flow_test.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry_tsdb_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry_tsdb_test.cpp.o.d"
  "telemetry_tests"
  "telemetry_tests.pdb"
  "telemetry_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
