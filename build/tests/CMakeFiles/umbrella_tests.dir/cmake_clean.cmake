file(REMOVE_RECURSE
  "CMakeFiles/umbrella_tests.dir/umbrella_test.cpp.o"
  "CMakeFiles/umbrella_tests.dir/umbrella_test.cpp.o.d"
  "umbrella_tests"
  "umbrella_tests.pdb"
  "umbrella_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umbrella_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
