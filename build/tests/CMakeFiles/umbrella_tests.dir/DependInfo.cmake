
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/umbrella_test.cpp" "tests/CMakeFiles/umbrella_tests.dir/umbrella_test.cpp.o" "gcc" "tests/CMakeFiles/umbrella_tests.dir/umbrella_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dust_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dust_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/dust_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dust_net.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/dust_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dust_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
