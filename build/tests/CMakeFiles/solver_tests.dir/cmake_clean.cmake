file(REMOVE_RECURSE
  "CMakeFiles/solver_tests.dir/solver_bnb_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver_bnb_test.cpp.o.d"
  "CMakeFiles/solver_tests.dir/solver_lp_format_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver_lp_format_test.cpp.o.d"
  "CMakeFiles/solver_tests.dir/solver_mcf_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver_mcf_test.cpp.o.d"
  "CMakeFiles/solver_tests.dir/solver_simplex_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver_simplex_test.cpp.o.d"
  "CMakeFiles/solver_tests.dir/solver_stress_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver_stress_test.cpp.o.d"
  "CMakeFiles/solver_tests.dir/solver_transportation_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver_transportation_test.cpp.o.d"
  "solver_tests"
  "solver_tests.pdb"
  "solver_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
