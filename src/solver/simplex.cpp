#include "solver/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"

namespace dust::solver {

namespace {

// Internal standard form:
//   minimize c'y   s.t.  A y (sense) b,  y >= 0
// Structural model variables map onto y via shift (finite lower bound),
// mirror (upper bound only), or a plus/minus pair (free).
struct ColumnMap {
  enum class Kind { kShift, kMirror, kFreePlus } kind = Kind::kShift;
  std::size_t var = 0;      // model variable index
  double offset = 0.0;      // x = offset + y (shift) or x = offset - y (mirror)
};

struct StandardForm {
  std::size_t n = 0;  // structural columns
  std::vector<ColumnMap> columns;
  std::vector<double> cost;                 // length n
  double cost_constant = 0.0;               // from bound shifting
  std::vector<std::vector<double>> rows;    // dense, length n each
  std::vector<double> rhs;
  std::vector<Sense> sense;
};

StandardForm build_standard_form(const LinearProgram& lp) {
  StandardForm sf;
  // Column mapping per model variable; free variables get two columns.
  std::vector<std::size_t> first_col(lp.variable_count());
  for (std::size_t v = 0; v < lp.variable_count(); ++v) {
    const Variable& var = lp.variable(v);
    first_col[v] = sf.columns.size();
    if (var.lower != -kInfinity) {
      sf.columns.push_back({ColumnMap::Kind::kShift, v, var.lower});
    } else if (var.upper != kInfinity) {
      sf.columns.push_back({ColumnMap::Kind::kMirror, v, var.upper});
    } else {
      sf.columns.push_back({ColumnMap::Kind::kFreePlus, v, 0.0});
      sf.columns.push_back({ColumnMap::Kind::kFreePlus, v, 0.0});  // minus half
    }
  }
  sf.n = sf.columns.size();
  sf.cost.assign(sf.n, 0.0);
  for (std::size_t v = 0; v < lp.variable_count(); ++v) {
    const Variable& var = lp.variable(v);
    const std::size_t col = first_col[v];
    switch (sf.columns[col].kind) {
      case ColumnMap::Kind::kShift:
        sf.cost[col] = var.objective;
        sf.cost_constant += var.objective * var.lower;
        break;
      case ColumnMap::Kind::kMirror:
        sf.cost[col] = -var.objective;
        sf.cost_constant += var.objective * var.upper;
        break;
      case ColumnMap::Kind::kFreePlus:
        sf.cost[col] = var.objective;
        sf.cost[col + 1] = -var.objective;
        break;
    }
  }
  auto add_row = [&](Sense sense, double rhs) -> std::vector<double>& {
    sf.rows.emplace_back(sf.n, 0.0);
    sf.sense.push_back(sense);
    sf.rhs.push_back(rhs);
    return sf.rows.back();
  };
  auto accumulate = [&](std::vector<double>& row, std::size_t v, double coeff,
                        double& rhs) {
    const std::size_t col = first_col[v];
    switch (sf.columns[col].kind) {
      case ColumnMap::Kind::kShift:
        row[col] += coeff;
        rhs -= coeff * sf.columns[col].offset;
        break;
      case ColumnMap::Kind::kMirror:
        row[col] -= coeff;
        rhs -= coeff * sf.columns[col].offset;
        break;
      case ColumnMap::Kind::kFreePlus:
        row[col] += coeff;
        row[col + 1] -= coeff;
        break;
    }
  };
  for (const Constraint& con : lp.constraints()) {
    auto& row = add_row(con.sense, con.rhs);
    for (const auto& [v, coeff] : con.terms)
      accumulate(row, v, coeff, sf.rhs.back());
  }
  // Finite upper bounds on shifted variables become y <= u - l rows.
  for (std::size_t v = 0; v < lp.variable_count(); ++v) {
    const Variable& var = lp.variable(v);
    const std::size_t col = first_col[v];
    if (sf.columns[col].kind == ColumnMap::Kind::kShift &&
        var.upper != kInfinity && var.upper > var.lower) {
      auto& row = add_row(Sense::kLessEqual, var.upper - var.lower);
      row[col] = 1.0;
    }
    if (sf.columns[col].kind == ColumnMap::Kind::kShift && var.upper == var.lower) {
      // Fixed variable: y == 0 is implied by y >= 0 and y <= 0.
      auto& row = add_row(Sense::kLessEqual, 0.0);
      row[col] = 1.0;
    }
    if (sf.columns[col].kind == ColumnMap::Kind::kMirror &&
        var.lower == -kInfinity) {
      // y >= 0 encodes x <= upper; no extra row needed.
    }
  }
  return sf;
}

/// Dense tableau with basis bookkeeping.
class Tableau {
 public:
  Tableau(const StandardForm& sf, const SimplexOptions& options)
      : options_(options), n_structural_(sf.n) {
    const std::size_t m = sf.rows.size();
    // Column layout: [structural | slack/surplus | artificial | rhs]
    std::size_t slack_count = 0;
    for (Sense s : sf.sense)
      if (s != Sense::kEqual) ++slack_count;
    // Count artificials: rows with >= (after normalization) or = sense, plus
    // <= rows whose slack would start negative (rhs < 0 handled by row flip).
    std::vector<double> rhs = sf.rhs;
    std::vector<Sense> sense = sf.sense;
    std::vector<std::vector<double>> rows = sf.rows;
    for (std::size_t r = 0; r < m; ++r) {
      if (rhs[r] < 0) {
        for (double& a : rows[r]) a = -a;
        rhs[r] = -rhs[r];
        if (sense[r] == Sense::kLessEqual) sense[r] = Sense::kGreaterEqual;
        else if (sense[r] == Sense::kGreaterEqual) sense[r] = Sense::kLessEqual;
      }
    }
    std::size_t artificial_count = 0;
    for (Sense s : sense)
      if (s != Sense::kLessEqual) ++artificial_count;

    cols_ = n_structural_ + slack_count + artificial_count;
    width_ = cols_ + 1;  // + rhs
    data_.assign(m * width_, 0.0);
    basis_.assign(m, 0);
    artificial_start_ = n_structural_ + slack_count;

    std::size_t next_slack = n_structural_;
    std::size_t next_artificial = artificial_start_;
    for (std::size_t r = 0; r < m; ++r) {
      double* row = data_.data() + r * width_;
      std::copy(rows[r].begin(), rows[r].end(), row);
      row[cols_] = rhs[r];
      switch (sense[r]) {
        case Sense::kLessEqual:
          row[next_slack] = 1.0;
          basis_[r] = next_slack++;
          break;
        case Sense::kGreaterEqual:
          row[next_slack] = -1.0;
          ++next_slack;
          row[next_artificial] = 1.0;
          basis_[r] = next_artificial++;
          break;
        case Sense::kEqual:
          row[next_artificial] = 1.0;
          basis_[r] = next_artificial++;
          break;
      }
    }
    rows_ = m;
  }

  /// Minimize `cost` (length cols_, zero-padded) starting from current basis.
  /// Returns status; `phase1` marks the artificial-elimination phase.
  Status run(const std::vector<double>& cost, std::size_t max_iterations) {
    // Build the reduced-cost row: z_row = cost - sum over basis rows.
    z_.assign(width_, 0.0);
    std::copy(cost.begin(), cost.end(), z_.begin());
    for (std::size_t r = 0; r < rows_; ++r) {
      const double basis_cost = cost[basis_[r]];
      if (basis_cost == 0.0) continue;
      const double* row = data_.data() + r * width_;
      for (std::size_t c = 0; c < width_; ++c) z_[c] -= basis_cost * row[c];
    }
    const double eps = options_.tolerance;
    std::size_t degenerate_streak = 0;
    bool bland = false;
    for (std::size_t iter = 0; iter < max_iterations; ++iter) {
      // Entering column.
      std::size_t entering = cols_;
      if (bland) {
        for (std::size_t c = 0; c < cols_; ++c) {
          if (z_[c] < -eps && !column_blocked(c)) {
            entering = c;
            break;
          }
        }
      } else {
        double best = -eps;
        for (std::size_t c = 0; c < cols_; ++c) {
          if (z_[c] < best && !column_blocked(c)) {
            best = z_[c];
            entering = c;
          }
        }
      }
      if (entering == cols_) {
        iterations_ += iter;
        return Status::kOptimal;
      }
      // Ratio test.
      std::size_t leaving = rows_;
      double best_ratio = kInfinity;
      for (std::size_t r = 0; r < rows_; ++r) {
        const double a = data_[r * width_ + entering];
        if (a <= eps) continue;
        const double ratio = data_[r * width_ + cols_] / a;
        if (ratio < best_ratio - eps ||
            (ratio < best_ratio + eps &&
             (leaving == rows_ || basis_[r] < basis_[leaving]))) {
          best_ratio = ratio;
          leaving = r;
        }
      }
      if (leaving == rows_) {
        iterations_ += iter;
        return Status::kUnbounded;
      }
      if (best_ratio < eps) {
        if (++degenerate_streak >= options_.degenerate_streak_limit) bland = true;
      } else {
        degenerate_streak = 0;
      }
      pivot(leaving, entering);
    }
    iterations_ += max_iterations;
    return Status::kIterationLimit;
  }

  /// Block artificial columns from re-entering (used in phase 2).
  void block_artificials() { artificials_blocked_ = true; }

  /// Drive any artificial variables still basic (at zero) out of the basis.
  void purge_artificial_basis(double eps) {
    for (std::size_t r = 0; r < rows_; ++r) {
      if (basis_[r] < artificial_start_) continue;
      // Find a non-artificial column with nonzero coefficient in this row.
      std::size_t replacement = cols_;
      for (std::size_t c = 0; c < artificial_start_; ++c) {
        if (std::abs(data_[r * width_ + c]) > eps) {
          replacement = c;
          break;
        }
      }
      if (replacement != cols_) pivot(r, replacement);
      // Otherwise the row is redundant (all-zero over structurals); harmless.
    }
  }

  [[nodiscard]] double phase1_objective() const {
    double total = 0.0;
    for (std::size_t r = 0; r < rows_; ++r)
      if (basis_[r] >= artificial_start_) total += data_[r * width_ + cols_];
    return total;
  }

  [[nodiscard]] std::vector<double> structural_values() const {
    std::vector<double> y(n_structural_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
      if (basis_[r] < n_structural_)
        y[basis_[r]] = data_[r * width_ + cols_];
    return y;
  }

  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t iterations() const noexcept { return iterations_; }
  [[nodiscard]] std::size_t artificial_start() const noexcept {
    return artificial_start_;
  }

 private:
  [[nodiscard]] bool column_blocked(std::size_t c) const noexcept {
    return artificials_blocked_ && c >= artificial_start_;
  }

  void pivot(std::size_t leaving, std::size_t entering) {
    double* prow = data_.data() + leaving * width_;
    const double inv = 1.0 / prow[entering];
    for (std::size_t c = 0; c < width_; ++c) prow[c] *= inv;
    prow[entering] = 1.0;  // exact
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == leaving) continue;
      double* row = data_.data() + r * width_;
      const double factor = row[entering];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < width_; ++c) row[c] -= factor * prow[c];
      row[entering] = 0.0;  // exact
    }
    const double zfactor = z_[entering];
    if (zfactor != 0.0) {
      for (std::size_t c = 0; c < width_; ++c) z_[c] -= zfactor * prow[c];
      z_[entering] = 0.0;
    }
    basis_[leaving] = entering;
  }

  SimplexOptions options_;
  std::size_t n_structural_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t width_ = 0;
  std::size_t artificial_start_ = 0;
  bool artificials_blocked_ = false;
  std::vector<double> data_;
  std::vector<double> z_;
  std::vector<std::size_t> basis_;
  std::size_t iterations_ = 0;
};

}  // namespace

namespace {

// Handles resolved once (thread-safe magic static); the per-solve cost is a
// few relaxed atomics, so the microbenches over solve_simplex stay honest.
struct SimplexMetrics {
  obs::Counter& solves;
  obs::Histogram& iterations;
  static SimplexMetrics& get() {
    static SimplexMetrics metrics{
        obs::MetricRegistry::global().counter(
            "dust_solver_simplex_solves_total"),
        obs::MetricRegistry::global().histogram(
            "dust_solver_simplex_iterations")};
    return metrics;
  }
};

Solution solve_simplex_impl(const LinearProgram& lp,
                            const SimplexOptions& options) {
  Solution solution;
  const StandardForm sf = build_standard_form(lp);

  // Trivial case: no constraints — optimum at bounds (or unbounded).
  Tableau tableau(sf, options);
  const std::size_t max_iterations =
      options.max_iterations
          ? options.max_iterations
          : 200 * (sf.rows.size() + tableau.cols()) + 5000;

  // Phase 1: minimize sum of artificials.
  {
    std::vector<double> phase1_cost(tableau.cols(), 0.0);
    for (std::size_t c = tableau.artificial_start(); c < tableau.cols(); ++c)
      phase1_cost[c] = 1.0;
    const Status status = tableau.run(phase1_cost, max_iterations);
    if (status == Status::kIterationLimit) {
      solution.status = status;
      solution.iterations = tableau.iterations();
      return solution;
    }
    if (tableau.phase1_objective() > 1e-6) {
      solution.status = Status::kInfeasible;
      solution.iterations = tableau.iterations();
      return solution;
    }
    tableau.purge_artificial_basis(options.tolerance);
    tableau.block_artificials();
  }

  // Phase 2: original objective over standard-form columns.
  std::vector<double> phase2_cost(tableau.cols(), 0.0);
  std::copy(sf.cost.begin(), sf.cost.end(), phase2_cost.begin());
  const Status status = tableau.run(phase2_cost, max_iterations);
  solution.iterations = tableau.iterations();
  if (status != Status::kOptimal) {
    solution.status = status;
    return solution;
  }

  // Map standard-form values back to model variables.
  const std::vector<double> y = tableau.structural_values();
  solution.values.assign(lp.variable_count(), 0.0);
  for (std::size_t c = 0; c < sf.columns.size(); ++c) {
    const ColumnMap& map = sf.columns[c];
    switch (map.kind) {
      case ColumnMap::Kind::kShift:
        solution.values[map.var] = map.offset + y[c];
        break;
      case ColumnMap::Kind::kMirror:
        solution.values[map.var] = map.offset - y[c];
        break;
      case ColumnMap::Kind::kFreePlus:
        // Plus column; the paired minus column immediately follows and its
        // handler below subtracts. Add here:
        solution.values[map.var] += y[c];
        // Look ahead: subtract the minus half exactly once.
        solution.values[map.var] -= y[c + 1];
        ++c;  // skip the minus column
        break;
    }
  }
  solution.objective = lp.objective_value(solution.values);
  solution.status = Status::kOptimal;
  return solution;
}

}  // namespace

Solution solve_simplex(const LinearProgram& lp, const SimplexOptions& options) {
  Solution solution = solve_simplex_impl(lp, options);
  SimplexMetrics& metrics = SimplexMetrics::get();
  metrics.solves.inc();
  metrics.iterations.observe(static_cast<double>(solution.iterations));
  return solution;
}

}  // namespace dust::solver
