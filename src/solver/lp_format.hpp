// CPLEX-LP-format export for LinearProgram models.
//
// Lets a placement model be dumped and solved/inspected with external tools
// (glpsol, lp_solve, CPLEX, Gurobi) — useful for debugging the in-tree
// solvers and for comparing against the paper's Gurobi setup.
#pragma once

#include <ostream>
#include <string>

#include "solver/lp.hpp"

namespace dust::solver {

/// Write `lp` in LP format. Variables get their model names, or x<i> when
/// unnamed. Integer variables are listed in a GENERAL section.
void write_lp_format(std::ostream& os, const LinearProgram& lp,
                     const std::string& problem_name = "dust");

}  // namespace dust::solver
