#include "solver/min_cost_flow.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace dust::solver {

namespace {
constexpr double kEps = 1e-9;
}

MinCostFlow::MinCostFlow(std::size_t node_count) : arcs_(node_count) {}

std::size_t MinCostFlow::add_arc(std::size_t from, std::size_t to,
                                 double capacity, double cost) {
  if (from >= arcs_.size() || to >= arcs_.size())
    throw std::out_of_range("MinCostFlow::add_arc: node out of range");
  if (capacity < 0 || cost < 0)
    throw std::invalid_argument("MinCostFlow::add_arc: negative capacity/cost");
  arcs_[from].push_back(Arc{to, arcs_[to].size(), capacity, cost});
  arcs_[to].push_back(Arc{from, arcs_[from].size() - 1, 0.0, -cost});
  arc_refs_.emplace_back(from, arcs_[from].size() - 1);
  original_capacity_.push_back(capacity);
  return arc_refs_.size() - 1;
}

MinCostFlow::FlowResult MinCostFlow::solve(std::size_t source, std::size_t sink,
                                           double flow_limit) {
  FlowResult result;
  const std::size_t n = arcs_.size();
  std::vector<double> potential(n, 0.0);
  // Costs are non-negative so initial potentials of zero are valid.
  while (result.max_flow + kEps < flow_limit) {
    // Dijkstra on reduced costs.
    std::vector<double> dist(n, kInfinity);
    std::vector<std::pair<std::size_t, std::size_t>> parent(
        n, {static_cast<std::size_t>(-1), 0});
    using Entry = std::pair<double, std::size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[source] = 0.0;
    heap.emplace(0.0, source);
    while (!heap.empty()) {
      const auto [d, node] = heap.top();
      heap.pop();
      if (d > dist[node] + kEps) continue;
      for (std::size_t a = 0; a < arcs_[node].size(); ++a) {
        const Arc& arc = arcs_[node][a];
        if (arc.capacity <= kEps) continue;
        const double reduced =
            arc.cost + potential[node] - potential[arc.to];
        const double candidate = d + reduced;
        if (candidate + kEps < dist[arc.to]) {
          dist[arc.to] = candidate;
          parent[arc.to] = {node, a};
          heap.emplace(candidate, arc.to);
        }
      }
    }
    if (dist[sink] == kInfinity) break;  // no augmenting path left
    for (std::size_t v = 0; v < n; ++v)
      if (dist[v] != kInfinity) potential[v] += dist[v];
    // Bottleneck along the path.
    double bottleneck = flow_limit - result.max_flow;
    for (std::size_t v = sink; v != source;) {
      const auto [u, a] = parent[v];
      bottleneck = std::min(bottleneck, arcs_[u][a].capacity);
      v = u;
    }
    for (std::size_t v = sink; v != source;) {
      const auto [u, a] = parent[v];
      Arc& arc = arcs_[u][a];
      arc.capacity -= bottleneck;
      arcs_[v][arc.reverse].capacity += bottleneck;
      result.total_cost += bottleneck * arc.cost;
      v = u;
    }
    result.max_flow += bottleneck;
    ++result.augmentations;
  }
  return result;
}

double MinCostFlow::arc_flow(std::size_t arc_id) const {
  // The paired reverse arc starts at capacity 0 and accumulates exactly the
  // net flow pushed forward — robust even for infinite-capacity arcs, where
  // original - remaining would be inf - inf.
  const auto [node, index] = arc_refs_.at(arc_id);
  const Arc& arc = arcs_[node][index];
  return arcs_[arc.to][arc.reverse].capacity;
}

}  // namespace dust::solver
