// Exhaustive transportation oracle: provably optimal reference for tiny
// instances, used by the dust::check differential tests to validate the
// production solvers (transportation simplex, general simplex, MCMF, B&B)
// against ground truth.
//
// The instance is balanced with a zero-cost dummy source row (exactly as
// solve_transportation does), after which every basic feasible solution
// corresponds to a spanning tree of the bipartite row/column graph. The
// oracle enumerates all C(M*N, M+N-1) cell subsets, keeps the spanning
// trees, solves each one's flows by leaf elimination, and takes the minimum
// cost over the feasible (nonnegative, no-forbidden-flow) vertices. The LP
// optimum is attained at a vertex, so the minimum is exact — no pivoting,
// no degeneracy handling, nothing shared with the solvers under test.
#pragma once

#include "solver/transportation.hpp"

namespace dust::solver {

/// Exact optimum by brute-force vertex enumeration. Intended for instances
/// with (sources + 1) * destinations cells small enough that the
/// enumeration stays under `max_bases` subsets; throws std::invalid_argument
/// when it would not (callers gate on instance size, see
/// exhaustive_base_count).
TransportationResult solve_transportation_exhaustive(
    const TransportationProblem& problem, std::size_t max_bases = 2000000);

/// Number of cell subsets the oracle would enumerate for this instance
/// (C(M*N, M+N-1) with the dummy row included), saturated at
/// std::numeric_limits<std::size_t>::max(). Use to gate oracle application.
[[nodiscard]] std::size_t exhaustive_base_count(
    const TransportationProblem& problem);

}  // namespace dust::solver
