// Branch-and-bound MILP solver on top of the simplex LP relaxation.
//
// The paper labels the placement model an ILP; its decision variables are in
// fact continuous, so the plain simplex solve is exact for DUST. This solver
// exists for the general case (and for extensions such as boolean
// "assign-whole-agent" placement): variables marked `integer` are branched on
// with best-first search and depth-limited dive fallback.
#pragma once

#include "solver/lp.hpp"
#include "solver/simplex.hpp"

namespace dust::solver {

struct BranchAndBoundOptions {
  SimplexOptions simplex;
  std::size_t max_nodes = 100000;
  double integrality_tolerance = 1e-6;
  /// Stop when bound gap (best - lower)/max(1,|best|) is below this.
  double relative_gap = 1e-9;
};

/// Solve the MILP. If the model has no integer variables this is exactly one
/// simplex solve. `iterations` in the result counts explored B&B nodes.
Solution solve_branch_and_bound(const LinearProgram& lp,
                                const BranchAndBoundOptions& options = {});

}  // namespace dust::solver
