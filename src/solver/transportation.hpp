// Specialized transportation-problem solver (least-cost start + MODI).
//
// Once Trmin(i,j) is known, DUST's placement LP (Eq. 3) *is* a transportation
// problem: supplies Cs_i that must ship fully, destination capacities Cd_j,
// unit costs Trmin(i,j). This solver exploits that structure and is typically
// orders of magnitude faster than the general simplex; both produce identical
// optima (cross-checked in tests and bench_abl_solvers).
//
// Forbidden cells (no path within max-hop) carry cost = kInfinity; they are
// handled via big-M internally and reported as infeasible if the optimum
// would need them.
#pragma once

#include <cstddef>
#include <vector>

#include "solver/lp.hpp"

namespace dust::solver {

struct TransportationProblem {
  std::vector<double> supply;    ///< Cs_i — must be shipped in full
  std::vector<double> capacity;  ///< Cd_j — per-destination limit
  std::vector<double> cost;      ///< row-major m*n; kInfinity = forbidden

  [[nodiscard]] std::size_t sources() const noexcept { return supply.size(); }
  [[nodiscard]] std::size_t destinations() const noexcept {
    return capacity.size();
  }
  [[nodiscard]] double cost_at(std::size_t i, std::size_t j) const {
    return cost.at(i * capacity.size() + j);
  }
};

struct TransportationResult {
  Status status = Status::kInfeasible;
  double objective = 0.0;
  std::vector<double> flow;  ///< row-major m*n
  std::size_t iterations = 0;
  /// True when the solve re-optimized from a retained basis (dirty-basis
  /// path) instead of building an initial solution from scratch.
  bool dirty_resolve = false;

  [[nodiscard]] bool optimal() const noexcept { return status == Status::kOptimal; }
  [[nodiscard]] double flow_at(std::size_t i, std::size_t j,
                               std::size_t destinations) const {
    return flow.at(i * destinations + j);
  }
};

/// `warm_flow`, when given, is a previous solve's row-major m*n flow grid on
/// the same source/destination index sets (typically the previous placement
/// cycle's optimum). Cells that carried flow are preferred when building the
/// initial basic solution, which leaves MODI with near-zero pivots under
/// small cost/quantity perturbations. The hint only biases the starting
/// basis — any hint (even a wrong one) still converges to the exact optimum.
/// Mismatched sizes are ignored.
TransportationResult solve_transportation(
    const TransportationProblem& problem,
    const std::vector<double>* warm_flow = nullptr);

/// Retained simplex state for dirty-basis re-solves (DESIGN.md §13): the
/// balanced instance's basis tree and flows as they stood at the end of an
/// optimal solve. Treat the contents as opaque; default-construct once and
/// hand the same object to successive solve_transportation_dirty calls.
struct TransportationBasis {
  bool valid = false;
  std::size_t m = 0;  ///< balanced rows (includes the dummy row if present)
  std::size_t n = 0;
  std::vector<double> supply;  ///< balanced quantities the basis solved under
  std::vector<double> demand;
  std::vector<double> flow;  ///< balanced m*n basic flows
  std::vector<char> basic;   ///< balanced m*n basis membership
};

/// Dirty-basis re-solve: when `basis` holds the previous solve's state and
/// this problem differs from that one in *cost cells only* (same shape, same
/// supplies, same destination capacities), MODI resumes directly from the
/// retained basis — the old basic flows stay primal-feasible under any cost
/// change, so only the potentials move and re-optimization takes near-zero
/// pivots when few cells changed. `result.dirty_resolve` reports whether the
/// fast path was taken. Any mismatch (quantities moved, shape changed, basis
/// not yet populated) falls back transparently: `warm_flow` is used as a
/// start hint exactly as in solve_transportation. On every optimal exit the
/// basis is refreshed for the next call; on failure it is invalidated.
TransportationResult solve_transportation_dirty(
    const TransportationProblem& problem, TransportationBasis& basis,
    const std::vector<double>* warm_flow = nullptr);

/// Express the same problem as a LinearProgram (variables row-major x_ij)
/// for cross-checking against the general solvers.
LinearProgram to_linear_program(const TransportationProblem& problem);

}  // namespace dust::solver
