// Generic min-cost max-flow (successive shortest paths with potentials).
//
// Third independent solving path for the placement problem (after simplex and
// the transportation solver), used for cross-validation and the solver
// ablation bench. Costs must be non-negative; capacities and flows are real.
#pragma once

#include <cstddef>
#include <vector>

#include "solver/lp.hpp"

namespace dust::solver {

class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t node_count);

  /// Directed arc with capacity >= 0 and cost >= 0. Returns arc id for flow
  /// queries after solve().
  std::size_t add_arc(std::size_t from, std::size_t to, double capacity,
                      double cost);

  struct FlowResult {
    double max_flow = 0.0;
    double total_cost = 0.0;
    std::size_t augmentations = 0;
  };

  /// Push up to `flow_limit` (kInfinity = max flow) from source to sink along
  /// successive cheapest paths. Call once per instance.
  FlowResult solve(std::size_t source, std::size_t sink,
                   double flow_limit = kInfinity);

  /// Flow on the arc returned by add_arc (valid after solve()).
  [[nodiscard]] double arc_flow(std::size_t arc_id) const;

 private:
  struct Arc {
    std::size_t to;
    std::size_t reverse;  // index of the paired reverse arc in arcs_[to]
    double capacity;
    double cost;
  };

  std::vector<std::vector<Arc>> arcs_;
  std::vector<std::pair<std::size_t, std::size_t>> arc_refs_;  // (node, index)
  std::vector<double> original_capacity_;
};

}  // namespace dust::solver
