// Two-phase dense tableau simplex for LinearProgram relaxations.
//
// Designed for the moderate problem sizes DUST generates (thousands of
// variables, hundreds of constraints). Uses Dantzig pricing with an automatic
// switch to Bland's rule after a degenerate streak, guaranteeing termination.
// Integer markers on variables are ignored here (LP relaxation) — use
// branch_and_bound.hpp for MILP solves.
#pragma once

#include "solver/lp.hpp"

namespace dust::solver {

struct SimplexOptions {
  std::size_t max_iterations = 0;  ///< 0 = automatic (scales with model size)
  double tolerance = 1e-9;         ///< pivot / feasibility tolerance
  /// Consecutive degenerate pivots before switching to Bland's rule.
  std::size_t degenerate_streak_limit = 32;
};

/// Solve the LP relaxation (integrality markers ignored).
Solution solve_simplex(const LinearProgram& lp, const SimplexOptions& options = {});

}  // namespace dust::solver
