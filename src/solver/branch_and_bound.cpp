#include "solver/branch_and_bound.hpp"

#include <cmath>
#include <memory>
#include <queue>
#include <vector>

#include "obs/metrics.hpp"

namespace dust::solver {

namespace {

struct Node {
  std::vector<std::pair<std::size_t, double>> lower_overrides;
  std::vector<std::pair<std::size_t, double>> upper_overrides;
  double bound = -kInfinity;  // parent relaxation objective
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<Node>& a,
                  const std::shared_ptr<Node>& b) const {
    return a->bound > b->bound;  // best-first: smallest bound on top
  }
};

/// Apply a node's bound overrides to a copy of the base model.
LinearProgram with_bounds(const LinearProgram& base, const Node& node) {
  LinearProgram lp;
  for (std::size_t v = 0; v < base.variable_count(); ++v) {
    const Variable& var = base.variable(v);
    double lower = var.lower;
    double upper = var.upper;
    for (const auto& [idx, value] : node.lower_overrides)
      if (idx == v) lower = std::max(lower, value);
    for (const auto& [idx, value] : node.upper_overrides)
      if (idx == v) upper = std::min(upper, value);
    lp.add_variable(lower, upper, var.objective, var.integer, var.name);
  }
  for (std::size_t c = 0; c < base.constraint_count(); ++c)
    lp.add_constraint(base.constraint(c));
  return lp;
}

/// Most-fractional integer variable, or npos if integral.
std::size_t pick_branch_variable(const LinearProgram& lp,
                                 const std::vector<double>& x, double tol) {
  std::size_t chosen = static_cast<std::size_t>(-1);
  double best_score = tol;
  for (std::size_t v = 0; v < lp.variable_count(); ++v) {
    if (!lp.variable(v).integer) continue;
    const double frac = x[v] - std::floor(x[v]);
    const double score = std::min(frac, 1.0 - frac);
    if (score > best_score) {
      best_score = score;
      chosen = v;
    }
  }
  return chosen;
}

}  // namespace

Solution solve_branch_and_bound(const LinearProgram& lp,
                                const BranchAndBoundOptions& options) {
  if (!lp.has_integer_variables()) return solve_simplex(lp, options.simplex);

  // `iterations` counts explored B&B nodes in this path (see header).
  static obs::Counter& solves_metric = obs::MetricRegistry::global().counter(
      "dust_solver_bnb_solves_total");
  static obs::Histogram& nodes_metric =
      obs::MetricRegistry::global().histogram("dust_solver_bnb_nodes");

  Solution best;
  best.status = Status::kInfeasible;
  best.objective = kInfinity;

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>,
                      NodeOrder>
      open;
  open.push(std::make_shared<Node>());
  std::size_t explored = 0;
  bool hit_node_limit = false;

  while (!open.empty()) {
    if (explored >= options.max_nodes) {
      hit_node_limit = true;
      break;
    }
    const std::shared_ptr<Node> node = open.top();
    open.pop();
    if (best.status == Status::kOptimal) {
      const double gap = (best.objective - node->bound) /
                         std::max(1.0, std::abs(best.objective));
      if (node->bound >= best.objective || gap <= options.relative_gap) continue;
    }
    ++explored;

    const LinearProgram sub = with_bounds(lp, *node);
    const Solution relaxed = solve_simplex(sub, options.simplex);
    if (relaxed.status == Status::kUnbounded) {
      // Integer restriction cannot repair an unbounded relaxation direction
      // unless bounding below; report unbounded (matches LP convention).
      Solution out;
      out.status = Status::kUnbounded;
      out.iterations = explored;
      solves_metric.inc();
      nodes_metric.observe(static_cast<double>(explored));
      return out;
    }
    if (relaxed.status != Status::kOptimal) continue;  // pruned (infeasible)
    if (best.status == Status::kOptimal && relaxed.objective >= best.objective)
      continue;  // bound prune

    const std::size_t branch_var =
        pick_branch_variable(lp, relaxed.values, options.integrality_tolerance);
    if (branch_var == static_cast<std::size_t>(-1)) {
      // Integral: candidate incumbent. Round to kill float noise.
      Solution candidate = relaxed;
      for (std::size_t v = 0; v < lp.variable_count(); ++v)
        if (lp.variable(v).integer)
          candidate.values[v] = std::round(candidate.values[v]);
      candidate.objective = lp.objective_value(candidate.values);
      if (best.status != Status::kOptimal ||
          candidate.objective < best.objective) {
        best = candidate;
        best.status = Status::kOptimal;
      }
      continue;
    }
    const double value = relaxed.values[branch_var];
    auto down = std::make_shared<Node>(*node);
    down->upper_overrides.emplace_back(branch_var, std::floor(value));
    down->bound = relaxed.objective;
    auto up = std::make_shared<Node>(*node);
    up->lower_overrides.emplace_back(branch_var, std::ceil(value));
    up->bound = relaxed.objective;
    open.push(std::move(down));
    open.push(std::move(up));
  }

  best.iterations = explored;
  if (best.status != Status::kOptimal && hit_node_limit)
    best.status = Status::kIterationLimit;
  solves_metric.inc();
  nodes_metric.observe(static_cast<double>(explored));
  return best;
}

}  // namespace dust::solver
