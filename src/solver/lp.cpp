#include "solver/lp.hpp"

#include <cmath>
#include <stdexcept>

namespace dust::solver {

const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
    case Status::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

std::size_t LinearProgram::add_variable(double lower, double upper,
                                        double objective, bool integer,
                                        std::string name) {
  if (!(lower <= upper))
    throw std::invalid_argument("LinearProgram: lower > upper for variable");
  variables_.push_back(Variable{lower, upper, objective, integer, std::move(name)});
  return variables_.size() - 1;
}

void LinearProgram::add_constraint(Constraint constraint) {
  for (const auto& [var, coeff] : constraint.terms) {
    (void)coeff;
    if (var >= variables_.size())
      throw std::out_of_range("LinearProgram: constraint references unknown variable");
  }
  constraints_.push_back(std::move(constraint));
}

void LinearProgram::add_constraint(
    std::vector<std::pair<std::size_t, double>> terms, Sense sense, double rhs) {
  add_constraint(Constraint{std::move(terms), sense, rhs});
}

bool LinearProgram::has_integer_variables() const noexcept {
  for (const Variable& var : variables_)
    if (var.integer) return true;
  return false;
}

double LinearProgram::objective_value(const std::vector<double>& x) const {
  double total = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i)
    total += variables_[i].objective * x.at(i);
  return total;
}

double LinearProgram::max_violation(const std::vector<double>& x) const {
  double worst = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    worst = std::max(worst, variables_[i].lower - x.at(i));
    if (variables_[i].upper != kInfinity)
      worst = std::max(worst, x.at(i) - variables_[i].upper);
  }
  for (const Constraint& con : constraints_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : con.terms) lhs += coeff * x.at(var);
    switch (con.sense) {
      case Sense::kLessEqual: worst = std::max(worst, lhs - con.rhs); break;
      case Sense::kGreaterEqual: worst = std::max(worst, con.rhs - lhs); break;
      case Sense::kEqual: worst = std::max(worst, std::abs(lhs - con.rhs)); break;
    }
  }
  return worst;
}

}  // namespace dust::solver
