// Linear/mixed-integer program model and solution types.
//
// This is the in-tree replacement for the Gurobi toolkit the paper used: the
// DUST placement model (Eq. 3) is built against this API and solved by the
// simplex engine (simplex.hpp), by branch-and-bound when integrality is
// requested (branch_and_bound.hpp), or — exploiting its structure — by the
// dedicated transportation solver (transportation.hpp).
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace dust::solver {

enum class Sense { kLessEqual, kGreaterEqual, kEqual };

enum class Status {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

[[nodiscard]] const char* to_string(Status status) noexcept;

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// One linear constraint: sum(coeff * var) sense rhs.
struct Constraint {
  std::vector<std::pair<std::size_t, double>> terms;
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  bool integer = false;
  std::string name;
};

/// Minimization LP/MILP. Variables are referenced by dense index.
class LinearProgram {
 public:
  std::size_t add_variable(double lower, double upper, double objective,
                           bool integer = false, std::string name = {});

  /// Terms may repeat a variable; coefficients are summed.
  void add_constraint(Constraint constraint);
  void add_constraint(std::vector<std::pair<std::size_t, double>> terms,
                      Sense sense, double rhs);

  [[nodiscard]] std::size_t variable_count() const noexcept {
    return variables_.size();
  }
  [[nodiscard]] std::size_t constraint_count() const noexcept {
    return constraints_.size();
  }
  [[nodiscard]] const Variable& variable(std::size_t index) const {
    return variables_.at(index);
  }
  [[nodiscard]] const Constraint& constraint(std::size_t index) const {
    return constraints_.at(index);
  }
  [[nodiscard]] const std::vector<Variable>& variables() const noexcept {
    return variables_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }
  [[nodiscard]] bool has_integer_variables() const noexcept;

  /// Objective value of an assignment (no feasibility check).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// Max constraint/bound violation of an assignment (0 = feasible).
  [[nodiscard]] double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

struct Solution {
  Status status = Status::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  std::size_t iterations = 0;  // simplex pivots or B&B nodes

  [[nodiscard]] bool optimal() const noexcept { return status == Status::kOptimal; }
};

}  // namespace dust::solver
