#include "solver/transportation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace dust::solver {

namespace {

constexpr double kEps = 1e-9;

// Internal balanced instance: a dummy *source* row absorbs spare destination
// capacity (zero cost), so every row supply ships fully and every column
// receives exactly its capacity. Forbidden cells get big-M.
struct Balanced {
  std::size_t m = 0;  // rows including dummy
  std::size_t n = 0;
  std::vector<double> supply;
  std::vector<double> demand;
  std::vector<double> cost;
  double big_m = 0.0;
  bool has_dummy = false;

  [[nodiscard]] double& at(std::vector<double>& grid, std::size_t i,
                           std::size_t j) const {
    return grid[i * n + j];
  }
};

/// MODI / u-v transportation simplex over a balanced instance.
class TransportSimplex {
 public:
  /// `warm_cells`, when non-null, flags cells to allocate first in the
  /// initial solution (see solve_transportation's warm_flow doc).
  explicit TransportSimplex(const Balanced& bal,
                            const std::vector<char>* warm_cells = nullptr)
      : bal_(bal),
        warm_cells_(warm_cells),
        flow_(bal.m * bal.n, 0.0),
        basic_(bal.m * bal.n, 0) {}

  /// Adopt a previous solve's flows and basis membership instead of building
  /// an initial solution (dirty-basis path). The caller guarantees the seed
  /// was optimal for the same balanced supplies/demands; solve() then skips
  /// least_cost_start and goes straight to potentials + pivots.
  void seed_basis(const std::vector<double>& flow,
                  const std::vector<char>& basic) {
    flow_ = flow;
    basic_ = basic;
    seeded_ = true;
  }

  Status solve(std::size_t max_iterations) {
    if (!seeded_) least_cost_start();
    // Always repair: a retained basis can have lost tree-ness to degenerate
    // pivots, and repair is a cheap union-find sweep that is a no-op on a
    // healthy spanning tree.
    repair_basis_tree();
    // Dantzig's rule can cycle forever on degenerate instances (exact
    // supply/capacity ties, zero-capacity columns): every pivot has theta=0
    // and the same bases repeat. After a streak of m+n degenerate pivots,
    // switch to Bland's rule permanently — it guarantees termination, so an
    // infeasible big-M instance reaches the forbidden-flow check instead of
    // burning the iteration budget.
    std::size_t degenerate_streak = 0;
    for (std::size_t iter = 0; iter < max_iterations; ++iter) {
      compute_potentials();
      const auto [enter_i, enter_j, reduced] =
          bland_ ? first_negative_cell() : most_negative_cell();
      if (reduced >= -kEps) {
        iterations_ = iter;
        return Status::kOptimal;
      }
      const double theta = pivot(enter_i, enter_j);
      if (theta <= kEps) {
        if (++degenerate_streak > bal_.m + bal_.n) bland_ = true;
      } else {
        degenerate_streak = 0;
      }
    }
    iterations_ = max_iterations;
    return Status::kIterationLimit;
  }

  [[nodiscard]] const std::vector<double>& flow() const noexcept { return flow_; }
  [[nodiscard]] const std::vector<char>& basic() const noexcept { return basic_; }
  [[nodiscard]] std::size_t iterations() const noexcept { return iterations_; }

 private:
  // Least-cost method: repeatedly allocate to the cheapest open cell. With a
  // warm hint, previously-used cells are allocated first (cheapest first
  // among them) so the start reproduces the prior basis structure wherever
  // supplies/demands still admit it.
  void least_cost_start() {
    std::vector<double> remaining_supply = bal_.supply;
    std::vector<double> remaining_demand = bal_.demand;
    // Cells sorted by (warm priority, cost) once; skip exhausted rows/cols
    // while scanning.
    std::vector<std::size_t> order(bal_.m * bal_.n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
      if (warm_cells_ != nullptr && (*warm_cells_)[a] != (*warm_cells_)[b])
        return (*warm_cells_)[a] > (*warm_cells_)[b];
      return bal_.cost[a] < bal_.cost[b];
    });
    for (std::size_t cell : order) {
      const std::size_t i = cell / bal_.n;
      const std::size_t j = cell % bal_.n;
      if (remaining_supply[i] <= kEps || remaining_demand[j] <= kEps) continue;
      const double quantity = std::min(remaining_supply[i], remaining_demand[j]);
      flow_[cell] = quantity;
      basic_[cell] = 1;
      remaining_supply[i] -= quantity;
      remaining_demand[j] -= quantity;
    }
  }

  // The basis must be a spanning tree on the bipartite row/col node set with
  // exactly m + n - 1 cells. The least-cost start can be degenerate (fewer
  // cells) or accidentally contain a cycle-free subset already; add zero
  // cells until the bipartite graph is connected and acyclic.
  void repair_basis_tree() {
    // Union-find over m + n nodes (rows then cols).
    parent_.resize(bal_.m + bal_.n);
    std::iota(parent_.begin(), parent_.end(), 0);
    std::size_t basic_count = 0;
    for (std::size_t i = 0; i < bal_.m; ++i) {
      for (std::size_t j = 0; j < bal_.n; ++j) {
        if (!basic_[i * bal_.n + j]) continue;
        if (!unite(i, bal_.m + j)) {
          // Cycle among basic cells (possible with ties): demote to nonbasic.
          basic_[i * bal_.n + j] = 0;
          // Note: flow stays; a cycle of equal-cost cells keeps feasibility.
        } else {
          ++basic_count;
        }
      }
    }
    // Connect remaining components with zero-flow basic cells, preferring
    // cheap cells so potentials stay tame.
    for (std::size_t i = 0; i < bal_.m && basic_count + 1 < bal_.m + bal_.n; ++i) {
      for (std::size_t j = 0; j < bal_.n && basic_count + 1 < bal_.m + bal_.n; ++j) {
        if (basic_[i * bal_.n + j]) continue;
        if (unite(i, bal_.m + j)) {
          basic_[i * bal_.n + j] = 1;
          ++basic_count;
        }
      }
    }
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

  // Potentials u_i + v_j = c_ij on basic cells; tree traversal from row 0.
  void compute_potentials() {
    u_.assign(bal_.m, 0.0);
    v_.assign(bal_.n, 0.0);
    std::vector<char> u_set(bal_.m, 0), v_set(bal_.n, 0);
    u_set[0] = 1;
    // Relaxation sweeps; the basis is a tree so m+n-1 sweeps suffice, and in
    // practice it converges in a handful.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t i = 0; i < bal_.m; ++i) {
        for (std::size_t j = 0; j < bal_.n; ++j) {
          if (!basic_[i * bal_.n + j]) continue;
          if (u_set[i] && !v_set[j]) {
            v_[j] = bal_.cost[i * bal_.n + j] - u_[i];
            v_set[j] = 1;
            progress = true;
          } else if (!u_set[i] && v_set[j]) {
            u_[i] = bal_.cost[i * bal_.n + j] - v_[j];
            u_set[i] = 1;
            progress = true;
          }
        }
      }
    }
  }

  // Reduced costs are differences of quantities that can carry big-M
  // magnitudes (~1e7) through the potentials, so the cancellation noise is
  // ~1e-9 absolute — larger than a fixed kEps. A cell only counts as
  // improving when its reduced cost clears a tolerance scaled to the
  // magnitudes that produced it; otherwise the solver chases phantom
  // improvements in an endless theta=0 loop.
  [[nodiscard]] double reduced_cost_tolerance(std::size_t i,
                                              std::size_t j) const {
    return kEps + 1e-12 * (std::abs(bal_.cost[i * bal_.n + j]) +
                           std::abs(u_[i]) + std::abs(v_[j]));
  }

  [[nodiscard]] std::tuple<std::size_t, std::size_t, double>
  most_negative_cell() const {
    double best = 0.0;
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < bal_.m; ++i) {
      for (std::size_t j = 0; j < bal_.n; ++j) {
        if (basic_[i * bal_.n + j]) continue;
        const double reduced = bal_.cost[i * bal_.n + j] - u_[i] - v_[j];
        if (reduced < best && reduced < -reduced_cost_tolerance(i, j)) {
          best = reduced;
          bi = i;
          bj = j;
        }
      }
    }
    return {bi, bj, best};
  }

  // Bland's rule: the lowest-index cell with a negative reduced cost. Slower
  // per pivot than Dantzig but provably cycle-free.
  [[nodiscard]] std::tuple<std::size_t, std::size_t, double>
  first_negative_cell() const {
    for (std::size_t i = 0; i < bal_.m; ++i) {
      for (std::size_t j = 0; j < bal_.n; ++j) {
        if (basic_[i * bal_.n + j]) continue;
        const double reduced = bal_.cost[i * bal_.n + j] - u_[i] - v_[j];
        if (reduced < -reduced_cost_tolerance(i, j)) return {i, j, reduced};
      }
    }
    return {0, 0, 0.0};
  }

  // Find the unique alternating cycle created by adding (enter_i, enter_j)
  // to the basis tree, shift flow around it, and swap basis membership.
  // Returns theta, the amount of flow shifted (0 on a degenerate pivot).
  double pivot(std::size_t enter_i, std::size_t enter_j) {
    // DFS in the bipartite basis graph from row enter_i to col enter_j.
    // Nodes: rows [0, m), cols [m, m+n).
    const std::size_t start = enter_i;
    const std::size_t goal = bal_.m + enter_j;
    std::vector<std::size_t> stack{start};
    std::vector<std::size_t> prev(bal_.m + bal_.n, static_cast<std::size_t>(-1));
    std::vector<char> seen(bal_.m + bal_.n, 0);
    seen[start] = 1;
    while (!stack.empty()) {
      const std::size_t node = stack.back();
      stack.pop_back();
      if (node == goal) break;
      if (node < bal_.m) {
        const std::size_t i = node;
        for (std::size_t j = 0; j < bal_.n; ++j) {
          if (!basic_[i * bal_.n + j]) continue;
          const std::size_t next = bal_.m + j;
          if (!seen[next]) {
            seen[next] = 1;
            prev[next] = node;
            stack.push_back(next);
          }
        }
      } else {
        const std::size_t j = node - bal_.m;
        for (std::size_t i = 0; i < bal_.m; ++i) {
          if (!basic_[i * bal_.n + j]) continue;
          if (!seen[i]) {
            seen[i] = 1;
            prev[i] = node;
            stack.push_back(i);
          }
        }
      }
    }
    // Reconstruct node path goal -> start, then build the cell cycle.
    std::vector<std::size_t> node_path;
    for (std::size_t node = goal; node != static_cast<std::size_t>(-1);
         node = prev[node])
      node_path.push_back(node);
    std::reverse(node_path.begin(), node_path.end());  // start ... goal
    // Cycle cells alternate starting with the entering cell (+):
    // (enter_i, enter_j) then edges along node_path back from goal..start?
    // node_path is start(row) -> ... -> goal(col); consecutive nodes share a
    // basic cell. Walking it gives cells with alternating signs beginning
    // with '-', since the entering '+' cell closes the loop goal->start.
    std::vector<std::pair<std::size_t, std::size_t>> minus_cells, plus_cells;
    plus_cells.emplace_back(enter_i, enter_j);
    bool minus = true;
    for (std::size_t s = 0; s + 1 < node_path.size(); ++s) {
      const std::size_t a = node_path[s];
      const std::size_t b = node_path[s + 1];
      const std::size_t i = a < bal_.m ? a : b;
      const std::size_t j = (a < bal_.m ? b : a) - bal_.m;
      (minus ? minus_cells : plus_cells).emplace_back(i, j);
      minus = !minus;
    }
    // Theta = min flow on minus cells. Under Bland's rule ties break toward
    // the lowest cell index (required for the anti-cycling guarantee).
    double theta = kInfinity;
    std::pair<std::size_t, std::size_t> leaving{0, 0};
    for (const auto& [i, j] : minus_cells) {
      const double f = flow_[i * bal_.n + j];
      const bool tie_wins = bland_ && f == theta &&
                            i * bal_.n + j < leaving.first * bal_.n + leaving.second;
      if (f < theta || tie_wins) {
        theta = f;
        leaving = {i, j};
      }
    }
    for (const auto& [i, j] : plus_cells) flow_[i * bal_.n + j] += theta;
    for (const auto& [i, j] : minus_cells) flow_[i * bal_.n + j] -= theta;
    basic_[enter_i * bal_.n + enter_j] = 1;
    basic_[leaving.first * bal_.n + leaving.second] = 0;
    flow_[leaving.first * bal_.n + leaving.second] = 0.0;  // kill -0 noise
    return theta;
  }

  const Balanced& bal_;
  const std::vector<char>* warm_cells_ = nullptr;
  bool seeded_ = false;
  bool bland_ = false;
  std::vector<double> flow_;
  std::vector<char> basic_;
  std::vector<double> u_, v_;
  std::vector<std::size_t> parent_;
  std::size_t iterations_ = 0;
};

// One solve body behind both public entry points. `basis`, when non-null, is
// consulted for the dirty-basis fast path and refreshed (or invalidated) on
// the way out.
TransportationResult solve_impl(const TransportationProblem& problem,
                                const std::vector<double>* warm_flow,
                                TransportationBasis* basis) {
  const std::size_t m = problem.sources();
  const std::size_t n = problem.destinations();
  if (problem.cost.size() != m * n)
    throw std::invalid_argument("solve_transportation: cost size mismatch");
  for (double s : problem.supply)
    if (s < 0) throw std::invalid_argument("solve_transportation: negative supply");
  for (double c : problem.capacity)
    if (c < 0) throw std::invalid_argument("solve_transportation: negative capacity");

  TransportationResult result;
  result.flow.assign(m * n, 0.0);
  const double total_supply =
      std::accumulate(problem.supply.begin(), problem.supply.end(), 0.0);
  const double total_capacity =
      std::accumulate(problem.capacity.begin(), problem.capacity.end(), 0.0);
  if (m == 0 || total_supply <= kEps) {
    // Nothing to ship: trivially optimal at zero.
    if (basis != nullptr) basis->valid = false;
    result.status = Status::kOptimal;
    return result;
  }
  if (n == 0 || total_supply > total_capacity + kEps) {
    if (basis != nullptr) basis->valid = false;
    result.status = Status::kInfeasible;
    return result;
  }

  Balanced bal;
  bal.has_dummy = total_capacity > total_supply + kEps;
  bal.m = m + (bal.has_dummy ? 1 : 0);
  bal.n = n;
  bal.supply = problem.supply;
  if (bal.has_dummy) bal.supply.push_back(total_capacity - total_supply);
  bal.demand = problem.capacity;
  // Big-M: strictly dominates any finite objective.
  double max_finite = 1.0;
  for (double c : problem.cost)
    if (c != kInfinity) max_finite = std::max(max_finite, std::abs(c));
  bal.big_m = max_finite * 1e6 * static_cast<double>(m + n) + 1e6;
  bal.cost.assign(bal.m * bal.n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      bal.cost[i * n + j] =
          problem.cost[i * n + j] == kInfinity ? bal.big_m : problem.cost[i * n + j];
  // Dummy row cost stays 0.

  // Dirty-basis eligibility: the retained basis must come from the *same*
  // balanced instance modulo costs — identical shape and bit-identical
  // supplies/capacities. Basic flows satisfy the supply/demand constraints
  // regardless of costs, so the old basis is primal-feasible here and MODI
  // can resume from it directly.
  const bool dirty = basis != nullptr && basis->valid && basis->m == bal.m &&
                     basis->n == bal.n && basis->supply == bal.supply &&
                     basis->demand == bal.demand;

  // Translate the warm flow grid (real rows only) into balanced-instance
  // cell priorities; the dummy row, when present, stays unprioritized.
  std::vector<char> warm_cells;
  if (!dirty && warm_flow != nullptr && warm_flow->size() == m * n) {
    warm_cells.assign(bal.m * bal.n, 0);
    for (std::size_t cell = 0; cell < m * n; ++cell)
      if ((*warm_flow)[cell] > kEps && problem.cost[cell] != kInfinity)
        warm_cells[cell] = 1;  // never prioritize a now-forbidden route
  }
  TransportSimplex simplex(bal, warm_cells.empty() ? nullptr : &warm_cells);
  if (dirty) {
    simplex.seed_basis(basis->flow, basis->basic);
    result.dirty_resolve = true;
  }
  const std::size_t max_iterations = 100 * (bal.m + bal.n) * (bal.m + bal.n) + 1000;
  const Status status = simplex.solve(max_iterations);
  result.iterations = simplex.iterations();
  if (status != Status::kOptimal) {
    if (basis != nullptr) basis->valid = false;
    result.status = status;
    return result;
  }
  // Check forbidden cells and extract the real flow grid.
  double objective = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double f = simplex.flow()[i * bal.n + j];
      if (f > kEps && problem.cost[i * n + j] == kInfinity) {
        if (basis != nullptr) basis->valid = false;
        result.status = Status::kInfeasible;  // needed a forbidden route
        return result;
      }
      result.flow[i * n + j] = f;
      if (f > 0) objective += f * problem.cost[i * n + j];
    }
  }
  result.objective = objective;
  result.status = Status::kOptimal;
  if (basis != nullptr) {
    basis->valid = true;
    basis->m = bal.m;
    basis->n = bal.n;
    basis->supply = std::move(bal.supply);
    basis->demand = std::move(bal.demand);
    basis->flow = simplex.flow();
    basis->basic = simplex.basic();
  }
  return result;
}

}  // namespace

TransportationResult solve_transportation(const TransportationProblem& problem,
                                          const std::vector<double>* warm_flow) {
  return solve_impl(problem, warm_flow, nullptr);
}

TransportationResult solve_transportation_dirty(
    const TransportationProblem& problem, TransportationBasis& basis,
    const std::vector<double>* warm_flow) {
  return solve_impl(problem, warm_flow, &basis);
}

LinearProgram to_linear_program(const TransportationProblem& problem) {
  const std::size_t m = problem.sources();
  const std::size_t n = problem.destinations();
  LinearProgram lp;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double cost = problem.cost[i * n + j];
      // Forbidden cells become fixed-at-zero variables.
      if (cost == kInfinity)
        lp.add_variable(0.0, 0.0, 0.0);
      else
        lp.add_variable(0.0, kInfinity, cost);
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t j = 0; j < n; ++j) terms.emplace_back(i * n + j, 1.0);
    lp.add_constraint(std::move(terms), Sense::kEqual, problem.supply[i]);
  }
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t i = 0; i < m; ++i) terms.emplace_back(i * n + j, 1.0);
    lp.add_constraint(std::move(terms), Sense::kLessEqual, problem.capacity[j]);
  }
  return lp;
}

}  // namespace dust::solver
