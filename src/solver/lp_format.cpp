#include "solver/lp_format.hpp"

#include <cmath>

namespace dust::solver {

namespace {

std::string variable_name(const LinearProgram& lp, std::size_t index) {
  const std::string& name = lp.variable(index).name;
  return name.empty() ? "x" + std::to_string(index) : name;
}

void write_terms(std::ostream& os, const LinearProgram& lp,
                 const std::vector<std::pair<std::size_t, double>>& terms) {
  bool first = true;
  for (const auto& [var, coeff] : terms) {
    if (coeff == 0.0) continue;
    if (first) {
      if (coeff < 0) os << "- ";
      first = false;
    } else {
      os << (coeff < 0 ? " - " : " + ");
    }
    const double magnitude = std::abs(coeff);
    if (magnitude != 1.0) os << magnitude << ' ';
    os << variable_name(lp, var);
  }
  if (first) os << "0 " << variable_name(lp, 0);  // empty row: harmless 0-term
}

}  // namespace

void write_lp_format(std::ostream& os, const LinearProgram& lp,
                     const std::string& problem_name) {
  os << "\\ " << problem_name << " — " << lp.variable_count()
     << " variables, " << lp.constraint_count() << " constraints\n";
  os << "Minimize\n obj: ";
  std::vector<std::pair<std::size_t, double>> objective;
  for (std::size_t v = 0; v < lp.variable_count(); ++v)
    if (lp.variable(v).objective != 0.0)
      objective.emplace_back(v, lp.variable(v).objective);
  if (objective.empty() && lp.variable_count() > 0)
    objective.emplace_back(0, 0.0);
  write_terms(os, lp, objective);
  os << "\nSubject To\n";
  for (std::size_t c = 0; c < lp.constraint_count(); ++c) {
    const Constraint& con = lp.constraint(c);
    os << " c" << c << ": ";
    write_terms(os, lp, con.terms);
    switch (con.sense) {
      case Sense::kLessEqual: os << " <= "; break;
      case Sense::kGreaterEqual: os << " >= "; break;
      case Sense::kEqual: os << " = "; break;
    }
    os << con.rhs << '\n';
  }
  os << "Bounds\n";
  for (std::size_t v = 0; v < lp.variable_count(); ++v) {
    const Variable& var = lp.variable(v);
    const std::string name = variable_name(lp, v);
    if (var.lower == -kInfinity && var.upper == kInfinity) {
      os << ' ' << name << " free\n";
    } else if (var.lower == var.upper) {
      os << ' ' << name << " = " << var.lower << '\n';
    } else {
      if (var.lower == -kInfinity)
        os << " -inf <= " << name;
      else if (var.lower != 0.0)
        os << ' ' << var.lower << " <= " << name;
      else
        os << ' ' << name;
      if (var.upper != kInfinity) os << " <= " << var.upper;
      os << '\n';
    }
  }
  bool any_integer = false;
  for (std::size_t v = 0; v < lp.variable_count(); ++v) {
    if (!lp.variable(v).integer) continue;
    if (!any_integer) {
      os << "General\n";
      any_integer = true;
    }
    os << ' ' << variable_name(lp, v) << '\n';
  }
  os << "End\n";
}

}  // namespace dust::solver
