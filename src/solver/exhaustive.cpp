#include "solver/exhaustive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dust::solver {

namespace {

constexpr double kEps = 1e-9;

/// C(n, k) saturated at size_t max.
std::size_t binomial_saturated(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::size_t result = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    const std::size_t factor = n - k + i;
    if (result > kMax / factor) return kMax;
    result = result * factor / i;  // exact: result*factor divisible by i here
  }
  return result;
}

struct Shape {
  std::size_t m = 0;  ///< real sources
  std::size_t n = 0;
  std::size_t rows = 0;  ///< m + dummy
  bool has_dummy = false;
  std::vector<double> supply;  ///< rows entries (dummy last)
};

/// Solve the unique flow on a spanning tree by leaf elimination. Returns
/// false when any flow goes negative (infeasible vertex). `cells` holds the
/// rows*n cell indices of the tree.
bool tree_flows(const Shape& shape, const std::vector<double>& demand,
                const std::vector<std::size_t>& cells,
                std::vector<double>& flow_out) {
  const std::size_t nodes = shape.rows + shape.n;
  std::vector<double> residual(nodes);
  for (std::size_t i = 0; i < shape.rows; ++i) residual[i] = shape.supply[i];
  for (std::size_t j = 0; j < shape.n; ++j)
    residual[shape.rows + j] = demand[j];

  std::vector<std::size_t> degree(nodes, 0);
  std::vector<char> alive(cells.size(), 1);
  for (std::size_t cell : cells) {
    ++degree[cell / shape.n];
    ++degree[shape.rows + cell % shape.n];
  }
  flow_out.assign(shape.rows * shape.n, 0.0);
  // Peel leaves: a node with one live incident cell fixes that cell's flow.
  for (std::size_t peeled = 0; peeled < cells.size(); ++peeled) {
    std::size_t leaf_pos = cells.size();
    for (std::size_t pos = 0; pos < cells.size(); ++pos) {
      if (!alive[pos]) continue;
      const std::size_t row = cells[pos] / shape.n;
      const std::size_t col = shape.rows + cells[pos] % shape.n;
      if (degree[row] == 1 || degree[col] == 1) {
        leaf_pos = pos;
        break;
      }
    }
    if (leaf_pos == cells.size()) return false;  // cycle (not a tree)
    const std::size_t cell = cells[leaf_pos];
    const std::size_t row = cell / shape.n;
    const std::size_t col = shape.rows + cell % shape.n;
    const std::size_t leaf = degree[row] == 1 ? row : col;
    const std::size_t other = leaf == row ? col : row;
    const double quantity = residual[leaf];
    if (quantity < -kEps) return false;
    flow_out[cell] = quantity;
    residual[leaf] = 0.0;
    residual[other] -= quantity;
    alive[leaf_pos] = 0;
    --degree[row];
    --degree[col];
  }
  for (double r : residual)
    if (std::abs(r) > 1e-6) return false;  // disconnected component leftover
  return true;
}

}  // namespace

std::size_t exhaustive_base_count(const TransportationProblem& problem) {
  const std::size_t m = problem.sources();
  const std::size_t n = problem.destinations();
  if (m == 0 || n == 0) return 0;
  const double total_supply =
      std::accumulate(problem.supply.begin(), problem.supply.end(), 0.0);
  const double total_capacity =
      std::accumulate(problem.capacity.begin(), problem.capacity.end(), 0.0);
  const std::size_t rows = m + (total_capacity > total_supply + kEps ? 1 : 0);
  return binomial_saturated(rows * n, rows + n - 1);
}

TransportationResult solve_transportation_exhaustive(
    const TransportationProblem& problem, std::size_t max_bases) {
  const std::size_t m = problem.sources();
  const std::size_t n = problem.destinations();
  if (problem.cost.size() != m * n)
    throw std::invalid_argument("exhaustive: cost size mismatch");

  TransportationResult result;
  result.flow.assign(m * n, 0.0);
  const double total_supply =
      std::accumulate(problem.supply.begin(), problem.supply.end(), 0.0);
  const double total_capacity =
      std::accumulate(problem.capacity.begin(), problem.capacity.end(), 0.0);
  if (m == 0 || total_supply <= kEps) {
    result.status = Status::kOptimal;
    return result;
  }
  if (n == 0 || total_supply > total_capacity + kEps) {
    result.status = Status::kInfeasible;
    return result;
  }

  Shape shape;
  shape.m = m;
  shape.n = n;
  shape.has_dummy = total_capacity > total_supply + kEps;
  shape.rows = m + (shape.has_dummy ? 1 : 0);
  shape.supply = problem.supply;
  if (shape.has_dummy) shape.supply.push_back(total_capacity - total_supply);

  const std::size_t cells = shape.rows * n;
  const std::size_t tree_size = shape.rows + n - 1;
  if (binomial_saturated(cells, tree_size) > max_bases)
    throw std::invalid_argument("exhaustive: instance too large to enumerate");

  std::vector<std::size_t> pick(tree_size);
  std::iota(pick.begin(), pick.end(), 0);
  // Standard lexicographic next-combination over [0, cells).
  const auto advance = [&]() -> bool {
    for (std::size_t slot = tree_size; slot-- > 0;) {
      if (pick[slot] < cells - (tree_size - slot)) {
        ++pick[slot];
        for (std::size_t later = slot + 1; later < tree_size; ++later)
          pick[later] = pick[later - 1] + 1;
        return true;
      }
    }
    return false;
  };

  double best_objective = kInfinity;
  std::vector<double> best_flow;
  std::vector<double> flow;
  do {
    // tree_flows rejects subsets with cycles or disconnected leftovers, so a
    // separate spanning check is unnecessary.
    if (!tree_flows(shape, problem.capacity, pick, flow)) continue;
    double objective = 0.0;
    bool forbidden = false;
    for (std::size_t i = 0; i < m && !forbidden; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const double f = flow[i * n + j];
        if (f <= kEps) continue;
        const double c = problem.cost[i * n + j];
        if (c == kInfinity) {
          forbidden = true;
          break;
        }
        objective += f * c;
      }
    }
    if (forbidden || objective >= best_objective) continue;
    best_objective = objective;
    best_flow.assign(flow.begin(), flow.begin() + static_cast<std::ptrdiff_t>(
                                                      m * n));
  } while (advance());

  if (best_flow.empty() && best_objective == kInfinity) {
    result.status = Status::kInfeasible;
    return result;
  }
  result.status = Status::kOptimal;
  result.objective = best_objective;
  result.flow = std::move(best_flow);
  return result;
}

}  // namespace dust::solver
