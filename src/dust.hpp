// Umbrella header: the whole DUST public API in one include.
//
//   #include "dust.hpp"
//
// Pulls in every library layer, bottom-up. For faster builds include only
// the layer headers you need (each is self-contained).
#pragma once

// util — deterministic RNG, statistics, thread pool, tables, logging.
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

// graph — topologies, path algorithms, DOT export.
#include "graph/dot.hpp"
#include "graph/graph.hpp"
#include "graph/paths.hpp"
#include "graph/topology.hpp"

// solver — LP/MILP/transportation/min-cost-flow suite (the Gurobi stand-in).
#include "solver/branch_and_bound.hpp"
#include "solver/lp.hpp"
#include "solver/lp_format.hpp"
#include "solver/min_cost_flow.hpp"
#include "solver/simplex.hpp"
#include "solver/transportation.hpp"

// net — dynamic network state and response-time evaluation (Eq. 1-2).
#include "net/diagnosis.hpp"
#include "net/network_state.hpp"
#include "net/response_time.hpp"
#include "net/traffic.hpp"

// telemetry — agents, Gorilla TSDB, alerts, federation, packet parsing.
#include "telemetry/agent.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/federation.hpp"
#include "telemetry/gorilla.hpp"
#include "telemetry/metric.hpp"
#include "telemetry/packet.hpp"
#include "telemetry/sampled_flow.hpp"
#include "telemetry/tsdb.hpp"

// sim — discrete-event simulator, transport, device model, traffic.
#include "sim/event_queue.hpp"
#include "sim/node.hpp"
#include "sim/overlay_traffic.hpp"
#include "sim/transport.hpp"

// core — the DUST system: NMDB, placement, optimizer, heuristic, protocol.
#include "core/baselines.hpp"
#include "core/client.hpp"
#include "core/heuristic.hpp"
#include "core/manager.hpp"
#include "core/messages.hpp"
#include "core/multi_resource.hpp"
#include "core/nmdb.hpp"
#include "core/nms.hpp"
#include "core/optimizer.hpp"
#include "core/placement.hpp"
#include "core/replay.hpp"
#include "core/routes.hpp"
#include "core/scenario.hpp"
#include "core/types.hpp"
#include "core/zones.hpp"
