// dust::dataplane::Collector — the receiving end of the telemetry data
// plane (DESIGN.md §12). Registers an endpoint on the transport, reassembles
// kDataBlocks batches per owning node, verifies every block against its
// descriptor (decode, sample count, timestamp bounds), and adopts the
// still-compressed blocks into a local TSDB without re-encoding.
//
// The collector is also the auditor of the no-silent-loss contract: every
// batch_seq it never receives must be covered by a kDataDegrade declaration
// that arrived first (guaranteed by QoS ordering — declarations ride
// kNormal, data rides kLow). `undeclared_gap_batches` staying at zero under
// congestion is the dust::check invariant for the whole data plane.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "telemetry/sampling.hpp"
#include "telemetry/tsdb.hpp"
#include "wire/socket_transport.hpp"

namespace dust::dataplane {

struct CollectorStats {
  std::uint64_t batches = 0;
  std::uint64_t blocks = 0;
  std::uint64_t samples = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t degrade_announcements = 0;
  /// Missing batches covered by a prior declaration — expected loss.
  std::uint64_t declared_gap_batches = 0;
  std::uint64_t samples_declared_dropped = 0;
  /// Missing batches nobody declared — the invariant that must stay 0.
  std::uint64_t undeclared_gap_batches = 0;
  /// Blocks whose decoded contents contradict their descriptor.
  std::uint64_t verify_failures = 0;
  /// Blocks/batches arriving against the ordering contract.
  std::uint64_t out_of_order = 0;
};

class Collector {
 public:
  /// Registers `endpoint` (with a no-op envelope handler, so the hub learns
  /// the route) and installs the transport's data handler.
  Collector(wire::SocketTransport& transport, std::string endpoint);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  [[nodiscard]] const CollectorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }
  /// Reassembled per-series storage; series are named
  /// "node<owner>/<series>".
  [[nodiscard]] telemetry::Tsdb& tsdb() noexcept { return tsdb_; }
  [[nodiscard]] const telemetry::Tsdb& tsdb() const noexcept { return tsdb_; }

  /// The no-silent-loss contract: all observed loss was declared, every
  /// block verified, nothing arrived out of order.
  [[nodiscard]] bool loss_fully_declared() const noexcept {
    return stats_.undeclared_gap_batches == 0 && stats_.verify_failures == 0 &&
           stats_.out_of_order == 0;
  }

  /// Last announced degradation state of one owner (kFull, 1.0 before any
  /// announcement).
  [[nodiscard]] telemetry::DegradeMode mode_of(graph::NodeId owner) const;
  [[nodiscard]] double keep_probability_of(graph::NodeId owner) const;

  /// One owner's delivery window since the previous drain_loss_audit() call.
  /// `expected` counts delivered samples plus an estimate for undeclared gap
  /// batches (average received batch size); declared degradation is honest
  /// by contract and does NOT inflate `expected`. Feed each entry into
  /// core::DustManager::record_loss_audit so byzantine (undeclared) loss
  /// dents the owner-hosting destination's trust while announced thinning
  /// never does (DESIGN.md §14).
  struct LossAuditEntry {
    graph::NodeId owner = 0;
    double expected = 0.0;
    double delivered = 0.0;
  };
  /// Per-owner delivery deltas since the last drain, sorted by owner.
  /// Owners with no new traffic are omitted.
  [[nodiscard]] std::vector<LossAuditEntry> drain_loss_audit();

 private:
  struct OwnerState {
    std::uint64_t next_batch_seq = 0;
    telemetry::DegradeMode mode = telemetry::DegradeMode::kFull;
    double keep_probability = 1.0;
    /// Declared [from, to] batch gaps, in announcement order.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> declared_gaps;
    /// Next expected block_seq per series — thinned-to-empty blocks still
    /// ship, so within received batches this is strictly contiguous.
    std::unordered_map<std::string, std::uint64_t> next_block_seq;
    /// Per-owner delivery tallies + drain cursors for drain_loss_audit().
    std::uint64_t samples_received = 0;
    std::uint64_t batches_received = 0;
    std::uint64_t undeclared_batches = 0;
    std::uint64_t audited_samples = 0;
    std::uint64_t audited_undeclared = 0;
  };

  void on_data(wire::Frame&& frame);
  void on_blocks(wire::Frame&& frame);
  void on_degrade(const wire::Frame& frame);
  [[nodiscard]] static bool gap_declared(const OwnerState& owner,
                                         std::uint64_t batch_seq);

  wire::SocketTransport* transport_;
  std::string endpoint_;
  std::uint64_t endpoint_token_ = 0;
  telemetry::Tsdb tsdb_;
  CollectorStats stats_;
  std::unordered_map<graph::NodeId, OwnerState> owners_;
};

}  // namespace dust::dataplane
