#include "dataplane/block_streamer.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace dust::dataplane {

BlockStreamer::BlockStreamer(wire::SocketTransport& transport,
                             telemetry::Tsdb& tsdb,
                             BlockStreamerConfig config)
    : transport_(&transport),
      tsdb_(&tsdb),
      config_(std::move(config)),
      span_track_("streamer-" + std::to_string(config_.owner)) {
  policy_.mode = telemetry::DegradeMode::kFull;
  policy_.keep_probability = config_.sampled_keep_probability;
  policy_.aggregate_window_ms = config_.aggregate_window_ms;
  policy_.seed = config_.sampling_seed;
}

double BlockStreamer::keep_fraction() const noexcept {
  return policy_.effective_keep_fraction(config_.expected_samples_per_window);
}

void BlockStreamer::update_mode() {
  const double fill = transport_->queue_state(config_.collector).fill();
  telemetry::DegradeMode next = policy_.mode;
  if (transport_->poll_backpressure(config_.collector,
                                    config_.backpressure_enter)) {
    next = telemetry::escalate(policy_.mode);
  } else if (fill <= config_.backpressure_exit) {
    next = telemetry::relax(policy_.mode);
  }
  if (next == policy_.mode) return;
  policy_.mode = next;
  ++stats_.mode_changes;
  static obs::Counter& mode_metric = obs::MetricRegistry::global().counter(
      "dust_dataplane_mode_changes_total");
  mode_metric.inc();
  // Mode-change-only announcement: no gap, just "expect this much data".
  announce(/*gap_from=*/1, /*gap_to=*/0, /*samples_dropped=*/0);
  if (mode_listener_) mode_listener_(policy_.mode, keep_fraction());
}

void BlockStreamer::announce(std::uint64_t gap_from, std::uint64_t gap_to,
                             std::uint32_t samples_dropped) {
  // Merge into the pending declaration. Gaps declared within and across
  // ticks are contiguous ranges of burnt batch_seqs, so a [min, max] merge
  // never covers a batch that was actually delivered.
  if (gap_from <= gap_to) {
    if (pending_gap_from_ > pending_gap_to_) {
      pending_gap_from_ = gap_from;
      pending_gap_to_ = gap_to;
    } else {
      pending_gap_from_ = std::min(pending_gap_from_, gap_from);
      pending_gap_to_ = std::max(pending_gap_to_, gap_to);
    }
  }
  pending_samples_dropped_ += samples_dropped;
  announce_pending_ = true;
  flush_announcement();
}

void BlockStreamer::flush_announcement() {
  if (!announce_pending_) return;
  // A completely full peer queue would make this kNormal frame displace a
  // queued kLow data frame — silent loss. Keep the declaration pending; it
  // flushes before any future data batch (pump() retries it first, and no
  // data ships while the queue is above the shed guard).
  const wire::QueueState queue = transport_->queue_state(config_.collector);
  if (queue.capacity_frames > 0 && queue.queued_frames >= queue.capacity_frames)
    return;
  wire::DegradeBody body;
  body.owner = config_.owner;
  body.mode = policy_.mode;
  body.keep_probability = policy_.keep_probability;
  body.gap_from_batch = pending_gap_from_;
  body.gap_to_batch = pending_gap_to_;
  body.samples_dropped = pending_samples_dropped_;
  // kNormal QoS: the declaration always outruns queued kLow data frames, so
  // the collector hears about a gap before it could observe one.
  wire::Frame frame = wire::degrade_frame(config_.local_endpoint,
                                          config_.collector, std::move(body));
  wire::GatherFrame encoded;
  encoded.head = wire::encode_frame(frame);
  if (!transport_->send_data_frame(config_.local_endpoint, config_.collector,
                                   std::move(encoded), sim::Priority::kNormal,
                                   "data_degrade", nullptr))
    return;  // stays pending, retried next tick
  ++stats_.degrade_announcements;
  announce_pending_ = false;
  pending_gap_from_ = 1;
  pending_gap_to_ = 0;
  pending_samples_dropped_ = 0;
}

std::size_t BlockStreamer::ship(std::vector<PendingBlock> batch) {
  const std::uint64_t batch_seq = next_batch_seq_++;
  std::uint32_t batch_samples = 0;
  for (const PendingBlock& pending : batch)
    batch_samples +=
        static_cast<std::uint32_t>(pending.block.sample_count());

  // Above the shed guard the transport would shed this frame silently from
  // the kLow queue; burn the batch_seq and declare the gap instead.
  const double fill = transport_->queue_state(config_.collector).fill();
  if (fill >= config_.shed_guard) {
    ++stats_.batches_dropped;
    stats_.samples_dropped += batch_samples;
    announce(batch_seq, batch_seq, batch_samples);
    return 0;
  }

  // The batch owns its blocks via shared_ptr; the gather segments alias the
  // blocks' payload bytes, and the transport pins the shared_ptr until the
  // frame has fully left the socket — zero copies of the compressed data.
  auto owned = std::make_shared<std::vector<PendingBlock>>(std::move(batch));
  wire::DataBlocksBody body;
  body.owner = config_.owner;
  body.batch_seq = batch_seq;
  body.mode = policy_.mode;
  body.keep_probability = policy_.keep_probability;
  // One instant span per batch, hung under the offload chain that placed
  // the agents here; its context crosses the wire so the collector's ingest
  // span joins the same trace.
  body.trace = obs::record_instant(obs::MetricRegistry::global(),
                                   "data_blocks", span_track_, trace_);
  std::vector<wire::PayloadRef> payloads;
  body.blocks.reserve(owned->size());
  payloads.reserve(owned->size());
  std::uint64_t payload_bytes = 0;
  for (const PendingBlock& pending : *owned) {
    const telemetry::CompressedBlock& block = pending.block;
    wire::DataBlock entry;
    entry.descriptor.series = pending.series;
    entry.descriptor.block_seq = next_block_seq_[pending.series]++;
    entry.descriptor.sample_count =
        static_cast<std::uint32_t>(block.sample_count());
    entry.descriptor.bit_count = block.payload_bit_count();
    entry.descriptor.first_timestamp_ms = block.first_timestamp_ms();
    entry.descriptor.last_timestamp_ms = block.last_timestamp_ms();
    entry.descriptor.last_value =
        block.sample_count() > 0 ? block.decode().back().value : 0.0;
    body.blocks.push_back(std::move(entry));
    payloads.push_back(
        wire::PayloadRef{block.payload().data(), block.payload().size()});
    payload_bytes += block.payload().size();
  }
  const std::size_t block_count = owned->size();
  const std::uint64_t batch_trace = body.trace.trace_id;
  wire::Frame frame =
      wire::data_blocks_frame(config_.local_endpoint, config_.collector,
                              std::move(body), batch_trace);
  wire::GatherFrame encoded =
      wire::encode_data_blocks_gather(frame, payloads);
  if (!transport_->send_data_frame(config_.local_endpoint, config_.collector,
                                   std::move(encoded), sim::Priority::kLow,
                                   "data_blocks", owned)) {
    // The transport shed it after all (cap raced past the guard): still no
    // silent loss — declare the exact gap.
    ++stats_.batches_dropped;
    stats_.samples_dropped += batch_samples;
    announce(batch_seq, batch_seq, batch_samples);
    return 0;
  }
  ++stats_.batches_sent;
  stats_.blocks_sent += block_count;
  stats_.samples_sent += batch_samples;
  stats_.payload_bytes_sent += payload_bytes;
  return 1;
}

std::size_t BlockStreamer::pump() {
  update_mode();
  flush_announcement();  // deferred declarations go out before any new data

  // Drain sealed blocks across every series, thinning under degradation.
  std::vector<PendingBlock> pending;
  for (telemetry::MetricId id = 0; id < tsdb_->metric_count(); ++id) {
    telemetry::TimeSeries& series = tsdb_->series(id);
    std::vector<telemetry::CompressedBlock> taken;
    series.take_sealed(taken);
    for (telemetry::CompressedBlock& block : taken) {
      if (policy_.mode != telemetry::DegradeMode::kFull &&
          block.sample_count() > 0) {
        const std::vector<telemetry::Sample> raw = block.decode();
        const std::vector<telemetry::Sample> kept = policy_.apply(raw);
        stats_.samples_thinned += raw.size() - kept.size();
        telemetry::CompressedBlock thinned;
        for (const telemetry::Sample& sample : kept) thinned.append(sample);
        block = std::move(thinned);
        // A thinned-to-empty block still ships (zero payload bytes): it
        // keeps block_seq contiguous, so the collector never mistakes
        // thinning for loss.
      }
      pending.push_back(
          PendingBlock{std::move(block), series.descriptor().name});
    }
  }
  if (pending.empty()) return 0;

  // Coalesce into as few frames as the caps allow.
  std::size_t frames = 0;
  std::vector<PendingBlock> batch;
  std::size_t batch_bytes = 0;
  for (PendingBlock& block : pending) {
    const std::size_t bytes = block.block.payload().size();
    if (!batch.empty() &&
        (batch.size() >= config_.max_blocks_per_frame ||
         batch_bytes + bytes > config_.max_bytes_per_frame)) {
      frames += ship(std::move(batch));
      batch = {};
      batch_bytes = 0;
    }
    batch_bytes += bytes;
    batch.push_back(std::move(block));
  }
  if (!batch.empty()) frames += ship(std::move(batch));
  return frames;
}

std::size_t BlockStreamer::flush() {
  for (telemetry::MetricId id = 0; id < tsdb_->metric_count(); ++id)
    tsdb_->series(id).seal_now();
  return pump();
}

}  // namespace dust::dataplane
