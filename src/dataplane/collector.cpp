#include "dataplane/collector.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"

namespace dust::dataplane {

Collector::Collector(wire::SocketTransport& transport, std::string endpoint)
    : transport_(&transport), endpoint_(std::move(endpoint)) {
  // The envelope handler is a sink: control traffic never targets the
  // collector, but registering the name makes the hub route (and the leaf
  // announce) kDataBlocks frames here.
  endpoint_token_ = transport_->register_endpoint(
      endpoint_, [](const sim::Envelope&) {});
  transport_->set_data_handler(
      [this](wire::Frame&& frame) { on_data(std::move(frame)); });
}

Collector::~Collector() {
  transport_->set_data_handler(nullptr);
  transport_->unregister_endpoint(endpoint_, endpoint_token_);
}

telemetry::DegradeMode Collector::mode_of(graph::NodeId owner) const {
  auto it = owners_.find(owner);
  return it == owners_.end() ? telemetry::DegradeMode::kFull
                             : it->second.mode;
}

double Collector::keep_probability_of(graph::NodeId owner) const {
  auto it = owners_.find(owner);
  return it == owners_.end() ? 1.0 : it->second.keep_probability;
}

std::vector<Collector::LossAuditEntry> Collector::drain_loss_audit() {
  std::vector<LossAuditEntry> out;
  for (auto& [id, owner] : owners_) {
    const std::uint64_t delivered =
        owner.samples_received - owner.audited_samples;
    const std::uint64_t undeclared =
        owner.undeclared_batches - owner.audited_undeclared;
    owner.audited_samples = owner.samples_received;
    owner.audited_undeclared = owner.undeclared_batches;
    if (delivered == 0 && undeclared == 0) continue;
    // Undeclared gaps carry an unknown number of samples; charge each one an
    // average received batch (floor 1) so a pure blackhole still audits > 0
    // expected.
    const double avg_batch =
        owner.batches_received > 0
            ? static_cast<double>(owner.samples_received) /
                  static_cast<double>(owner.batches_received)
            : 1.0;
    LossAuditEntry entry;
    entry.owner = id;
    entry.delivered = static_cast<double>(delivered);
    entry.expected = entry.delivered + static_cast<double>(undeclared) *
                                           std::max(1.0, avg_batch);
    out.push_back(entry);
  }
  // owners_ is an unordered_map; sort so callers see a deterministic order.
  std::sort(out.begin(), out.end(),
            [](const LossAuditEntry& a, const LossAuditEntry& b) {
              return a.owner < b.owner;
            });
  return out;
}

bool Collector::gap_declared(const OwnerState& owner,
                             std::uint64_t batch_seq) {
  for (const auto& [from, to] : owner.declared_gaps)
    if (batch_seq >= from && batch_seq <= to) return true;
  return false;
}

void Collector::on_data(wire::Frame&& frame) {
  if (frame.to != endpoint_) return;  // another endpoint's traffic
  if (frame.type == wire::FrameType::kDataDegrade) {
    on_degrade(frame);
  } else if (frame.type == wire::FrameType::kDataBlocks) {
    on_blocks(std::move(frame));
  }
}

void Collector::on_degrade(const wire::Frame& frame) {
  const wire::DegradeBody& body = frame.degrade;
  OwnerState& owner = owners_[body.owner];
  owner.mode = body.mode;
  owner.keep_probability = body.keep_probability;
  ++stats_.degrade_announcements;
  if (body.gap_from_batch <= body.gap_to_batch) {
    owner.declared_gaps.emplace_back(body.gap_from_batch, body.gap_to_batch);
    stats_.declared_gap_batches +=
        body.gap_to_batch - body.gap_from_batch + 1;
    stats_.samples_declared_dropped += body.samples_dropped;
  }
}

void Collector::on_blocks(wire::Frame&& frame) {
  static obs::Counter& samples_metric = obs::MetricRegistry::global().counter(
      "dust_dataplane_collector_samples_total");
  static obs::Counter& undeclared_metric =
      obs::MetricRegistry::global().counter(
          "dust_dataplane_undeclared_gap_batches_total");
  wire::DataBlocksBody& body = frame.data_blocks;
  OwnerState& owner = owners_[body.owner];

  if (body.batch_seq < owner.next_batch_seq) {
    ++stats_.out_of_order;  // duplicate or reordered batch
    return;
  }
  // The streamer's per-batch context crossed the wire in the body: the
  // ingest event joins the offload chain's trace, so a stitched fleet
  // Perfetto file runs STAT → solve → offload → transfer → data_blocks →
  // collect_blocks across processes.
  if (body.trace.valid())
    obs::record_instant(obs::MetricRegistry::global(), "collect_blocks",
                        "collector", body.trace);
  // Any skipped batch must have been declared dropped before its data
  // could have arrived (declarations ride kNormal, data rides kLow).
  for (std::uint64_t seq = owner.next_batch_seq; seq < body.batch_seq; ++seq) {
    if (!gap_declared(owner, seq)) {
      ++stats_.undeclared_gap_batches;
      ++owner.undeclared_batches;
      undeclared_metric.inc();
    }
  }
  owner.next_batch_seq = body.batch_seq + 1;

  ++stats_.batches;
  ++owner.batches_received;
  for (wire::DataBlock& block : body.blocks) {
    const wire::BlockDescriptor& d = block.descriptor;
    ++stats_.blocks;
    stats_.payload_bytes += block.payload.size();

    auto& next_seq = owner.next_block_seq[d.series];
    if (d.block_seq < next_seq) {
      ++stats_.out_of_order;
      continue;
    }
    next_seq = d.block_seq + 1;

    if (d.sample_count == 0) continue;  // thinned-to-empty placeholder

    // Rebuild and verify: the decoded stream must agree with its descriptor
    // sample for sample before it is adopted.
    bool valid = true;
    telemetry::CompressedBlock rebuilt;
    try {
      rebuilt = telemetry::CompressedBlock::from_wire(
          std::move(block.payload), d.bit_count, d.sample_count,
          d.first_timestamp_ms, d.last_timestamp_ms);
      const std::vector<telemetry::Sample> samples = rebuilt.decode();
      valid = samples.size() == d.sample_count &&
              samples.front().timestamp_ms == d.first_timestamp_ms &&
              samples.back().timestamp_ms == d.last_timestamp_ms &&
              samples.back().value == d.last_value;
      for (std::size_t i = 1; valid && i < samples.size(); ++i)
        valid = samples[i - 1].timestamp_ms <= samples[i].timestamp_ms;
    } catch (const std::exception&) {
      valid = false;
    }
    if (!valid) {
      ++stats_.verify_failures;
      DUST_LOG_WARN << "dataplane: block failed verification (owner "
                    << body.owner << ", series " << d.series << ")";
      continue;
    }

    const telemetry::MetricId id = tsdb_.register_metric(
        telemetry::MetricDescriptor{
            "node" + std::to_string(body.owner) + "/" + d.series, "",
            telemetry::MetricKind::kGauge});
    try {
      tsdb_.series(id).adopt_sealed(
          std::move(rebuilt),
          telemetry::Sample{d.last_timestamp_ms, d.last_value});
    } catch (const std::invalid_argument&) {
      ++stats_.out_of_order;
      continue;
    }
    stats_.samples += d.sample_count;
    owner.samples_received += d.sample_count;
    samples_metric.inc(d.sample_count);
  }
}

}  // namespace dust::dataplane
