// dust::dataplane — the telemetry half of DUST's offloading story
// (DESIGN.md §12). The control plane decides *where* monitoring load runs;
// the BlockStreamer moves the monitoring data itself: sealed Gorilla blocks
// drain out of an offload destination's TSDB into batched kDataBlocks
// frames, scatter-gathered onto the socket so block payloads are never
// copied through the codec.
//
// Backpressure is explicit, never silent (contrast §III-C shedding): data
// frames ride kLow QoS, and when the transport's per-peer queue fills past a
// threshold the streamer walks down a PINT-style degradation ladder
// (arXiv:2007.03731) — full → probabilistic sampling → windowed aggregation
// — announcing every mode change and every dropped batch on kNormal QoS so
// the collector can attest that all loss was declared.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "graph/graph.hpp"
#include "obs/trace.hpp"
#include "telemetry/sampling.hpp"
#include "telemetry/tsdb.hpp"
#include "wire/socket_transport.hpp"

namespace dust::dataplane {

struct BlockStreamerConfig {
  graph::NodeId owner = 0;  ///< node whose telemetry this streamer ships
  std::string local_endpoint;  ///< frame `from` (a registered local name)
  std::string collector = "dust-collector";
  /// Coalescing caps per kDataBlocks frame: a poll tick packs sealed blocks
  /// into as few frames as these allow.
  std::size_t max_blocks_per_frame = 32;
  std::size_t max_bytes_per_frame = 128 * 1024;
  /// Degradation ladder hysteresis, as fractions of the transport's
  /// per-peer frame cap: escalate at/above `backpressure_enter`, relax
  /// at/below `backpressure_exit`.
  double backpressure_enter = 0.50;
  double backpressure_exit = 0.20;
  /// Above this fill the streamer stops handing frames to the transport at
  /// all and declares the batch dropped — declared loss beats the
  /// transport's silent kLow shedding, which would leave an unexplained gap.
  double shed_guard = 0.90;
  double sampled_keep_probability = 0.25;
  std::int64_t aggregate_window_ms = 1000;
  /// Raw samples expected per aggregation window — sizes the advertised
  /// keep fraction under kAggregated before data confirms it.
  double expected_samples_per_window = 10.0;
  std::uint64_t sampling_seed = 0x9E3779B97F4A7C15ull;
};

struct StreamerStats {
  std::uint64_t batches_sent = 0;
  std::uint64_t blocks_sent = 0;
  std::uint64_t samples_sent = 0;
  std::uint64_t payload_bytes_sent = 0;
  /// Samples removed by degraded-mode thinning (declared via mode).
  std::uint64_t samples_thinned = 0;
  /// Whole batches dropped under the shed guard (declared via gap).
  std::uint64_t batches_dropped = 0;
  std::uint64_t samples_dropped = 0;
  std::uint64_t degrade_announcements = 0;
  std::uint64_t mode_changes = 0;
};

class BlockStreamer {
 public:
  /// Called on every mode change with the new mode and the expected keep
  /// fraction — the hook that shrinks Cs: a DustClient scales its advertised
  /// monitoring volume by this and the manager re-places load off the
  /// congested destination on the next STAT.
  using ModeListener =
      std::function<void(telemetry::DegradeMode, double keep_fraction)>;

  BlockStreamer(wire::SocketTransport& transport, telemetry::Tsdb& tsdb,
                BlockStreamerConfig config);

  void set_mode_listener(ModeListener listener) {
    mode_listener_ = std::move(listener);
  }

  /// Causal parent for the data-block spans this streamer records (one
  /// "data_blocks" instant per shipped batch, track "streamer-<owner>").
  /// A DustClient passes its last_host_trace() so the batches hang under
  /// the offload chain that placed the agents here; the context also rides
  /// DataBlocksBody::trace so the collector parents its ingest span on the
  /// same chain across processes.
  void set_trace(const obs::TraceContext& trace) { trace_ = trace; }
  [[nodiscard]] obs::TraceContext trace() const noexcept { return trace_; }

  /// One streaming tick: probe backpressure (walking the degradation ladder
  /// if needed), drain every series' sealed blocks, thin them per the
  /// current mode, coalesce into frames, and hand them to the transport.
  /// Returns the number of kDataBlocks frames emitted.
  std::size_t pump();

  /// Seal all active blocks, then pump — call at shutdown so the tail of
  /// every series reaches the collector.
  std::size_t flush();

  [[nodiscard]] const StreamerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] telemetry::DegradeMode mode() const noexcept {
    return policy_.mode;
  }
  /// Expected surviving fraction of the raw stream under the current mode.
  [[nodiscard]] double keep_fraction() const noexcept;
  /// A loss declaration is merged but not yet on the wire (peer queue was
  /// completely full) — pump() retries it before any new data ships.
  [[nodiscard]] bool announcement_pending() const noexcept {
    return announce_pending_;
  }

 private:
  struct PendingBlock {
    telemetry::CompressedBlock block;
    std::string series;
  };

  void update_mode();
  void announce(std::uint64_t gap_from, std::uint64_t gap_to,
                std::uint32_t samples_dropped);
  void flush_announcement();

  std::size_t ship(std::vector<PendingBlock> batch);

  wire::SocketTransport* transport_;
  telemetry::Tsdb* tsdb_;
  BlockStreamerConfig config_;
  obs::TraceContext trace_{};  ///< parent for per-batch spans
  std::string span_track_;     ///< "streamer-<owner>", precomputed
  telemetry::SamplingPolicy policy_;
  ModeListener mode_listener_;
  StreamerStats stats_;
  std::unordered_map<std::string, std::uint64_t> next_block_seq_;
  std::uint64_t next_batch_seq_ = 0;

  /// Deferred-announcement accumulator: when the peer queue is completely
  /// full a kNormal announcement would displace a queued kLow data frame —
  /// silent loss of a batch already counted as sent. Instead the declaration
  /// merges here and flushes at the next tick with queue room; it still
  /// precedes any later data batch (none ship while the queue is over the
  /// shed guard, and kNormal drains before kLow once enqueued).
  bool announce_pending_ = false;
  std::uint64_t pending_gap_from_ = 1;   ///< from > to = no gap accumulated
  std::uint64_t pending_gap_to_ = 0;
  std::uint32_t pending_samples_dropped_ = 0;
};

}  // namespace dust::dataplane
