// Domain partitioning for federated DUST deployments (DESIGN.md §16).
//
// A federated fleet splits the topology into manager domains: each shard
// runs an unmodified core::DustManager over its own slice of the network
// and the federation layer stitches the slices together with capacity
// digests and offload delegation. The partitioner produces the static
// node -> shard map both sides agree on:
//
//   - fat-tree topologies cut on pod boundaries (the natural cut: pods are
//     internally dense, pod-to-pod traffic already crosses the core), with
//     core switches spread round-robin across shards;
//   - arbitrary graphs fall back to a balanced edge-cut built from the
//     zone partitioner's BFS-grown connected regions, greedily packed into
//     shards by size.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/topology.hpp"

namespace dust::federation {

/// A complete assignment of every node to exactly one manager domain.
struct DomainPartition {
  /// node -> shard index (dense, size == node_count).
  std::vector<std::uint32_t> home;
  /// shard -> member nodes, in ascending node order.
  std::vector<std::vector<graph::NodeId>> members;
  /// Edges whose endpoints live in different shards (the cut).
  std::size_t cut_edges = 0;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return members.size();
  }
  [[nodiscard]] std::uint32_t shard_of(graph::NodeId node) const {
    return home.at(node);
  }
  [[nodiscard]] bool in_domain(graph::NodeId node,
                               std::uint32_t shard) const {
    return home.at(node) == shard;
  }
};

/// Pod-boundary cut: pods are assigned to shards in contiguous blocks
/// (pod p -> shard p*shards/k), core switches round-robin. Requires
/// 1 <= shards <= pod_count.
[[nodiscard]] DomainPartition partition_fat_tree(const graph::FatTree& topo,
                                                 std::size_t shards);

/// Balanced edge-cut fallback for arbitrary connected graphs: BFS-grown
/// connected zones (core::partition_zones) packed greedily into `shards`
/// bins, largest zone first into the currently smallest shard. Requires
/// 1 <= shards <= node_count.
[[nodiscard]] DomainPartition partition_balanced(const graph::Graph& graph,
                                                 std::size_t shards);

/// Edges of `graph` whose endpoints map to different shards under `home`.
[[nodiscard]] std::size_t count_cut_edges(
    const graph::Graph& graph, const std::vector<std::uint32_t>& home);

}  // namespace dust::federation
