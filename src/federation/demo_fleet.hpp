// The federated two-shard demo fleet (DESIGN.md §16), shared by
// examples/federation_daemon and the forked failover test so both sides
// agree on the exact scenario and cut.
//
// A 12-node ring split into two 6-node domains:
//
//   shard 0 = {0..5}: node 0 busy at 95% (excess 15), node 1 the only local
//                     candidate with spare 8 — the local solve absorbs 8 and
//                     must delegate the residual 7 across the cut;
//   shard 1 = {6..11}: node 6 (spare 30) and node 7 (spare 20) candidates,
//                      everything else neutral — the digest advertises 50
//                      spare and the grant lands on node 6.
#pragma once

#include "core/nmdb.hpp"
#include "federation/partition.hpp"

namespace dust::federation {

inline constexpr std::size_t kDemoFleetNodeCount = 12;
inline constexpr std::size_t kDemoFleetShards = 2;

/// Scenario text in the core::load_scenario format.
[[nodiscard]] const char* demo_fleet_scenario_text();
[[nodiscard]] core::Nmdb demo_fleet_nmdb();
/// The hand-built 6/6 split (nodes 0..5 -> shard 0, 6..11 -> shard 1).
[[nodiscard]] DomainPartition demo_fleet_partition();

}  // namespace dust::federation
