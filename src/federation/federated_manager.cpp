#include "federation/federated_manager.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace dust::federation {

namespace {

/// Mask every out-of-domain node non-offload-capable before the inner
/// manager ever sees the NMDB: the local solver can then never plan onto
/// foreign nodes, and — since foreign clients STAT to their own shard —
/// foreign nodes never classify busy here either. Cross-domain capacity is
/// reachable exclusively through the delegation protocol.
core::Nmdb mask_foreign_domains(core::Nmdb nmdb,
                                const DomainPartition& partition,
                                std::uint32_t shard) {
  for (graph::NodeId v = 0; v < partition.home.size(); ++v)
    if (partition.home[v] != shard) nmdb.set_offload_capable(v, false);
  return nmdb;
}

core::ManagerConfig prepare_inner_config(const FederatedManagerConfig& config,
                                         std::int64_t& cycle_period_ms) {
  core::ManagerConfig inner = config.manager;
  // The federated cycle (local solve + delegation sweep) owns the cadence;
  // push the inner manager's own placement task past any realistic horizon
  // so start() contributes keepalive supervision and message handling only.
  cycle_period_ms = inner.placement_period_ms;
  inner.placement_period_ms = std::int64_t{1} << 40;
  if (inner.endpoint == core::manager_endpoint())
    inner.endpoint = shard_manager_endpoint(config.shard);
  // A shard must place what its domain can hold and leave the residual for
  // delegation — a strict solve that refuses the whole scenario because the
  // domain alone is short of spare would delegate everything instead of the
  // overflow (and diverge from the O8 oracle's per-shard model).
  inner.optimizer.allow_partial = true;
  return inner;
}

}  // namespace

std::string federation_endpoint(std::uint32_t shard) {
  return "dust-fed-" + std::to_string(shard);
}

std::string standby_federation_endpoint(std::uint32_t shard) {
  return federation_endpoint(shard) + "-standby";
}

std::string shard_manager_endpoint(std::uint32_t shard) {
  return "dust-manager-shard" + std::to_string(shard);
}

FederatedManager::FederatedManager(sim::Simulator& sim,
                                   sim::TransportBase& transport,
                                   core::Nmdb nmdb,
                                   const DomainPartition& partition,
                                   FederatedManagerConfig config)
    : sim_(&sim),
      config_(std::move(config)),
      home_(partition.home),
      manager_(sim, transport,
               mask_foreign_domains(std::move(nmdb), partition, config_.shard),
               prepare_inner_config(config_, cycle_period_ms_)),
      epoch_(config_.epoch) {
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  metrics_.digests_tx = &registry.counter("dust_fed_digests_tx_total");
  metrics_.digests_rx = &registry.counter("dust_fed_digests_rx_total");
  metrics_.delegations_requested =
      &registry.counter("dust_fed_delegations_requested_total");
  metrics_.delegations_granted =
      &registry.counter("dust_fed_delegations_granted_total");
  metrics_.delegations_rejected =
      &registry.counter("dust_fed_delegations_rejected_total");
  metrics_.delegations_confirmed =
      &registry.counter("dust_fed_delegations_confirmed_total");
  metrics_.stale_frames = &registry.counter("dust_fed_stale_frames_total");
  metrics_.takeovers = &registry.counter("dust_fed_takeovers_total");
  metrics_.epoch = &registry.gauge("dust_fed_epoch");
  metrics_.neighbor_spare = &registry.gauge("dust_fed_neighbor_spare");
  metrics_.epoch->set(static_cast<double>(epoch_));
}

void FederatedManager::add_peer(std::uint32_t shard) {
  if (std::find(peer_shards_.begin(), peer_shards_.end(), shard) ==
      peer_shards_.end())
    peer_shards_.push_back(shard);
}

void FederatedManager::add_observer(std::string endpoint) {
  if (std::find(observers_.begin(), observers_.end(), endpoint) ==
      observers_.end())
    observers_.push_back(std::move(endpoint));
}

void FederatedManager::start() {
  started_ = true;
  started_at_ = sim_->now();
  if (config_.standby) return;  // passive until become_primary()
  manager_.start();
  send_hello();
  start_primary_tasks();
}

void FederatedManager::stop() {
  cycle_task_.reset();
  digest_task_.reset();
  manager_.stop();
  started_ = false;
}

void FederatedManager::start_primary_tasks() {
  broadcast_digest();
  cycle_task_ = std::make_unique<sim::PeriodicTask>(
      *sim_, sim_->now() + cycle_period_ms_, cycle_period_ms_,
      [this](sim::TimeMs) { run_cycle(); });
  digest_task_ = std::make_unique<sim::PeriodicTask>(
      *sim_, sim_->now() + config_.digest_period_ms, config_.digest_period_ms,
      [this](sim::TimeMs) {
        broadcast_digest();
        send_hello();
      });
}

bool FederatedManager::send_to_endpoint(const std::string& endpoint,
                                        wire::Frame frame) {
  frame.from = config_.standby ? standby_federation_endpoint(config_.shard)
                               : federation_endpoint(config_.shard);
  frame.to = endpoint;
  if (!peer_sender_) return false;
  return peer_sender_(std::move(frame));
}

void FederatedManager::broadcast(
    const std::function<wire::Frame(const std::string& to)>& make) {
  for (std::uint32_t peer : peer_shards_)
    send_to_endpoint(federation_endpoint(peer), make(federation_endpoint(peer)));
  for (const std::string& endpoint : observers_)
    send_to_endpoint(endpoint, make(endpoint));
}

void FederatedManager::send_hello() {
  wire::ShardHelloBody body;
  body.shard = config_.shard;
  body.epoch = epoch_;
  body.standby = config_.standby;
  body.endpoint = config_.standby ? standby_federation_endpoint(config_.shard)
                                  : federation_endpoint(config_.shard);
  broadcast([&](const std::string& to) {
    return wire::shard_hello_frame({}, to, body);
  });
}

double FederatedManager::residual_spare(
    graph::NodeId v, const std::map<graph::NodeId, double>& booked) const {
  const core::Nmdb& nmdb = manager_.nmdb();
  const double util = nmdb.network().node_utilization(v);
  double spare = nmdb.thresholds(v).spare_capacity(util);
  auto it = booked.find(v);
  if (it != booked.end()) spare -= it->second;
  return spare;
}

void FederatedManager::broadcast_digest() {
  const core::Nmdb& nmdb = manager_.nmdb();
  // Book every live reservation against its destination so a digest never
  // advertises spare that an in-flight AgentTransfer is about to consume
  // (amounts convert through the platform-factor ratio, same as placement).
  std::map<graph::NodeId, double> booked;
  for (const core::ActiveOffload& offload : manager_.active_offloads())
    booked[offload.destination] += offload.amount *
                                   nmdb.platform_factor(offload.busy) /
                                   nmdb.platform_factor(offload.destination);
  wire::CapacityDigestBody body;
  body.shard = config_.shard;
  body.epoch = epoch_;
  body.seq = ++digest_seq_;
  std::vector<graph::NodeId> nodes = nmdb.candidate_nodes();
  body.candidate_count = static_cast<std::uint32_t>(nodes.size());
  for (graph::NodeId v : nodes)
    body.spare += std::max(0.0, residual_spare(v, booked));
  nmdb.busy_nodes_into(nodes);
  body.busy_count = static_cast<std::uint32_t>(nodes.size());
  for (graph::NodeId v : nodes)
    body.excess += nmdb.thresholds(v).excess_load(
        nmdb.network().node_utilization(v));
  broadcast([&](const std::string& to) {
    metrics_.digests_tx->inc();
    ++stats_.digests_sent;
    return wire::capacity_digest_frame({}, to, body);
  });
}

std::size_t FederatedManager::run_cycle() {
  if (config_.standby) return 0;
  expire_pending();
  std::size_t created = manager_.run_placement_cycle();
  created += delegate_overflow();
  return created;
}

void FederatedManager::expire_pending() {
  const sim::TimeMs now = sim_->now();
  for (auto it = pending_.begin(); it != pending_.end();)
    if (now - it->second.sent_at >= config_.delegation_timeout_ms)
      it = pending_.erase(it);
    else
      ++it;
}

std::size_t FederatedManager::delegate_overflow() {
  const core::Nmdb& nmdb = manager_.nmdb();
  const sim::TimeMs now = sim_->now();
  // Residual excess per busy node: what the local solve (plus everything
  // already delegated or in flight) could not place inside the domain.
  std::map<graph::NodeId, double> handled;
  for (const core::ActiveOffload& offload : manager_.active_offloads())
    handled[offload.busy] += offload.amount;
  for (const auto& [id, pending] : pending_) handled[pending.busy] += pending.amount;

  double neighbor_spare = 0.0;
  for (const auto& [shard, digest] : digests_)
    if (now - digest.received_at <= config_.digest_stale_ms)
      neighbor_spare += std::max(0.0, digest.spare_left);
  metrics_.neighbor_spare->set(neighbor_spare);

  std::size_t delegated = 0;
  for (graph::NodeId busy : nmdb.busy_nodes()) {
    const double excess = nmdb.thresholds(busy).excess_load(
        nmdb.network().node_utilization(busy));
    double residual = excess;
    auto it = handled.find(busy);
    if (it != handled.end()) residual -= it->second;
    if (residual < config_.min_delegation_amount) continue;

    // Freshest digest wins ties; otherwise the neighbor advertising the
    // most (optimistically decremented) spare.
    ReceivedDigest* best = nullptr;
    std::uint32_t best_shard = 0;
    for (auto& [shard, digest] : digests_) {
      if (now - digest.received_at > config_.digest_stale_ms) continue;
      if (digest.spare_left < config_.min_delegation_amount) continue;
      if (!best || digest.spare_left > best->spare_left) {
        best = &digest;
        best_shard = shard;
      }
    }
    if (!best) continue;

    const double amount = std::min(residual, best->spare_left);
    const std::uint32_t total_agents = nmdb.agent_count(busy);
    std::uint32_t agents = 0;
    if (total_agents > 0 && excess > 0.0)
      agents = std::min<std::uint32_t>(
          total_agents,
          std::max<std::uint32_t>(
              1, static_cast<std::uint32_t>(
                     std::lround(total_agents * amount / excess))));

    wire::DelegateRequestBody body;
    body.shard = config_.shard;
    body.epoch = epoch_;
    body.delegation_id = next_delegation_id_++;
    body.busy = busy;
    body.amount = amount;
    body.agents = agents;
    body.platform_factor = nmdb.platform_factor(busy);
    // Book before sending: over an in-process router the grant can arrive
    // synchronously, and on_delegate_reply must find the pending entry.
    best->spare_left -= amount;
    pending_[body.delegation_id] =
        PendingDelegation{busy, amount, agents, best_shard, now};
    metrics_.delegations_requested->inc();
    ++stats_.delegations_requested;
    if (!send_to_endpoint(federation_endpoint(best_shard),
                          wire::delegate_request_frame(
                              {}, federation_endpoint(best_shard), body))) {
      pending_.erase(body.delegation_id);
      best->spare_left += amount;
      continue;
    }
    ++delegated;
  }
  return delegated;
}

bool FederatedManager::fence(std::uint32_t shard, std::uint64_t epoch) {
  auto [it, inserted] = peer_epochs_.try_emplace(shard, epoch);
  if (!inserted) {
    if (epoch < it->second) return false;
    it->second = epoch;
  }
  return true;
}

void FederatedManager::handle_peer_frame(wire::Frame frame) {
  std::uint32_t src = 0;
  std::uint64_t epoch = 0;
  bool from_standby = false;
  switch (frame.type) {
    case wire::FrameType::kShardHello:
      src = frame.shard_hello.shard;
      epoch = frame.shard_hello.epoch;
      from_standby = frame.shard_hello.standby;
      break;
    case wire::FrameType::kCapacityDigest:
      src = frame.capacity_digest.shard;
      epoch = frame.capacity_digest.epoch;
      break;
    case wire::FrameType::kDelegateRequest:
      src = frame.delegate_request.shard;
      epoch = frame.delegate_request.epoch;
      break;
    case wire::FrameType::kDelegateReply:
      src = frame.delegate_reply.shard;
      epoch = frame.delegate_reply.epoch;
      break;
    case wire::FrameType::kDomainHandoff:
      src = frame.domain_handoff.domain;
      epoch = frame.domain_handoff.epoch;
      break;
    default:
      return;  // not a federation frame
  }
  // A standby watches its own primary's traffic: any non-standby frame from
  // the home shard proves the primary is alive.
  if (src == config_.shard && !from_standby)
    last_primary_activity_ = sim_->now();
  if (!fence(src, epoch)) {
    metrics_.stale_frames->inc();
    ++stats_.stale_frames_rejected;
    return;
  }
  switch (frame.type) {
    case wire::FrameType::kShardHello:
      on_hello(frame.shard_hello);
      break;
    case wire::FrameType::kCapacityDigest:
      on_digest(frame.capacity_digest);
      break;
    case wire::FrameType::kDelegateRequest:
      on_delegate_request(frame.delegate_request);
      break;
    case wire::FrameType::kDelegateReply:
      on_delegate_reply(frame.delegate_reply);
      break;
    case wire::FrameType::kDomainHandoff:
      on_handoff(frame.domain_handoff);
      break;
    default:
      break;
  }
}

void FederatedManager::on_hello(const wire::ShardHelloBody& body) {
  // The fence already recorded the epoch; nothing else to track — digests
  // carry the load state, hellos are liveness + role.
  (void)body;
}

void FederatedManager::on_digest(const wire::CapacityDigestBody& body) {
  if (body.shard == config_.shard) return;  // own-shard echo (standby watch)
  auto [it, inserted] = digests_.try_emplace(body.shard);
  if (!inserted && body.epoch == it->second.body.epoch &&
      body.seq <= it->second.body.seq)
    return;  // out-of-order digest lost the race
  // Carry forward reservations made against the previous digest that are
  // still unanswered, so a refresh cannot double-book the same spare.
  double in_flight = 0.0;
  for (const auto& [id, pending] : pending_)
    if (pending.shard == body.shard) in_flight += pending.amount;
  it->second.body = body;
  it->second.received_at = sim_->now();
  it->second.spare_left = body.spare - in_flight;
  metrics_.digests_rx->inc();
  ++stats_.digests_received;
}

void FederatedManager::on_delegate_request(const wire::DelegateRequestBody& body) {
  const auto reject = [&] {
    wire::DelegateReplyBody reply;
    reply.shard = config_.shard;
    reply.epoch = epoch_;
    reply.delegation_id = body.delegation_id;
    reply.granted = false;
    send_to_endpoint(federation_endpoint(body.shard),
                     wire::delegate_reply_frame(
                         {}, federation_endpoint(body.shard), reply));
    metrics_.delegations_rejected->inc();
    ++stats_.delegations_rejected;
  };
  if (config_.standby || !started_) return reject();

  core::Nmdb& nmdb = manager_.nmdb();
  // The foreign busy node's persona: record its platform factor so the
  // amount converts into destination capacity the same way in-domain
  // placement converts it.
  nmdb.set_platform_factor(body.busy, body.platform_factor);
  std::map<graph::NodeId, double> booked;
  for (const core::ActiveOffload& offload : manager_.active_offloads())
    booked[offload.destination] += offload.amount *
                                   nmdb.platform_factor(offload.busy) /
                                   nmdb.platform_factor(offload.destination);
  graph::NodeId best = graph::kInvalidNode;
  double best_spare = 0.0;
  for (graph::NodeId v : nmdb.candidate_nodes()) {
    const double spare = residual_spare(v, booked);
    if (best == graph::kInvalidNode || spare > best_spare) {
      best = v;
      best_spare = spare;
    }
  }
  if (best == graph::kInvalidNode) return reject();
  const double needed = body.amount * body.platform_factor /
                        nmdb.platform_factor(best);
  if (best_spare < needed) return reject();

  const std::uint64_t request_id = manager_.adopt_external_offload(
      body.busy, best, body.amount, body.agents);
  adopted_[{body.shard, body.delegation_id}] = request_id;
  wire::DelegateReplyBody reply;
  reply.shard = config_.shard;
  reply.epoch = epoch_;
  reply.delegation_id = body.delegation_id;
  reply.granted = true;
  reply.destination = best;
  reply.amount = body.amount;
  send_to_endpoint(federation_endpoint(body.shard),
                   wire::delegate_reply_frame(
                       {}, federation_endpoint(body.shard), reply));
  metrics_.delegations_granted->inc();
  ++stats_.delegations_granted;
}

void FederatedManager::on_delegate_reply(const wire::DelegateReplyBody& body) {
  auto it = pending_.find(body.delegation_id);
  if (it == pending_.end()) return;  // expired or superseded; see DESIGN §16
  const PendingDelegation pending = it->second;
  pending_.erase(it);
  if (!body.granted) {
    ++stats_.delegations_refused;
    return;
  }
  manager_.create_delegated_offload(pending.busy, body.destination,
                                    body.amount, pending.agents);
  metrics_.delegations_confirmed->inc();
  ++stats_.delegations_confirmed;
}

void FederatedManager::on_handoff(const wire::DomainHandoffBody& body) {
  // The fence has recorded the new epoch: nothing from the superseded
  // primary can pass anymore. Unanswered delegation requests to that domain
  // died with it — forget them (the carried reservation evaporates with the
  // next digest from the new primary).
  for (auto it = pending_.begin(); it != pending_.end();)
    if (it->second.shard == body.domain)
      it = pending_.erase(it);
    else
      ++it;
  // Delegations we adopted FROM that domain: the new primary re-solves from
  // scratch and re-delegates residual excess, so drop the bookkeeping to
  // un-book the capacity (drop_offload sends nothing — agents the busy
  // client already transferred keep running on the destination until its
  // own shard releases or re-plans them; no placement is lost).
  for (auto it = adopted_.begin(); it != adopted_.end();)
    if (it->first.first == body.domain) {
      manager_.drop_offload(it->second);
      it = adopted_.erase(it);
    } else {
      ++it;
    }
}

void FederatedManager::become_primary() {
  if (!config_.standby) return;
  config_.standby = false;
  // Fence out everything the dead primary ever sent: our epoch must exceed
  // the highest epoch any peer could have recorded for this shard.
  auto it = peer_epochs_.find(config_.shard);
  const std::uint64_t primary_epoch = it == peer_epochs_.end() ? 0 : it->second;
  epoch_ = std::max(epoch_, primary_epoch) + 1;
  metrics_.epoch->set(static_cast<double>(epoch_));
  metrics_.takeovers->inc();
  ++stats_.takeovers;
  manager_.start();
  send_hello();
  wire::DomainHandoffBody handoff;
  handoff.domain = config_.shard;
  handoff.epoch = epoch_;
  handoff.endpoint = federation_endpoint(config_.shard);
  broadcast([&](const std::string& to) {
    return wire::domain_handoff_frame({}, to, handoff);
  });
  start_primary_tasks();
}

const wire::CapacityDigestBody* FederatedManager::digest_of(
    std::uint32_t shard) const {
  auto it = digests_.find(shard);
  return it == digests_.end() ? nullptr : &it->second.body;
}

std::uint64_t FederatedManager::peer_epoch(std::uint32_t shard) const {
  auto it = peer_epochs_.find(shard);
  return it == peer_epochs_.end() ? 0 : it->second;
}

bool FederatedManager::primary_silent() const {
  if (!config_.standby || !started_) return false;
  const sim::TimeMs since = std::max(last_primary_activity_, started_at_);
  return sim_->now() - since > config_.primary_silence_timeout_ms;
}

}  // namespace dust::federation
