// FederatedManager — one manager shard of a federated DUST fleet
// (DESIGN.md §16).
//
// Wraps an unmodified core::DustManager over a domain slice of the
// topology (out-of-domain nodes are masked non-offload-capable, and their
// clients report to other shards, so they never look busy here). On top of
// the local solve it speaks the manager-to-manager wire extension:
//
//   ShardHello       — shard id / epoch / standby announcement
//   CapacityDigest   — periodic aggregated spare/excess (never per-node)
//   DelegateRequest  — "host this overflow busy node for me"
//   DelegateReply    — grant (with a concrete destination) or reject
//   DomainHandoff    — epoch-fenced ownership transfer after failover
//
// Delegation: when the local solve leaves a busy node with residual excess
// (domain out of spare), the shard asks the neighbor whose latest digest
// shows the most spare. The granting shard picks a concrete destination,
// books it via DustManager::adopt_external_offload (keepalive supervision
// of the destination lives with its home shard), and the origin shard
// creates the busy-side relationship via create_delegated_offload. The
// AgentTransfer then flows client-to-client exactly as in-domain.
//
// Epoch fencing: every federation frame carries (shard, epoch). A frame
// whose epoch is below the highest seen for that shard is rejected and
// counted — after a failover bumps the epoch, nothing from the dead
// primary is ever acted on.
//
// Failover: a standby shard instance stays passive (no solving, no
// digests) while watching primary traffic; when the primary falls silent
// past the timeout the owner calls become_primary(), which bumps the
// epoch, starts the solver, and broadcasts ShardHello + DomainHandoff so
// peers drop in-flight delegations against the dead epoch. Clients re-home
// through the wire layer's reconnect listener (DustClient::rehome).
//
// Transport-agnostic: peer frames leave through an injected sender and
// arrive through handle_peer_frame(). The daemon wires both to a
// wire::SocketTransport (set_federation_handler / send_frame); in-process
// tests wire shards directly to each other.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/manager.hpp"
#include "federation/partition.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/transport.hpp"
#include "wire/codec.hpp"

namespace dust::federation {

/// Federation-plane endpoint of shard `s`: "dust-fed-<s>".
[[nodiscard]] std::string federation_endpoint(std::uint32_t shard);
/// Federation-plane endpoint of shard `s`'s standby: "dust-fed-<s>-standby".
[[nodiscard]] std::string standby_federation_endpoint(std::uint32_t shard);
/// Control-plane endpoint the shard's DustManager answers on:
/// "dust-manager-shard<s>". Clients homed to the shard set
/// ClientConfig::manager to this.
[[nodiscard]] std::string shard_manager_endpoint(std::uint32_t shard);

struct FederatedManagerConfig {
  std::uint32_t shard = 0;
  std::uint64_t epoch = 1;
  /// Passive standby: no solving, no digests, no delegation until
  /// become_primary().
  bool standby = false;
  /// Cross-domain capacity digest broadcast cadence.
  std::int64_t digest_period_ms = 5000;
  /// Digests older than this are ignored when picking a delegation target.
  std::int64_t digest_stale_ms = 30000;
  /// Residual busy excess (capacity-percent) below this is not worth a
  /// cross-domain delegation.
  double min_delegation_amount = 1.0;
  /// An unanswered DelegateRequest is forgotten (and may be re-issued)
  /// after this long.
  std::int64_t delegation_timeout_ms = 30000;
  /// Standby: primary silence past this is a takeover signal
  /// (primary_silent()). The owner decides when to act on it.
  std::int64_t primary_silence_timeout_ms = 15000;
  /// Inner manager configuration. `manager.placement_period_ms` becomes the
  /// federated cycle period (local solve + delegation sweep); the default
  /// endpoint is replaced with shard_manager_endpoint(shard).
  core::ManagerConfig manager;
};

/// One in-flight DelegateRequest this shard issued.
struct PendingDelegation {
  graph::NodeId busy = graph::kInvalidNode;
  double amount = 0.0;
  std::uint32_t agents = 0;
  std::uint32_t shard = 0;  ///< the neighbor asked
  sim::TimeMs sent_at = 0;
};

/// Aggregate federation telemetry (mirrored into dust_fed_* metrics).
struct FederationStats {
  std::uint64_t digests_sent = 0;
  std::uint64_t digests_received = 0;
  std::uint64_t delegations_requested = 0;
  std::uint64_t delegations_granted = 0;    ///< we granted a peer's request
  std::uint64_t delegations_rejected = 0;   ///< we rejected a peer's request
  std::uint64_t delegations_confirmed = 0;  ///< a peer granted our request
  std::uint64_t delegations_refused = 0;    ///< a peer rejected our request
  std::uint64_t stale_frames_rejected = 0;
  std::uint64_t takeovers = 0;
};

class FederatedManager {
 public:
  /// `nmdb` must span the full topology; nodes outside
  /// `partition.members[config.shard]` are masked non-offload-capable so
  /// the local solver never plans onto them.
  FederatedManager(sim::Simulator& sim, sim::TransportBase& transport,
                   core::Nmdb nmdb, const DomainPartition& partition,
                   FederatedManagerConfig config);

  FederatedManager(const FederatedManager&) = delete;
  FederatedManager& operator=(const FederatedManager&) = delete;

  /// How federation frames leave this shard. The sender receives a fully
  /// addressed frame (from = this shard's federation endpoint, to = the
  /// peer's); return false to report a send failure. Unset: frames are
  /// dropped silently.
  void set_peer_sender(std::function<bool(wire::Frame&&)> sender) {
    peer_sender_ = std::move(sender);
  }
  /// Declare a neighboring shard (digest/hello/handoff broadcast target).
  void add_peer(std::uint32_t shard);
  /// Additional broadcast destination (e.g. this shard's own standby, which
  /// watches primary traffic to detect silence).
  void add_observer(std::string endpoint);

  /// Primary: start periodic federated cycles (local solve + delegation),
  /// digest broadcasts, and keepalive supervision; announces via
  /// ShardHello. Standby: records the start but stays passive.
  void start();
  void stop();

  /// Feed one received federation frame (any of the five types; others are
  /// ignored). Epoch-fenced: stale frames are counted and dropped.
  void handle_peer_frame(wire::Frame frame);

  /// One federated cycle: local placement cycle, then delegate residual
  /// busy excess to the least-loaded neighbor (by latest digest). Returns
  /// offloads created locally plus delegations issued.
  std::size_t run_cycle();

  /// Broadcast a CapacityDigest to every peer and observer now.
  void broadcast_digest();
  /// Broadcast a ShardHello now.
  void send_hello();

  /// Standby -> primary: bump the epoch past everything seen from the old
  /// primary, start solving, and broadcast ShardHello + DomainHandoff.
  /// No-op when already primary.
  void become_primary();

  [[nodiscard]] bool primary() const noexcept { return !config_.standby; }
  [[nodiscard]] std::uint32_t shard() const noexcept { return config_.shard; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] core::DustManager& manager() noexcept { return manager_; }
  [[nodiscard]] const core::DustManager& manager() const noexcept {
    return manager_;
  }
  [[nodiscard]] bool in_domain(graph::NodeId node) const {
    return home_.at(node) == config_.shard;
  }
  [[nodiscard]] const FederationStats& stats() const noexcept {
    return stats_;
  }
  /// Latest digest received from `shard`, if any.
  [[nodiscard]] const wire::CapacityDigestBody* digest_of(
      std::uint32_t shard) const;
  /// Highest epoch seen from `shard` (0 when never heard from).
  [[nodiscard]] std::uint64_t peer_epoch(std::uint32_t shard) const;
  [[nodiscard]] std::size_t pending_delegations() const noexcept {
    return pending_.size();
  }
  /// Sim-time of the last frame seen from this shard's primary (standby
  /// silence detection). 0 until the first frame.
  [[nodiscard]] sim::TimeMs last_primary_activity() const noexcept {
    return last_primary_activity_;
  }
  /// Standby only: has the primary been silent past the configured timeout?
  [[nodiscard]] bool primary_silent() const;

 private:
  struct ReceivedDigest {
    wire::CapacityDigestBody body;
    sim::TimeMs received_at = 0;
    /// Spare remaining after optimistic local decrements (delegations
    /// issued against this digest before the next one arrives).
    double spare_left = 0.0;
  };

  /// Global-registry handles (dust_fed_*), resolved once at construction.
  struct Metrics {
    obs::Counter* digests_tx = nullptr;
    obs::Counter* digests_rx = nullptr;
    obs::Counter* delegations_requested = nullptr;
    obs::Counter* delegations_granted = nullptr;
    obs::Counter* delegations_rejected = nullptr;
    obs::Counter* delegations_confirmed = nullptr;
    obs::Counter* stale_frames = nullptr;
    obs::Counter* takeovers = nullptr;
    obs::Gauge* epoch = nullptr;
    obs::Gauge* neighbor_spare = nullptr;  ///< sum of fresh digest spares
  };

  /// True when (shard, epoch) passes the fence; updates the recorded epoch.
  bool fence(std::uint32_t shard, std::uint64_t epoch);
  void on_hello(const wire::ShardHelloBody& body);
  void on_digest(const wire::CapacityDigestBody& body);
  void on_delegate_request(const wire::DelegateRequestBody& body);
  void on_delegate_reply(const wire::DelegateReplyBody& body);
  void on_handoff(const wire::DomainHandoffBody& body);
  std::size_t delegate_overflow();
  bool send_to_endpoint(const std::string& endpoint, wire::Frame frame);
  void broadcast(const std::function<wire::Frame(const std::string& to)>& make);
  void start_primary_tasks();
  /// Reservation-adjusted spare capacity of node `v` given `booked`.
  [[nodiscard]] double residual_spare(
      graph::NodeId v, const std::map<graph::NodeId, double>& booked) const;
  void expire_pending();

  sim::Simulator* sim_;
  FederatedManagerConfig config_;
  std::vector<std::uint32_t> home_;  ///< node -> shard (from the partition)
  std::int64_t cycle_period_ms_ = 0;
  core::DustManager manager_;
  Metrics metrics_;
  std::uint64_t epoch_ = 1;
  std::uint64_t digest_seq_ = 0;
  std::uint64_t next_delegation_id_ = 1;
  std::function<bool(wire::Frame&&)> peer_sender_;
  std::vector<std::uint32_t> peer_shards_;
  std::vector<std::string> observers_;
  std::map<std::uint32_t, std::uint64_t> peer_epochs_;
  std::map<std::uint32_t, ReceivedDigest> digests_;
  std::map<std::uint64_t, PendingDelegation> pending_;
  /// Delegations we granted: (origin shard, delegation id) -> request_id in
  /// the inner manager (DomainHandoff bookkeeping).
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> adopted_;
  sim::TimeMs last_primary_activity_ = 0;
  sim::TimeMs started_at_ = 0;
  bool started_ = false;
  std::unique_ptr<sim::PeriodicTask> cycle_task_;
  std::unique_ptr<sim::PeriodicTask> digest_task_;
  FederationStats stats_;
};

}  // namespace dust::federation
