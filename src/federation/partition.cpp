#include "federation/partition.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/zones.hpp"

namespace dust::federation {

namespace {

DomainPartition finalize(const graph::Graph& graph,
                         std::vector<std::uint32_t> home,
                         std::size_t shards) {
  DomainPartition partition;
  partition.home = std::move(home);
  partition.members.resize(shards);
  for (graph::NodeId v = 0; v < partition.home.size(); ++v)
    partition.members[partition.home[v]].push_back(v);
  partition.cut_edges = count_cut_edges(graph, partition.home);
  return partition;
}

}  // namespace

std::size_t count_cut_edges(const graph::Graph& graph,
                            const std::vector<std::uint32_t>& home) {
  std::size_t cut = 0;
  for (graph::EdgeId e = 0; e < graph.edge_count(); ++e) {
    const graph::Edge& edge = graph.edge(e);
    if (home.at(edge.a) != home.at(edge.b)) ++cut;
  }
  return cut;
}

DomainPartition partition_fat_tree(const graph::FatTree& topo,
                                   std::size_t shards) {
  if (shards == 0 || shards > topo.pod_count())
    throw std::invalid_argument(
        "partition_fat_tree: require 1 <= shards <= pod_count");
  const graph::Graph& graph = topo.graph();
  std::vector<std::uint32_t> home(graph.node_count(), 0);
  // Pods in contiguous blocks: with k pods over s shards, pod p lands on
  // shard p*s/k — block sizes differ by at most one.
  for (std::uint32_t p = 0; p < topo.pod_count(); ++p) {
    const auto shard = static_cast<std::uint32_t>(p * shards / topo.pod_count());
    for (std::uint32_t i = 0; i < topo.aggregation_per_pod(); ++i)
      home[topo.aggregation(p, i)] = shard;
    for (std::uint32_t i = 0; i < topo.edge_per_pod(); ++i)
      home[topo.edge_switch(p, i)] = shard;
  }
  // Core switches belong to no pod; spread them round-robin so every shard
  // keeps a share of the spine's (usually idle) capacity.
  for (std::uint32_t i = 0; i < topo.core_count(); ++i)
    home[topo.core(i)] = static_cast<std::uint32_t>(i % shards);
  return finalize(graph, std::move(home), shards);
}

DomainPartition partition_balanced(const graph::Graph& graph,
                                   std::size_t shards) {
  if (shards == 0 || shards > graph.node_count())
    throw std::invalid_argument(
        "partition_balanced: require 1 <= shards <= node_count");
  // Connected building blocks sized so that `shards` of them cover the
  // graph; the zone partitioner may return more (fragments), which the
  // greedy packing below absorbs.
  const std::size_t target =
      (graph.node_count() + shards - 1) / shards;
  std::vector<core::Zone> zones = core::partition_zones(graph, target);
  // Largest zone first into the currently smallest shard: classic LPT
  // balancing, deterministic via the stable sort + lowest-shard tie-break.
  std::stable_sort(zones.begin(), zones.end(),
                   [](const core::Zone& a, const core::Zone& b) {
                     return a.members.size() > b.members.size();
                   });
  std::vector<std::uint32_t> home(graph.node_count(), 0);
  std::vector<std::size_t> load(shards, 0);
  for (const core::Zone& zone : zones) {
    std::uint32_t best = 0;
    for (std::uint32_t s = 1; s < shards; ++s)
      if (load[s] < load[best]) best = s;
    for (graph::NodeId v : zone.members) home[v] = best;
    load[best] += zone.members.size();
  }
  return finalize(graph, std::move(home), shards);
}

}  // namespace dust::federation
