#include "federation/demo_fleet.hpp"

#include <sstream>

#include "core/scenario.hpp"

namespace dust::federation {

const char* demo_fleet_scenario_text() {
  return R"(# federated demo: 12-node ring, two 6-node domains (see demo_fleet.hpp)
nodes 12
thresholds 80 60 10
edge 0 1 1000 1.0
edge 1 2 1000 1.0
edge 2 3 1000 1.0
edge 3 4 1000 1.0
edge 4 5 1000 1.0
edge 5 6 1000 1.0
edge 6 7 1000 1.0
edge 7 8 1000 1.0
edge 8 9 1000 1.0
edge 9 10 1000 1.0
edge 10 11 1000 1.0
edge 11 0 1000 1.0
load 0 95 80
load 1 52 10
load 2 70 10
load 3 70 10
load 4 70 10
load 5 70 10
load 6 30 10
load 7 40 10
load 8 70 10
load 9 70 10
load 10 70 10
load 11 70 10
)";
}

core::Nmdb demo_fleet_nmdb() {
  std::istringstream in(demo_fleet_scenario_text());
  return core::load_scenario(in);
}

DomainPartition demo_fleet_partition() {
  DomainPartition partition;
  partition.members.resize(kDemoFleetShards);
  for (graph::NodeId v = 0; v < kDemoFleetNodeCount; ++v) {
    const std::uint32_t shard = v < kDemoFleetNodeCount / 2 ? 0 : 1;
    partition.home.push_back(shard);
    partition.members[shard].push_back(v);
  }
  partition.cut_edges = count_cut_edges(demo_fleet_nmdb().network().graph(),
                                        partition.home);
  return partition;
}

}  // namespace dust::federation
