// dust::wire binary codec (DESIGN.md §11).
//
// Frames every core::Message — envelope passengers included — into an
// explicit little-endian layout so DUST-Manager and DUST-Clients can live in
// separate processes ("hardware-agnostic" means nothing until bytes cross a
// process boundary). Layout:
//
//   offset size  field
//   0      4     magic 0x54535544 ("DUST" read as LE u32)
//   4      4     CRC-32 (IEEE) over bytes [8, 16 + payload_len)
//   8      2     version (kWireVersion)
//   10     2     frame type tag (FrameType)
//   12     4     payload_len — bytes following the 16-byte header
//   16     ...   payload:
//                  u8      priority (sim::Priority)
//                  u8[3]   reserved (zero)
//                  u64     trace_id
//                  str16   from      (u16 length + bytes)
//                  str16   to
//                  str16   kind
//                  ...     body, schema fixed per frame type
//
// The CRC covers everything after itself — version, type, and length
// included — so any single corrupt bit outside the magic/CRC words is
// guaranteed to surface as kBadCrc, never as a silently mis-parsed frame.
// Integrity is checked before version, and the CRC span is fixed by this
// spec for all versions, so a v1 decoder rejects an intact v2 frame with
// kBadVersion (clean negotiation signal) rather than kBadCrc.
//
// Decoding never throws and never reads out of bounds: truncated input is
// kNeedMoreData (retry with more bytes), everything else is a typed error
// with a documented resynchronisation distance (DecodeResult::consumed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/messages.hpp"
#include "sim/priority.hpp"
#include "telemetry/sampling.hpp"

namespace dust::wire {

inline constexpr std::uint32_t kWireMagic = 0x54535544u;  // "DUST"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderBytes = 16;
/// Hard ceiling on payload_len: anything larger is rejected as kOversized
/// before allocation, so a corrupt or hostile length field can never balloon
/// the receive path.
inline constexpr std::size_t kMaxPayloadBytes = 16u << 20;

/// Frame type tags. 1..10 map 1:1 onto the core::Message alternatives;
/// 100+ are transport-internal control frames that never reach a protocol
/// handler; 200+ are data-plane frames (DESIGN.md §12).
enum class FrameType : std::uint16_t {
  kOffloadCapable = 1,
  kAck = 2,
  kStat = 3,
  kOffloadRequest = 4,
  kOffloadAck = 5,
  kAgentTransfer = 6,
  kTelemetryData = 7,
  kKeepalive = 8,
  kRep = 9,
  kRelease = 10,
  /// Leaf -> hub: "these endpoint names are served over this connection".
  /// Body: u32 count + str16 names. Re-sent in full after every reconnect.
  kAnnounce = 100,
  /// Streamer -> collector: a batch of sealed Gorilla blocks. Always kLow —
  /// telemetry must never delay control traffic. Body: u32 owner, u64
  /// batch_seq, u8 mode, f64 keep_probability, u32 block_count, then all
  /// block descriptors (each ending in u32 payload_bytes), then every
  /// payload back-to-back at the tail — descriptors first so the payload
  /// run can be scatter-gathered straight out of the TSDB blocks.
  kDataBlocks = 200,
  /// Streamer -> collector: degradation state change and/or declared batch
  /// gap. Always kNormal, so the declaration outruns any queued kLow data
  /// frames and a collector learns of a gap before it could observe it.
  kDataDegrade = 201,
  /// Aggregator -> node: pull request for a metric snapshot (DESIGN.md §15).
  /// Rides kNormal so the ack it piggybacks always gets through. Body: u64
  /// scrape_seq, u64 ack_seq (last snapshot seq the scraper applied; 0 =
  /// none), u8 flags (bit0 = send a full snapshot, drop delta baselines).
  kObsScrape = 210,
  /// Node -> aggregator: one obs::SnapshotEncoder payload. Rides kLow —
  /// DUST dogfoods its own tier design; self-telemetry must never delay
  /// control traffic, and a shed reply is recovered by the ack protocol.
  /// Body: str16 node, u32 payload_bytes, opaque snapshot codec bytes.
  kObsSnapshot = 211,
  /// Manager-to-manager federation frames (DESIGN.md §16). All carry the
  /// sending shard id and its current epoch; a receiver rejects any frame
  /// whose epoch is below the latest it has seen for that shard (epoch
  /// fencing — a superseded primary can never mutate federation state).
  /// Shard heartbeat + role announce. Periodic; a standby declares the
  /// primary dead after hello_timeout_ms of silence.
  kShardHello = 220,
  /// Aggregated spare-capacity digest of one domain — totals, not per-node
  /// state (SOAR-style bounded aggregation): Σ spare, Σ excess, busy /
  /// candidate counts. O(1) per domain regardless of domain size.
  kCapacityDigest = 221,
  /// Origin shard -> neighbor: "host `amount` capacity-percent from busy
  /// node `busy` in my domain". Sent when the local solve left excess
  /// unplaced and the neighbor's digest advertised spare.
  kDelegateRequest = 222,
  /// Neighbor -> origin: grant (with the chosen destination node) or
  /// reject. One frame type; `granted` distinguishes.
  kDelegateReply = 223,
  /// Epoch-fenced ownership handoff: "domain `domain` is now owned at
  /// epoch `epoch`" — broadcast by a standby after takeover so peers fence
  /// out the dead primary and drop delegations adopted from older epochs.
  kDomainHandoff = 224,
};

[[nodiscard]] const char* to_string(FrameType type) noexcept;
[[nodiscard]] FrameType frame_type_of(const core::Message& message) noexcept;

/// Decode error taxonomy (see DESIGN.md §11 for the full table).
enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kNeedMoreData,   ///< no complete frame yet — benign, wait for bytes
  kBadMagic,       ///< resync byte-by-byte (consumed = 1)
  kBadCrc,         ///< integrity failure — connection should be dropped
  kBadVersion,     ///< intact frame from an unknown protocol version
  kUnknownType,    ///< intact frame with an unrecognised type tag
  kMalformedBody,  ///< CRC passed but the body does not parse to schema
  kOversized,      ///< claimed payload_len above kMaxPayloadBytes
};

[[nodiscard]] const char* to_string(DecodeStatus status) noexcept;

/// Framing metadata for one sealed Gorilla block inside a kDataBlocks
/// batch. Everything a collector needs to rebuild and verify the block
/// without decoding it first.
struct BlockDescriptor {
  std::string series;  ///< metric name on the owning node
  std::uint64_t block_seq = 0;  ///< per-(owner, series), contiguous from 0
  std::uint32_t sample_count = 0;
  std::uint64_t bit_count = 0;  ///< encoded stream length in bits
  std::int64_t first_timestamp_ms = 0;
  std::int64_t last_timestamp_ms = 0;
  double last_value = 0.0;  ///< final sample, for adopt-without-decode
};

struct DataBlock {
  BlockDescriptor descriptor;
  /// Encoded Gorilla stream, exactly ceil(bit_count / 8) bytes. Left empty
  /// on the gather-encode path, where encode_data_blocks_gather() takes the
  /// payload bytes by reference instead.
  std::vector<std::uint8_t> payload;
};

/// kDataBlocks body.
struct DataBlocksBody {
  graph::NodeId owner = 0;  ///< node whose telemetry these blocks carry
  std::uint64_t batch_seq = 0;  ///< per-(streamer, collector), contiguous
  telemetry::DegradeMode mode = telemetry::DegradeMode::kFull;
  double keep_probability = 1.0;
  /// Causal parent of this batch (the streamer's per-batch span), so the
  /// collector can hang its ingest span under the same cross-process trace
  /// as the offload chain that placed the streamer.
  obs::TraceContext trace;
  std::vector<DataBlock> blocks;
};

/// kDataDegrade body. gap_from_batch > gap_to_batch (the default) means "no
/// gap, mode change only"; otherwise the inclusive batch_seq range was
/// dropped at the streamer under declared degradation.
struct DegradeBody {
  graph::NodeId owner = 0;
  telemetry::DegradeMode mode = telemetry::DegradeMode::kFull;
  double keep_probability = 1.0;
  std::uint64_t gap_from_batch = 1;
  std::uint64_t gap_to_batch = 0;
  std::uint32_t samples_dropped = 0;
};

/// kObsScrape body: the aggregator's pull request (and delta ack).
struct ObsScrapeBody {
  std::uint64_t scrape_seq = 0;  ///< per-(scraper, target), monotonic
  /// Snapshot seq the scraper has applied; the responder promotes its delta
  /// baseline when this matches its last sent snapshot (obs/snapshot.hpp).
  std::uint64_t ack_seq = 0;
  /// Request a full snapshot (responder drops its baselines first). Set
  /// after the aggregator rejected a delta it had no baseline for.
  bool request_full = false;
};

/// kObsSnapshot body: one encoded obs snapshot, opaque to the wire layer
/// (the schema lives in obs/snapshot.hpp so dust_obs stays wire-free).
struct ObsSnapshotBody {
  std::string node;  ///< fleet label for every metric in the payload
  std::vector<std::uint8_t> payload;
};

/// kShardHello body: shard heartbeat + role announce (DESIGN.md §16).
struct ShardHelloBody {
  std::uint32_t shard = 0;    ///< sender's shard id
  std::uint64_t epoch = 0;    ///< sender's current epoch for its domain
  bool standby = false;       ///< true = hot standby, not serving clients
  std::string endpoint;       ///< sender's federation endpoint name
};

/// kCapacityDigest body: one domain's aggregated load summary. Deliberately
/// O(1) in domain size — shards exchange totals, never per-node state.
struct CapacityDigestBody {
  std::uint32_t shard = 0;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;      ///< per-sender, monotonic (stale digests lose)
  double spare = 0.0;         ///< Σ spare capacity over domain candidates
  double excess = 0.0;        ///< Σ excess over domain busy nodes
  std::uint32_t busy_count = 0;
  std::uint32_t candidate_count = 0;
};

/// kDelegateRequest body: offload `amount` from `busy` into your domain.
struct DelegateRequestBody {
  std::uint32_t shard = 0;  ///< origin shard
  std::uint64_t epoch = 0;  ///< origin's epoch (fenced at the receiver)
  std::uint64_t delegation_id = 0;  ///< per-origin, echoes back in the reply
  graph::NodeId busy = graph::kInvalidNode;
  double amount = 0.0;  ///< capacity-percent, pre-platform-factor
  std::uint32_t agents = 0;
  double platform_factor = 1.0;  ///< busy node's platform factor
};

/// kDelegateReply body: grant with the chosen destination, or reject.
struct DelegateReplyBody {
  std::uint32_t shard = 0;  ///< granting shard
  std::uint64_t epoch = 0;  ///< granting shard's epoch
  std::uint64_t delegation_id = 0;
  bool granted = false;
  graph::NodeId destination = graph::kInvalidNode;  ///< valid iff granted
  double amount = 0.0;  ///< capacity-percent actually reserved
};

/// kDomainHandoff body: ownership of `domain` moved to `endpoint` at
/// `epoch`. Receivers fence out lower epochs and drop delegations adopted
/// from the superseded owner.
struct DomainHandoffBody {
  std::uint32_t domain = 0;
  std::uint64_t epoch = 0;
  std::string endpoint;  ///< new owner's federation endpoint name
};

/// One frame, decoded (or about to be encoded). Exactly the information a
/// sim::Envelope carries, plus the frame type: nothing QoS- or
/// trace-relevant is lost crossing the wire.
struct Frame {
  FrameType type = FrameType::kAnnounce;
  sim::Priority priority = sim::Priority::kNormal;
  std::uint64_t trace_id = 0;
  std::string from;
  std::string to;
  std::string kind;
  core::Message message;  ///< valid for protocol frames (tags 1..10)
  std::vector<std::string> announce_endpoints;  ///< valid for kAnnounce
  DataBlocksBody data_blocks;  ///< valid for kDataBlocks
  DegradeBody degrade;         ///< valid for kDataDegrade
  ObsScrapeBody obs_scrape;    ///< valid for kObsScrape
  ObsSnapshotBody obs_snapshot;  ///< valid for kObsSnapshot
  ShardHelloBody shard_hello;          ///< valid for kShardHello
  CapacityDigestBody capacity_digest;  ///< valid for kCapacityDigest
  DelegateRequestBody delegate_request;  ///< valid for kDelegateRequest
  DelegateReplyBody delegate_reply;      ///< valid for kDelegateReply
  DomainHandoffBody domain_handoff;      ///< valid for kDomainHandoff
};

/// Build a protocol frame around `message` (type tag derived from the
/// active alternative).
[[nodiscard]] Frame message_frame(std::string from, std::string to,
                                  core::Message message,
                                  sim::Priority priority,
                                  std::string kind = {},
                                  std::uint64_t trace_id = 0);

[[nodiscard]] Frame announce_frame(std::vector<std::string> endpoints);

/// Build a kDataBlocks frame (always sim::Priority::kLow — see the QoS note
/// on the enum).
[[nodiscard]] Frame data_blocks_frame(std::string from, std::string to,
                                      DataBlocksBody body,
                                      std::uint64_t trace_id = 0);

/// Build a kDataDegrade frame (always sim::Priority::kNormal, so it outruns
/// the kLow data frames it describes).
[[nodiscard]] Frame degrade_frame(std::string from, std::string to,
                                  DegradeBody body,
                                  std::uint64_t trace_id = 0);

/// Build a kObsScrape frame (always sim::Priority::kNormal — the pull and
/// its piggybacked ack must not be shed with the telemetry they govern).
[[nodiscard]] Frame obs_scrape_frame(std::string from, std::string to,
                                     ObsScrapeBody body);

/// Build a kObsSnapshot frame (always sim::Priority::kLow — see the QoS
/// note on the enum).
[[nodiscard]] Frame obs_snapshot_frame(std::string from, std::string to,
                                       ObsSnapshotBody body);

// Federation frame builders (DESIGN.md §16). All ride kNormal: the
// manager-to-manager control plane must never be shed behind telemetry.
[[nodiscard]] Frame shard_hello_frame(std::string from, std::string to,
                                      ShardHelloBody body);
[[nodiscard]] Frame capacity_digest_frame(std::string from, std::string to,
                                          CapacityDigestBody body);
[[nodiscard]] Frame delegate_request_frame(std::string from, std::string to,
                                           DelegateRequestBody body,
                                           std::uint64_t trace_id = 0);
[[nodiscard]] Frame delegate_reply_frame(std::string from, std::string to,
                                         DelegateReplyBody body,
                                         std::uint64_t trace_id = 0);
[[nodiscard]] Frame domain_handoff_frame(std::string from, std::string to,
                                         DomainHandoffBody body);

/// True for the manager-to-manager federation frame types (220..224) —
/// routed through SocketTransport's federation handler.
[[nodiscard]] constexpr bool is_federation_frame(FrameType type) noexcept {
  return type == FrameType::kShardHello ||
         type == FrameType::kCapacityDigest ||
         type == FrameType::kDelegateRequest ||
         type == FrameType::kDelegateReply ||
         type == FrameType::kDomainHandoff;
}

/// Borrowed view of payload bytes owned elsewhere (a sealed TSDB block).
struct PayloadRef {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

/// A frame encoded for scatter-gather transmission: `head` holds the wire
/// header plus everything up to the payload run; `segments` point into the
/// caller-owned block payloads. Concatenated, head + segments are
/// byte-identical to encode_frame() of the same frame with payloads inlined
/// (the CRC in head already covers the segments).
struct GatherFrame {
  std::vector<std::uint8_t> head;
  std::vector<PayloadRef> segments;
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    std::size_t total = head.size();
    for (const PayloadRef& segment : segments) total += segment.size;
    return total;
  }
};

/// Gather-encode a kDataBlocks frame: `payloads[i]` supplies the bytes for
/// `frame.data_blocks.blocks[i]` (whose own payload vector must be empty and
/// whose descriptor bit_count must match payloads[i].size). The block bytes
/// are never copied into the codec buffer — the transport writes them
/// straight from the TSDB with writev. The returned segments alias
/// `payloads`' targets; they must outlive the send. Throws
/// std::invalid_argument on size mismatches.
[[nodiscard]] GatherFrame encode_data_blocks_gather(
    const Frame& frame, const std::vector<PayloadRef>& payloads);

/// Serialize. Deterministic: encoding the decode of an encoded frame is
/// byte-identical (doubles travel as raw IEEE-754 bits). Throws
/// std::invalid_argument if a string field exceeds the u16 length prefix or
/// the payload would exceed kMaxPayloadBytes.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMoreData;
  Frame frame;  ///< valid iff status == kOk
  /// Bytes to discard from the front of the buffer before the next attempt:
  /// the whole frame on kOk and on frame-local errors (kBadCrc,
  /// kBadVersion, kUnknownType, kMalformedBody), 1 on kBadMagic/kOversized
  /// (the length field cannot be trusted, resync byte-by-byte), 0 on
  /// kNeedMoreData.
  std::size_t consumed = 0;
  /// View of the encoded frame inside the caller's buffer (kOk only) —
  /// lets a router forward verbatim without re-encoding. Valid only while
  /// the caller's buffer is.
  const std::uint8_t* raw = nullptr;
  std::size_t raw_size = 0;
};

/// Try to decode one frame from the front of `data`. Never throws, never
/// reads past `size`; guaranteed to make progress (consumed > 0) on any
/// status except kNeedMoreData.
[[nodiscard]] DecodeResult decode_frame(const std::uint8_t* data,
                                        std::size_t size);

/// Stream reassembler: owns the partial-read buffer between poll wakeups.
/// Feed raw socket bytes with append(); pull complete frames with next()
/// until it reports kNeedMoreData.
class FrameBuffer {
 public:
  void append(const void* data, std::size_t size);
  /// Decode and consume the next frame (per decode_frame semantics). The
  /// DecodeResult's raw view stays valid until the next append()/next().
  [[nodiscard]] DecodeResult next();
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buffer_.size() - offset_;
  }
  void clear() noexcept;

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t offset_ = 0;  ///< bytes already consumed at the front
};

}  // namespace dust::wire
