#include "wire/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/log.hpp"

namespace dust::wire {

namespace {

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t steady_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("wire: invalid IPv4 address '" + host + "'");
  return addr;
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportConfig config)
    : config_(std::move(config)), epoch_ms_(steady_ms()) {
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  metrics_.tx_frames = &registry.counter("dust_wire_tx_frames_total");
  metrics_.rx_frames = &registry.counter("dust_wire_rx_frames_total");
  metrics_.tx_bytes = &registry.counter("dust_wire_tx_bytes_total");
  metrics_.rx_bytes = &registry.counter("dust_wire_rx_bytes_total");
  metrics_.forwarded = &registry.counter("dust_wire_forwarded_frames_total");
  metrics_.dropped = &registry.counter("dust_wire_dropped_total");
  metrics_.dropped_no_endpoint =
      &registry.counter("dust_wire_dropped_no_endpoint_total");
  metrics_.dropped_queue_full =
      &registry.counter("dust_wire_dropped_queue_full_total");
  metrics_.shed_bytes = &registry.counter("dust_wire_shed_bytes_total");
  metrics_.backpressure_events =
      &registry.counter("dust_wire_backpressure_events_total");
  metrics_.decode_errors = &registry.counter("dust_wire_decode_errors_total");
  metrics_.reconnects = &registry.counter("dust_wire_reconnects_total");
  metrics_.connects = &registry.counter("dust_wire_connects_total");
  metrics_.encode_us = &registry.histogram("dust_wire_encode_us");
  metrics_.decode_us = &registry.histogram("dust_wire_decode_us");
  backoff_ms_ = config_.reconnect_initial_ms;
  if (config_.role == SocketTransportConfig::Role::kHub) start_listening();
}

SocketTransport::~SocketTransport() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& [fd, peer] : peers_) ::close(fd);
  if (hub_link_.fd >= 0) ::close(hub_link_.fd);
}

sim::TimeMs SocketTransport::now() const {
  if (config_.now) return config_.now();
  return steady_ms() - epoch_ms_;
}

bool SocketTransport::connected() const noexcept {
  return hub_link_.fd >= 0 && !hub_link_.connecting;
}

std::size_t SocketTransport::peer_count() const noexcept {
  if (config_.role == SocketTransportConfig::Role::kHub) return peers_.size();
  return connected() ? 1 : 0;
}

void SocketTransport::start_listening() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("wire: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(config_.host, config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("wire: bind " + config_.host + ":" +
                             std::to_string(config_.port) + " failed: " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("wire: listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);
  DUST_LOG_INFO << "wire: hub listening on " << config_.host << ":"
                << listen_port_;
}

void SocketTransport::start_connect() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  set_nonblocking(fd);
  set_nodelay(fd);
  sockaddr_in addr = make_addr(config_.host, config_.port);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  if (rc == 0) {
    hub_link_.fd = fd;
    hub_link_.connecting = false;
    on_link_established();
    return;
  }
  if (errno == EINPROGRESS) {
    hub_link_.fd = fd;
    hub_link_.connecting = true;
    return;
  }
  ::close(fd);
  on_link_lost();  // schedules the next backoff attempt
}

bool SocketTransport::finish_connect() {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(hub_link_.fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
      err != 0) {
    ::close(hub_link_.fd);
    hub_link_.fd = -1;
    hub_link_.connecting = false;
    on_link_lost();
    return false;
  }
  hub_link_.connecting = false;
  on_link_established();
  return true;
}

void SocketTransport::on_link_established() {
  metrics_.connects->inc();
  backoff_ms_ = config_.reconnect_initial_ms;
  // A frame interrupted by the outage is retransmitted whole: the hub
  // discarded its partial-read buffer when the old connection died, so the
  // stream restarts clean at a frame boundary.
  if (!hub_link_.inflight.head.empty()) {
    hub_link_.queued_bytes += hub_link_.inflight.size();
    hub_link_.tx_normal.push_front(std::move(hub_link_.inflight));
  }
  hub_link_.inflight = TxFrame{};
  hub_link_.inflight_offset = 0;
  hub_link_.rx.clear();
  // Frames queued before or during the outage are stashed aside: they ride
  // BEHIND the announce and behind anything the reconnect listener sends.
  // The other end of the link may be a different process entirely (manager
  // failover restarted the hub), so fresh state — a client's re-home
  // handshake and current STAT — must reach it before the stale backlog,
  // or the new manager solves from pre-outage ordering.
  std::deque<TxFrame> stale_normal = std::move(hub_link_.tx_normal);
  std::deque<TxFrame> stale_low = std::move(hub_link_.tx_low);
  hub_link_.tx_normal.clear();
  hub_link_.tx_low.clear();
  // The announce must be the FIRST frame on a fresh link: protocol frames
  // queued before the connect (the join handshake, anything sent during an
  // outage) ride behind it, so by the time the hub dispatches them it can
  // already route the replies. Enqueued at the back instead, the hub may
  // read the handshake in an earlier batch than the announce and drop the
  // response as unroutable.
  std::vector<std::string> names;
  names.reserve(local_endpoints_.size());
  for (const auto& [name, entry] : local_endpoints_) names.push_back(name);
  TxFrame announce{encode_frame(announce_frame(std::move(names))), {}, {}};
  hub_link_.queued_bytes += announce.size();
  hub_link_.tx_normal.push_back(std::move(announce));
  if (ever_connected_ && reconnect_listener_) reconnect_listener_();
  ever_connected_ = true;
  for (TxFrame& frame : stale_normal)
    hub_link_.tx_normal.push_back(std::move(frame));
  for (TxFrame& frame : stale_low) hub_link_.tx_low.push_back(std::move(frame));
  DUST_LOG_INFO << "wire: leaf connected to " << config_.host << ":"
                << config_.port;
}

void SocketTransport::on_link_lost() {
  if (hub_link_.fd >= 0) {
    ::close(hub_link_.fd);
    hub_link_.fd = -1;
  }
  hub_link_.connecting = false;
  hub_link_.rx.clear();
  hub_link_.inflight_offset = 0;
  ++reconnects_;
  metrics_.reconnects->inc();
  next_connect_at_ms_ = steady_ms() + backoff_ms_;
  backoff_ms_ = std::min<std::int64_t>(backoff_ms_ * 2,
                                       config_.reconnect_max_ms);
}

void SocketTransport::announce_local_endpoints() {
  if (config_.role != SocketTransportConfig::Role::kLeaf || !connected())
    return;
  std::vector<std::string> names;
  names.reserve(local_endpoints_.size());
  for (const auto& [name, entry] : local_endpoints_) names.push_back(name);
  enqueue(hub_link_,
          TxFrame{encode_frame(announce_frame(std::move(names))), {}, {}},
          sim::Priority::kNormal, "announce", "", "", 0);
}

std::uint64_t SocketTransport::register_endpoint(const std::string& name,
                                                 Handler handler) {
  if (!handler) throw std::invalid_argument("wire: null handler");
  const std::uint64_t token = next_token_++;
  local_endpoints_[name] = EndpointEntry{std::move(handler), token};
  announce_local_endpoints();
  return token;
}

void SocketTransport::unregister_endpoint(const std::string& name,
                                          std::uint64_t token) {
  auto it = local_endpoints_.find(name);
  if (it != local_endpoints_.end() && it->second.token == token)
    local_endpoints_.erase(it);
}

bool SocketTransport::has_endpoint(const std::string& name) const {
  return local_endpoints_.count(name) > 0;
}

void SocketTransport::record_hop(obs::FlightEventKind event,
                                 const std::string& kind,
                                 const std::string& from,
                                 const std::string& to,
                                 std::uint64_t trace_id, const char* cause) {
  if (!obs::enabled()) return;
  std::string detail;
  if (cause != nullptr) {
    detail += cause;
    detail += ": ";
  }
  detail += kind.empty() ? "?" : kind;
  detail += " ";
  detail += from;
  detail += ">";
  detail += to;
  obs::FlightRecorder::global().record(event, now(), trace_id,
                                       obs::FlightEvent::kNoNode,
                                       obs::FlightEvent::kNoNode, 0.0, detail);
}

void SocketTransport::drop_frame(const Frame& frame, const char* cause,
                                 obs::Counter* by_cause) {
  ++dropped_;
  metrics_.dropped->inc();
  if (by_cause != nullptr) by_cause->inc();
  record_hop(obs::FlightEventKind::kMessageDrop, frame.kind, frame.from,
             frame.to, frame.trace_id, cause);
}

bool SocketTransport::enqueue(Peer& peer, TxFrame frame,
                              sim::Priority priority, const std::string& kind,
                              const std::string& from, const std::string& to,
                              std::uint64_t trace_id) {
  std::deque<TxFrame>& queue =
      priority == sim::Priority::kLow ? peer.tx_low : peer.tx_normal;
  if (peer.tx_normal.size() + peer.tx_low.size() >=
      config_.max_queued_frames) {
    // QoS shedding at the cap (§III-C): make room for control traffic by
    // discarding the newest monitoring frames; a kLow arrival at a full
    // queue is itself the cheapest thing to discard.
    if (priority == sim::Priority::kLow || peer.tx_low.empty()) {
      ++dropped_;
      ++peer.shed_frames;
      peer.shed_bytes += frame.size();
      metrics_.dropped->inc();
      metrics_.dropped_queue_full->inc();
      metrics_.shed_bytes->inc(frame.size());
      record_hop(obs::FlightEventKind::kMessageDrop, kind, from, to, trace_id,
                 "queue_full");
      return false;
    }
    TxFrame& victim = peer.tx_low.back();
    peer.queued_bytes -= victim.size();
    ++peer.shed_frames;
    peer.shed_bytes += victim.size();
    metrics_.shed_bytes->inc(victim.size());
    peer.tx_low.pop_back();
    ++dropped_;
    metrics_.dropped->inc();
    metrics_.dropped_queue_full->inc();
  }
  peer.queued_bytes += frame.size();
  queue.push_back(std::move(frame));
  return true;
}

void SocketTransport::send(const std::string& from, const std::string& to,
                           std::any payload, sim::Priority priority,
                           std::string kind, std::uint64_t trace_id) {
  core::Message* message = std::any_cast<core::Message>(&payload);
  if (message == nullptr) {
    DUST_LOG_WARN << "wire: send() payload is not a core::Message, dropping";
    ++dropped_;
    metrics_.dropped->inc();
    return;
  }
  ++frames_sent_;
  metrics_.tx_frames->inc();
  record_hop(obs::FlightEventKind::kMessageTx, kind, from, to, trace_id);
  if (local_endpoints_.count(to) > 0) {
    // Same-process endpoint: no codec round trip, but identical delivery
    // semantics (queued, dispatched from poll_once like a received frame).
    local_queue_.push_back(sim::Envelope{from, to, std::move(*message),
                                         priority, std::move(kind), trace_id});
    return;
  }
  Peer* peer = nullptr;
  if (config_.role == SocketTransportConfig::Role::kLeaf) {
    peer = &hub_link_;  // queues persist across reconnects
  } else {
    peer = route_of(to);
    if (peer == nullptr) {
      Frame context;
      context.kind = kind;
      context.from = from;
      context.to = to;
      context.trace_id = trace_id;
      drop_frame(context, "no_endpoint", metrics_.dropped_no_endpoint);
      return;
    }
  }
  const std::int64_t start_us = steady_us();
  std::vector<std::uint8_t> bytes = encode_frame(
      message_frame(from, to, std::move(*message), priority, kind, trace_id));
  metrics_.encode_us->observe(static_cast<double>(steady_us() - start_us));
  enqueue(*peer, TxFrame{std::move(bytes), {}, {}}, priority, kind, from, to,
          trace_id);
}

bool SocketTransport::send_data_frame(const std::string& from,
                                      const std::string& to,
                                      GatherFrame frame,
                                      sim::Priority priority,
                                      const std::string& kind,
                                      std::shared_ptr<const void> owner) {
  ++frames_sent_;
  metrics_.tx_frames->inc();
  record_hop(obs::FlightEventKind::kMessageTx, kind, from, to, 0);
  if (local_endpoints_.count(to) > 0) {
    // Same-process destination (tests, single-transport demos): reassemble
    // the contiguous encoding and run it through the decoder so the data
    // handler sees exactly what a remote collector would.
    std::vector<std::uint8_t> contiguous = std::move(frame.head);
    for (const PayloadRef& segment : frame.segments)
      contiguous.insert(contiguous.end(), segment.data,
                        segment.data + segment.size);
    DecodeResult decoded = decode_frame(contiguous.data(), contiguous.size());
    if (decoded.status != DecodeStatus::kOk) {
      ++decode_errors_;
      metrics_.decode_errors->inc();
      return false;
    }
    data_queue_.push_back(std::move(decoded.frame));
    return true;
  }
  Peer* peer = config_.role == SocketTransportConfig::Role::kLeaf
                   ? &hub_link_
                   : route_of(to);
  if (peer == nullptr) {
    Frame context;
    context.kind = kind;
    context.from = from;
    context.to = to;
    drop_frame(context, "no_endpoint", metrics_.dropped_no_endpoint);
    return false;
  }
  return enqueue(
      *peer,
      TxFrame{std::move(frame.head), std::move(frame.segments),
              std::move(owner)},
      priority, kind, from, to, 0);
}

bool SocketTransport::send_frame(Frame frame) {
  ++frames_sent_;
  metrics_.tx_frames->inc();
  record_hop(obs::FlightEventKind::kMessageTx, frame.kind, frame.from,
             frame.to, frame.trace_id);
  if (local_endpoints_.count(frame.to) > 0) {
    // Same-process destination: run the codec round trip anyway so the obs
    // and federation handlers always see decoder-validated frames, local or
    // remote.
    std::vector<std::uint8_t> bytes = encode_frame(frame);
    DecodeResult decoded = decode_frame(bytes.data(), bytes.size());
    if (decoded.status != DecodeStatus::kOk) {
      ++decode_errors_;
      metrics_.decode_errors->inc();
      return false;
    }
    if (is_federation_frame(decoded.frame.type))
      fed_queue_.push_back(std::move(decoded.frame));
    else
      obs_queue_.push_back(std::move(decoded.frame));
    return true;
  }
  Peer* peer = config_.role == SocketTransportConfig::Role::kLeaf
                   ? &hub_link_
                   : route_of(frame.to);
  if (peer == nullptr) {
    drop_frame(frame, "no_endpoint", metrics_.dropped_no_endpoint);
    return false;
  }
  const std::int64_t start_us = steady_us();
  std::vector<std::uint8_t> bytes = encode_frame(frame);
  metrics_.encode_us->observe(static_cast<double>(steady_us() - start_us));
  return enqueue(*peer, TxFrame{std::move(bytes), {}, {}}, frame.priority,
                 frame.kind, frame.from, frame.to, frame.trace_id);
}

std::vector<std::string> SocketTransport::remote_endpoint_names(
    const std::string& prefix) const {
  std::vector<std::string> names;
  for (const auto& [name, fd] : remote_endpoints_)
    if (name.compare(0, prefix.size(), prefix) == 0) names.push_back(name);
  return names;
}

const SocketTransport::Peer* SocketTransport::peer_toward(
    const std::string& endpoint) const {
  if (config_.role == SocketTransportConfig::Role::kLeaf) return &hub_link_;
  auto it = remote_endpoints_.find(endpoint);
  if (it == remote_endpoints_.end()) return nullptr;
  auto peer = peers_.find(it->second);
  return peer == peers_.end() ? nullptr : &peer->second;
}

QueueState SocketTransport::queue_state(const std::string& endpoint) const {
  QueueState state;
  state.capacity_frames = config_.max_queued_frames;
  const Peer* peer = peer_toward(endpoint);
  if (peer == nullptr) return state;
  state.queued_frames = peer->tx_normal.size() + peer->tx_low.size();
  state.queued_bytes = peer->queued_bytes;
  state.shed_frames = peer->shed_frames;
  state.shed_bytes = peer->shed_bytes;
  state.backpressure_events = peer->backpressure_events;
  return state;
}

bool SocketTransport::poll_backpressure(const std::string& endpoint,
                                        double fill_threshold) {
  const Peer* found = peer_toward(endpoint);
  if (found == nullptr) return false;
  Peer& peer = const_cast<Peer&>(*found);
  const double fill =
      config_.max_queued_frames == 0
          ? 0.0
          : static_cast<double>(peer.tx_normal.size() + peer.tx_low.size()) /
                static_cast<double>(config_.max_queued_frames);
  if (fill < fill_threshold) return false;
  ++peer.backpressure_events;
  metrics_.backpressure_events->inc();
  return true;
}

SocketTransport::Peer* SocketTransport::route_of(const std::string& endpoint) {
  auto it = remote_endpoints_.find(endpoint);
  if (it == remote_endpoints_.end()) return nullptr;
  auto peer = peers_.find(it->second);
  if (peer == peers_.end()) {
    remote_endpoints_.erase(it);
    return nullptr;
  }
  return &peer->second;
}

bool SocketTransport::handle_frame(Peer& peer, DecodeResult decoded) {
  Frame& frame = decoded.frame;
  if (frame.type == FrameType::kAnnounce) {
    for (std::string& name : frame.announce_endpoints) {
      remote_endpoints_[name] = peer.fd;
      peer.endpoints.push_back(std::move(name));
    }
    return true;
  }
  ++frames_received_;
  metrics_.rx_frames->inc();
  if (local_endpoints_.count(frame.to) > 0) {
    record_hop(obs::FlightEventKind::kMessageRx, frame.kind, frame.from,
               frame.to, frame.trace_id);
    if (frame.type == FrameType::kDataBlocks ||
        frame.type == FrameType::kDataDegrade) {
      // Data-plane frames bypass the envelope path: they carry compressed
      // blocks, not a core::Message, and land on the data handler.
      data_queue_.push_back(std::move(frame));
      return true;
    }
    if (frame.type == FrameType::kObsScrape ||
        frame.type == FrameType::kObsSnapshot) {
      // Observability frames likewise carry typed bodies, not a
      // core::Message; they land on the obs handlers.
      obs_queue_.push_back(std::move(frame));
      return true;
    }
    if (is_federation_frame(frame.type)) {
      // Manager-to-manager frames (DESIGN.md §16) land on the federation
      // handler.
      fed_queue_.push_back(std::move(frame));
      return true;
    }
    local_queue_.push_back(sim::Envelope{
        std::move(frame.from), std::move(frame.to), std::move(frame.message),
        frame.priority, std::move(frame.kind), frame.trace_id});
    return true;
  }
  if (config_.role == SocketTransportConfig::Role::kHub) {
    // Route leaf-to-leaf traffic (busy -> destination AgentTransfer /
    // TelemetryData / data-plane blocks): forward the encoded frame
    // verbatim.
    Peer* next_hop = route_of(frame.to);
    if (next_hop != nullptr && next_hop->fd != peer.fd) {
      ++frames_forwarded_;
      metrics_.forwarded->inc();
      enqueue(*next_hop,
              TxFrame{std::vector<std::uint8_t>(
                          decoded.raw, decoded.raw + decoded.raw_size),
                      {},
                      {}},
              frame.priority, frame.kind, frame.from, frame.to,
              frame.trace_id);
      return true;
    }
    // No local endpoint, no announced route: a gateway (a federated shard
    // daemon bridging domains, DESIGN.md §16) gets the last word before
    // the frame drops.
    if (gateway_ && gateway_(frame)) {
      ++frames_forwarded_;
      metrics_.forwarded->inc();
      return true;
    }
  }
  drop_frame(frame, "no_endpoint", metrics_.dropped_no_endpoint);
  return true;
}

bool SocketTransport::read_from(Peer& peer) {
  char buffer[65536];
  while (true) {
    const ssize_t n = ::read(peer.fd, buffer, sizeof(buffer));
    if (n > 0) {
      metrics_.rx_bytes->inc(static_cast<std::uint64_t>(n));
      peer.rx.append(buffer, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buffer)) break;
      continue;
    }
    if (n == 0) {
      DUST_LOG_DEBUG << "wire: peer closed connection (fd " << peer.fd << ")";
      return false;  // orderly shutdown
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    DUST_LOG_DEBUG << "wire: read failed (fd " << peer.fd << "): "
                   << std::strerror(errno);
    return false;
  }
  while (true) {
    const std::int64_t start_us = steady_us();
    DecodeResult decoded = peer.rx.next();
    if (decoded.status == DecodeStatus::kNeedMoreData) break;
    if (decoded.status != DecodeStatus::kOk) {
      // A TCP stream never legitimately desynchronises: any decode error
      // means the peer speaks another version or the stream is corrupt.
      // Count it, surface the typed cause, and drop the connection.
      ++decode_errors_;
      metrics_.decode_errors->inc();
      DUST_LOG_WARN << "wire: decode error (" << to_string(decoded.status)
                    << "), dropping connection";
      return false;
    }
    metrics_.decode_us->observe(static_cast<double>(steady_us() - start_us));
    if (!handle_frame(peer, std::move(decoded))) return false;
  }
  return true;
}

bool SocketTransport::flush(Peer& peer) {
  while (true) {
    if (peer.inflight.head.empty()) {
      if (!peer.tx_normal.empty()) {
        // kNormal control traffic always drains before kLow monitoring
        // data (§III-C).
        peer.inflight = std::move(peer.tx_normal.front());
        peer.tx_normal.pop_front();
      } else if (!peer.tx_low.empty()) {
        peer.inflight = std::move(peer.tx_low.front());
        peer.tx_low.pop_front();
      } else {
        return true;
      }
      peer.queued_bytes -= peer.inflight.size();
      peer.inflight_offset = 0;
    }
    // Scatter-gather write: head plus the borrowed block payloads go out in
    // one writev, resuming mid-frame at inflight_offset after a short
    // write. The payload bytes are still the TSDB's — never copied here.
    const std::size_t frame_bytes = peer.inflight.size();
    std::vector<iovec> iov;
    iov.reserve(1 + peer.inflight.segments.size());
    std::size_t skip = peer.inflight_offset;
    auto add = [&](const std::uint8_t* data, std::size_t size) {
      if (skip >= size) {
        skip -= size;
        return;
      }
      iov.push_back(iovec{
          const_cast<std::uint8_t*>(data) + skip, size - skip});
      skip = 0;
    };
    add(peer.inflight.head.data(), peer.inflight.head.size());
    for (const PayloadRef& segment : peer.inflight.segments)
      add(segment.data, segment.size);
    if (iov.empty()) {
      peer.inflight = TxFrame{};
      peer.inflight_offset = 0;
      continue;
    }
    const ssize_t n =
        ::writev(peer.fd, iov.data(), static_cast<int>(iov.size()));
    if (n > 0) {
      metrics_.tx_bytes->inc(static_cast<std::uint64_t>(n));
      peer.inflight_offset += static_cast<std::size_t>(n);
      if (peer.inflight_offset == frame_bytes) {
        peer.inflight = TxFrame{};  // releases the gather keepalive
        peer.inflight_offset = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true;  // later
    if (n < 0 && errno == EINTR) continue;
    DUST_LOG_DEBUG << "wire: write failed (fd " << peer.fd << "): "
                   << std::strerror(errno);
    return false;
  }
}

std::size_t SocketTransport::poll_once(int timeout_ms) {
  const bool leaf = config_.role == SocketTransportConfig::Role::kLeaf;
  if (leaf && hub_link_.fd < 0 && steady_ms() >= next_connect_at_ms_)
    start_connect();

  std::vector<pollfd> fds;
  fds.reserve(peers_.size() + 2);
  if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
  auto wants = [](const Peer& peer) -> short {
    short events = POLLIN;
    if (peer.connecting || !peer.inflight.head.empty() ||
        !peer.tx_normal.empty() || !peer.tx_low.empty())
      events |= POLLOUT;
    return events;
  };
  for (auto& [fd, peer] : peers_) fds.push_back({fd, wants(peer), 0});
  if (hub_link_.fd >= 0) fds.push_back({hub_link_.fd, wants(hub_link_), 0});

  // Local-only work pending? Don't sleep on the sockets.
  if (!local_queue_.empty() || !data_queue_.empty() || !obs_queue_.empty() ||
      !fed_queue_.empty())
    timeout_ms = 0;
  if (!fds.empty()) {
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  }

  std::vector<int> dead;
  for (const pollfd& entry : fds) {
    if (entry.fd == listen_fd_) {
      if ((entry.revents & POLLIN) == 0) continue;
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        set_nodelay(fd);
        Peer peer;
        peer.fd = fd;
        peers_.emplace(fd, std::move(peer));
        metrics_.connects->inc();
        DUST_LOG_DEBUG << "wire: hub accepted connection (fd " << fd << ")";
      }
      continue;
    }
    Peer* peer = nullptr;
    if (leaf && entry.fd == hub_link_.fd) {
      peer = &hub_link_;
    } else {
      auto it = peers_.find(entry.fd);
      if (it == peers_.end()) continue;
      peer = &it->second;
    }
    if (peer->connecting) {
      if ((entry.revents & (POLLOUT | POLLERR | POLLHUP)) != 0)
        finish_connect();
      continue;
    }
    bool alive = true;
    if ((entry.revents & (POLLERR | POLLHUP)) != 0 &&
        (entry.revents & POLLIN) == 0) {
      DUST_LOG_DEBUG << "wire: poll error on fd " << entry.fd << " (revents "
                     << entry.revents << ")";
      alive = false;
    }
    if (alive && (entry.revents & POLLIN) != 0) alive = read_from(*peer);
    if (alive) alive = flush(*peer);
    if (!alive) dead.push_back(entry.fd);
  }

  for (const int fd : dead) {
    if (leaf && fd == hub_link_.fd) {
      DUST_LOG_INFO << "wire: hub link lost, reconnecting with backoff";
      on_link_lost();
      continue;
    }
    auto it = peers_.find(fd);
    if (it == peers_.end()) continue;
    for (const std::string& name : it->second.endpoints) {
      auto route = remote_endpoints_.find(name);
      if (route != remote_endpoints_.end() && route->second == fd)
        remote_endpoints_.erase(route);
    }
    ::close(fd);
    peers_.erase(it);
  }

  // Dispatch local deliveries last, outside all socket iteration, so
  // handlers can freely send() (and even trigger new local deliveries,
  // which run in this same drain).
  std::size_t delivered = 0;
  while (!local_queue_.empty()) {
    sim::Envelope envelope = std::move(local_queue_.front());
    local_queue_.pop_front();
    auto it = local_endpoints_.find(envelope.to);
    if (it == local_endpoints_.end()) {
      Frame context;
      context.kind = envelope.kind;
      context.from = envelope.from;
      context.to = envelope.to;
      context.trace_id = envelope.trace_id;
      drop_frame(context, "no_endpoint", metrics_.dropped_no_endpoint);
      continue;
    }
    ++delivered;
    it->second.handler(envelope);
  }
  while (!data_queue_.empty()) {
    Frame frame = std::move(data_queue_.front());
    data_queue_.pop_front();
    if (!data_handler_) {
      drop_frame(frame, "no_data_handler", metrics_.dropped_no_endpoint);
      continue;
    }
    ++delivered;
    data_handler_(std::move(frame));
  }
  while (!obs_queue_.empty()) {
    Frame frame = std::move(obs_queue_.front());
    obs_queue_.pop_front();
    std::function<void(Frame&&)>& handler =
        frame.type == FrameType::kObsScrape ? obs_scrape_handler_
                                            : obs_snapshot_handler_;
    if (!handler) {
      drop_frame(frame, "no_obs_handler", metrics_.dropped_no_endpoint);
      continue;
    }
    ++delivered;
    handler(std::move(frame));
  }
  while (!fed_queue_.empty()) {
    Frame frame = std::move(fed_queue_.front());
    fed_queue_.pop_front();
    if (!federation_handler_) {
      drop_frame(frame, "no_federation_handler", metrics_.dropped_no_endpoint);
      continue;
    }
    ++delivered;
    federation_handler_(std::move(frame));
  }
  return delivered;
}

}  // namespace dust::wire
