// wire::ObsResponder / wire::ObsScraper — frame plumbing for the fleet
// observability plane (DESIGN.md §15).
//
// Every daemon that wants its metrics visible fleet-wide hosts an
// ObsResponder: it registers the well-known endpoint "dust-obs-<node>" and
// answers kObsScrape pulls with kObsSnapshot replies carrying the compact
// delta encoding from obs/snapshot.hpp. The manager (or any process holding
// an obs::Aggregator) runs an ObsScraper: it discovers responder endpoints
// by prefix (hub) or takes an explicit target list (leaf), sends one scrape
// per target per scrape() call, and merges the replies into the aggregator.
//
// QoS is the paper's own medicine: the pull and its piggybacked ack ride
// kNormal (they govern the telemetry tier), the snapshot replies ride kLow
// and may be shed at a full queue. The ack-delta protocol in the codec
// tolerates that — a shed reply just means the next delta re-diffs against
// the older acked baseline.
//
// Hot-tick guarantee (the obs-overhead bench gates this): a scrape that
// finds nothing changed sends no reply and allocates nothing — the encoder's
// dirty check compares atomics against the acked baseline and bails.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/aggregator.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "wire/socket_transport.hpp"

namespace dust::wire {

/// Well-known endpoint prefix responders register under; the scraper's
/// discovery key.
inline constexpr const char* kObsEndpointPrefix = "dust-obs-";

[[nodiscard]] inline std::string obs_endpoint_name(const std::string& node) {
  return std::string(kObsEndpointPrefix) + node;
}

/// Serves one registry's metrics to any number of scrapers. Owns the
/// transport's obs-scrape handler slot; one responder per transport.
class ObsResponder {
 public:
  /// Registers endpoint "dust-obs-<node>" on `transport` and starts
  /// answering scrapes with deltas of `registry`. `now` stamps
  /// source_now_ms into snapshots (defaults to 0 when unset — the
  /// aggregator's own clock drives staleness either way).
  ObsResponder(SocketTransport& transport, std::string node,
               obs::MetricRegistry& registry = obs::MetricRegistry::global(),
               std::function<std::int64_t()> now = {});
  ~ObsResponder();

  ObsResponder(const ObsResponder&) = delete;
  ObsResponder& operator=(const ObsResponder&) = delete;

  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }
  [[nodiscard]] std::uint64_t snapshots_sent() const noexcept {
    return snapshots_sent_;
  }
  /// Scrapes answered with no frame because nothing changed.
  [[nodiscard]] std::uint64_t clean_scrapes() const noexcept {
    return clean_scrapes_;
  }

 private:
  void on_scrape(Frame&& frame);

  SocketTransport* transport_;
  std::string node_;
  std::string endpoint_;
  obs::MetricRegistry* registry_;
  std::function<std::int64_t()> now_;
  std::uint64_t token_ = 0;
  /// Per-scraper delta state, keyed by the scraping endpoint's name: two
  /// aggregators scraping the same node see independent ack baselines.
  std::unordered_map<std::string, std::unique_ptr<obs::SnapshotEncoder>>
      encoders_;
  std::vector<std::uint8_t> buffer_;  ///< reused encode buffer
  obs::Counter* scrape_bytes_ = nullptr;  ///< dust_obs_scrape_bytes_total
  std::uint64_t snapshots_sent_ = 0;
  std::uint64_t clean_scrapes_ = 0;
};

struct ObsScraperConfig {
  /// Explicit responder endpoints ("dust-obs-<node>"). Leaf-side scrapers
  /// must list targets; a hub scraper can rely on discovery alone.
  std::vector<std::string> targets;
  /// Also scrape every remote endpoint matching kObsEndpointPrefix
  /// (hub only — leaves never learn remote endpoint names).
  bool discover = true;
};

/// Pulls snapshots from responders and merges them into an Aggregator.
/// Owns the transport's obs-snapshot handler slot; one scraper per
/// transport.
class ObsScraper {
 public:
  /// Registers `endpoint` (the reply-to address) on `transport`. Counters
  /// land in `registry` (dust_obs_scrapes_sent_total,
  /// dust_obs_snapshot_decode_failures_total).
  ObsScraper(SocketTransport& transport, obs::Aggregator& aggregator,
             std::string endpoint, ObsScraperConfig config = {},
             obs::MetricRegistry& registry = obs::MetricRegistry::global());
  ~ObsScraper();

  ObsScraper(const ObsScraper&) = delete;
  ObsScraper& operator=(const ObsScraper&) = delete;

  /// Send one kObsScrape to every known target (explicit + discovered),
  /// piggybacking the ack for the last applied snapshot and the
  /// request-full flag where the aggregator rejected a delta. Returns the
  /// number of scrapes sent. `now_ms` becomes the aggregator timestamp for
  /// replies merged before the next scrape() call.
  std::size_t scrape(std::int64_t now_ms);

  [[nodiscard]] std::vector<std::string> targets() const;
  [[nodiscard]] std::uint64_t scrapes_sent() const noexcept {
    return scrapes_sent_;
  }
  [[nodiscard]] std::uint64_t snapshots_applied() const noexcept {
    return snapshots_applied_;
  }
  [[nodiscard]] std::uint64_t snapshots_rejected() const noexcept {
    return snapshots_rejected_;
  }
  [[nodiscard]] std::uint64_t decode_failures() const noexcept {
    return decode_failures_;
  }

 private:
  struct Target {
    std::uint64_t scrape_seq = 0;
    std::uint64_t ack_seq = 0;  ///< last snapshot seq the aggregator applied
    /// Ask for a full snapshot: set at first contact (the responder may
    /// hold baselines from a previous scraper incarnation under our name)
    /// and after any rejected delta; cleared by a successful apply.
    bool want_full = true;
  };

  void on_snapshot(Frame&& frame);

  SocketTransport* transport_;
  obs::Aggregator* aggregator_;
  std::string endpoint_;
  ObsScraperConfig config_;
  std::uint64_t token_ = 0;
  std::unordered_map<std::string, Target> targets_;
  std::int64_t last_scrape_now_ms_ = 0;
  obs::Counter* scrapes_sent_counter_ = nullptr;
  obs::Counter* decode_failures_counter_ = nullptr;
  std::uint64_t scrapes_sent_ = 0;
  std::uint64_t snapshots_applied_ = 0;
  std::uint64_t snapshots_rejected_ = 0;
  std::uint64_t decode_failures_ = 0;
};

}  // namespace dust::wire
