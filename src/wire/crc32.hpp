// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) for wire framing.
//
// Self-contained so the codec carries no external dependency; the table is
// built once at first use. Incremental form (`update`) lets the socket
// transport checksum scattered buffers without concatenating them.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dust::wire {

/// Continue a CRC over `size` bytes. Seed with `crc32_init()`, finish with
/// `crc32_final()` — the split keeps the streaming use readable.
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                         std::size_t size) noexcept;

[[nodiscard]] inline std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }
[[nodiscard]] inline std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a contiguous buffer.
[[nodiscard]] inline std::uint32_t crc32(const void* data,
                                         std::size_t size) noexcept {
  return crc32_final(crc32_update(crc32_init(), data, size));
}

}  // namespace dust::wire
