// wire::SocketTransport — the DUST control plane over real sockets
// (DESIGN.md §11).
//
// A sim::TransportBase implementation that frames every message with
// wire::Codec and moves it over non-blocking TCP, driven by a poll(2) event
// loop the owner pumps (`poll_once`). Two roles:
//
//   kHub  — listens; accepts any number of leaf connections; routes frames
//           between leaves by endpoint name (a leaf only ever knows the
//           hub's address — matching the paper's star control plane where
//           clients know only the DUST-Manager).
//   kLeaf — connects to the hub, announces its local endpoint names, and
//           reconnects with capped exponential backoff when the hub drops.
//
// QoS (§III-C): each connection keeps two outbound queues; kNormal control
// traffic always drains before kLow monitoring data, and when the queue cap
// is hit, kLow is shed first. Partial reads reassemble through
// wire::FrameBuffer; partial writes resume mid-frame on the next poll.
//
// Single-threaded by design, like the rest of the runtime: all calls —
// send(), register_endpoint(), poll_once() — must come from the owning
// thread. Handlers run inside poll_once and may send() reentrantly.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/transport.hpp"
#include "wire/codec.hpp"

namespace dust::wire {

struct SocketTransportConfig {
  enum class Role : std::uint8_t { kHub, kLeaf };
  Role role = Role::kHub;
  /// kHub: bind address (port 0 = ephemeral, read back via listen_port()).
  /// kLeaf: hub address to connect to.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Leaf reconnect backoff: first retry after `reconnect_initial_ms`,
  /// doubling per failure up to `reconnect_max_ms`.
  std::int64_t reconnect_initial_ms = 50;
  std::int64_t reconnect_max_ms = 2000;
  /// Per-connection outbound cap, in frames. At the cap, kLow frames are
  /// shed (newest first) to make room for kNormal; kNormal overflow drops
  /// the new frame. Keeps a dead peer from ballooning memory.
  std::size_t max_queued_frames = 4096;
  /// Clock stamped onto flight-recorder events for wire hops. Defaults to
  /// wall milliseconds since transport construction; daemons that advance a
  /// Simulator against wall time pass `[&sim] { return sim.now(); }` so wire
  /// events interleave correctly with protocol events.
  std::function<sim::TimeMs()> now;
};

/// Outbound-queue telemetry for one peer connection — the data plane's
/// backpressure signal (DESIGN.md §12). `fill()` is the fraction of the
/// frame cap currently queued; shed_* count kLow frames discarded at the
/// cap since the connection was made.
struct QueueState {
  std::size_t queued_frames = 0;
  std::size_t queued_bytes = 0;
  std::size_t capacity_frames = 0;
  std::uint64_t shed_frames = 0;
  std::uint64_t shed_bytes = 0;
  std::uint64_t backpressure_events = 0;
  [[nodiscard]] double fill() const noexcept {
    return capacity_frames == 0
               ? 0.0
               : static_cast<double>(queued_frames) /
                     static_cast<double>(capacity_frames);
  }
};

class SocketTransport final : public sim::TransportBase {
 public:
  /// Hub: binds and listens immediately (throws std::runtime_error on
  /// failure). Leaf: the first connect attempt happens on the next
  /// poll_once().
  explicit SocketTransport(SocketTransportConfig config);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // --- sim::TransportBase ---------------------------------------------------
  std::uint64_t register_endpoint(const std::string& name,
                                  Handler handler) override;
  void unregister_endpoint(const std::string& name,
                           std::uint64_t token) override;
  [[nodiscard]] bool has_endpoint(const std::string& name) const override;
  /// Local destinations dispatch on the next poll_once; remote destinations
  /// are framed and queued on the owning connection (leaf: the hub link,
  /// queued across reconnects). Payload must hold a core::Message.
  void send(const std::string& from, const std::string& to, std::any payload,
            sim::Priority priority = sim::Priority::kNormal,
            std::string kind = {}, std::uint64_t trace_id = 0) override;

  // --- event loop -----------------------------------------------------------
  /// Pump the loop once: poll sockets up to `timeout_ms` (0 = non-blocking),
  /// accept/connect, read + decode + dispatch, flush queues, run reconnect
  /// backoff. Returns the number of envelopes delivered to local handlers.
  std::size_t poll_once(int timeout_ms);

  [[nodiscard]] std::uint16_t listen_port() const noexcept {
    return listen_port_;
  }
  [[nodiscard]] bool connected() const noexcept;  ///< leaf: link established
  [[nodiscard]] std::size_t peer_count() const noexcept;

  [[nodiscard]] std::uint64_t frames_sent() const noexcept {
    return frames_sent_;
  }
  [[nodiscard]] std::uint64_t frames_received() const noexcept {
    return frames_received_;
  }
  [[nodiscard]] std::uint64_t frames_forwarded() const noexcept {
    return frames_forwarded_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_;
  }
  [[nodiscard]] std::uint64_t decode_errors() const noexcept {
    return decode_errors_;
  }

  // --- data plane -----------------------------------------------------------
  /// Queue a gather-encoded data frame toward `to`. The segments point into
  /// `owner`-kept storage (sealed TSDB blocks); the transport holds `owner`
  /// alive until the frame has fully left the socket, and the block bytes
  /// are never copied into a codec buffer. Returns false when the frame was
  /// shed (queue at cap) or unroutable. Local destinations are decoded and
  /// delivered through the data handler on the next poll_once().
  bool send_data_frame(const std::string& from, const std::string& to,
                       GatherFrame frame, sim::Priority priority,
                       const std::string& kind,
                       std::shared_ptr<const void> owner);

  /// Receive path for data-plane frames (kDataBlocks / kDataDegrade): one
  /// handler per transport, invoked from poll_once() for every data frame
  /// addressed to a locally registered endpoint.
  void set_data_handler(std::function<void(Frame&&)> handler) {
    data_handler_ = std::move(handler);
  }

  // --- observability plane --------------------------------------------------
  /// Queue an already-built obs frame (kObsScrape / kObsSnapshot) toward
  /// `frame.to`. Encoded through the codec and routed exactly like send();
  /// local destinations loop back through the obs queue so a scraper and a
  /// responder on the same transport still exercise the codec. Returns
  /// false when shed or unroutable.
  bool send_frame(Frame frame);

  /// Receive path for kObsScrape frames (pull requests from a scraper).
  /// Separate from the snapshot handler so one transport can host both a
  /// responder (manager scraping itself is handled via Aggregator::
  /// ingest_local instead) and a scraper.
  void set_obs_scrape_handler(std::function<void(Frame&&)> handler) {
    obs_scrape_handler_ = std::move(handler);
  }

  /// Receive path for kObsSnapshot frames (kLow replies carrying encoded
  /// metric snapshots).
  void set_obs_snapshot_handler(std::function<void(Frame&&)> handler) {
    obs_snapshot_handler_ = std::move(handler);
  }

  // --- federation plane -----------------------------------------------------
  /// Receive path for manager-to-manager federation frames (kShardHello /
  /// kCapacityDigest / kDelegateRequest / kDelegateReply / kDomainHandoff,
  /// DESIGN.md §16): one handler per transport, invoked from poll_once()
  /// for every federation frame addressed to a locally registered endpoint.
  /// Send side is the generic send_frame().
  void set_federation_handler(std::function<void(Frame&&)> handler) {
    federation_handler_ = std::move(handler);
  }

  /// Hub only: last-resort route for a received frame whose destination is
  /// neither a local endpoint nor announced by any connected leaf. A
  /// federated shard daemon installs this to forward cross-domain client
  /// traffic (AgentTransfer, TelemetryData) over its manager-to-manager
  /// links (DESIGN.md §16) — without it a busy client's transfer to a
  /// destination homed on another shard's hub would drop as unroutable.
  /// Return true when the frame was taken; false falls through to the
  /// normal no_endpoint drop.
  void set_gateway(std::function<bool(const Frame&)> gateway) {
    gateway_ = std::move(gateway);
  }

  /// Leaf only: invoked from inside poll_once() every time the hub link is
  /// RE-established (never on the first connect). The listener runs after
  /// the kAnnounce is queued but before any frame queued during the outage:
  /// anything it send()s — a client's fresh STAT, a re-home handshake —
  /// goes out ahead of the stale backlog, so a restarted manager solves
  /// from current load instead of replaying pre-outage ordering.
  void set_reconnect_listener(std::function<void()> listener) {
    reconnect_listener_ = std::move(listener);
  }

  /// Names of remote endpoints (hub: announced by any leaf) starting with
  /// `prefix`. The scraper's discovery primitive: responders register
  /// "dust-obs-<node>" endpoints and the manager enumerates them here.
  [[nodiscard]] std::vector<std::string> remote_endpoint_names(
      const std::string& prefix) const;

  /// Outbound-queue state of the connection that would carry traffic to
  /// `endpoint` (leaf: always the hub link). Empty default when unroutable.
  [[nodiscard]] QueueState queue_state(const std::string& endpoint) const;

  /// The streamer's backpressure probe: true when the queue toward
  /// `endpoint` is at or past `fill_threshold` of the frame cap. A true
  /// result is counted (per peer and in dust_wire_backpressure_events_total)
  /// so operators can see pushback land before shedding would start.
  bool poll_backpressure(const std::string& endpoint, double fill_threshold);

 private:
  /// One queued wire frame: contiguous head plus optional borrowed payload
  /// segments (gather frames). `keepalive` pins the segment storage until
  /// the bytes are on the socket.
  struct TxFrame {
    std::vector<std::uint8_t> head;
    std::vector<PayloadRef> segments;
    std::shared_ptr<const void> keepalive;
    [[nodiscard]] std::size_t size() const noexcept {
      std::size_t total = head.size();
      for (const PayloadRef& segment : segments) total += segment.size;
      return total;
    }
  };

  struct Peer {
    int fd = -1;
    bool connecting = false;  ///< leaf: non-blocking connect in flight
    FrameBuffer rx;
    /// Encoded frames awaiting the socket, split by QoS class.
    std::deque<TxFrame> tx_normal;
    std::deque<TxFrame> tx_low;
    std::size_t queued_bytes = 0;  ///< sum of tx_normal + tx_low sizes
    /// Frame currently being written (may be partially sent). Empty head
    /// means none.
    TxFrame inflight;
    std::size_t inflight_offset = 0;
    /// Endpoint names announced over this connection (hub side).
    std::vector<std::string> endpoints;
    /// Per-peer shedding/backpressure telemetry (ISSUE 6 satellite).
    std::uint64_t shed_frames = 0;
    std::uint64_t shed_bytes = 0;
    std::uint64_t backpressure_events = 0;
  };

  /// Global-registry handles (dust_wire_*), resolved once at construction.
  struct Metrics {
    obs::Counter* tx_frames = nullptr;
    obs::Counter* rx_frames = nullptr;
    obs::Counter* tx_bytes = nullptr;
    obs::Counter* rx_bytes = nullptr;
    obs::Counter* forwarded = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* dropped_no_endpoint = nullptr;
    obs::Counter* dropped_queue_full = nullptr;
    obs::Counter* shed_bytes = nullptr;
    obs::Counter* backpressure_events = nullptr;
    obs::Counter* decode_errors = nullptr;
    obs::Counter* reconnects = nullptr;
    obs::Counter* connects = nullptr;
    obs::Histogram* encode_us = nullptr;  ///< wall-clock codec latency
    obs::Histogram* decode_us = nullptr;
  };

  [[nodiscard]] sim::TimeMs now() const;
  void start_listening();
  void start_connect();
  bool finish_connect();  ///< leaf: resolve a pending non-blocking connect
  void on_link_established();
  void on_link_lost();
  bool enqueue(Peer& peer, TxFrame frame, sim::Priority priority,
               const std::string& kind, const std::string& from,
               const std::string& to, std::uint64_t trace_id);
  bool flush(Peer& peer);  ///< false when the connection broke
  bool read_from(Peer& peer);  ///< false when the connection broke
  bool handle_frame(Peer& peer, DecodeResult decoded);
  void record_hop(obs::FlightEventKind event, const std::string& kind,
                  const std::string& from, const std::string& to,
                  std::uint64_t trace_id, const char* cause = nullptr);
  void drop_frame(const Frame& frame, const char* cause,
                  obs::Counter* by_cause);
  /// Leaf: (re)send the kAnnounce frame naming every local endpoint.
  void announce_local_endpoints();
  [[nodiscard]] Peer* route_of(const std::string& endpoint);
  [[nodiscard]] const Peer* peer_toward(const std::string& endpoint) const;

  SocketTransportConfig config_;
  Metrics metrics_;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  /// Hub: all accepted leaf connections, keyed by fd.
  std::map<int, Peer> peers_;
  /// Leaf: the (single) hub link. Persists across reconnects — fd flips to
  /// -1 while disconnected but the outbound queues keep accumulating, so
  /// control traffic sent during an outage is delivered after the backoff
  /// loop re-establishes the link.
  Peer hub_link_;
  std::int64_t backoff_ms_ = 0;
  std::int64_t next_connect_at_ms_ = 0;  ///< steady wall clock (ms)

  struct EndpointEntry {
    Handler handler;
    std::uint64_t token = 0;
  };
  std::unordered_map<std::string, EndpointEntry> local_endpoints_;
  std::unordered_map<std::string, int> remote_endpoints_;  ///< name -> peer fd
  std::uint64_t next_token_ = 1;

  /// Envelopes addressed to a same-process endpoint, dispatched in
  /// poll_once so handler reentrancy is never an issue.
  std::deque<sim::Envelope> local_queue_;
  /// Data-plane frames (kDataBlocks/kDataDegrade) awaiting the data
  /// handler; same reentrancy discipline as local_queue_.
  std::deque<Frame> data_queue_;
  std::function<void(Frame&&)> data_handler_;
  /// Observability frames (kObsScrape/kObsSnapshot) awaiting their
  /// handlers; same reentrancy discipline as local_queue_.
  std::deque<Frame> obs_queue_;
  std::function<void(Frame&&)> obs_scrape_handler_;
  std::function<void(Frame&&)> obs_snapshot_handler_;
  /// Federation frames (kShardHello..kDomainHandoff) awaiting the
  /// federation handler; same reentrancy discipline as local_queue_.
  std::deque<Frame> fed_queue_;
  std::function<void(Frame&&)> federation_handler_;
  std::function<bool(const Frame&)> gateway_;
  /// Leaf re-home hook (see set_reconnect_listener). `ever_connected_`
  /// distinguishes the first connect (no listener call) from reconnects.
  std::function<void()> reconnect_listener_;
  bool ever_connected_ = false;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t frames_forwarded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::int64_t epoch_ms_ = 0;  ///< steady-clock origin for the default now()
};

}  // namespace dust::wire
