#include "wire/obs_scrape.hpp"

#include <utility>

#include "util/log.hpp"

namespace dust::wire {

// --- ObsResponder ----------------------------------------------------------

ObsResponder::ObsResponder(SocketTransport& transport, std::string node,
                           obs::MetricRegistry& registry,
                           std::function<std::int64_t()> now)
    : transport_(&transport),
      node_(std::move(node)),
      endpoint_(obs_endpoint_name(node_)),
      registry_(&registry),
      now_(std::move(now)),
      scrape_bytes_(&registry.counter("dust_obs_scrape_bytes_total")) {
  // The endpoint handler never runs — kObsScrape frames land on the obs
  // handler slot, not the envelope path — but registering the name is what
  // makes the hub route scrapes here and lets scrapers discover us.
  token_ =
      transport_->register_endpoint(endpoint_, [](const sim::Envelope&) {});
  transport_->set_obs_scrape_handler(
      [this](Frame&& frame) { on_scrape(std::move(frame)); });
}

ObsResponder::~ObsResponder() {
  transport_->set_obs_scrape_handler({});
  transport_->unregister_endpoint(endpoint_, token_);
}

void ObsResponder::on_scrape(Frame&& frame) {
  std::unique_ptr<obs::SnapshotEncoder>& slot = encoders_[frame.from];
  if (!slot) slot = std::make_unique<obs::SnapshotEncoder>(*registry_);
  obs::SnapshotEncoder& encoder = *slot;
  // Order matters: the piggybacked ack promotes the baseline first, so a
  // registry that moved only by already-acked amounts reads as clean.
  if (frame.obs_scrape.ack_seq != 0) encoder.ack(frame.obs_scrape.ack_seq);
  if (frame.obs_scrape.request_full) encoder.reset();
  const std::int64_t source_now = now_ ? now_() : 0;
  if (!encoder.encode(source_now, buffer_)) {
    ++clean_scrapes_;  // nothing changed: no frame, no allocation
    return;
  }
  ObsSnapshotBody body;
  body.node = node_;
  body.payload = buffer_;
  const std::size_t bytes = body.payload.size();
  Frame reply = obs_snapshot_frame(endpoint_, frame.from, std::move(body));
  reply.trace_id = frame.trace_id;
  if (transport_->send_frame(std::move(reply))) {
    ++snapshots_sent_;
    scrape_bytes_->inc(bytes);
  }
}

// --- ObsScraper ------------------------------------------------------------

ObsScraper::ObsScraper(SocketTransport& transport, obs::Aggregator& aggregator,
                       std::string endpoint, ObsScraperConfig config,
                       obs::MetricRegistry& registry)
    : transport_(&transport),
      aggregator_(&aggregator),
      endpoint_(std::move(endpoint)),
      config_(std::move(config)),
      scrapes_sent_counter_(&registry.counter("dust_obs_scrapes_sent_total")),
      decode_failures_counter_(
          &registry.counter("dust_obs_snapshot_decode_failures_total")) {
  for (const std::string& target : config_.targets) targets_.emplace(target, Target{});
  token_ =
      transport_->register_endpoint(endpoint_, [](const sim::Envelope&) {});
  transport_->set_obs_snapshot_handler(
      [this](Frame&& frame) { on_snapshot(std::move(frame)); });
}

ObsScraper::~ObsScraper() {
  transport_->set_obs_snapshot_handler({});
  transport_->unregister_endpoint(endpoint_, token_);
}

std::size_t ObsScraper::scrape(std::int64_t now_ms) {
  last_scrape_now_ms_ = now_ms;
  if (config_.discover)
    for (std::string& name :
         transport_->remote_endpoint_names(kObsEndpointPrefix))
      targets_.emplace(std::move(name), Target{});
  std::size_t sent = 0;
  for (auto& [name, target] : targets_) {
    ObsScrapeBody body;
    body.scrape_seq = ++target.scrape_seq;
    body.ack_seq = target.ack_seq;
    body.request_full = target.want_full;
    if (!transport_->send_frame(obs_scrape_frame(endpoint_, name, body)))
      continue;
    ++sent;
    ++scrapes_sent_;
    scrapes_sent_counter_->inc();
  }
  return sent;
}

std::vector<std::string> ObsScraper::targets() const {
  std::vector<std::string> names;
  names.reserve(targets_.size());
  for (const auto& [name, target] : targets_) names.push_back(name);
  return names;
}

void ObsScraper::on_snapshot(Frame&& frame) {
  Target& target = targets_[frame.from];
  obs::SnapshotDelta delta;
  if (!decode_snapshot(frame.obs_snapshot.payload.data(),
                       frame.obs_snapshot.payload.size(), delta)) {
    ++decode_failures_;
    decode_failures_counter_->inc();
    target.want_full = true;  // resync: the stream is not trustworthy
    DUST_LOG_WARN << "obs: undecodable snapshot from " << frame.from
                  << " (" << frame.obs_snapshot.payload.size() << " bytes)";
    return;
  }
  const obs::Aggregator::ApplyResult result =
      aggregator_->apply(frame.obs_snapshot.node, delta, last_scrape_now_ms_,
                         frame.obs_snapshot.payload.size());
  if (result == obs::Aggregator::ApplyResult::kApplied) {
    ++snapshots_applied_;
    target.ack_seq = delta.seq;
    target.want_full = false;
  } else {
    ++snapshots_rejected_;
    target.want_full = true;
  }
}

}  // namespace dust::wire
