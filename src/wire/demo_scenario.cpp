#include "wire/demo_scenario.hpp"

#include <sstream>

#include "core/scenario.hpp"

namespace dust::wire {

const char* demo_scenario_text() {
  return R"(# wire demo: node 0 busy, nodes 1/2/5 candidates (see demo_scenario.hpp)
nodes 8
thresholds 80 60 10
edge 0 1 1000 1.0
edge 0 2 1000 1.0
edge 0 5 1000 1.0
edge 1 3 1000 1.0
edge 2 4 1000 1.0
edge 5 6 1000 1.0
edge 6 7 1000 1.0
load 0 93 80
load 1 40 10
load 2 35 10
load 5 45 10
load 3 70 10
load 4 70 10
load 6 70 10
load 7 70 10
)";
}

core::Nmdb demo_nmdb() {
  std::istringstream in(demo_scenario_text());
  return core::load_scenario(in);
}

}  // namespace dust::wire
