#include "wire/codec.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "wire/crc32.hpp"

namespace dust::wire {

namespace {

// ---- little-endian primitives ---------------------------------------------
// Explicit byte-at-a-time shifts: identical bytes on any host endianness,
// and no alignment requirements on the buffer.

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Raw IEEE-754 bits: bit-identical round trip, NaNs included.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str16(const std::string& s) {
    if (s.size() > 0xFFFF)
      throw std::invalid_argument("wire: string exceeds u16 length prefix");
    u16(static_cast<std::uint16_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }

 private:
  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[pos_ - 1];
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    return static_cast<std::uint16_t>(data_[pos_ - 2] |
                                      (data_[pos_ - 1] << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str16() {
    const std::uint16_t n = u16();
    if (!take(n)) return {};
    return std::string(reinterpret_cast<const char*>(data_ + pos_ - n), n);
  }
  std::vector<std::uint8_t> bytes(std::size_t n) {
    if (!take(n)) return {};
    return std::vector<std::uint8_t>(data_ + pos_ - n, data_ + pos_);
  }
  /// Element-count prefix with a sanity bound: each element is at least
  /// `min_element_bytes`, so a corrupt count that could not possibly fit in
  /// the remaining payload fails fast instead of looping.
  std::uint32_t count32(std::size_t min_element_bytes) {
    const std::uint32_t n = u32();
    if (min_element_bytes > 0 &&
        static_cast<std::uint64_t>(n) * min_element_bytes > size_ - pos_)
      ok_ = false;
    return ok_ ? n : 0;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- per-type body schemas -------------------------------------------------

void put_trace(Writer& w, const obs::TraceContext& trace) {
  w.u64(trace.trace_id);
  w.u64(trace.span_id);
}
obs::TraceContext get_trace(Reader& r) {
  obs::TraceContext trace;
  trace.trace_id = r.u64();
  trace.span_id = r.u64();
  return trace;
}

void put_route(Writer& w, const std::vector<graph::NodeId>& route) {
  w.u32(static_cast<std::uint32_t>(route.size()));
  for (const graph::NodeId node : route) w.u32(node);
}
std::vector<graph::NodeId> get_route(Reader& r) {
  const std::uint32_t n = r.count32(4);
  std::vector<graph::NodeId> route;
  route.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) route.push_back(r.u32());
  return route;
}

void put_agent(Writer& w, const telemetry::MonitorAgent& agent) {
  w.str16(agent.name());
  const telemetry::AgentCostModel& cost = agent.cost_model();
  w.f64(cost.cpu_base_ms);
  w.f64(cost.cpu_per_gbps_ms);
  w.f64(cost.burst_probability);
  w.f64(cost.burst_multiplier);
  w.f64(cost.memory_base_mib);
  w.i64(agent.interval_ms());
}
telemetry::MonitorAgent get_agent(Reader& r) {
  std::string name = r.str16();
  telemetry::AgentCostModel cost;
  cost.cpu_base_ms = r.f64();
  cost.cpu_per_gbps_ms = r.f64();
  cost.burst_probability = r.f64();
  cost.burst_multiplier = r.f64();
  cost.memory_base_mib = r.f64();
  const std::int64_t interval_ms = r.i64();
  // Blueprint semantics, same as REP re-homing: runtime state (bound
  // metrics, sample counts) is rebuilt at the destination.
  return telemetry::MonitorAgent(std::move(name), cost, interval_ms);
}

void put_snapshot(Writer& w, const telemetry::DeviceSnapshot& s) {
  w.i64(s.timestamp_ms);
  w.f64(s.device_cpu_percent);
  w.f64(s.memory_used_mib);
  w.f64(s.rx_mbps);
  w.f64(s.tx_mbps);
  w.f64(s.temperature_c);
  w.u32(s.links_up);
  w.u32(s.links_total);
  w.u32(s.protocol_flaps);
  w.u32(s.faults);
}
telemetry::DeviceSnapshot get_snapshot(Reader& r) {
  telemetry::DeviceSnapshot s;
  s.timestamp_ms = r.i64();
  s.device_cpu_percent = r.f64();
  s.memory_used_mib = r.f64();
  s.rx_mbps = r.f64();
  s.tx_mbps = r.f64();
  s.temperature_c = r.f64();
  s.links_up = r.u32();
  s.links_total = r.u32();
  s.protocol_flaps = r.u32();
  s.faults = r.u32();
  return s;
}

void put_body(Writer& w, const core::Message& message) {
  std::visit(
      [&w](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, core::OffloadCapableMsg>) {
          w.u32(msg.node);
          w.boolean(msg.capable);
          w.f64(msg.platform_factor);
        } else if constexpr (std::is_same_v<T, core::AckMsg>) {
          w.u32(msg.node);
          w.i64(msg.update_interval_ms);
        } else if constexpr (std::is_same_v<T, core::StatMsg>) {
          w.u32(msg.node);
          w.f64(msg.utilization_percent);
          w.f64(msg.monitoring_data_mb);
          w.u32(msg.agent_count);
          w.f64(msg.telemetry_keep_fraction);
          put_trace(w, msg.trace);
        } else if constexpr (std::is_same_v<T, core::OffloadRequestMsg>) {
          w.u64(msg.request_id);
          w.u32(msg.busy);
          w.u32(msg.destination);
          w.f64(msg.amount);
          w.u32(msg.agents_to_move);
          put_route(w, msg.route);
          put_trace(w, msg.trace);
        } else if constexpr (std::is_same_v<T, core::OffloadAckMsg>) {
          w.u64(msg.request_id);
          w.u32(msg.node);
          w.boolean(msg.accepted);
          put_trace(w, msg.trace);
        } else if constexpr (std::is_same_v<T, core::AgentTransferMsg>) {
          w.u64(msg.request_id);
          w.u32(msg.owner);
          w.u32(static_cast<std::uint32_t>(msg.agents.size()));
          for (const telemetry::MonitorAgent& agent : msg.agents)
            put_agent(w, agent);
          put_trace(w, msg.trace);
        } else if constexpr (std::is_same_v<T, core::TelemetryDataMsg>) {
          w.u32(msg.owner);
          put_snapshot(w, msg.snapshot);
        } else if constexpr (std::is_same_v<T, core::KeepaliveMsg>) {
          w.u32(msg.node);
          w.u64(msg.seq);
        } else if constexpr (std::is_same_v<T, core::RepMsg>) {
          w.u32(msg.failed);
          w.u32(msg.replacement);
          w.u32(msg.busy);
          w.u64(msg.request_id);
          w.f64(msg.amount);
          put_trace(w, msg.trace);
        } else {
          static_assert(std::is_same_v<T, core::ReleaseMsg>);
          w.u32(msg.busy);
          w.u32(msg.destination);
        }
      },
      message);
}

bool get_body(Reader& r, FrameType type, core::Message& out) {
  switch (type) {
    case FrameType::kOffloadCapable: {
      core::OffloadCapableMsg msg;
      msg.node = r.u32();
      msg.capable = r.boolean();
      msg.platform_factor = r.f64();
      out = msg;
      return r.ok();
    }
    case FrameType::kAck: {
      core::AckMsg msg;
      msg.node = r.u32();
      msg.update_interval_ms = r.i64();
      out = msg;
      return r.ok();
    }
    case FrameType::kStat: {
      core::StatMsg msg;
      msg.node = r.u32();
      msg.utilization_percent = r.f64();
      msg.monitoring_data_mb = r.f64();
      msg.agent_count = r.u32();
      msg.telemetry_keep_fraction = r.f64();
      msg.trace = get_trace(r);
      out = msg;
      return r.ok();
    }
    case FrameType::kOffloadRequest: {
      core::OffloadRequestMsg msg;
      msg.request_id = r.u64();
      msg.busy = r.u32();
      msg.destination = r.u32();
      msg.amount = r.f64();
      msg.agents_to_move = r.u32();
      msg.route = get_route(r);
      msg.trace = get_trace(r);
      out = std::move(msg);
      return r.ok();
    }
    case FrameType::kOffloadAck: {
      core::OffloadAckMsg msg;
      msg.request_id = r.u64();
      msg.node = r.u32();
      msg.accepted = r.boolean();
      msg.trace = get_trace(r);
      out = msg;
      return r.ok();
    }
    case FrameType::kAgentTransfer: {
      core::AgentTransferMsg msg;
      msg.request_id = r.u64();
      msg.owner = r.u32();
      const std::uint32_t n = r.count32(2 + 6 * 8 + 8);
      msg.agents.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i)
        msg.agents.push_back(get_agent(r));
      msg.trace = get_trace(r);
      out = std::move(msg);
      return r.ok();
    }
    case FrameType::kTelemetryData: {
      core::TelemetryDataMsg msg;
      msg.owner = r.u32();
      msg.snapshot = get_snapshot(r);
      out = msg;
      return r.ok();
    }
    case FrameType::kKeepalive: {
      core::KeepaliveMsg msg;
      msg.node = r.u32();
      msg.seq = r.u64();
      out = msg;
      return r.ok();
    }
    case FrameType::kRep: {
      core::RepMsg msg;
      msg.failed = r.u32();
      msg.replacement = r.u32();
      msg.busy = r.u32();
      msg.request_id = r.u64();
      msg.amount = r.f64();
      msg.trace = get_trace(r);
      out = msg;
      return r.ok();
    }
    case FrameType::kRelease: {
      core::ReleaseMsg msg;
      msg.busy = r.u32();
      msg.destination = r.u32();
      out = msg;
      return r.ok();
    }
    case FrameType::kAnnounce:
    case FrameType::kDataBlocks:
    case FrameType::kDataDegrade:
    case FrameType::kObsScrape:
    case FrameType::kObsSnapshot:
    case FrameType::kShardHello:
    case FrameType::kCapacityDigest:
    case FrameType::kDelegateRequest:
    case FrameType::kDelegateReply:
    case FrameType::kDomainHandoff:
      return false;  // handled separately, never reaches here
  }
  return false;
}

// ---- data-plane bodies (DESIGN.md §12) -------------------------------------

constexpr std::uint8_t kMaxDegradeMode =
    static_cast<std::uint8_t>(telemetry::DegradeMode::kAggregated);

/// Smallest possible encoded BlockDescriptor: empty series name + fixed
/// fields + the u32 payload_bytes suffix. Bounds count32 on decode.
constexpr std::size_t kMinDescriptorBytes = 2 + 8 + 4 + 8 + 8 + 8 + 8 + 4;

[[nodiscard]] std::uint64_t payload_bytes_for(std::uint64_t bit_count) {
  return bit_count / 8 + (bit_count % 8 != 0 ? 1 : 0);
}

void put_descriptor(Writer& w, const BlockDescriptor& d,
                    std::uint64_t payload_bytes) {
  w.str16(d.series);
  w.u64(d.block_seq);
  w.u32(d.sample_count);
  w.u64(d.bit_count);
  w.i64(d.first_timestamp_ms);
  w.i64(d.last_timestamp_ms);
  w.f64(d.last_value);
  w.u32(static_cast<std::uint32_t>(payload_bytes));
}

/// Everything in a kDataBlocks payload before the payload run. Descriptor
/// payload_bytes come back through `payload_sizes` (validated against
/// bit_count) so the caller can slice the tail.
bool get_data_blocks_prefix(Reader& r, DataBlocksBody& body,
                            std::vector<std::uint32_t>& payload_sizes) {
  body.owner = r.u32();
  body.batch_seq = r.u64();
  const std::uint8_t mode = r.u8();
  if (!r.ok() || mode > kMaxDegradeMode) return false;
  body.mode = static_cast<telemetry::DegradeMode>(mode);
  body.keep_probability = r.f64();
  body.trace = get_trace(r);
  const std::uint32_t n = r.count32(kMinDescriptorBytes);
  body.blocks.resize(n);
  payload_sizes.resize(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    BlockDescriptor& d = body.blocks[i].descriptor;
    d.series = r.str16();
    d.block_seq = r.u64();
    d.sample_count = r.u32();
    d.bit_count = r.u64();
    d.first_timestamp_ms = r.i64();
    d.last_timestamp_ms = r.i64();
    d.last_value = r.f64();
    payload_sizes[i] = r.u32();
    if (payload_sizes[i] != payload_bytes_for(d.bit_count)) return false;
  }
  return r.ok();
}

void put_degrade(Writer& w, const DegradeBody& body) {
  w.u32(body.owner);
  w.u8(static_cast<std::uint8_t>(body.mode));
  w.f64(body.keep_probability);
  w.u64(body.gap_from_batch);
  w.u64(body.gap_to_batch);
  w.u32(body.samples_dropped);
}

// ---- observability bodies (DESIGN.md §15) ----------------------------------

void put_obs_scrape(Writer& w, const ObsScrapeBody& body) {
  w.u64(body.scrape_seq);
  w.u64(body.ack_seq);
  w.u8(body.request_full ? 1 : 0);
}

bool get_obs_scrape(Reader& r, ObsScrapeBody& body) {
  body.scrape_seq = r.u64();
  body.ack_seq = r.u64();
  const std::uint8_t flags = r.u8();
  if (!r.ok() || (flags & ~std::uint8_t{1}) != 0) return false;
  body.request_full = (flags & 1) != 0;
  return true;
}

/// Writes the node + length prefix only; the caller appends the payload
/// bytes (opaque to the wire layer — the snapshot schema and its own bounds
/// checking live in obs/snapshot.hpp).
void put_obs_snapshot_prefix(Writer& w, const ObsSnapshotBody& body) {
  w.str16(body.node);
  w.u32(static_cast<std::uint32_t>(body.payload.size()));
}

bool get_obs_snapshot(Reader& r, ObsSnapshotBody& body) {
  body.node = r.str16();
  const std::uint32_t n = r.count32(1);
  body.payload = r.bytes(n);
  return r.ok();
}

// ---- federation bodies (DESIGN.md §16) -------------------------------------

void put_shard_hello(Writer& w, const ShardHelloBody& body) {
  w.u32(body.shard);
  w.u64(body.epoch);
  w.boolean(body.standby);
  w.str16(body.endpoint);
}

bool get_shard_hello(Reader& r, ShardHelloBody& body) {
  body.shard = r.u32();
  body.epoch = r.u64();
  const std::uint8_t standby = r.u8();
  if (!r.ok() || standby > 1) return false;
  body.standby = standby != 0;
  body.endpoint = r.str16();
  return r.ok();
}

void put_capacity_digest(Writer& w, const CapacityDigestBody& body) {
  w.u32(body.shard);
  w.u64(body.epoch);
  w.u64(body.seq);
  w.f64(body.spare);
  w.f64(body.excess);
  w.u32(body.busy_count);
  w.u32(body.candidate_count);
}

bool get_capacity_digest(Reader& r, CapacityDigestBody& body) {
  body.shard = r.u32();
  body.epoch = r.u64();
  body.seq = r.u64();
  body.spare = r.f64();
  body.excess = r.f64();
  body.busy_count = r.u32();
  body.candidate_count = r.u32();
  return r.ok();
}

void put_delegate_request(Writer& w, const DelegateRequestBody& body) {
  w.u32(body.shard);
  w.u64(body.epoch);
  w.u64(body.delegation_id);
  w.u32(body.busy);
  w.f64(body.amount);
  w.u32(body.agents);
  w.f64(body.platform_factor);
}

bool get_delegate_request(Reader& r, DelegateRequestBody& body) {
  body.shard = r.u32();
  body.epoch = r.u64();
  body.delegation_id = r.u64();
  body.busy = r.u32();
  body.amount = r.f64();
  body.agents = r.u32();
  body.platform_factor = r.f64();
  return r.ok();
}

void put_delegate_reply(Writer& w, const DelegateReplyBody& body) {
  w.u32(body.shard);
  w.u64(body.epoch);
  w.u64(body.delegation_id);
  w.boolean(body.granted);
  w.u32(body.destination);
  w.f64(body.amount);
}

bool get_delegate_reply(Reader& r, DelegateReplyBody& body) {
  body.shard = r.u32();
  body.epoch = r.u64();
  body.delegation_id = r.u64();
  const std::uint8_t granted = r.u8();
  if (!r.ok() || granted > 1) return false;
  body.granted = granted != 0;
  body.destination = r.u32();
  body.amount = r.f64();
  return r.ok();
}

void put_domain_handoff(Writer& w, const DomainHandoffBody& body) {
  w.u32(body.domain);
  w.u64(body.epoch);
  w.str16(body.endpoint);
}

bool get_domain_handoff(Reader& r, DomainHandoffBody& body) {
  body.domain = r.u32();
  body.epoch = r.u64();
  body.endpoint = r.str16();
  return r.ok();
}

bool get_degrade(Reader& r, DegradeBody& body) {
  body.owner = r.u32();
  const std::uint8_t mode = r.u8();
  if (!r.ok() || mode > kMaxDegradeMode) return false;
  body.mode = static_cast<telemetry::DegradeMode>(mode);
  body.keep_probability = r.f64();
  body.gap_from_batch = r.u64();
  body.gap_to_batch = r.u64();
  body.samples_dropped = r.u32();
  return r.ok();
}

void write_at_u32(std::vector<std::uint8_t>& buf, std::size_t offset,
                  std::uint32_t v) {
  buf[offset + 0] = static_cast<std::uint8_t>(v);
  buf[offset + 1] = static_cast<std::uint8_t>(v >> 8);
  buf[offset + 2] = static_cast<std::uint8_t>(v >> 16);
  buf[offset + 3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t read_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

}  // namespace

const char* to_string(FrameType type) noexcept {
  switch (type) {
    case FrameType::kOffloadCapable: return "offload_capable";
    case FrameType::kAck: return "ack";
    case FrameType::kStat: return "stat";
    case FrameType::kOffloadRequest: return "offload_request";
    case FrameType::kOffloadAck: return "offload_ack";
    case FrameType::kAgentTransfer: return "agent_transfer";
    case FrameType::kTelemetryData: return "telemetry_data";
    case FrameType::kKeepalive: return "keepalive";
    case FrameType::kRep: return "rep";
    case FrameType::kRelease: return "release";
    case FrameType::kAnnounce: return "announce";
    case FrameType::kDataBlocks: return "data_blocks";
    case FrameType::kDataDegrade: return "data_degrade";
    case FrameType::kObsScrape: return "obs_scrape";
    case FrameType::kObsSnapshot: return "obs_snapshot";
    case FrameType::kShardHello: return "shard_hello";
    case FrameType::kCapacityDigest: return "capacity_digest";
    case FrameType::kDelegateRequest: return "delegate_request";
    case FrameType::kDelegateReply: return "delegate_reply";
    case FrameType::kDomainHandoff: return "domain_handoff";
  }
  return "unknown";
}

FrameType frame_type_of(const core::Message& message) noexcept {
  // The variant's alternative order matches the tag order 1..10 by
  // construction; keep the mapping explicit anyway so reordering the
  // variant cannot silently renumber the wire format.
  return std::visit(
      [](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, core::OffloadCapableMsg>)
          return FrameType::kOffloadCapable;
        else if constexpr (std::is_same_v<T, core::AckMsg>)
          return FrameType::kAck;
        else if constexpr (std::is_same_v<T, core::StatMsg>)
          return FrameType::kStat;
        else if constexpr (std::is_same_v<T, core::OffloadRequestMsg>)
          return FrameType::kOffloadRequest;
        else if constexpr (std::is_same_v<T, core::OffloadAckMsg>)
          return FrameType::kOffloadAck;
        else if constexpr (std::is_same_v<T, core::AgentTransferMsg>)
          return FrameType::kAgentTransfer;
        else if constexpr (std::is_same_v<T, core::TelemetryDataMsg>)
          return FrameType::kTelemetryData;
        else if constexpr (std::is_same_v<T, core::KeepaliveMsg>)
          return FrameType::kKeepalive;
        else if constexpr (std::is_same_v<T, core::RepMsg>)
          return FrameType::kRep;
        else
          return FrameType::kRelease;
      },
      message);
}

const char* to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMoreData: return "need_more_data";
    case DecodeStatus::kBadMagic: return "bad_magic";
    case DecodeStatus::kBadCrc: return "bad_crc";
    case DecodeStatus::kBadVersion: return "bad_version";
    case DecodeStatus::kUnknownType: return "unknown_type";
    case DecodeStatus::kMalformedBody: return "malformed_body";
    case DecodeStatus::kOversized: return "oversized";
  }
  return "unknown";
}

Frame message_frame(std::string from, std::string to, core::Message message,
                    sim::Priority priority, std::string kind,
                    std::uint64_t trace_id) {
  Frame frame;
  frame.type = frame_type_of(message);
  frame.priority = priority;
  frame.trace_id = trace_id;
  frame.from = std::move(from);
  frame.to = std::move(to);
  frame.kind = std::move(kind);
  frame.message = std::move(message);
  return frame;
}

Frame announce_frame(std::vector<std::string> endpoints) {
  Frame frame;
  frame.type = FrameType::kAnnounce;
  frame.announce_endpoints = std::move(endpoints);
  return frame;
}

Frame data_blocks_frame(std::string from, std::string to, DataBlocksBody body,
                        std::uint64_t trace_id) {
  Frame frame;
  frame.type = FrameType::kDataBlocks;
  frame.priority = sim::Priority::kLow;
  frame.trace_id = trace_id;
  frame.from = std::move(from);
  frame.to = std::move(to);
  frame.kind = "data_blocks";
  frame.data_blocks = std::move(body);
  return frame;
}

Frame degrade_frame(std::string from, std::string to, DegradeBody body,
                    std::uint64_t trace_id) {
  Frame frame;
  frame.type = FrameType::kDataDegrade;
  frame.priority = sim::Priority::kNormal;
  frame.trace_id = trace_id;
  frame.from = std::move(from);
  frame.to = std::move(to);
  frame.kind = "data_degrade";
  frame.degrade = std::move(body);
  return frame;
}

Frame obs_scrape_frame(std::string from, std::string to, ObsScrapeBody body) {
  Frame frame;
  frame.type = FrameType::kObsScrape;
  frame.priority = sim::Priority::kNormal;
  frame.from = std::move(from);
  frame.to = std::move(to);
  frame.kind = "obs_scrape";
  frame.obs_scrape = body;
  return frame;
}

Frame obs_snapshot_frame(std::string from, std::string to,
                         ObsSnapshotBody body) {
  Frame frame;
  frame.type = FrameType::kObsSnapshot;
  frame.priority = sim::Priority::kLow;
  frame.from = std::move(from);
  frame.to = std::move(to);
  frame.kind = "obs_snapshot";
  frame.obs_snapshot = std::move(body);
  return frame;
}

Frame shard_hello_frame(std::string from, std::string to,
                        ShardHelloBody body) {
  Frame frame;
  frame.type = FrameType::kShardHello;
  frame.priority = sim::Priority::kNormal;
  frame.from = std::move(from);
  frame.to = std::move(to);
  frame.kind = "shard_hello";
  frame.shard_hello = std::move(body);
  return frame;
}

Frame capacity_digest_frame(std::string from, std::string to,
                            CapacityDigestBody body) {
  Frame frame;
  frame.type = FrameType::kCapacityDigest;
  frame.priority = sim::Priority::kNormal;
  frame.from = std::move(from);
  frame.to = std::move(to);
  frame.kind = "capacity_digest";
  frame.capacity_digest = body;
  return frame;
}

Frame delegate_request_frame(std::string from, std::string to,
                             DelegateRequestBody body,
                             std::uint64_t trace_id) {
  Frame frame;
  frame.type = FrameType::kDelegateRequest;
  frame.priority = sim::Priority::kNormal;
  frame.trace_id = trace_id;
  frame.from = std::move(from);
  frame.to = std::move(to);
  frame.kind = "delegate_request";
  frame.delegate_request = body;
  return frame;
}

Frame delegate_reply_frame(std::string from, std::string to,
                           DelegateReplyBody body, std::uint64_t trace_id) {
  Frame frame;
  frame.type = FrameType::kDelegateReply;
  frame.priority = sim::Priority::kNormal;
  frame.trace_id = trace_id;
  frame.from = std::move(from);
  frame.to = std::move(to);
  frame.kind = "delegate_reply";
  frame.delegate_reply = body;
  return frame;
}

Frame domain_handoff_frame(std::string from, std::string to,
                           DomainHandoffBody body) {
  Frame frame;
  frame.type = FrameType::kDomainHandoff;
  frame.priority = sim::Priority::kNormal;
  frame.from = std::move(from);
  frame.to = std::move(to);
  frame.kind = "domain_handoff";
  frame.domain_handoff = std::move(body);
  return frame;
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(64);
  Writer w(out);
  w.u32(kWireMagic);
  w.u32(0);  // CRC placeholder
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(frame.type));
  w.u32(0);  // payload_len placeholder
  w.u8(static_cast<std::uint8_t>(frame.priority));
  w.u8(0);
  w.u8(0);
  w.u8(0);
  w.u64(frame.trace_id);
  w.str16(frame.from);
  w.str16(frame.to);
  w.str16(frame.kind);
  if (frame.type == FrameType::kAnnounce) {
    w.u32(static_cast<std::uint32_t>(frame.announce_endpoints.size()));
    for (const std::string& endpoint : frame.announce_endpoints)
      w.str16(endpoint);
  } else if (frame.type == FrameType::kDataBlocks) {
    const DataBlocksBody& body = frame.data_blocks;
    w.u32(body.owner);
    w.u64(body.batch_seq);
    w.u8(static_cast<std::uint8_t>(body.mode));
    w.f64(body.keep_probability);
    put_trace(w, body.trace);
    w.u32(static_cast<std::uint32_t>(body.blocks.size()));
    for (const DataBlock& block : body.blocks) {
      if (block.payload.size() !=
          payload_bytes_for(block.descriptor.bit_count))
        throw std::invalid_argument(
            "wire: block payload size does not match bit_count");
      put_descriptor(w, block.descriptor, block.payload.size());
    }
    for (const DataBlock& block : body.blocks)
      out.insert(out.end(), block.payload.begin(), block.payload.end());
  } else if (frame.type == FrameType::kDataDegrade) {
    put_degrade(w, frame.degrade);
  } else if (frame.type == FrameType::kObsScrape) {
    put_obs_scrape(w, frame.obs_scrape);
  } else if (frame.type == FrameType::kShardHello) {
    put_shard_hello(w, frame.shard_hello);
  } else if (frame.type == FrameType::kCapacityDigest) {
    put_capacity_digest(w, frame.capacity_digest);
  } else if (frame.type == FrameType::kDelegateRequest) {
    put_delegate_request(w, frame.delegate_request);
  } else if (frame.type == FrameType::kDelegateReply) {
    put_delegate_reply(w, frame.delegate_reply);
  } else if (frame.type == FrameType::kDomainHandoff) {
    put_domain_handoff(w, frame.domain_handoff);
  } else if (frame.type == FrameType::kObsSnapshot) {
    put_obs_snapshot_prefix(w, frame.obs_snapshot);
    out.insert(out.end(), frame.obs_snapshot.payload.begin(),
               frame.obs_snapshot.payload.end());
  } else {
    if (frame_type_of(frame.message) != frame.type)
      throw std::invalid_argument(
          "wire: frame type does not match message alternative");
    put_body(w, frame.message);
  }
  const std::size_t payload_len = out.size() - kWireHeaderBytes;
  if (payload_len > kMaxPayloadBytes)
    throw std::invalid_argument("wire: frame payload exceeds kMaxPayloadBytes");
  write_at_u32(out, 12, static_cast<std::uint32_t>(payload_len));
  write_at_u32(out, 4, crc32(out.data() + 8, out.size() - 8));
  return out;
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t size) {
  DecodeResult result;
  if (size < kWireHeaderBytes) return result;  // kNeedMoreData, consumed 0
  if (read_u32(data) != kWireMagic) {
    result.status = DecodeStatus::kBadMagic;
    result.consumed = 1;
    return result;
  }
  const std::uint32_t payload_len = read_u32(data + 12);
  if (payload_len > kMaxPayloadBytes) {
    // The length is corrupt (or hostile); nothing downstream of it can be
    // trusted, so resync byte-by-byte like a magic failure.
    result.status = DecodeStatus::kOversized;
    result.consumed = 1;
    return result;
  }
  const std::size_t frame_bytes = kWireHeaderBytes + payload_len;
  if (size < frame_bytes) return result;  // kNeedMoreData
  // Integrity first: the CRC spans version/type/length and the payload, so
  // from here on every field is trustworthy (or we drop the whole frame).
  if (crc32(data + 8, frame_bytes - 8) != read_u32(data + 4)) {
    result.status = DecodeStatus::kBadCrc;
    result.consumed = frame_bytes;
    return result;
  }
  result.consumed = frame_bytes;
  if (read_u16(data + 8) != kWireVersion) {
    result.status = DecodeStatus::kBadVersion;
    return result;
  }
  const std::uint16_t raw_type = read_u16(data + 10);
  Reader r(data + kWireHeaderBytes, payload_len);
  Frame frame;
  const std::uint8_t priority = r.u8();
  r.u8();
  r.u8();
  r.u8();
  if (priority > static_cast<std::uint8_t>(sim::Priority::kNormal)) {
    result.status = DecodeStatus::kMalformedBody;
    return result;
  }
  frame.priority = static_cast<sim::Priority>(priority);
  frame.trace_id = r.u64();
  frame.from = r.str16();
  frame.to = r.str16();
  frame.kind = r.str16();
  if (raw_type == static_cast<std::uint16_t>(FrameType::kAnnounce)) {
    frame.type = FrameType::kAnnounce;
    const std::uint32_t n = r.count32(2);
    frame.announce_endpoints.reserve(n);
    for (std::uint32_t i = 0; i < n && r.ok(); ++i)
      frame.announce_endpoints.push_back(r.str16());
  } else if (raw_type == static_cast<std::uint16_t>(FrameType::kDataBlocks)) {
    frame.type = FrameType::kDataBlocks;
    std::vector<std::uint32_t> payload_sizes;
    if (!get_data_blocks_prefix(r, frame.data_blocks, payload_sizes)) {
      result.status = DecodeStatus::kMalformedBody;
      return result;
    }
    for (std::size_t i = 0; i < payload_sizes.size(); ++i)
      frame.data_blocks.blocks[i].payload = r.bytes(payload_sizes[i]);
  } else if (raw_type == static_cast<std::uint16_t>(FrameType::kDataDegrade)) {
    frame.type = FrameType::kDataDegrade;
    if (!get_degrade(r, frame.degrade)) {
      result.status = DecodeStatus::kMalformedBody;
      return result;
    }
  } else if (raw_type == static_cast<std::uint16_t>(FrameType::kObsScrape)) {
    frame.type = FrameType::kObsScrape;
    if (!get_obs_scrape(r, frame.obs_scrape)) {
      result.status = DecodeStatus::kMalformedBody;
      return result;
    }
  } else if (raw_type == static_cast<std::uint16_t>(FrameType::kObsSnapshot)) {
    frame.type = FrameType::kObsSnapshot;
    if (!get_obs_snapshot(r, frame.obs_snapshot)) {
      result.status = DecodeStatus::kMalformedBody;
      return result;
    }
  } else if (raw_type == static_cast<std::uint16_t>(FrameType::kShardHello)) {
    frame.type = FrameType::kShardHello;
    if (!get_shard_hello(r, frame.shard_hello)) {
      result.status = DecodeStatus::kMalformedBody;
      return result;
    }
  } else if (raw_type ==
             static_cast<std::uint16_t>(FrameType::kCapacityDigest)) {
    frame.type = FrameType::kCapacityDigest;
    if (!get_capacity_digest(r, frame.capacity_digest)) {
      result.status = DecodeStatus::kMalformedBody;
      return result;
    }
  } else if (raw_type ==
             static_cast<std::uint16_t>(FrameType::kDelegateRequest)) {
    frame.type = FrameType::kDelegateRequest;
    if (!get_delegate_request(r, frame.delegate_request)) {
      result.status = DecodeStatus::kMalformedBody;
      return result;
    }
  } else if (raw_type ==
             static_cast<std::uint16_t>(FrameType::kDelegateReply)) {
    frame.type = FrameType::kDelegateReply;
    if (!get_delegate_reply(r, frame.delegate_reply)) {
      result.status = DecodeStatus::kMalformedBody;
      return result;
    }
  } else if (raw_type ==
             static_cast<std::uint16_t>(FrameType::kDomainHandoff)) {
    frame.type = FrameType::kDomainHandoff;
    if (!get_domain_handoff(r, frame.domain_handoff)) {
      result.status = DecodeStatus::kMalformedBody;
      return result;
    }
  } else if (raw_type >=
                 static_cast<std::uint16_t>(FrameType::kOffloadCapable) &&
             raw_type <= static_cast<std::uint16_t>(FrameType::kRelease)) {
    frame.type = static_cast<FrameType>(raw_type);
    if (!get_body(r, frame.type, frame.message)) {
      result.status = DecodeStatus::kMalformedBody;
      return result;
    }
  } else {
    result.status = DecodeStatus::kUnknownType;
    return result;
  }
  if (!r.ok() || !r.exhausted()) {
    // Short body or trailing garbage: the schema and the length prefix
    // disagree.
    result.status = DecodeStatus::kMalformedBody;
    return result;
  }
  result.status = DecodeStatus::kOk;
  result.frame = std::move(frame);
  result.raw = data;
  result.raw_size = frame_bytes;
  return result;
}

GatherFrame encode_data_blocks_gather(
    const Frame& frame, const std::vector<PayloadRef>& payloads) {
  if (frame.type != FrameType::kDataBlocks)
    throw std::invalid_argument("wire: gather encode needs a kDataBlocks frame");
  const DataBlocksBody& body = frame.data_blocks;
  if (payloads.size() != body.blocks.size())
    throw std::invalid_argument("wire: one PayloadRef per block required");

  GatherFrame gather;
  std::vector<std::uint8_t>& out = gather.head;
  out.reserve(kWireHeaderBytes + 64 + body.blocks.size() * 64);
  Writer w(out);
  w.u32(kWireMagic);
  w.u32(0);  // CRC placeholder
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(frame.type));
  w.u32(0);  // payload_len placeholder
  w.u8(static_cast<std::uint8_t>(frame.priority));
  w.u8(0);
  w.u8(0);
  w.u8(0);
  w.u64(frame.trace_id);
  w.str16(frame.from);
  w.str16(frame.to);
  w.str16(frame.kind);
  w.u32(body.owner);
  w.u64(body.batch_seq);
  w.u8(static_cast<std::uint8_t>(body.mode));
  w.f64(body.keep_probability);
  put_trace(w, body.trace);
  w.u32(static_cast<std::uint32_t>(body.blocks.size()));
  std::size_t payload_run = 0;
  for (std::size_t i = 0; i < body.blocks.size(); ++i) {
    const DataBlock& block = body.blocks[i];
    if (!block.payload.empty())
      throw std::invalid_argument(
          "wire: gather blocks must carry payloads by reference only");
    if (payloads[i].size != payload_bytes_for(block.descriptor.bit_count))
      throw std::invalid_argument(
          "wire: PayloadRef size does not match bit_count");
    put_descriptor(w, block.descriptor, payloads[i].size);
    payload_run += payloads[i].size;
  }
  const std::size_t payload_len =
      out.size() - kWireHeaderBytes + payload_run;
  if (payload_len > kMaxPayloadBytes)
    throw std::invalid_argument("wire: frame payload exceeds kMaxPayloadBytes");
  write_at_u32(out, 12, static_cast<std::uint32_t>(payload_len));
  // Stream the CRC across head + segments: the receiver sees one contiguous
  // frame, so the checksum must span the same bytes in the same order.
  std::uint32_t crc = crc32_init();
  crc = crc32_update(crc, out.data() + 8, out.size() - 8);
  for (const PayloadRef& payload : payloads)
    crc = crc32_update(crc, payload.data, payload.size);
  write_at_u32(out, 4, crc32_final(crc));
  gather.segments = payloads;
  return gather;
}

void FrameBuffer::append(const void* data, std::size_t size) {
  // Compact before growing: keeps the steady-state footprint at one frame.
  if (offset_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

DecodeResult FrameBuffer::next() {
  DecodeResult result =
      decode_frame(buffer_.data() + offset_, buffer_.size() - offset_);
  offset_ += result.consumed;
  return result;
}

void FrameBuffer::clear() noexcept {
  buffer_.clear();
  offset_ = 0;
}

}  // namespace dust::wire
