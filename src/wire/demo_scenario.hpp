// The scenario shared by the daemon examples and the multi-process
// equivalence test: one busy node with three viable offload candidates, so a
// destination can die mid-offload and the manager still has replicas with
// spare capacity to substitute (REP path, §III-B).
//
// Layout (thresholds Cmax=80 COmax=60 Xmin=10):
//   node 0: 93% utilized -> busy, excess 13
//   nodes 1/2/5: 40/35/45% -> candidates with spare 20/25/15
//   nodes 3/4/6/7: 70% -> neither busy nor candidate (forwarders)
// All three candidates are direct neighbours of node 0, so the one-hop
// heuristic (Algorithm 1, radius 1) sees the same candidate set as the ILP.
#pragma once

#include "core/nmdb.hpp"

namespace dust::wire {

inline constexpr std::size_t kDemoNodeCount = 8;

/// Scenario text in the core::load_scenario format.
[[nodiscard]] const char* demo_scenario_text();

/// The parsed scenario.
[[nodiscard]] core::Nmdb demo_nmdb();

}  // namespace dust::wire
