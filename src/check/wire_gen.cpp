#include "check/wire_gen.hpp"

#include <bit>
#include <string>
#include <vector>

namespace dust::check {

namespace {

/// Any bit pattern, NaNs and infinities included: the codec must round-trip
/// doubles as raw bits, not as values.
double random_double(util::Rng& rng) {
  switch (rng.below(4)) {
    case 0: return std::bit_cast<double>(rng());
    case 1: return rng.uniform(-1e6, 1e6);
    case 2: return 0.0;
    default: return rng.uniform(0.0, 100.0);
  }
}

std::string random_string(util::Rng& rng, std::size_t max_len = 24) {
  const std::size_t len = rng.below(max_len + 1);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(static_cast<char>(rng.range(0, 255)));
  return out;
}

graph::NodeId random_node(util::Rng& rng) {
  return rng.bernoulli(0.05) ? graph::kInvalidNode
                             : static_cast<graph::NodeId>(rng.below(1 << 20));
}

obs::TraceContext random_trace(util::Rng& rng) {
  return obs::TraceContext{rng(), rng()};
}

std::vector<graph::NodeId> random_route(util::Rng& rng) {
  std::vector<graph::NodeId> route(rng.below(9));
  for (graph::NodeId& hop : route) hop = random_node(rng);
  return route;
}

telemetry::MonitorAgent random_agent(util::Rng& rng) {
  telemetry::AgentCostModel cost;
  cost.cpu_base_ms = random_double(rng);
  cost.cpu_per_gbps_ms = random_double(rng);
  cost.burst_probability = random_double(rng);
  cost.burst_multiplier = random_double(rng);
  cost.memory_base_mib = random_double(rng);
  return telemetry::MonitorAgent(random_string(rng), cost,
                                 rng.range(1, 1000000));
}

telemetry::DeviceSnapshot random_snapshot(util::Rng& rng) {
  telemetry::DeviceSnapshot snapshot;
  snapshot.timestamp_ms = static_cast<std::int64_t>(rng());
  snapshot.device_cpu_percent = random_double(rng);
  snapshot.memory_used_mib = random_double(rng);
  snapshot.rx_mbps = random_double(rng);
  snapshot.tx_mbps = random_double(rng);
  snapshot.temperature_c = random_double(rng);
  snapshot.links_up = static_cast<std::uint32_t>(rng());
  snapshot.links_total = static_cast<std::uint32_t>(rng());
  snapshot.protocol_flaps = static_cast<std::uint32_t>(rng());
  snapshot.faults = static_cast<std::uint32_t>(rng());
  return snapshot;
}

telemetry::DegradeMode random_mode(util::Rng& rng) {
  return static_cast<telemetry::DegradeMode>(rng.below(3));
}

}  // namespace

wire::DataBlocksBody random_data_blocks_body(util::Rng& rng) {
  wire::DataBlocksBody body;
  body.owner = random_node(rng);
  body.batch_seq = rng();
  body.mode = random_mode(rng);
  body.keep_probability = random_double(rng);
  body.trace = random_trace(rng);
  const std::size_t count = rng.below(5);
  body.blocks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    wire::DataBlock block;
    block.descriptor.series = random_string(rng);
    block.descriptor.block_seq = rng();
    block.descriptor.sample_count = static_cast<std::uint32_t>(rng());
    // Schema constraint: payload carries exactly ceil(bit_count / 8) bytes.
    block.descriptor.bit_count = rng.below(1 << 12);
    block.descriptor.first_timestamp_ms = static_cast<std::int64_t>(rng());
    block.descriptor.last_timestamp_ms = static_cast<std::int64_t>(rng());
    block.descriptor.last_value = random_double(rng);
    block.payload.resize((block.descriptor.bit_count + 7) / 8);
    for (std::uint8_t& byte : block.payload)
      byte = static_cast<std::uint8_t>(rng.range(0, 255));
    body.blocks.push_back(std::move(block));
  }
  return body;
}

wire::DegradeBody random_degrade_body(util::Rng& rng) {
  wire::DegradeBody body;
  body.owner = random_node(rng);
  body.mode = random_mode(rng);
  body.keep_probability = random_double(rng);
  if (rng.bernoulli(0.5)) {
    // Declared gap: an inclusive, possibly single-batch range.
    body.gap_from_batch = rng.below(1 << 16);
    body.gap_to_batch = body.gap_from_batch + rng.below(16);
  }  // else keep the default from > to "mode change only" encoding
  body.samples_dropped = static_cast<std::uint32_t>(rng());
  return body;
}

wire::ObsScrapeBody random_obs_scrape_body(util::Rng& rng) {
  wire::ObsScrapeBody body;
  body.scrape_seq = rng();
  body.ack_seq = rng();
  body.request_full = rng.bernoulli(0.5);
  return body;
}

wire::ObsSnapshotBody random_obs_snapshot_body(util::Rng& rng) {
  wire::ObsSnapshotBody body;
  body.node = random_string(rng);
  // The payload is opaque to the wire layer: arbitrary bytes (not
  // necessarily a decodable obs snapshot) must round-trip verbatim.
  body.payload.resize(rng.below(256));
  for (std::uint8_t& byte : body.payload)
    byte = static_cast<std::uint8_t>(rng.range(0, 255));
  return body;
}

wire::ShardHelloBody random_shard_hello_body(util::Rng& rng) {
  wire::ShardHelloBody body;
  body.shard = static_cast<std::uint32_t>(rng());
  body.epoch = rng();
  body.standby = rng.bernoulli(0.3);
  body.endpoint = random_string(rng);
  return body;
}

wire::CapacityDigestBody random_capacity_digest_body(util::Rng& rng) {
  wire::CapacityDigestBody body;
  body.shard = static_cast<std::uint32_t>(rng());
  body.epoch = rng();
  body.seq = rng();
  body.spare = random_double(rng);
  body.excess = random_double(rng);
  body.busy_count = static_cast<std::uint32_t>(rng());
  body.candidate_count = static_cast<std::uint32_t>(rng());
  return body;
}

wire::DelegateRequestBody random_delegate_request_body(util::Rng& rng) {
  wire::DelegateRequestBody body;
  body.shard = static_cast<std::uint32_t>(rng());
  body.epoch = rng();
  body.delegation_id = rng();
  body.busy = random_node(rng);
  body.amount = random_double(rng);
  body.agents = static_cast<std::uint32_t>(rng());
  body.platform_factor = random_double(rng);
  return body;
}

wire::DelegateReplyBody random_delegate_reply_body(util::Rng& rng) {
  wire::DelegateReplyBody body;
  body.shard = static_cast<std::uint32_t>(rng());
  body.epoch = rng();
  body.delegation_id = rng();
  body.granted = rng.bernoulli(0.5);
  body.destination = random_node(rng);
  body.amount = random_double(rng);
  return body;
}

wire::DomainHandoffBody random_domain_handoff_body(util::Rng& rng) {
  wire::DomainHandoffBody body;
  body.domain = static_cast<std::uint32_t>(rng());
  body.epoch = rng();
  body.endpoint = random_string(rng);
  return body;
}

core::Message random_message(util::Rng& rng, std::size_t type_index) {
  switch (type_index % 10) {
    case 0:
      return core::OffloadCapableMsg{random_node(rng), rng.bernoulli(0.8),
                                     random_double(rng)};
    case 1:
      return core::AckMsg{random_node(rng),
                          static_cast<std::int64_t>(rng())};
    case 2:
      return core::StatMsg{random_node(rng), random_double(rng),
                           random_double(rng),
                           static_cast<std::uint32_t>(rng()),
                           random_double(rng), random_trace(rng)};
    case 3:
      return core::OffloadRequestMsg{
          rng(), random_node(rng), random_node(rng), random_double(rng),
          static_cast<std::uint32_t>(rng()), random_route(rng),
          random_trace(rng)};
    case 4:
      return core::OffloadAckMsg{rng(), random_node(rng), rng.bernoulli(0.9),
                                 random_trace(rng)};
    case 5: {
      std::vector<telemetry::MonitorAgent> agents;
      const std::size_t count = rng.below(4);
      agents.reserve(count);
      for (std::size_t i = 0; i < count; ++i)
        agents.push_back(random_agent(rng));
      return core::AgentTransferMsg{rng(), random_node(rng),
                                    std::move(agents), random_trace(rng)};
    }
    case 6:
      return core::TelemetryDataMsg{random_node(rng), random_snapshot(rng)};
    case 7:
      return core::KeepaliveMsg{random_node(rng), rng()};
    case 8:
      return core::RepMsg{random_node(rng), random_node(rng),
                          random_node(rng), rng(),   random_double(rng),
                          random_trace(rng)};
    default:
      return core::ReleaseMsg{random_node(rng), random_node(rng)};
  }
}

wire::Frame random_frame(util::Rng& rng) {
  if (rng.bernoulli(0.1)) {
    std::vector<std::string> endpoints(rng.below(6));
    for (std::string& name : endpoints) name = random_string(rng);
    return wire::announce_frame(std::move(endpoints));
  }
  // Data-plane frames get the same fuzz exposure as protocol frames.
  if (rng.bernoulli(0.1))
    return wire::data_blocks_frame(random_string(rng), random_string(rng),
                                   random_data_blocks_body(rng), rng());
  if (rng.bernoulli(0.1))
    return wire::degrade_frame(random_string(rng), random_string(rng),
                               random_degrade_body(rng), rng());
  // Observability-plane frames ride the same codec; fuzz them too.
  if (rng.bernoulli(0.05))
    return wire::obs_scrape_frame(random_string(rng), random_string(rng),
                                  random_obs_scrape_body(rng));
  if (rng.bernoulli(0.05))
    return wire::obs_snapshot_frame(random_string(rng), random_string(rng),
                                    random_obs_snapshot_body(rng));
  // Federation frames (manager-to-manager control plane) fuzz too.
  if (rng.bernoulli(0.04))
    return wire::shard_hello_frame(random_string(rng), random_string(rng),
                                   random_shard_hello_body(rng));
  if (rng.bernoulli(0.04))
    return wire::capacity_digest_frame(random_string(rng), random_string(rng),
                                       random_capacity_digest_body(rng));
  if (rng.bernoulli(0.04))
    return wire::delegate_request_frame(random_string(rng), random_string(rng),
                                        random_delegate_request_body(rng),
                                        rng());
  if (rng.bernoulli(0.04))
    return wire::delegate_reply_frame(random_string(rng), random_string(rng),
                                      random_delegate_reply_body(rng), rng());
  if (rng.bernoulli(0.04))
    return wire::domain_handoff_frame(random_string(rng), random_string(rng),
                                      random_domain_handoff_body(rng));
  core::Message message = random_message(rng, rng.below(10));
  const sim::Priority priority =
      rng.bernoulli(0.5) ? sim::Priority::kLow : sim::Priority::kNormal;
  return wire::message_frame(random_string(rng), random_string(rng),
                             std::move(message), priority, random_string(rng),
                             rng());
}

}  // namespace dust::check
