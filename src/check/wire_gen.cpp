#include "check/wire_gen.hpp"

#include <bit>
#include <string>
#include <vector>

namespace dust::check {

namespace {

/// Any bit pattern, NaNs and infinities included: the codec must round-trip
/// doubles as raw bits, not as values.
double random_double(util::Rng& rng) {
  switch (rng.below(4)) {
    case 0: return std::bit_cast<double>(rng());
    case 1: return rng.uniform(-1e6, 1e6);
    case 2: return 0.0;
    default: return rng.uniform(0.0, 100.0);
  }
}

std::string random_string(util::Rng& rng, std::size_t max_len = 24) {
  const std::size_t len = rng.below(max_len + 1);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(static_cast<char>(rng.range(0, 255)));
  return out;
}

graph::NodeId random_node(util::Rng& rng) {
  return rng.bernoulli(0.05) ? graph::kInvalidNode
                             : static_cast<graph::NodeId>(rng.below(1 << 20));
}

obs::TraceContext random_trace(util::Rng& rng) {
  return obs::TraceContext{rng(), rng()};
}

std::vector<graph::NodeId> random_route(util::Rng& rng) {
  std::vector<graph::NodeId> route(rng.below(9));
  for (graph::NodeId& hop : route) hop = random_node(rng);
  return route;
}

telemetry::MonitorAgent random_agent(util::Rng& rng) {
  telemetry::AgentCostModel cost;
  cost.cpu_base_ms = random_double(rng);
  cost.cpu_per_gbps_ms = random_double(rng);
  cost.burst_probability = random_double(rng);
  cost.burst_multiplier = random_double(rng);
  cost.memory_base_mib = random_double(rng);
  return telemetry::MonitorAgent(random_string(rng), cost,
                                 rng.range(1, 1000000));
}

telemetry::DeviceSnapshot random_snapshot(util::Rng& rng) {
  telemetry::DeviceSnapshot snapshot;
  snapshot.timestamp_ms = static_cast<std::int64_t>(rng());
  snapshot.device_cpu_percent = random_double(rng);
  snapshot.memory_used_mib = random_double(rng);
  snapshot.rx_mbps = random_double(rng);
  snapshot.tx_mbps = random_double(rng);
  snapshot.temperature_c = random_double(rng);
  snapshot.links_up = static_cast<std::uint32_t>(rng());
  snapshot.links_total = static_cast<std::uint32_t>(rng());
  snapshot.protocol_flaps = static_cast<std::uint32_t>(rng());
  snapshot.faults = static_cast<std::uint32_t>(rng());
  return snapshot;
}

}  // namespace

core::Message random_message(util::Rng& rng, std::size_t type_index) {
  switch (type_index % 10) {
    case 0:
      return core::OffloadCapableMsg{random_node(rng), rng.bernoulli(0.8),
                                     random_double(rng)};
    case 1:
      return core::AckMsg{random_node(rng),
                          static_cast<std::int64_t>(rng())};
    case 2:
      return core::StatMsg{random_node(rng), random_double(rng),
                           random_double(rng),
                           static_cast<std::uint32_t>(rng()),
                           random_trace(rng)};
    case 3:
      return core::OffloadRequestMsg{
          rng(), random_node(rng), random_node(rng), random_double(rng),
          static_cast<std::uint32_t>(rng()), random_route(rng),
          random_trace(rng)};
    case 4:
      return core::OffloadAckMsg{rng(), random_node(rng), rng.bernoulli(0.9),
                                 random_trace(rng)};
    case 5: {
      std::vector<telemetry::MonitorAgent> agents;
      const std::size_t count = rng.below(4);
      agents.reserve(count);
      for (std::size_t i = 0; i < count; ++i)
        agents.push_back(random_agent(rng));
      return core::AgentTransferMsg{rng(), random_node(rng),
                                    std::move(agents), random_trace(rng)};
    }
    case 6:
      return core::TelemetryDataMsg{random_node(rng), random_snapshot(rng)};
    case 7:
      return core::KeepaliveMsg{random_node(rng), rng()};
    case 8:
      return core::RepMsg{random_node(rng), random_node(rng),
                          random_node(rng), rng(),   random_double(rng),
                          random_trace(rng)};
    default:
      return core::ReleaseMsg{random_node(rng), random_node(rng)};
  }
}

wire::Frame random_frame(util::Rng& rng) {
  if (rng.bernoulli(0.1)) {
    std::vector<std::string> endpoints(rng.below(6));
    for (std::string& name : endpoints) name = random_string(rng);
    return wire::announce_frame(std::move(endpoints));
  }
  core::Message message = random_message(rng, rng.below(10));
  const sim::Priority priority =
      rng.bernoulli(0.5) ? sim::Priority::kLow : sim::Priority::kNormal;
  return wire::message_frame(random_string(rng), random_string(rng),
                             std::move(message), priority, random_string(rng),
                             rng());
}

}  // namespace dust::check
