// Random protocol frames for the wire-codec property tests: every
// core::Message alternative (and the transport's kAnnounce control frame) is
// reachable, all numeric fields take arbitrary bit patterns (including NaN
// payloads for doubles), and the same Rng stream always yields the same
// frame — so a failing seed is a complete reproduction.
#pragma once

#include "core/messages.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"

namespace dust::check {

/// A random message of the alternative picked by `type_index` (0..9, the
/// variant order). Field values are drawn from `rng`.
[[nodiscard]] core::Message random_message(util::Rng& rng,
                                           std::size_t type_index);

/// Schema-valid random data-plane bodies (payload sizes always match the
/// descriptor bit counts, modes stay in range) — byte-level corruption is
/// the fuzzer's job, applied to the encoding afterwards.
[[nodiscard]] wire::DataBlocksBody random_data_blocks_body(util::Rng& rng);
[[nodiscard]] wire::DegradeBody random_degrade_body(util::Rng& rng);

/// Random observability-plane bodies. The snapshot payload is arbitrary
/// bytes — opaque at the wire layer; obs/snapshot.cpp has its own fuzz.
[[nodiscard]] wire::ObsScrapeBody random_obs_scrape_body(util::Rng& rng);
[[nodiscard]] wire::ObsSnapshotBody random_obs_snapshot_body(util::Rng& rng);

/// Random federation bodies (DESIGN.md §16) — epochs, shard ids, and
/// digest totals take arbitrary bit patterns.
[[nodiscard]] wire::ShardHelloBody random_shard_hello_body(util::Rng& rng);
[[nodiscard]] wire::CapacityDigestBody random_capacity_digest_body(
    util::Rng& rng);
[[nodiscard]] wire::DelegateRequestBody random_delegate_request_body(
    util::Rng& rng);
[[nodiscard]] wire::DelegateReplyBody random_delegate_reply_body(
    util::Rng& rng);
[[nodiscard]] wire::DomainHandoffBody random_domain_handoff_body(
    util::Rng& rng);

/// A random protocol, announce, data-plane, or obs frame: envelope
/// passengers (priority, trace_id, from/to/kind) randomized with the body.
[[nodiscard]] wire::Frame random_frame(util::Rng& rng);

}  // namespace dust::check
