#include "check/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "net/response_cache.hpp"
#include "solver/exhaustive.hpp"
#include "solver/transportation.hpp"
#include "util/rng.hpp"

namespace dust::check {

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

bool objectives_agree(double a, double b, double tolerance) {
  if (a == b) return true;  // covers the inf == inf (forbidden cell) case
  return std::abs(a - b) <= tolerance * std::max({1.0, std::abs(a),
                                                  std::abs(b)});
}

solver::TransportationProblem to_transportation(
    const core::PlacementProblem& p) {
  solver::TransportationProblem t;
  t.supply = p.cs;
  t.capacity = p.cd;
  t.cost = p.trmin;
  return t;
}

// Compact instance dump appended to O1/O2 violations so a disagreement is
// reproducible straight from the failure message (the oracle only runs on
// problems up to max_cells, so this stays small).
std::string describe_instance(const core::PlacementProblem& p) {
  std::ostringstream os;
  os.precision(17);
  os << " [cs:";
  for (double v : p.cs) os << ' ' << v;
  os << " | cd:";
  for (double v : p.cd) os << ' ' << v;
  os << " | trmin:";
  for (double v : p.trmin) os << ' ' << v;
  os << ']';
  return os.str();
}

}  // namespace

std::vector<Violation> cross_check_solvers(const core::PlacementProblem& problem,
                                           const OracleOptions& options) {
  std::vector<Violation> out;
  const std::size_t cells = problem.busy.size() * problem.candidates.size();
  if (!options.check_solvers || problem.heterogeneous() ||
      problem.busy.empty() || problem.candidates.empty() ||
      cells > options.max_cells)
    return out;

  struct Run {
    core::SolverBackend backend;
    core::PlacementResult result;
  };
  std::vector<Run> runs;
  for (core::SolverBackend backend :
       {core::SolverBackend::kTransportation, core::SolverBackend::kSimplex,
        core::SolverBackend::kMinCostFlow,
        core::SolverBackend::kBranchAndBound}) {
    core::OptimizerOptions opt;
    opt.backend = backend;
    const core::OptimizationEngine engine(opt);
    runs.push_back({backend, engine.solve(problem)});
  }
  const Run& reference = runs.front();
  for (std::size_t r = 1; r < runs.size(); ++r) {
    const Run& other = runs[r];
    if (other.result.status != reference.result.status) {
      out.push_back({"O1-solver-agreement",
                     std::string(core::to_string(other.backend)) +
                         " status differs from " +
                         core::to_string(reference.backend) +
                         describe_instance(problem)});
      continue;
    }
    if (reference.result.optimal() &&
        !objectives_agree(other.result.objective, reference.result.objective,
                          options.tolerance))
      out.push_back({"O1-solver-agreement",
                     std::string(core::to_string(other.backend)) +
                         " objective " + fmt(other.result.objective) +
                         " != " + core::to_string(reference.backend) + " " +
                         fmt(reference.result.objective)});
  }

  const solver::TransportationProblem t = to_transportation(problem);
  if (solver::exhaustive_base_count(t) <= options.max_exhaustive_bases) {
    const solver::TransportationResult truth =
        solver::solve_transportation_exhaustive(
            t, options.max_exhaustive_bases + 1);
    if (truth.status != reference.result.status)
      out.push_back({"O2-exhaustive", "brute-force verdict differs from " +
                                          std::string(core::to_string(
                                              reference.backend))});
    else if (truth.optimal() &&
             !objectives_agree(truth.objective, reference.result.objective,
                               options.tolerance))
      out.push_back({"O2-exhaustive",
                     "brute-force optimum " + fmt(truth.objective) + " != " +
                         fmt(reference.result.objective)});
  }
  return out;
}

std::vector<Violation> cross_check_nmdb(const core::Nmdb& nmdb,
                                        const core::PlacementOptions& placement,
                                        const OracleOptions& options) {
  std::vector<Violation> out;

  core::PlacementOptions fresh_options = placement;
  fresh_options.response_cache = nullptr;
  const core::PlacementProblem fresh =
      core::build_placement_problem(nmdb, fresh_options);

  // O4: the cache must serve the exact rows a fresh build computes, both on
  // the miss path (first build) and the hit path (second build, no link
  // moved in between).
  if (options.check_cache) {
    core::Nmdb copy = nmdb;  // begin_cycle snapshots links (mutating)
    net::ResponseTimeCache cache;
    core::PlacementOptions cached_options = placement;
    cached_options.response_cache = &cache;
    for (int pass = 0; pass < 2; ++pass) {
      cache.begin_cycle(copy.network());
      const core::PlacementProblem cached =
          core::build_placement_problem(copy, cached_options);
      if (cached.busy != fresh.busy || cached.candidates != fresh.candidates) {
        out.push_back({"O4-trmin-cache",
                       "cached build produced different busy/candidate sets"});
        break;
      }
      bool mismatch = false;
      for (std::size_t cell = 0; cell < fresh.trmin.size(); ++cell) {
        if (!objectives_agree(cached.trmin[cell], fresh.trmin[cell],
                              options.tolerance)) {
          mismatch = true;
          out.push_back({"O4-trmin-cache",
                         std::string(pass == 0 ? "miss" : "hit") +
                             "-path Trmin cell " + std::to_string(cell) +
                             ": cached " + fmt(cached.trmin[cell]) +
                             " vs fresh " + fmt(fresh.trmin[cell])});
          break;
        }
      }
      if (mismatch) break;
    }
  }

  // O3: warm-started re-solve of the identical problem must land on the
  // cold objective (warm hints change the pivot path, never the optimum).
  if (options.check_warm_start && !fresh.busy.empty() &&
      !fresh.heterogeneous()) {
    core::OptimizerOptions cold_opt;
    const core::OptimizationEngine cold_engine(cold_opt);
    const core::PlacementResult cold = cold_engine.solve(fresh);

    core::OptimizerOptions warm_opt;
    warm_opt.warm_start = true;
    const core::OptimizationEngine warm_engine(warm_opt);
    (void)warm_engine.solve(fresh);  // prime the warm state
    const core::PlacementResult warm = warm_engine.solve(fresh);
    // Only an optimal prime retains warm state; infeasible solves cold twice.
    if (cold.optimal() && warm_engine.warm_solves() == 0)
      out.push_back({"O3-warm-vs-cold",
                     "identical re-solve did not take the warm path"});
    if (warm.status != cold.status)
      out.push_back({"O3-warm-vs-cold", "warm re-solve verdict differs"});
    else if (cold.optimal() &&
             !objectives_agree(warm.objective, cold.objective,
                               options.tolerance))
      out.push_back({"O3-warm-vs-cold",
                     "warm objective " + fmt(warm.objective) + " != cold " +
                         fmt(cold.objective)});
  }

  // O6: dirty-basis re-solve. Replay a fuzzed schedule of cost-cell
  // perturbations against one persistent basis: every re-solve from the
  // retained basis must reproduce the cold solve's verdict and objective
  // (and the exhaustive ground truth when the instance is small enough to
  // enumerate). Supplies/capacities never move here, so after the priming
  // solve every step is eligible for the fast path — a step that silently
  // fell back would hide the very code under test, so that is flagged too.
  if (options.check_dirty_basis && !fresh.busy.empty() &&
      !fresh.candidates.empty() && !fresh.heterogeneous()) {
    solver::TransportationProblem t = to_transportation(fresh);
    solver::TransportationBasis basis;
    const solver::TransportationResult primed =
        solver::solve_transportation_dirty(t, basis);
    util::Rng rng(options.dirty_basis_seed);
    const std::size_t cells = t.cost.size();
    for (std::size_t step = 0;
         primed.optimal() && step < options.dirty_basis_steps; ++step) {
      // Mostly small drift, one in five a large burst — and leave forbidden
      // cells forbidden (their big-M handling is part of what's checked).
      const std::size_t touches =
          1 + rng.below(std::max<std::size_t>(1, cells / 4));
      for (std::size_t k = 0; k < touches; ++k) {
        const std::size_t cell = rng.below(cells);
        if (t.cost[cell] == solver::kInfinity) continue;
        const double factor = rng.below(5) == 0 ? rng.uniform(0.3, 3.0)
                                                : rng.uniform(0.9, 1.1);
        t.cost[cell] = std::max(1e-9, t.cost[cell] * factor);
      }
      const solver::TransportationResult dirty =
          solver::solve_transportation_dirty(t, basis);
      const solver::TransportationResult cold = solver::solve_transportation(t);
      if (basis.valid && !dirty.dirty_resolve) {
        out.push_back({"O6-dirty-basis",
                       "step " + std::to_string(step) +
                           ": cost-only change did not take the dirty path"});
        break;
      }
      if (dirty.status != cold.status) {
        out.push_back({"O6-dirty-basis",
                       "step " + std::to_string(step) +
                           ": dirty verdict differs from cold"});
        break;
      }
      if (cold.optimal() && !objectives_agree(dirty.objective, cold.objective,
                                              options.tolerance)) {
        out.push_back({"O6-dirty-basis",
                       "step " + std::to_string(step) + ": dirty objective " +
                           fmt(dirty.objective) + " != cold " +
                           fmt(cold.objective)});
        break;
      }
      if (solver::exhaustive_base_count(t) <= options.max_exhaustive_bases) {
        const solver::TransportationResult truth =
            solver::solve_transportation_exhaustive(
                t, options.max_exhaustive_bases + 1);
        if (truth.status != dirty.status ||
            (truth.optimal() &&
             !objectives_agree(truth.objective, dirty.objective,
                               options.tolerance))) {
          out.push_back({"O6-dirty-basis",
                         "step " + std::to_string(step) +
                             ": dirty result differs from exhaustive optimum " +
                             fmt(truth.objective)});
          break;
        }
      }
    }
  }

  // O5: heuristic soundness. HFR is a rate: Cse and Cs must be nonnegative
  // and Cse ≤ Cs. When the greedy completes, its placement is a feasible
  // point of the exact model (radius 1 ≤ max_hops; same capacities), so the
  // exact model must be feasible with objective ≤ the heuristic's. The
  // converse — exact-feasible implies HFR = 0 — is NOT sound (the greedy can
  // strand shared neighbour capacity) and is deliberately not checked.
  if (options.check_heuristic && nmdb.homogeneous()) {
    const core::HeuristicEngine heuristic;
    const core::HeuristicResult h = heuristic.run(nmdb);
    if (h.total_cse < -options.tolerance || h.total_cs < -options.tolerance ||
        h.total_cse > h.total_cs + options.tolerance)
      out.push_back({"O5-heuristic", "HFR components out of range: Cse " +
                                         fmt(h.total_cse) + ", Cs " +
                                         fmt(h.total_cs)});
    if (h.hfr_percent() < 0.0 || h.hfr_percent() > 100.0 + options.tolerance)
      out.push_back(
          {"O5-heuristic", "HFR " + fmt(h.hfr_percent()) + " out of [0,100]"});
    if (h.complete() && h.total_cs > options.tolerance &&
        !fresh.busy.empty()) {
      core::OptimizerOptions exact_opt;
      const core::OptimizationEngine exact_engine(exact_opt);
      const core::PlacementResult exact = exact_engine.solve(fresh);
      if (!exact.optimal())
        out.push_back({"O5-heuristic",
                       "heuristic placed everything but the exact model is " +
                           std::string(solver::to_string(exact.status))});
      else if (exact.objective > h.objective + options.tolerance *
                                                   std::max(1.0, h.objective))
        out.push_back({"O5-heuristic",
                       "exact optimum " + fmt(exact.objective) +
                           " exceeds complete-heuristic objective " +
                           fmt(h.objective)});
    }
  }
  return out;
}

}  // namespace dust::check
