// dust::check differential oracles (DESIGN.md §9): independent ways of
// computing the same answer, cross-checked on randomly generated instances.
//
//   O1 solver agreement   transportation simplex vs general simplex vs
//                         min-cost-flow vs branch-and-bound: same
//                         feasibility verdict, same optimal objective
//   O2 exact ground truth brute-force vertex enumeration (solver/exhaustive)
//                         on small instances
//   O3 warm vs cold       a warm-started re-solve must reproduce the cold
//                         objective bit-for-near (warm starts change the
//                         pivot path, never the optimum)
//   O4 Trmin cache        ResponseTimeCache-served rows == fresh evaluation
//   O5 heuristic          HFR ≥ 0; a complete heuristic placement implies
//                         the exact model is feasible with objective ≤ the
//                         heuristic's (the heuristic solution is a feasible
//                         point of the exact model when max_hops ≥ radius)
//   O6 dirty basis        re-solving from the retained simplex basis after a
//                         fuzzed schedule of cost-cell perturbations must
//                         reproduce the cold verdict and objective at every
//                         step (and the exhaustive optimum when small)
#pragma once

#include <cstddef>
#include <cstdint>

#include "check/invariants.hpp"
#include "core/heuristic.hpp"
#include "core/nmdb.hpp"
#include "core/optimizer.hpp"

namespace dust::check {

struct OracleOptions {
  /// O1/O2 run only when busy*candidates ≤ this many cells (the general
  /// simplex and enumeration get expensive fast).
  std::size_t max_cells = 64;
  /// O2 runs only when the enumeration would visit at most this many
  /// subsets (see solver::exhaustive_base_count).
  std::size_t max_exhaustive_bases = 200000;
  double tolerance = 1e-6;
  bool check_solvers = true;     ///< O1 + O2
  bool check_warm_start = true;  ///< O3
  bool check_cache = true;       ///< O4
  bool check_heuristic = true;   ///< O5
  bool check_dirty_basis = true; ///< O6
  /// O6 fuzz schedule: this many cost-perturbation rounds, each touching a
  /// random subset of finite cells (mostly drift, occasional bursts — the
  /// link-churn shape the engine feeds the solver).
  std::size_t dirty_basis_steps = 8;
  std::uint64_t dirty_basis_seed = 0xD0575EEDull;
};

/// O1 + O2 on an already-built (homogeneous) problem. Heterogeneous
/// problems are skipped — only the general simplex models platform factors.
[[nodiscard]] std::vector<Violation> cross_check_solvers(
    const core::PlacementProblem& problem, const OracleOptions& options = {});

/// All applicable oracles from an NMDB snapshot (builds its own problems:
/// fresh vs cached Trmin, warm vs cold solves, heuristic vs exact).
[[nodiscard]] std::vector<Violation> cross_check_nmdb(
    const core::Nmdb& nmdb, const core::PlacementOptions& placement,
    const OracleOptions& options = {});

}  // namespace dust::check
