// dust::check scenario shrinker: delta-debug a failing ScenarioSpec down to
// a minimal reproducer. Reductions (applied greedily to fixpoint, re-running
// the failure predicate after each):
//   - demote the topology (fat-tree k 8→6→4, then a small random graph,
//     then halve the random graph's node count down to 4)
//   - drop halves, then individual entries, of the churn / death / fault
//     event lists
//   - truncate the duration to just past the last surviving event
// The result still fails (the predicate accepted every kept reduction), so
// the shrunk spec plus its seed is a replayable minimal repro.
#pragma once

#include <cstddef>
#include <functional>

#include "check/scenario.hpp"

namespace dust::check {

/// Returns true when the (possibly reduced) scenario still exhibits the
/// failure under investigation. Must be deterministic.
using FailurePredicate = std::function<bool(const ScenarioSpec&)>;

struct ShrinkStats {
  std::size_t attempts = 0;    ///< predicate evaluations
  std::size_t accepted = 0;    ///< reductions that kept the failure
};

/// Shrink `spec` (which must currently satisfy `fails`). Stops after
/// `max_attempts` predicate evaluations or at fixpoint, whichever first.
[[nodiscard]] ScenarioSpec shrink_scenario(ScenarioSpec spec,
                                           const FailurePredicate& fails,
                                           std::size_t max_attempts = 400,
                                           ShrinkStats* stats = nullptr);

}  // namespace dust::check
