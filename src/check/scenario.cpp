#include "check/scenario.hpp"

#include <algorithm>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/manager.hpp"  // client_endpoint
#include "core/scenario.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"

namespace dust::check {

namespace {

/// Random near-regular graph: start from the circulant C_n(1, 2) (4-regular,
/// connected) and randomize with degree-preserving double-edge swaps. Swaps
/// that would create a parallel edge or self-loop are skipped, so the result
/// stays a simple connected-ish graph; connectivity is restored by
/// construction because the ring chords i->i+1 are never all removed (we
/// keep the base ring fixed and only swap the distance-2 chords).
graph::Graph make_random_regular(std::uint32_t n, std::uint32_t swaps,
                                 util::Rng& rng) {
  if (n < 5) {
    // Too small for distinct distance-2 chords; fall back to a clique-ish
    // random connected graph.
    return graph::make_random_connected(n, n, rng);
  }
  std::vector<std::pair<graph::NodeId, graph::NodeId>> ring;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> chords;
  for (graph::NodeId v = 0; v < n; ++v) {
    ring.emplace_back(v, (v + 1) % n);
    chords.emplace_back(v, (v + 2) % n);
  }
  const auto has_edge = [&](graph::NodeId a, graph::NodeId b) {
    for (const auto& [x, y] : ring)
      if ((x == a && y == b) || (x == b && y == a)) return true;
    for (const auto& [x, y] : chords)
      if ((x == a && y == b) || (x == b && y == a)) return true;
    return false;
  };
  for (std::uint32_t attempt = 0; attempt < swaps; ++attempt) {
    const std::size_t i = static_cast<std::size_t>(rng.below(chords.size()));
    const std::size_t j = static_cast<std::size_t>(rng.below(chords.size()));
    if (i == j) continue;
    auto [a, b] = chords[i];
    auto [c, d] = chords[j];
    // Rewire (a,b),(c,d) -> (a,d),(c,b).
    if (a == d || c == b) continue;
    if (has_edge(a, d) || has_edge(c, b)) continue;
    chords[i] = {a, d};
    chords[j] = {c, b};
  }
  graph::Graph g(n);
  for (const auto& [a, b] : ring) g.add_edge(a, b);
  for (const auto& [a, b] : chords)
    if (!g.find_edge(a, b)) g.add_edge(a, b);
  return g;
}

void resolve_node_count(ScenarioSpec& spec, const GeneratorOptions& options,
                        util::Rng& rng) {
  switch (spec.topology) {
    case TopologyKind::kFatTree: {
      // k ∈ {4, 6, 8}, demoted until 5k^2/4 fits the cap.
      static constexpr std::uint32_t kChoices[] = {4, 6, 8};
      spec.fat_tree_k = kChoices[rng.below(3)];
      while (spec.fat_tree_k > 4 &&
             5 * spec.fat_tree_k * spec.fat_tree_k / 4 > options.max_nodes)
        spec.fat_tree_k -= 2;
      spec.node_count = 5 * spec.fat_tree_k * spec.fat_tree_k / 4;
      break;
    }
    case TopologyKind::kRandomRegular:
      spec.node_count = static_cast<std::uint32_t>(
          rng.range(8, std::min<std::int64_t>(options.max_nodes, 40)));
      spec.extra_edges = spec.node_count * 2;
      break;
    case TopologyKind::kHeterogeneousDpu:
      spec.node_count = static_cast<std::uint32_t>(
          rng.range(8, std::min<std::int64_t>(options.max_nodes, 32)));
      break;
  }
}

}  // namespace

const char* to_string(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kFatTree: return "fat-tree";
    case TopologyKind::kRandomRegular: return "random-regular";
    case TopologyKind::kHeterogeneousDpu: return "heterogeneous-dpu";
  }
  return "?";
}

const char* to_string(AttackKind kind) noexcept {
  switch (kind) {
    case AttackKind::kCapacityLie: return "capacity-lie";
    case AttackKind::kBlackhole: return "blackhole";
    case AttackKind::kKeepaliveFlap: return "keepalive-flap";
  }
  return "?";
}

ScenarioSpec generate_scenario(std::uint64_t seed,
                               const GeneratorOptions& options) {
  util::Rng rng(seed);
  ScenarioSpec spec;
  spec.seed = seed;
  spec.topology = static_cast<TopologyKind>(rng.below(3));
  resolve_node_count(spec, options, rng);
  const std::uint32_t n = spec.node_count;

  spec.load.resize(n);
  spec.data_mb.resize(n);
  spec.agents.resize(n);
  spec.capable.assign(n, 1);
  spec.platform_factor.assign(n, 1.0);
  for (std::uint32_t v = 0; v < n; ++v) {
    const bool busy = rng.bernoulli(options.busy_fraction);
    // Busy nodes start above Cmax=80; the rest spread across idle/candidate
    // and the 60..80 "neither" band so role churn is exercised.
    spec.load[v] = busy ? rng.uniform(81.0, 99.0) : rng.uniform(5.0, 75.0);
    spec.data_mb[v] = rng.uniform(1.0, 200.0);
    spec.agents[v] = static_cast<std::uint32_t>(rng.range(1, 12));
    if (rng.bernoulli(options.opt_out_fraction)) spec.capable[v] = 0;
    if (spec.topology == TopologyKind::kHeterogeneousDpu)
      spec.platform_factor[v] = rng.bernoulli(0.3)
                                    ? rng.uniform(1.5, 4.0)  // DPU class
                                    : rng.uniform(0.5, 1.5);
  }

  spec.duration_ms = 60000;
  spec.max_hops = static_cast<std::uint32_t>(rng.range(2, 5));

  for (std::size_t e = 0; e < options.churn_events; ++e) {
    ChurnEvent event;
    event.at_ms = rng.range(1000, spec.duration_ms - 5000);
    event.node = static_cast<graph::NodeId>(rng.below(n));
    event.utilization_percent = rng.uniform(5.0, 99.0);
    spec.churn.push_back(event);
  }
  std::sort(spec.churn.begin(), spec.churn.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return a.at_ms < b.at_ms;
            });

  if (options.allow_deaths) {
    for (std::size_t e = 0; e < options.death_events; ++e) {
      NodeDeathEvent death;
      death.at_ms = rng.range(spec.duration_ms / 3, spec.duration_ms / 2);
      death.node = static_cast<graph::NodeId>(rng.below(n));
      spec.deaths.push_back(death);
    }
  }

  if (options.allow_faults) {
    for (std::size_t e = 0; e < options.fault_events; ++e) {
      sim::FaultEvent fault;
      fault.at_ms = rng.range(1000, spec.duration_ms - 2000);
      switch (rng.below(4)) {
        case 0:
          fault.kind = sim::FaultEvent::Kind::kLossProbability;
          fault.value = rng.uniform(0.0, 0.3);
          break;
        case 1: {
          // Partition one client endpoint, heal it a few seconds later.
          fault.kind = sim::FaultEvent::Kind::kPartition;
          fault.endpoint = core::client_endpoint(
              static_cast<graph::NodeId>(rng.below(n)));
          sim::FaultEvent heal;
          heal.at_ms = fault.at_ms + rng.range(2000, 8000);
          heal.kind = sim::FaultEvent::Kind::kHeal;
          heal.endpoint = fault.endpoint;
          spec.faults.push_back(heal);
          break;
        }
        case 2:
          fault.kind = sim::FaultEvent::Kind::kCongestionOn;
          break;
        default:
          fault.kind = sim::FaultEvent::Kind::kCongestionOff;
          break;
      }
      spec.faults.push_back(fault);
    }
    // Always end with a loss reset so late cycles can converge.
    sim::FaultEvent reset;
    reset.at_ms = spec.duration_ms - 1000;
    reset.kind = sim::FaultEvent::Kind::kLossProbability;
    reset.value = 0.0;
    spec.faults.push_back(reset);
    std::sort(spec.faults.begin(), spec.faults.end(),
              [](const sim::FaultEvent& a, const sim::FaultEvent& b) {
                return a.at_ms < b.at_ms;
              });
  }

  // Byzantine attack axis — drawn LAST and gated on attack_events, so every
  // pre-existing seed still produces a bit-identical scenario when the axis
  // is off (attack_events defaults to 0). Pinned by the cross-seed golden
  // test in adversarial_generator_test.
  if (options.attack_events > 0) {
    for (std::size_t e = 0; e < options.attack_events; ++e) {
      AttackScript attack;
      attack.at_ms = rng.range(1000, spec.duration_ms / 2);
      attack.node = static_cast<graph::NodeId>(rng.below(n));
      switch (rng.below(3)) {
        case 0:
          attack.kind = AttackKind::kCapacityLie;
          // Under-report load: promise spare capacity that does not exist.
          attack.magnitude = -rng.uniform(30.0, 70.0);
          break;
        case 1:
          attack.kind = AttackKind::kBlackhole;
          break;
        default:
          attack.kind = AttackKind::kKeepaliveFlap;
          attack.period_ms = rng.range(8000, 16000);
          attack.down_ms = rng.range(4000, attack.period_ms - 2000);
          break;
      }
      spec.attacks.push_back(attack);
    }
    std::sort(spec.attacks.begin(), spec.attacks.end(),
              [](const AttackScript& a, const AttackScript& b) {
                return a.at_ms != b.at_ms ? a.at_ms < b.at_ms
                                          : a.node < b.node;
              });
  }
  return spec;
}

graph::Graph build_topology(const ScenarioSpec& spec) {
  switch (spec.topology) {
    case TopologyKind::kFatTree:
      return graph::FatTree(spec.fat_tree_k).graph();
    case TopologyKind::kRandomRegular: {
      util::Rng rng(spec.seed ^ 0x70706f6cULL);  // independent of generate()
      return make_random_regular(spec.node_count, spec.extra_edges, rng);
    }
    case TopologyKind::kHeterogeneousDpu: {
      const std::uint32_t spines = std::max<std::uint32_t>(2, spec.node_count / 4);
      return graph::make_leaf_spine(spines, spec.node_count - spines);
    }
  }
  throw std::invalid_argument("build_topology: unknown topology kind");
}

core::Nmdb build_nmdb(const ScenarioSpec& spec) {
  if (spec.load.size() != spec.node_count ||
      spec.capable.size() != spec.node_count)
    throw std::invalid_argument("build_nmdb: spec vectors out of sync");
  net::NetworkState state(build_topology(spec));
  if (state.node_count() != spec.node_count)
    throw std::invalid_argument("build_nmdb: topology/node_count mismatch");
  core::Nmdb nmdb(std::move(state), core::Thresholds{});
  for (graph::NodeId v = 0; v < spec.node_count; ++v) {
    nmdb.network().set_node_utilization(v, spec.load[v]);
    nmdb.network().set_monitoring_data_mb(v, spec.data_mb[v]);
    nmdb.record_stat(v, spec.load[v], spec.data_mb[v], spec.agents[v]);
    nmdb.set_offload_capable(v, spec.capable[v] != 0);
    nmdb.set_platform_factor(v, spec.platform_factor[v]);
  }
  return nmdb;
}

void dump_scenario(std::ostream& os, const ScenarioSpec& spec) {
  os << "# dust::check scenario  seed=" << spec.seed << "  topology="
     << to_string(spec.topology);
  if (spec.topology == TopologyKind::kFatTree) os << " k=" << spec.fat_tree_k;
  os << "  nodes=" << spec.node_count;
  if (spec.topology == TopologyKind::kRandomRegular)
    os << "  extra_edges=" << spec.extra_edges;
  os << "  max_hops=" << spec.max_hops
     << "  duration_ms=" << spec.duration_ms << "\n";
  core::save_scenario(os, build_nmdb(spec));
  for (std::uint32_t v = 0; v < spec.node_count; ++v)
    os << "# agents " << v << " " << spec.agents[v] << "\n";
  for (const ChurnEvent& e : spec.churn)
    os << "# churn " << e.at_ms << " " << e.node << " "
       << e.utilization_percent << "\n";
  for (const NodeDeathEvent& e : spec.deaths)
    os << "# death " << e.at_ms << " " << e.node << "\n";
  for (const sim::FaultEvent& e : spec.faults) {
    os << "# fault " << e.at_ms << " ";
    switch (e.kind) {
      case sim::FaultEvent::Kind::kLossProbability:
        os << "loss " << e.value;
        break;
      case sim::FaultEvent::Kind::kPartition:
        os << "partition " << e.endpoint;
        break;
      case sim::FaultEvent::Kind::kHeal:
        os << "heal " << e.endpoint;
        break;
      case sim::FaultEvent::Kind::kCongestionOn:
        os << "congestion on";
        break;
      case sim::FaultEvent::Kind::kCongestionOff:
        os << "congestion off";
        break;
    }
    os << "\n";
  }
  for (const AttackScript& e : spec.attacks)
    os << "# attack " << e.at_ms << " " << e.node << " " << to_string(e.kind)
       << " " << e.magnitude << " " << e.period_ms << " " << e.down_ms
       << "\n";
}

std::string dump_scenario(const ScenarioSpec& spec) {
  std::ostringstream os;
  dump_scenario(os, spec);
  return os.str();
}

namespace {

TopologyKind topology_from_string(const std::string& name) {
  if (name == "fat-tree") return TopologyKind::kFatTree;
  if (name == "random-regular") return TopologyKind::kRandomRegular;
  if (name == "heterogeneous-dpu") return TopologyKind::kHeterogeneousDpu;
  throw std::invalid_argument("parse_scenario_spec: unknown topology '" +
                              name + "'");
}

AttackKind attack_from_string(const std::string& name) {
  if (name == "capacity-lie") return AttackKind::kCapacityLie;
  if (name == "blackhole") return AttackKind::kBlackhole;
  if (name == "keepalive-flap") return AttackKind::kKeepaliveFlap;
  throw std::invalid_argument("parse_scenario_spec: unknown attack '" + name +
                              "'");
}

}  // namespace

ScenarioSpec parse_scenario_spec(std::istream& in) {
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  ScenarioSpec spec;
  bool header_seen = false;
  std::vector<std::pair<graph::NodeId, std::uint32_t>> agent_lines;

  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '#') continue;
    std::istringstream tokens(line.substr(1));
    std::string word;
    if (!(tokens >> word)) continue;
    if (word == "dust::check") {
      std::string token;
      while (tokens >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "seed")
          spec.seed = std::stoull(value);
        else if (key == "topology")
          spec.topology = topology_from_string(value);
        else if (key == "k")
          spec.fat_tree_k = static_cast<std::uint32_t>(std::stoul(value));
        else if (key == "nodes")
          spec.node_count = static_cast<std::uint32_t>(std::stoul(value));
        else if (key == "extra_edges")
          spec.extra_edges = static_cast<std::uint32_t>(std::stoul(value));
        else if (key == "max_hops")
          spec.max_hops = static_cast<std::uint32_t>(std::stoul(value));
        else if (key == "duration_ms")
          spec.duration_ms = std::stoll(value);
      }
      header_seen = true;
    } else if (word == "agents") {
      graph::NodeId node = 0;
      std::uint32_t count = 0;
      if (tokens >> node >> count) agent_lines.emplace_back(node, count);
    } else if (word == "churn") {
      ChurnEvent event;
      if (tokens >> event.at_ms >> event.node >> event.utilization_percent)
        spec.churn.push_back(event);
    } else if (word == "death") {
      NodeDeathEvent death;
      if (tokens >> death.at_ms >> death.node) spec.deaths.push_back(death);
    } else if (word == "fault") {
      sim::FaultEvent fault;
      std::string kind;
      if (!(tokens >> fault.at_ms >> kind)) continue;
      if (kind == "loss") {
        fault.kind = sim::FaultEvent::Kind::kLossProbability;
        if (!(tokens >> fault.value)) continue;
      } else if (kind == "partition") {
        fault.kind = sim::FaultEvent::Kind::kPartition;
        if (!(tokens >> fault.endpoint)) continue;
      } else if (kind == "heal") {
        fault.kind = sim::FaultEvent::Kind::kHeal;
        if (!(tokens >> fault.endpoint)) continue;
      } else if (kind == "congestion") {
        std::string state;
        if (!(tokens >> state)) continue;
        fault.kind = state == "on" ? sim::FaultEvent::Kind::kCongestionOn
                                   : sim::FaultEvent::Kind::kCongestionOff;
      } else {
        throw std::invalid_argument("parse_scenario_spec: unknown fault '" +
                                    kind + "'");
      }
      spec.faults.push_back(fault);
    } else if (word == "attack") {
      AttackScript attack;
      std::string kind;
      if (!(tokens >> attack.at_ms >> attack.node >> kind >>
            attack.magnitude >> attack.period_ms >> attack.down_ms))
        throw std::invalid_argument(
            "parse_scenario_spec: malformed attack line");
      attack.kind = attack_from_string(kind);
      spec.attacks.push_back(attack);
    }
  }
  if (!header_seen)
    throw std::invalid_argument(
        "parse_scenario_spec: missing '# dust::check scenario' header");

  // Initial per-node state from the embedded core scenario (the parser
  // ignores every '#' annotation, so the same text feeds both layers).
  std::istringstream core_stream(text);
  core::Nmdb nmdb = core::load_scenario(core_stream);
  if (spec.node_count == 0)
    spec.node_count = static_cast<std::uint32_t>(nmdb.node_count());
  if (nmdb.node_count() != spec.node_count)
    throw std::invalid_argument(
        "parse_scenario_spec: header nodes= disagrees with the scenario "
        "body");
  const std::uint32_t n = spec.node_count;
  spec.load.resize(n);
  spec.data_mb.resize(n);
  spec.agents.assign(n, 0);
  spec.capable.assign(n, 1);
  spec.platform_factor.assign(n, 1.0);
  for (graph::NodeId v = 0; v < n; ++v) {
    spec.load[v] = nmdb.network().node_utilization(v);
    spec.data_mb[v] = nmdb.network().monitoring_data_mb(v);
    spec.capable[v] = nmdb.offload_capable(v) ? 1 : 0;
    spec.platform_factor[v] = nmdb.platform_factor(v);
  }
  for (const auto& [node, count] : agent_lines) {
    if (node >= n)
      throw std::invalid_argument(
          "parse_scenario_spec: agents node out of range");
    spec.agents[node] = count;
  }
  return spec;
}

}  // namespace dust::check
