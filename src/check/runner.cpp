#include "check/runner.hpp"

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/transport.hpp"
#include "util/rng.hpp"

namespace dust::check {

namespace {
constexpr std::size_t kFlightTailEvents = 64;
}

RunReport run_scenario(const ScenarioSpec& spec, const RunOptions& options) {
  RunReport report;
  // Scope the flight recorder to this scenario: the tail captured on a
  // violation must not show a previous run's events.
  obs::FlightRecorder::global().clear();
  // Captures the recorder tail the first time anything reports a violation
  // (cycle invariants, oracles, or the replica-deadline audit below).
  auto capture_flight = [&report](const std::string& invariant,
                                  sim::TimeMs now) {
    obs::FlightRecorder::global().record(
        obs::FlightEventKind::kInvariantViolation, now, 0,
        obs::FlightEvent::kNoNode, obs::FlightEvent::kNoNode, 0.0, invariant);
    if (report.flight_tail.empty())
      report.flight_tail = obs::flight_text(
          obs::FlightRecorder::global().tail(kFlightTailEvents));
  };
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(spec.seed).fork(1));

  core::ManagerConfig config;
  config.update_interval_ms = options.update_interval_ms;
  config.placement_period_ms = options.placement_period_ms;
  config.keepalive_timeout_ms = options.keepalive_timeout_ms;
  config.keepalive_check_period_ms = options.keepalive_check_period_ms;
  config.incremental_placement = options.incremental_placement;
  config.optimizer.allow_partial = true;  // scenarios routinely exceed Cd
  config.optimizer.verify_warm_start = options.incremental_placement;
  config.optimizer.placement.max_hops = spec.max_hops;
  // Bounded DP keeps Trmin cheap on fat-tree k=8; the enumerate-vs-DP
  // equivalence is covered by the solver-layer tests, not re-checked here.
  config.optimizer.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;

  core::DustManager manager(sim, transport, build_nmdb(spec), config);

  std::vector<std::unique_ptr<core::DustClient>> clients;
  clients.reserve(spec.node_count);
  for (graph::NodeId v = 0; v < spec.node_count; ++v) {
    core::ClientConfig client_config;
    client_config.offload_capable = spec.capable[v] != 0;
    client_config.keepalive_interval_ms = options.keepalive_interval_ms;
    client_config.platform_factor = spec.platform_factor[v];
    clients.push_back(std::make_unique<core::DustClient>(
        sim, transport, v, client_config, util::Rng(spec.seed).fork(100 + v)));
    clients.back()->set_reported_state(spec.load[v], spec.data_mb[v],
                                       spec.agents[v]);
  }

  manager.set_cycle_observer([&](const core::CycleObservation& observation) {
    ++report.cycles_observed;
    std::vector<Violation> found =
        check_cycle(observation, options.invariant);
    if (options.check_oracles && observation.problem != nullptr &&
        report.oracle_cycles < options.max_oracle_cycles &&
        !observation.problem->busy.empty()) {
      const std::size_t cells = observation.problem->busy.size() *
                                observation.problem->candidates.size();
      if (cells > 0 && cells <= options.oracle.max_cells) {
        ++report.oracle_cycles;
        std::vector<Violation> oracle =
            cross_check_solvers(*observation.problem, options.oracle);
        found.insert(found.end(), oracle.begin(), oracle.end());
      }
    }
    for (Violation& v : found) {
      v.detail += " (cycle " + std::to_string(report.cycles_observed) +
                  ", t=" + std::to_string(observation.now) + "ms)";
      capture_flight(v.invariant, observation.now);
      report.violations.push_back(std::move(v));
    }
  });

  for (auto& client : clients) client->start();
  manager.start();

  for (const ChurnEvent& event : spec.churn) {
    core::DustClient* client = clients[event.node].get();
    const double data = spec.data_mb[event.node];
    const std::uint32_t agents = spec.agents[event.node];
    const double utilization = event.utilization_percent;
    sim.schedule_at(event.at_ms, [client, utilization, data, agents] {
      client->set_reported_state(utilization, data, agents);
    });
  }
  for (const NodeDeathEvent& event : spec.deaths) {
    core::DustClient* client = clients[event.node].get();
    sim.schedule_at(event.at_ms, [client] { client->set_failed(true); });
  }
  schedule_fault_script(sim, transport, spec.faults);

  // Replica-substitution audit (§III-C): once the manager holds an
  // acknowledged offload whose destination is dead, the relationship must be
  // re-pointed (REP) or torn down within 2x the keepalive timeout. The
  // window covers worst-case detection (stale keepalive crosses the timeout
  // just after a check) plus the check period itself.
  struct DeadEntry {
    sim::TimeMs first_seen = 0;
    bool reported = false;
  };
  std::map<graph::NodeId, DeadEntry> dead_seen;
  const sim::TimeMs deadline = 2 * options.keepalive_timeout_ms;
  sim::PeriodicTask audit(
      sim, options.keepalive_check_period_ms, options.keepalive_check_period_ms,
      [&](sim::TimeMs now) {
        std::map<graph::NodeId, DeadEntry> still_dead;
        for (const core::ActiveOffload& offload : manager.active_offloads()) {
          if (!offload.acknowledged) continue;  // never keepalive-supervised
          if (!clients[offload.destination]->failed()) continue;
          const auto it = dead_seen.find(offload.destination);
          DeadEntry entry =
              it == dead_seen.end() ? DeadEntry{now, false} : it->second;
          if (!entry.reported && now - entry.first_seen > deadline) {
            entry.reported = true;
            capture_flight("I6-replica-deadline", now);
            report.violations.push_back(
                {"I6-replica-deadline",
                 "offload " + std::to_string(offload.busy) + "→" +
                     std::to_string(offload.destination) +
                     " still points at a dead destination " +
                     std::to_string(now - entry.first_seen) +
                     "ms after first seen (limit " + std::to_string(deadline) +
                     "ms)"});
          }
          still_dead[offload.destination] = entry;
        }
        dead_seen = std::move(still_dead);
      });

  sim.run_until(spec.duration_ms);
  audit.cancel();
  manager.stop();
  manager.set_cycle_observer({});

  report.keepalive_failures = manager.keepalive_failures();
  report.releases = manager.releases();
  report.offloads_created = manager.active_offload_count();
  report.messages_dropped = transport.dropped();
  for (const auto& client : clients)
    report.reps_received += client->reps_received();
  return report;
}

void dump_repro(std::ostream& os, const ScenarioSpec& spec,
                const RunReport& report) {
  os << "# dust::check repro bundle\n";
  os << "# violations: " << report.violations.size() << ", cycles observed: "
     << report.cycles_observed << "\n";
  for (const Violation& v : report.violations)
    os << "# [" << v.invariant << "] " << v.detail << "\n";
  os << "#\n# --- scenario (loadable by scenario_cli / load_scenario) ---\n";
  dump_scenario(os, spec);
  if (!report.flight_tail.empty()) {
    os << "#\n# --- flight recorder tail at first violation ---\n";
    // Comment-prefix each line so the whole bundle stays .scn-parseable.
    std::size_t start = 0;
    while (start < report.flight_tail.size()) {
      std::size_t end = report.flight_tail.find('\n', start);
      if (end == std::string::npos) end = report.flight_tail.size();
      os << "# " << report.flight_tail.substr(start, end - start) << "\n";
      start = end + 1;
    }
  }
}

}  // namespace dust::check
