#include "check/runner.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/transport.hpp"
#include "util/rng.hpp"

namespace dust::check {

namespace {
constexpr std::size_t kFlightTailEvents = 64;
}

RunReport run_scenario(const ScenarioSpec& spec, const RunOptions& options) {
  RunReport report;
  // Scope the flight recorder to this scenario: the tail captured on a
  // violation must not show a previous run's events.
  obs::FlightRecorder::global().clear();
  // Captures the recorder tail the first time anything reports a violation
  // (cycle invariants, oracles, or the replica-deadline audit below).
  auto capture_flight = [&report](const std::string& invariant,
                                  sim::TimeMs now) {
    obs::FlightRecorder::global().record(
        obs::FlightEventKind::kInvariantViolation, now, 0,
        obs::FlightEvent::kNoNode, obs::FlightEvent::kNoNode, 0.0, invariant);
    if (report.flight_tail.empty())
      report.flight_tail = obs::flight_text(
          obs::FlightRecorder::global().tail(kFlightTailEvents));
  };
  sim::Simulator sim;
  sim::Transport transport(sim, util::Rng(spec.seed).fork(1));

  core::ManagerConfig config;
  config.update_interval_ms = options.update_interval_ms;
  config.placement_period_ms = options.placement_period_ms;
  config.keepalive_timeout_ms = options.keepalive_timeout_ms;
  config.keepalive_check_period_ms = options.keepalive_check_period_ms;
  config.incremental_placement = options.incremental_placement;
  config.trust_weighting = options.trust_weighting;
  config.keepalive_miss_threshold = options.keepalive_miss_threshold;
  config.optimizer.allow_partial = true;  // scenarios routinely exceed Cd
  config.optimizer.verify_warm_start = options.incremental_placement;
  config.optimizer.placement.max_hops = spec.max_hops;
  // Bounded DP keeps Trmin cheap on fat-tree k=8; the enumerate-vs-DP
  // equivalence is covered by the solver-layer tests, not re-checked here.
  config.optimizer.placement.evaluator = net::EvaluatorMode::kHopBoundedDp;

  core::DustManager manager(sim, transport, build_nmdb(spec), config);

  std::vector<std::unique_ptr<core::DustClient>> clients;
  clients.reserve(spec.node_count);
  for (graph::NodeId v = 0; v < spec.node_count; ++v) {
    core::ClientConfig client_config;
    client_config.offload_capable = spec.capable[v] != 0;
    client_config.keepalive_interval_ms = options.keepalive_interval_ms;
    client_config.platform_factor = spec.platform_factor[v];
    clients.push_back(std::make_unique<core::DustClient>(
        sim, transport, v, client_config, util::Rng(spec.seed).fork(100 + v)));
    clients.back()->set_reported_state(spec.load[v], spec.data_mb[v],
                                       spec.agents[v]);
  }

  // I7 bookkeeping: consecutive placement cycles each node spent below the
  // trust exclusion threshold going INTO the current cycle.
  std::vector<std::size_t> distrust_streak(spec.node_count, 0);
  const double trust_exclude_below = config.trust_exclude_below;

  manager.set_cycle_observer([&](const core::CycleObservation& observation) {
    ++report.cycles_observed;
    std::vector<Violation> found =
        check_cycle(observation, options.invariant);
    // Placement digest (I8): fold every planning input and output so two
    // runs compare decisions bit-for-bit, not via summary statistics.
    auto fold = [&report](std::uint64_t value) {
      std::uint64_t state = report.placement_digest ^ value;
      report.placement_digest = util::splitmix64(state);
    };
    auto fold_double = [&fold](double value) {
      fold(std::bit_cast<std::uint64_t>(value));
    };
    if (observation.problem != nullptr) {
      for (graph::NodeId b : observation.problem->busy) fold(b);
      for (graph::NodeId o : observation.problem->candidates) fold(o);
    }
    if (observation.result != nullptr) {
      for (const core::Assignment& a : observation.result->assignments) {
        fold(a.from);
        fold(a.to);
        fold_double(a.amount);
      }
      fold_double(observation.result->objective);
      report.objective_sum += observation.result->objective;
      report.unplaced_sum += observation.result->unplaced;
    }
    // I7: a node proven byzantine (below the exclusion threshold) for
    // i7_proven_cycles consecutive cycles before this one must not appear
    // as a destination in this cycle's plan.
    if (options.trust_weighting && observation.result != nullptr) {
      for (const core::Assignment& a : observation.result->assignments) {
        if (a.to < distrust_streak.size() &&
            distrust_streak[a.to] >= options.i7_proven_cycles) {
          found.push_back(
              {"I7-distrusted-destination",
               "node " + std::to_string(a.to) + " (trust " +
                   std::to_string(manager.trust(a.to)) + ", below " +
                   std::to_string(trust_exclude_below) + " for " +
                   std::to_string(distrust_streak[a.to]) +
                   " cycles) received a new offload of " +
                   std::to_string(a.amount)});
        }
      }
      for (graph::NodeId v = 0; v < spec.node_count; ++v) {
        if (manager.trust(v) < trust_exclude_below)
          ++distrust_streak[v];
        else
          distrust_streak[v] = 0;
      }
    }
    if (options.check_oracles && observation.problem != nullptr &&
        report.oracle_cycles < options.max_oracle_cycles &&
        !observation.problem->busy.empty()) {
      const std::size_t cells = observation.problem->busy.size() *
                                observation.problem->candidates.size();
      if (cells > 0 && cells <= options.oracle.max_cells) {
        ++report.oracle_cycles;
        std::vector<Violation> oracle =
            cross_check_solvers(*observation.problem, options.oracle);
        found.insert(found.end(), oracle.begin(), oracle.end());
      }
    }
    for (Violation& v : found) {
      v.detail += " (cycle " + std::to_string(report.cycles_observed) +
                  ", t=" + std::to_string(observation.now) + "ms)";
      capture_flight(v.invariant, observation.now);
      report.violations.push_back(std::move(v));
    }
  });

  for (auto& client : clients) client->start();
  manager.start();

  for (const ChurnEvent& event : spec.churn) {
    core::DustClient* client = clients[event.node].get();
    const double data = spec.data_mb[event.node];
    const std::uint32_t agents = spec.agents[event.node];
    const double utilization = event.utilization_percent;
    sim.schedule_at(event.at_ms, [client, utilization, data, agents] {
      client->set_reported_state(utilization, data, agents);
    });
  }
  for (const NodeDeathEvent& event : spec.deaths) {
    core::DustClient* client = clients[event.node].get();
    sim.schedule_at(event.at_ms, [client] { client->set_failed(true); });
  }
  for (const AttackScript& attack : spec.attacks) {
    core::DustClient* client = clients[attack.node].get();
    const AttackScript script = attack;
    sim.schedule_at(attack.at_ms, [client, script] {
      core::ByzantineBehavior behavior;
      switch (script.kind) {
        case AttackKind::kCapacityLie:
          behavior.stat_utilization_bias = script.magnitude;
          break;
        case AttackKind::kBlackhole:
          behavior.blackhole = true;
          break;
        case AttackKind::kKeepaliveFlap:
          behavior.flap_period_ms = script.period_ms;
          behavior.flap_down_ms = script.down_ms;
          break;
      }
      client->set_byzantine(behavior);
    });
  }
  schedule_fault_script(sim, transport, spec.faults);

  // Deterministic delivery audit: model what each acknowledged destination
  // actually delivered this window (no RNG — byzantine behavior is scripted)
  // and feed the manager's trust EWMA. Dead destinations are skipped: death
  // is the keepalive supervisor's job, and auditing it here would make the
  // trusted run diverge from the blind one on benign scenarios (I8).
  sim::PeriodicTask loss_audit(
      sim, options.loss_audit_period_ms, options.loss_audit_period_ms,
      [&](sim::TimeMs) {
        for (const core::ActiveOffload& offload : manager.active_offloads()) {
          if (!offload.acknowledged) continue;
          const graph::NodeId dest = offload.destination;
          if (clients[dest]->failed()) continue;
          const core::ByzantineBehavior& behavior = clients[dest]->byzantine();
          const double expected = static_cast<double>(offload.agents);
          double delivered = expected;
          if (behavior.blackhole)
            delivered = 0.0;
          else if (behavior.stat_utilization_bias != 0.0)
            delivered = 0.25 * expected;  // liar lacks the promised capacity
          else if (clients[dest]->flap_suppressed())
            delivered = 0.0;
          report.samples_expected += expected;
          report.samples_delivered += delivered;
          manager.record_loss_audit(dest, expected, delivered);
        }
      });

  // Replica-substitution audit (§III-C): once the manager holds an
  // acknowledged offload whose destination is dead, the relationship must be
  // re-pointed (REP) or torn down within 2x the keepalive timeout. The
  // window covers worst-case detection (stale keepalive crosses the timeout
  // just after a check) plus the check period itself.
  struct DeadEntry {
    sim::TimeMs first_seen = 0;
    bool reported = false;
  };
  std::map<graph::NodeId, DeadEntry> dead_seen;
  const sim::TimeMs deadline = 2 * options.keepalive_timeout_ms;
  sim::PeriodicTask audit(
      sim, options.keepalive_check_period_ms, options.keepalive_check_period_ms,
      [&](sim::TimeMs now) {
        std::map<graph::NodeId, DeadEntry> still_dead;
        for (const core::ActiveOffload& offload : manager.active_offloads()) {
          if (!offload.acknowledged) continue;  // never keepalive-supervised
          if (!clients[offload.destination]->failed()) continue;
          const auto it = dead_seen.find(offload.destination);
          DeadEntry entry =
              it == dead_seen.end() ? DeadEntry{now, false} : it->second;
          if (!entry.reported && now - entry.first_seen > deadline) {
            entry.reported = true;
            capture_flight("I6-replica-deadline", now);
            report.violations.push_back(
                {"I6-replica-deadline",
                 "offload " + std::to_string(offload.busy) + "→" +
                     std::to_string(offload.destination) +
                     " still points at a dead destination " +
                     std::to_string(now - entry.first_seen) +
                     "ms after first seen (limit " + std::to_string(deadline) +
                     "ms)"});
          }
          still_dead[offload.destination] = entry;
        }
        dead_seen = std::move(still_dead);
      });

  sim.run_until(spec.duration_ms);
  audit.cancel();
  loss_audit.cancel();
  manager.stop();
  manager.set_cycle_observer({});

  report.keepalive_failures = manager.keepalive_failures();
  report.releases = manager.releases();
  report.offloads_created = manager.active_offload_count();
  report.messages_dropped = transport.dropped();
  for (const auto& client : clients)
    report.reps_received += client->reps_received();
  report.trust_evictions = manager.trust_evictions();
  for (graph::NodeId v = 0; v < spec.node_count; ++v)
    report.min_trust = std::min(report.min_trust, manager.trust(v));
  return report;
}

TrustComparison compare_trust_placement(const ScenarioSpec& spec,
                                        const RunOptions& base) {
  TrustComparison comparison;
  RunOptions blind = base;
  blind.trust_weighting = false;
  comparison.blind = run_scenario(spec, blind);
  RunOptions trusted = base;
  trusted.trust_weighting = true;
  comparison.trusted = run_scenario(spec, trusted);
  return comparison;
}

std::vector<Violation> check_trust_improvement(
    const TrustComparison& comparison, double tolerance) {
  std::vector<Violation> violations;
  const double blind = comparison.blind.delivered_fraction();
  const double trusted = comparison.trusted.delivered_fraction();
  if (trusted + tolerance < blind) {
    violations.push_back(
        {"O7-trust-improvement",
         "trust-weighted placement delivered " + std::to_string(trusted) +
             " of expected samples vs " + std::to_string(blind) +
             " trust-blind (tolerance " + std::to_string(tolerance) + ")"});
  }
  return violations;
}

std::vector<Violation> check_trust_neutrality(const ScenarioSpec& spec,
                                              const RunOptions& base) {
  std::vector<Violation> violations;
  if (!spec.attacks.empty()) {
    violations.push_back({"I8-trust-neutrality",
                          "neutrality is only defined on attack-free "
                          "scenarios; this spec has " +
                              std::to_string(spec.attacks.size()) +
                              " attack script(s)"});
    return violations;
  }
  const TrustComparison comparison = compare_trust_placement(spec, base);
  if (comparison.blind.placement_digest !=
      comparison.trusted.placement_digest) {
    violations.push_back(
        {"I8-trust-neutrality",
         "trust-blind and trust-weighted runs diverged on an attack-free "
         "scenario (digest " +
             std::to_string(comparison.blind.placement_digest) + " vs " +
             std::to_string(comparison.trusted.placement_digest) + ")"});
  }
  return violations;
}

void dump_repro(std::ostream& os, const ScenarioSpec& spec,
                const RunReport& report) {
  os << "# dust::check repro bundle\n";
  os << "# violations: " << report.violations.size() << ", cycles observed: "
     << report.cycles_observed << "\n";
  for (const Violation& v : report.violations)
    os << "# [" << v.invariant << "] " << v.detail << "\n";
  os << "#\n# --- scenario (loadable by scenario_cli / load_scenario) ---\n";
  dump_scenario(os, spec);
  if (!report.flight_tail.empty()) {
    os << "#\n# --- flight recorder tail at first violation ---\n";
    // Comment-prefix each line so the whole bundle stays .scn-parseable.
    std::size_t start = 0;
    while (start < report.flight_tail.size()) {
      std::size_t end = report.flight_tail.find('\n', start);
      if (end == std::string::npos) end = report.flight_tail.size();
      os << "# " << report.flight_tail.substr(start, end - start) << "\n";
      start = end + 1;
    }
  }
}

}  // namespace dust::check
