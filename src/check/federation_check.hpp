// O8 — federated vs single-manager placement differential (DESIGN.md §16).
//
// A federated fleet solves per-domain against masked NMDBs and moves the
// overflow through aggregate-digest delegation; a single manager solves the
// same NMDB globally and optimally. This oracle runs both, with the
// delegation round modelled exactly as FederatedManager performs it
// (aggregate spare per neighbor, one concrete destination per grant), and
// cross-checks:
//
//   O8-local-containment  no shard's local solve ever plans onto a node
//                         outside its domain (the masking invariant)
//   O8-no-overcommit      the federated plan never places more load than
//                         the single-manager max-offload optimum (which is
//                         a true upper bound)
//   O8-spare-respected    every delegated grant fits inside the granting
//                         candidate's residual spare (no double-booking)
//   O8-gap-accounted      the federated shortfall beyond the single-manager
//                         optimum is fully explained by the two declared
//                         stranding causes: residuals under the delegation
//                         floor and grants rejected by single-destination
//                         granularity (any other loss is a bug)
//   O8-identical          when the single-manager optimum keeps every
//                         assignment inside its busy node's domain, the
//                         sharded solves must reproduce it bit-for-bit
//                         (same assignments, same β)
//
// Caveat the caller owns: delegation grants ignore Trmin reachability (the
// protocol trusts the digest), so run this oracle with PlacementOptions
// that leave every busy-candidate pair reachable (max_hops = 0), or the
// single-manager "upper bound" need not be one.
#pragma once

#include <vector>

#include "check/invariants.hpp"
#include "core/nmdb.hpp"
#include "core/optimizer.hpp"
#include "federation/partition.hpp"

namespace dust::check {

struct FederationCheckOptions {
  /// Mirror of FederatedManagerConfig::min_delegation_amount.
  double min_delegation_amount = 1.0;
  double tolerance = 1e-6;
};

/// Everything both sides computed, for tests asserting numeric bounds.
struct FederatedComparison {
  core::PlacementResult single;  ///< global max-offload optimum
  double total_excess = 0.0;     ///< Σ Cs over busy nodes
  double single_placed = 0.0;
  double fed_placed = 0.0;    ///< local placements + granted delegations
  double fed_local_objective = 0.0;  ///< Σ shard β (local solves only)
  double fed_unplaced = 0.0;
  std::size_t delegations_granted = 0;
  std::size_t delegations_rejected = 0;
  /// Residual excess below the delegation floor (declared stranding #1).
  double stranded_below_floor = 0.0;
  /// Residual excess whose grant was refused because no single candidate
  /// in the chosen neighbor could hold it (declared stranding #2).
  double stranded_by_granularity = 0.0;
  /// Local + delegated flows; the first `local_assignment_count` entries
  /// came from the per-shard solves (in-domain by construction), the rest
  /// from granted delegations (cross-domain by construction).
  std::vector<core::Assignment> fed_assignments;
  std::size_t local_assignment_count = 0;
  /// True when every single-manager assignment stayed in its busy node's
  /// domain — the precondition of the O8-identical check.
  bool single_stayed_in_domain = false;

  [[nodiscard]] double single_hfr_percent() const noexcept {
    return total_excess > 0.0
               ? (total_excess - single_placed) / total_excess * 100.0
               : 0.0;
  }
  [[nodiscard]] double federated_hfr_percent() const noexcept {
    return total_excess > 0.0 ? fed_unplaced / total_excess * 100.0 : 0.0;
  }
  [[nodiscard]] double hfr_gap_percent() const noexcept {
    return federated_hfr_percent() - single_hfr_percent();
  }
};

/// Run both sides and the delegation model. Deterministic.
[[nodiscard]] FederatedComparison compare_federated_placement(
    const core::Nmdb& nmdb, const federation::DomainPartition& partition,
    const core::PlacementOptions& placement,
    const FederationCheckOptions& options = {});

/// The O8 verdict on a comparison (empty = all checks hold).
[[nodiscard]] std::vector<Violation> check_federated_placement(
    const core::Nmdb& nmdb, const federation::DomainPartition& partition,
    const core::PlacementOptions& placement,
    const FederationCheckOptions& options = {});

}  // namespace dust::check
