#include "check/shrink.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/manager.hpp"  // client_endpoint

namespace dust::check {

namespace {

bool endpoint_survives(const std::string& endpoint, std::uint32_t n) {
  if (endpoint.empty()) return true;
  for (graph::NodeId v = 0; v < n; ++v)
    if (endpoint == core::client_endpoint(v)) return true;
  return false;
}

/// Re-target `spec` at a smaller topology, truncating per-node vectors and
/// dropping events that reference removed nodes.
ScenarioSpec retarget(const ScenarioSpec& spec, TopologyKind kind,
                      std::uint32_t fat_tree_k, std::uint32_t n) {
  ScenarioSpec out = spec;
  out.topology = kind;
  out.fat_tree_k = fat_tree_k;
  out.node_count = n;
  out.extra_edges = n * 2;
  out.load.resize(n);
  out.data_mb.resize(n);
  out.agents.resize(n);
  out.capable.resize(n, 1);
  out.platform_factor.resize(n, 1.0);
  std::erase_if(out.churn,
                [n](const ChurnEvent& e) { return e.node >= n; });
  std::erase_if(out.deaths,
                [n](const NodeDeathEvent& e) { return e.node >= n; });
  std::erase_if(out.faults, [n](const sim::FaultEvent& e) {
    return !endpoint_survives(e.endpoint, n);
  });
  std::erase_if(out.attacks,
                [n](const AttackScript& e) { return e.node >= n; });
  return out;
}

/// One step down the topology ladder; nullopt at the bottom (4-node random).
std::optional<ScenarioSpec> demote_once(const ScenarioSpec& spec) {
  switch (spec.topology) {
    case TopologyKind::kFatTree:
      if (spec.fat_tree_k > 4) {
        const std::uint32_t k = spec.fat_tree_k - 2;
        return retarget(spec, TopologyKind::kFatTree, k, 5 * k * k / 4);
      }
      return retarget(spec, TopologyKind::kRandomRegular, 4,
                      std::min<std::uint32_t>(8, spec.node_count));
    case TopologyKind::kHeterogeneousDpu:
      return retarget(spec, TopologyKind::kRandomRegular, 4,
                      std::min<std::uint32_t>(8, spec.node_count));
    case TopologyKind::kRandomRegular:
      if (spec.node_count > 4)
        return retarget(spec, TopologyKind::kRandomRegular, 4,
                        std::max<std::uint32_t>(4, spec.node_count / 2));
      return std::nullopt;
  }
  return std::nullopt;
}

template <typename T>
bool reduce_list(ScenarioSpec& spec, std::vector<T> ScenarioSpec::*member,
                 const FailurePredicate& fails, ShrinkStats& stats,
                 std::size_t max_attempts) {
  bool reduced_any = false;
  if ((spec.*member).empty()) return false;
  // ddmin-lite: chunk removals from halves down to single entries.
  for (std::size_t chunk = ((spec.*member).size() + 1) / 2; chunk >= 1;
       chunk /= 2) {
    for (std::size_t start = 0; start < (spec.*member).size();) {
      if (stats.attempts >= max_attempts) return reduced_any;
      ScenarioSpec candidate = spec;
      std::vector<T>& list = candidate.*member;
      const auto first =
          list.begin() + static_cast<std::ptrdiff_t>(start);
      const auto last =
          list.begin() +
          static_cast<std::ptrdiff_t>(std::min(list.size(), start + chunk));
      list.erase(first, last);
      ++stats.attempts;
      if (fails(candidate)) {
        spec = std::move(candidate);
        ++stats.accepted;
        reduced_any = true;
        // Keep `start`: the next chunk slid into this position.
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return reduced_any;
}

}  // namespace

ScenarioSpec shrink_scenario(ScenarioSpec spec, const FailurePredicate& fails,
                             std::size_t max_attempts, ShrinkStats* stats_out) {
  ShrinkStats stats;
  bool progress = true;
  while (progress && stats.attempts < max_attempts) {
    progress = false;

    // 1. Walk the topology ladder as far down as the failure survives.
    while (stats.attempts < max_attempts) {
      std::optional<ScenarioSpec> candidate = demote_once(spec);
      if (!candidate) break;
      ++stats.attempts;
      if (!fails(*candidate)) break;
      spec = std::move(*candidate);
      ++stats.accepted;
      progress = true;
    }

    // 2. Thin the event lists.
    progress |= reduce_list(spec, &ScenarioSpec::faults, fails, stats,
                            max_attempts);
    progress |= reduce_list(spec, &ScenarioSpec::churn, fails, stats,
                            max_attempts);
    progress |= reduce_list(spec, &ScenarioSpec::deaths, fails, stats,
                            max_attempts);
    progress |= reduce_list(spec, &ScenarioSpec::attacks, fails, stats,
                            max_attempts);

    // 3. Cut the tail: nothing happens after the last event.
    sim::TimeMs last_event = 0;
    for (const ChurnEvent& e : spec.churn)
      last_event = std::max(last_event, e.at_ms);
    for (const NodeDeathEvent& e : spec.deaths)
      last_event = std::max(last_event, e.at_ms);
    for (const sim::FaultEvent& e : spec.faults)
      last_event = std::max(last_event, e.at_ms);
    for (const AttackScript& e : spec.attacks)
      last_event = std::max(last_event, e.at_ms);
    const sim::TimeMs shorter = last_event + 10000;
    if (shorter < spec.duration_ms && stats.attempts < max_attempts) {
      ScenarioSpec candidate = spec;
      candidate.duration_ms = shorter;
      ++stats.attempts;
      if (fails(candidate)) {
        spec = std::move(candidate);
        ++stats.accepted;
        progress = true;
      }
    }
  }
  if (stats_out != nullptr) *stats_out = stats;
  return spec;
}

}  // namespace dust::check
