#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "solver/lp.hpp"

namespace dust::check {

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::size_t index_of(const std::vector<graph::NodeId>& nodes,
                     graph::NodeId node) {
  const auto it = std::find(nodes.begin(), nodes.end(), node);
  return it == nodes.end() ? nodes.size()
                           : static_cast<std::size_t>(it - nodes.begin());
}

}  // namespace

std::vector<Violation> check_placement(const core::PlacementProblem& problem,
                                       const core::PlacementResult& result,
                                       const InvariantOptions& options) {
  std::vector<Violation> out;
  const double eps = options.tolerance;

  if (result.status == solver::Status::kUnbounded) {
    out.push_back({"I2-drain", "placement reported unbounded — the model is "
                               "a bounded transportation problem"});
    return out;
  }
  if (result.status != solver::Status::kOptimal) return out;  // explicit

  const std::size_t m = problem.busy.size();
  const std::size_t n = problem.candidates.size();
  std::vector<double> shed(m, 0.0);
  std::vector<double> absorbed(n, 0.0);
  double objective = 0.0;

  for (const core::Assignment& a : result.assignments) {
    const std::size_t bi = index_of(problem.busy, a.from);
    const std::size_t cj = index_of(problem.candidates, a.to);
    if (bi == m || cj == n) {
      out.push_back({"I4-membership",
                     "assignment " + std::to_string(a.from) + "→" +
                         std::to_string(a.to) +
                         " references a node outside busy/candidate sets"});
      continue;
    }
    if (a.amount < -eps)
      out.push_back({"I5-sign", "negative flow " + fmt(a.amount) + " on " +
                                    std::to_string(a.from) + "→" +
                                    std::to_string(a.to)});
    const double cost = problem.trmin_at(bi, cj);
    if (cost == solver::kInfinity)
      out.push_back({"I3-hop-bound",
                     "assignment " + std::to_string(a.from) + "→" +
                         std::to_string(a.to) +
                         " uses a forbidden cell (no route within max-hops)"});
    else
      objective += a.amount * cost;
    shed[bi] += a.amount;
    absorbed[cj] += a.amount * problem.capacity_coefficient(bi, cj);
  }

  for (std::size_t cj = 0; cj < n; ++cj) {
    if (absorbed[cj] > problem.cd[cj] + eps * std::max(1.0, problem.cd[cj]))
      out.push_back({"I1-capacity",
                     "destination " + std::to_string(problem.candidates[cj]) +
                         " absorbs " + fmt(absorbed[cj]) + " > Cd " +
                         fmt(problem.cd[cj])});
  }

  // Drain: with no partial remainder every busy node must shed exactly Cs_i;
  // a partial solve only promises Σ shed = ΣCs − unplaced.
  if (result.unplaced <= eps) {
    for (std::size_t bi = 0; bi < m; ++bi) {
      if (std::abs(shed[bi] - problem.cs[bi]) >
          eps * std::max(1.0, problem.cs[bi]))
        out.push_back({"I2-drain",
                       "busy node " + std::to_string(problem.busy[bi]) +
                           " sheds " + fmt(shed[bi]) + " != Cs " +
                           fmt(problem.cs[bi])});
    }
  } else {
    double total_shed = 0.0;
    for (double s : shed) total_shed += s;
    const double expected = problem.total_excess() - result.unplaced;
    if (std::abs(total_shed - expected) > eps * std::max(1.0, expected))
      out.push_back({"I2-drain", "partial solve shed " + fmt(total_shed) +
                                     " != ΣCs − unplaced = " + fmt(expected)});
    for (std::size_t bi = 0; bi < m; ++bi)
      if (shed[bi] > problem.cs[bi] + eps * std::max(1.0, problem.cs[bi]))
        out.push_back({"I2-drain",
                       "busy node " + std::to_string(problem.busy[bi]) +
                           " over-sheds " + fmt(shed[bi]) + " > Cs " +
                           fmt(problem.cs[bi])});
  }

  if (std::abs(objective - result.objective) >
      1e-6 * std::max(1.0, std::abs(result.objective)))
    out.push_back({"I5-sign", "reported objective " + fmt(result.objective) +
                                  " != Σ x·Trmin = " + fmt(objective)});
  return out;
}

std::vector<Violation> check_roles(const core::Nmdb& nmdb,
                                   const core::PlacementResult& result) {
  std::vector<Violation> out;
  for (const core::Assignment& a : result.assignments) {
    if (a.to >= nmdb.node_count() || a.from >= nmdb.node_count()) {
      out.push_back({"I4-membership", "assignment references node outside "
                                      "the topology"});
      continue;
    }
    if (!nmdb.offload_capable(a.to))
      out.push_back({"I4-membership",
                     "offload to None-offloading node " +
                         std::to_string(a.to) + " (opted out)"});
  }
  return out;
}

std::vector<Violation> check_cycle(const core::CycleObservation& observation,
                                   const InvariantOptions& options) {
  std::vector<Violation> out;
  if (observation.problem == nullptr || observation.result == nullptr)
    return {{Violation{"observer", "cycle observation missing problem/result"}}};
  std::vector<Violation> placement =
      check_placement(*observation.problem, *observation.result, options);
  out.insert(out.end(), placement.begin(), placement.end());
  if (observation.nmdb != nullptr) {
    std::vector<Violation> roles =
        check_roles(*observation.nmdb, *observation.result);
    out.insert(out.end(), roles.begin(), roles.end());
  }
  if (options.force_failure)
    out.push_back(Violation{
        "I0-forced", "synthetic violation requested by InvariantOptions"});
  return out;
}

std::string describe(const std::vector<Violation>& violations) {
  std::ostringstream os;
  for (const Violation& v : violations)
    os << "[" << v.invariant << "] " << v.detail << "\n";
  return os.str();
}

}  // namespace dust::check
