#include "check/federation_check.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

namespace dust::check {

namespace {

double node_excess(const core::Nmdb& nmdb, graph::NodeId v) {
  return nmdb.thresholds(v).excess_load(nmdb.network().node_utilization(v));
}

double node_spare(const core::Nmdb& nmdb, graph::NodeId v) {
  return nmdb.thresholds(v).spare_capacity(nmdb.network().node_utilization(v));
}

/// Sort key: assignments compare by (from, to) — amounts are checked with a
/// tolerance afterwards.
bool assignment_less(const core::Assignment& a, const core::Assignment& b) {
  return a.from != b.from ? a.from < b.from : a.to < b.to;
}

}  // namespace

FederatedComparison compare_federated_placement(
    const core::Nmdb& nmdb, const federation::DomainPartition& partition,
    const core::PlacementOptions& placement,
    const FederationCheckOptions& options) {
  FederatedComparison cmp;
  core::OptimizerOptions engine_options;
  engine_options.placement = placement;
  engine_options.allow_partial = true;
  const core::OptimizationEngine engine(engine_options);

  for (graph::NodeId b : nmdb.busy_nodes()) cmp.total_excess += node_excess(nmdb, b);

  // The global optimum: one manager, full visibility.
  cmp.single = engine.run(nmdb);
  cmp.single_placed = cmp.single.offloaded_total();
  cmp.single_stayed_in_domain = std::all_of(
      cmp.single.assignments.begin(), cmp.single.assignments.end(),
      [&](const core::Assignment& a) {
        return partition.shard_of(a.from) == partition.shard_of(a.to);
      });

  // Per-shard solves over masked NMDBs, exactly as FederatedManager masks.
  const std::size_t shards = partition.shard_count();
  std::map<graph::NodeId, double> spare_left;   // per-candidate, post-local
  std::vector<double> digest(shards, 0.0);      // per-shard aggregate spare
  struct Residual {
    graph::NodeId busy;
    std::uint32_t shard;
    double amount;
  };
  std::vector<Residual> residuals;
  for (std::uint32_t s = 0; s < shards; ++s) {
    core::Nmdb masked = nmdb;
    for (graph::NodeId v = 0; v < partition.home.size(); ++v)
      if (partition.home[v] != s) masked.set_offload_capable(v, false);
    const core::PlacementResult local = engine.run(masked);
    cmp.fed_local_objective += local.objective;
    cmp.fed_placed += local.offloaded_total();
    for (const core::Assignment& a : local.assignments)
      cmp.fed_assignments.push_back(a);
    for (graph::NodeId b : masked.busy_nodes()) {
      const double residual = node_excess(masked, b) - local.offloaded_from(b);
      if (residual > options.tolerance)
        residuals.push_back({b, s, residual});
    }
    for (graph::NodeId c : masked.candidate_nodes()) {
      const double spare =
          std::max(0.0, node_spare(masked, c) - local.absorbed_by(c));
      spare_left[c] = spare;
      digest[s] += spare;
    }
  }
  cmp.local_assignment_count = cmp.fed_assignments.size();

  // One delegation round, modelled as FederatedManager runs it: the origin
  // asks the neighbor with the largest aggregate digest, the grant lands on
  // that domain's single best candidate or is rejected outright.
  for (const Residual& r : residuals) {
    if (r.amount < options.min_delegation_amount) {
      cmp.stranded_below_floor += r.amount;
      continue;
    }
    std::uint32_t best_shard = r.shard;
    for (std::uint32_t t = 0; t < shards; ++t) {
      if (t == r.shard || digest[t] < options.min_delegation_amount) continue;
      if (best_shard == r.shard || digest[t] > digest[best_shard])
        best_shard = t;
    }
    if (best_shard == r.shard) {  // every neighbor digest under the floor
      cmp.stranded_below_floor += r.amount;
      continue;
    }
    const double amount = std::min(r.amount, digest[best_shard]);
    if (amount < r.amount)  // aggregate digest truncated the request
      cmp.stranded_by_granularity += r.amount - amount;
    graph::NodeId best = graph::kInvalidNode;
    double best_spare = 0.0;
    for (graph::NodeId c : partition.members[best_shard]) {
      auto it = spare_left.find(c);
      if (it == spare_left.end()) continue;
      if (best == graph::kInvalidNode || it->second > best_spare) {
        best = c;
        best_spare = it->second;
      }
    }
    const double needed =
        best == graph::kInvalidNode
            ? 0.0
            : amount * nmdb.platform_factor(r.busy) / nmdb.platform_factor(best);
    if (best == graph::kInvalidNode || best_spare + options.tolerance < needed) {
      // Spare exists in aggregate but no single destination holds it.
      cmp.stranded_by_granularity += amount;
      ++cmp.delegations_rejected;
      continue;
    }
    spare_left[best] -= needed;
    digest[best_shard] -= amount;
    cmp.fed_assignments.push_back(core::Assignment{r.busy, best, amount, 0.0});
    cmp.fed_placed += amount;
    ++cmp.delegations_granted;
  }
  cmp.fed_unplaced = std::max(0.0, cmp.total_excess - cmp.fed_placed);
  return cmp;
}

std::vector<Violation> check_federated_placement(
    const core::Nmdb& nmdb, const federation::DomainPartition& partition,
    const core::PlacementOptions& placement,
    const FederationCheckOptions& options) {
  const FederatedComparison cmp =
      compare_federated_placement(nmdb, partition, placement, options);
  std::vector<Violation> violations;
  const double tol = options.tolerance;

  for (std::size_t i = 0; i < cmp.local_assignment_count; ++i) {
    const core::Assignment& a = cmp.fed_assignments[i];
    if (partition.shard_of(a.from) != partition.shard_of(a.to)) {
      std::ostringstream os;
      os << "local solve of shard " << partition.shard_of(a.from)
         << " planned " << a.from << " -> " << a.to
         << " across the domain boundary";
      violations.push_back({"O8-local-containment", os.str()});
    }
  }

  if (cmp.fed_placed > cmp.single_placed + tol) {
    std::ostringstream os;
    os << "federated plan placed " << cmp.fed_placed
       << " > single-manager optimum " << cmp.single_placed;
    violations.push_back({"O8-no-overcommit", os.str()});
  }

  // Ground-truth capacity audit over every federated flow (local +
  // delegated): nothing may absorb beyond its spare.
  std::map<graph::NodeId, double> absorbed;
  for (const core::Assignment& a : cmp.fed_assignments)
    absorbed[a.to] += a.amount * nmdb.platform_factor(a.from) /
                      nmdb.platform_factor(a.to);
  for (const auto& [node, amount] : absorbed) {
    const double spare = node_spare(nmdb, node);
    if (amount > spare + tol) {
      std::ostringstream os;
      os << "destination " << node << " absorbs " << amount
         << " over its spare " << spare;
      violations.push_back({"O8-spare-respected", os.str()});
    }
  }

  const double single_unplaced =
      std::max(0.0, cmp.total_excess - cmp.single_placed);
  const double explained = single_unplaced + cmp.stranded_below_floor +
                           cmp.stranded_by_granularity;
  if (cmp.fed_unplaced > explained + tol) {
    std::ostringstream os;
    os << "federated unplaced " << cmp.fed_unplaced
       << " exceeds the declared stranding bound " << explained
       << " (single " << single_unplaced << " + floor "
       << cmp.stranded_below_floor << " + granularity "
       << cmp.stranded_by_granularity << ")";
    violations.push_back({"O8-gap-accounted", os.str()});
  }

  if (cmp.single_stayed_in_domain) {
    std::vector<core::Assignment> fed(
        cmp.fed_assignments.begin(),
        cmp.fed_assignments.begin() +
            static_cast<std::ptrdiff_t>(cmp.local_assignment_count));
    std::vector<core::Assignment> single = cmp.single.assignments;
    std::sort(fed.begin(), fed.end(), assignment_less);
    std::sort(single.begin(), single.end(), assignment_less);
    bool identical = fed.size() == single.size();
    for (std::size_t i = 0; identical && i < fed.size(); ++i)
      identical = fed[i].from == single[i].from &&
                  fed[i].to == single[i].to &&
                  std::abs(fed[i].amount - single[i].amount) <= tol;
    if (!identical || std::abs(cmp.fed_local_objective -
                               cmp.single.objective) > tol) {
      std::ostringstream os;
      os << "single-manager optimum stayed in-domain ("
         << single.size() << " flows, beta " << cmp.single.objective
         << ") but sharded solves produced " << fed.size()
         << " flows, beta " << cmp.fed_local_objective;
      violations.push_back({"O8-identical", os.str()});
    }
  }
  return violations;
}

}  // namespace dust::check
