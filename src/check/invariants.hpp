// dust::check invariant catalog (DESIGN.md §9): the machine-checkable
// properties every placement cycle must satisfy, checked against the exact
// model the engine solved (via DustManager::set_cycle_observer) rather than
// a reconstruction of it.
//
//   I1 capacity    Σ_i coeff(i,j)·x_ij ≤ Cd_j            (Eq. 3 row b)
//   I2 drain       Σ_j x_ij = Cs_i, or explicit infeasibility / partial
//                  remainder reported in `unplaced`        (Eq. 3 row a)
//   I3 hop bound   every assignment rides a finite Trmin (kInfinity means
//                  no route within max-hops — forbidden)
//   I4 membership  every assignment maps busy→candidate; no offload lands
//                  on a None-offloading node
//   I5 sign        flows are nonnegative, objective = Σ x_ij·Trmin(i,j)
#pragma once

#include <string>
#include <vector>

#include "core/manager.hpp"
#include "core/placement.hpp"

namespace dust::check {

struct Violation {
  std::string invariant;  ///< "I1-capacity", "O2-warm-vs-cold", ...
  std::string detail;
};

struct InvariantOptions {
  double tolerance = 1e-6;
  /// Testing hook: make check_cycle report a synthetic "I0-forced" violation
  /// on every cycle, so the failure path (flight-recorder capture, repro
  /// dumps, shrinking) can be exercised on a perfectly healthy scenario.
  bool force_failure = false;
};

/// Check a solved placement against the exact problem it was solved for.
[[nodiscard]] std::vector<Violation> check_placement(
    const core::PlacementProblem& problem, const core::PlacementResult& result,
    const InvariantOptions& options = {});

/// Cross-layer checks needing the NMDB: assignments must target
/// offload-capable nodes (I4 at the role level, catching candidate-set
/// construction bugs that a problem-local check cannot).
[[nodiscard]] std::vector<Violation> check_roles(
    const core::Nmdb& nmdb, const core::PlacementResult& result);

/// Everything checkable from one manager cycle observation.
[[nodiscard]] std::vector<Violation> check_cycle(
    const core::CycleObservation& observation,
    const InvariantOptions& options = {});

/// Render violations for a test failure message.
[[nodiscard]] std::string describe(const std::vector<Violation>& violations);

}  // namespace dust::check
