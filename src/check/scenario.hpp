// dust::check scenario model: a fully self-describing random test case.
//
// A ScenarioSpec captures everything a harness run needs — topology, load
// vector, churn trace, node deaths, and the transport fault schedule — as
// plain data, so a failing case can be (a) replayed bit-identically from its
// seed, (b) shrunk by editing the spec (see shrink.hpp), and (c) dumped as
// an annotated .scn file a human can read and scenario_cli can load.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/nmdb.hpp"
#include "sim/transport.hpp"

namespace dust::check {

enum class TopologyKind : std::uint8_t {
  kFatTree,           ///< paper §V-B switch-level fat-tree, k ∈ {4, 6, 8}
  kRandomRegular,     ///< random 4-regular-ish graph (circulant + swaps)
  kHeterogeneousDpu,  ///< leaf-spine with DPU-class platform factors
};

[[nodiscard]] const char* to_string(TopologyKind kind) noexcept;

/// One load change applied mid-run (drives STAT updates and churn).
struct ChurnEvent {
  sim::TimeMs at_ms = 0;
  graph::NodeId node = graph::kInvalidNode;
  double utilization_percent = 0.0;
};

/// Permanent node crash at `at_ms` (stops STATs/Keepalives, drops messages).
struct NodeDeathEvent {
  sim::TimeMs at_ms = 0;
  graph::NodeId node = graph::kInvalidNode;
};

/// Byzantine attack axis (DESIGN.md §14): one misbehaving node per script.
enum class AttackKind : std::uint8_t {
  /// STATs report utilization + magnitude (negative = under-report load,
  /// i.e. over-promise spare capacity) while the device delivers a fixed
  /// degraded fraction of what an honest node would.
  kCapacityLie,
  /// Accepts offloads and keepalives normally but silently drops the hosted
  /// agents' telemetry — invisible to the control plane.
  kBlackhole,
  /// Goes silent (no keepalives/STATs) for the first down_ms of every
  /// period_ms window and re-announces Offload-capable at each
  /// up-transition, un-quarantining itself to a trust-blind manager.
  kKeepaliveFlap,
};

[[nodiscard]] const char* to_string(AttackKind kind) noexcept;

/// One node turning byzantine at `at_ms` (behavior persists to end of run).
struct AttackScript {
  sim::TimeMs at_ms = 0;
  graph::NodeId node = graph::kInvalidNode;
  AttackKind kind = AttackKind::kCapacityLie;
  double magnitude = 0.0;     ///< kCapacityLie: STAT utilization bias
  sim::TimeMs period_ms = 0;  ///< kKeepaliveFlap: window length
  sim::TimeMs down_ms = 0;    ///< kKeepaliveFlap: silent window prefix
};

struct ScenarioSpec {
  std::uint64_t seed = 0;
  TopologyKind topology = TopologyKind::kFatTree;
  std::uint32_t fat_tree_k = 4;   ///< kFatTree only
  std::uint32_t node_count = 0;   ///< resolved for every kind
  std::uint32_t extra_edges = 0;  ///< kRandomRegular edge-swap budget

  // Per-node initial state, all sized node_count.
  std::vector<double> load;             ///< utilization %
  std::vector<double> data_mb;          ///< monitoring data D_i
  std::vector<std::uint32_t> agents;    ///< monitoring agent count
  std::vector<char> capable;            ///< 0 = None-offloading opt-out
  std::vector<double> platform_factor;  ///< 1.0 unless kHeterogeneousDpu

  std::vector<ChurnEvent> churn;
  std::vector<NodeDeathEvent> deaths;
  std::vector<sim::FaultEvent> faults;
  std::vector<AttackScript> attacks;

  sim::TimeMs duration_ms = 60000;
  std::uint32_t max_hops = 4;
};

struct GeneratorOptions {
  /// Hard cap on generated topology size (smoke budget); fat-tree k is
  /// demoted until 5k^2/4 fits.
  std::uint32_t max_nodes = 80;
  double busy_fraction = 0.25;     ///< nodes seeded above Cmax
  double opt_out_fraction = 0.1;   ///< None-offloading nodes
  std::size_t churn_events = 12;
  std::size_t death_events = 1;
  std::size_t fault_events = 6;
  bool allow_faults = true;
  bool allow_deaths = true;
  /// Byzantine scripts to generate (0 = none). Attack draws happen after
  /// every other draw, so raising this never perturbs the rest of the
  /// scenario a seed produces.
  std::size_t attack_events = 0;
};

/// Deterministic: the same (seed, options) always yields the same spec.
[[nodiscard]] ScenarioSpec generate_scenario(std::uint64_t seed,
                                             const GeneratorOptions& options = {});

/// Topology for the spec (seeded internally from spec.seed for
/// kRandomRegular, so rebuilding is deterministic).
[[nodiscard]] graph::Graph build_topology(const ScenarioSpec& spec);

/// NMDB preloaded with the spec's initial state (loads, capability flags,
/// platform factors, agent counts). This is the t=0 view; churn/faults are
/// applied by the runner over sim-time.
[[nodiscard]] core::Nmdb build_nmdb(const ScenarioSpec& spec);

/// Annotated .scn dump: the initial state in core::load_scenario syntax plus
/// '#'-comment lines recording seed, agent counts, churn, deaths, the fault
/// schedule, and attack scripts (ignored by core::load_scenario, so the dump
/// stays loadable by scenario_cli).
void dump_scenario(std::ostream& os, const ScenarioSpec& spec);
[[nodiscard]] std::string dump_scenario(const ScenarioSpec& spec);

/// Inverse of dump_scenario: rebuild the full ScenarioSpec (including the
/// annotation-only fields core::load_scenario ignores — agents, churn,
/// deaths, faults, attacks) from an annotated .scn stream. This is what the
/// tests/corpus/ repro replayer uses; round-trip is exact
/// (dump(parse(dump(s))) == dump(s)).
[[nodiscard]] ScenarioSpec parse_scenario_spec(std::istream& in);

}  // namespace dust::check
