// dust::check scenario model: a fully self-describing random test case.
//
// A ScenarioSpec captures everything a harness run needs — topology, load
// vector, churn trace, node deaths, and the transport fault schedule — as
// plain data, so a failing case can be (a) replayed bit-identically from its
// seed, (b) shrunk by editing the spec (see shrink.hpp), and (c) dumped as
// an annotated .scn file a human can read and scenario_cli can load.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/nmdb.hpp"
#include "sim/transport.hpp"

namespace dust::check {

enum class TopologyKind : std::uint8_t {
  kFatTree,           ///< paper §V-B switch-level fat-tree, k ∈ {4, 6, 8}
  kRandomRegular,     ///< random 4-regular-ish graph (circulant + swaps)
  kHeterogeneousDpu,  ///< leaf-spine with DPU-class platform factors
};

[[nodiscard]] const char* to_string(TopologyKind kind) noexcept;

/// One load change applied mid-run (drives STAT updates and churn).
struct ChurnEvent {
  sim::TimeMs at_ms = 0;
  graph::NodeId node = graph::kInvalidNode;
  double utilization_percent = 0.0;
};

/// Permanent node crash at `at_ms` (stops STATs/Keepalives, drops messages).
struct NodeDeathEvent {
  sim::TimeMs at_ms = 0;
  graph::NodeId node = graph::kInvalidNode;
};

struct ScenarioSpec {
  std::uint64_t seed = 0;
  TopologyKind topology = TopologyKind::kFatTree;
  std::uint32_t fat_tree_k = 4;   ///< kFatTree only
  std::uint32_t node_count = 0;   ///< resolved for every kind
  std::uint32_t extra_edges = 0;  ///< kRandomRegular edge-swap budget

  // Per-node initial state, all sized node_count.
  std::vector<double> load;             ///< utilization %
  std::vector<double> data_mb;          ///< monitoring data D_i
  std::vector<std::uint32_t> agents;    ///< monitoring agent count
  std::vector<char> capable;            ///< 0 = None-offloading opt-out
  std::vector<double> platform_factor;  ///< 1.0 unless kHeterogeneousDpu

  std::vector<ChurnEvent> churn;
  std::vector<NodeDeathEvent> deaths;
  std::vector<sim::FaultEvent> faults;

  sim::TimeMs duration_ms = 60000;
  std::uint32_t max_hops = 4;
};

struct GeneratorOptions {
  /// Hard cap on generated topology size (smoke budget); fat-tree k is
  /// demoted until 5k^2/4 fits.
  std::uint32_t max_nodes = 80;
  double busy_fraction = 0.25;     ///< nodes seeded above Cmax
  double opt_out_fraction = 0.1;   ///< None-offloading nodes
  std::size_t churn_events = 12;
  std::size_t death_events = 1;
  std::size_t fault_events = 6;
  bool allow_faults = true;
  bool allow_deaths = true;
};

/// Deterministic: the same (seed, options) always yields the same spec.
[[nodiscard]] ScenarioSpec generate_scenario(std::uint64_t seed,
                                             const GeneratorOptions& options = {});

/// Topology for the spec (seeded internally from spec.seed for
/// kRandomRegular, so rebuilding is deterministic).
[[nodiscard]] graph::Graph build_topology(const ScenarioSpec& spec);

/// NMDB preloaded with the spec's initial state (loads, capability flags,
/// platform factors, agent counts). This is the t=0 view; churn/faults are
/// applied by the runner over sim-time.
[[nodiscard]] core::Nmdb build_nmdb(const ScenarioSpec& spec);

/// Annotated .scn dump: the initial state in core::load_scenario syntax plus
/// '#'-comment lines recording seed, churn, deaths, and the fault schedule
/// (ignored by the parser, so the dump stays loadable by scenario_cli).
void dump_scenario(std::ostream& os, const ScenarioSpec& spec);
[[nodiscard]] std::string dump_scenario(const ScenarioSpec& spec);

}  // namespace dust::check
