// dust::check data-plane scenario axis (DESIGN.md §12): a seeded
// streamer → socket → collector run with induced congestion, audited against
// the no-silent-loss contract.
//
// The congestion knob is deterministic: the leaf transport only flushes its
// queue on poll_once, so pumping the streamer for several rounds between
// polls fills the bounded per-peer queue exactly as configured — no timing
// dependence. Under that pressure the streamer must walk the degradation
// ladder and declare every dropped batch; the audit fails if the collector
// observed any gap nobody declared, any block contradicting its descriptor,
// or any sequencing violation.
//
//   D1-declared-loss   collector.undeclared_gap_batches == 0
//   D2-verify          collector.verify_failures == 0
//   D3-order           collector.out_of_order == 0
//   D4-conservation    appended == sent + thinned + dropped, and the
//                      collector received exactly what was sent / declared
//   D5-announcements   every degrade announcement reached the collector
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "dataplane/block_streamer.hpp"
#include "dataplane/collector.hpp"

namespace dust::check {

struct DataplaneSpec {
  std::uint64_t seed = 0;
  graph::NodeId owner = 7;
  std::uint32_t series_count = 4;
  std::uint32_t rounds = 40;             ///< append/pump rounds
  std::uint32_t samples_per_round = 32;  ///< per series, per round
  std::uint32_t seal_every_rounds = 1;   ///< seal cadence (1 = every round)
  std::uint32_t poll_every_rounds = 3;   ///< transports drain every N rounds
  std::uint32_t max_queued_frames = 4;   ///< leaf per-peer cap (tiny = choke)
  std::uint32_t max_blocks_per_frame = 8;
  std::int64_t sample_interval_ms = 50;
};

/// Deterministic: the same seed always yields the same spec. Queue caps and
/// poll cadences are drawn tight enough that most specs actually choke.
[[nodiscard]] DataplaneSpec random_dataplane_spec(std::uint64_t seed);

struct DataplaneRunReport {
  DataplaneSpec spec;
  std::uint64_t samples_appended = 0;
  dataplane::StreamerStats streamer;
  dataplane::CollectorStats collector;
  telemetry::DegradeMode final_mode = telemetry::DegradeMode::kFull;
  bool drained = false;  ///< collector caught up before the wall deadline
};

/// Run the spec over real loopback sockets (hub collector, leaf streamer).
[[nodiscard]] DataplaneRunReport run_dataplane_scenario(
    const DataplaneSpec& spec);

/// Audit a finished run against D1..D5. Empty = the contract held.
[[nodiscard]] std::vector<Violation> check_dataplane(
    const DataplaneRunReport& report);

}  // namespace dust::check
