// Crafted byzantine scenarios (DESIGN.md §14) shared by the adversarial
// tests, the tests/corpus/ regeneration path, and scenario_cli --attack=.
// Hand-built (no generator RNG) so replay corpora stay stable across
// generator changes.
#pragma once

#include "check/scenario.hpp"

namespace dust::check {

/// Two overloaded sources, one byzantine node dressed up as the most
/// attractive destination, and a pocket of honest spare capacity the
/// trust-weighted run can fall back to once the attacker is caught.
inline ScenarioSpec make_attack_spec(AttackKind kind, TopologyKind topology) {
  ScenarioSpec spec;
  spec.seed = 0x5eedULL + static_cast<std::uint64_t>(kind);
  spec.topology = topology;
  // The attacker must sit closer to the busy sources than the honest pocket,
  // or distance-aware placement routes around it for free. On the k=4
  // fat-tree (cores 0-3, pod p: agg 4+4p..5+4p, edge 6+4p..7+4p) the busy
  // sources are pod-0 edge switches and the attacker is the adjacent pod-0
  // aggregation switch, one hop from both.
  std::uint32_t busy_a = 0;
  std::uint32_t busy_b = 1;
  std::uint32_t attacker = 2;
  if (topology == TopologyKind::kFatTree) {
    spec.fat_tree_k = 4;
    spec.node_count = 20;
    busy_a = 6;
    busy_b = 7;
    attacker = 5;
  } else {
    spec.topology = TopologyKind::kRandomRegular;
    spec.node_count = 12;
    spec.extra_edges = 24;
  }
  const std::uint32_t n = spec.node_count;
  spec.load.assign(n, 55.0);  // honest candidates with only modest spare
  spec.data_mb.assign(n, 40.0);
  spec.agents.assign(n, 4);
  spec.capable.assign(n, 1);
  spec.platform_factor.assign(n, 1.0);
  spec.load[busy_a] = 95.0;  // busy sources shedding load all run
  spec.load[busy_b] = 92.0;
  spec.load[n - 1] = 15.0;  // the honest fallback pocket
  spec.load[n - 2] = 15.0;

  AttackScript attack;
  attack.node = attacker;
  attack.at_ms = 500;
  attack.kind = kind;
  switch (kind) {
    case AttackKind::kCapacityLie:
      // Really at 55% but reports 5%: promises spare it does not have and
      // delivers only a quarter of what it hosts.
      spec.load[attacker] = 55.0;
      attack.magnitude = -50.0;
      break;
    case AttackKind::kBlackhole:
      // genuinely idle — and silently drops everything
      spec.load[attacker] = 5.0;
      break;
    case AttackKind::kKeepaliveFlap:
      spec.load[attacker] = 5.0;
      attack.period_ms = 12000;
      attack.down_ms = 6000;
      break;
  }
  spec.attacks.push_back(attack);
  spec.duration_ms = 60000;
  spec.max_hops = 4;
  return spec;
}

}  // namespace dust::check
