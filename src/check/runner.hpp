// dust::check scenario runner: drives the full Manager/Client protocol loop
// over a generated scenario (churn, faults, deaths) on the simulated
// transport, checking the invariant catalog after every placement cycle and
// the differential oracles on size-gated cycles, plus a time-based audit
// that every offload to a dead destination is replaced (REP) or torn down
// within 2x the keepalive timeout.
#pragma once

#include <iosfwd>

#include "check/invariants.hpp"
#include "check/oracles.hpp"
#include "check/scenario.hpp"

namespace dust::check {

struct RunOptions {
  // Fast protocol clocks (sim-time ms) so a 60 s scenario covers ~12
  // placement cycles and several keepalive windows.
  std::int64_t update_interval_ms = 1000;
  std::int64_t placement_period_ms = 5000;
  std::int64_t keepalive_timeout_ms = 4000;
  std::int64_t keepalive_check_period_ms = 1000;
  std::int64_t keepalive_interval_ms = 1000;
  /// Exercise the incremental pipeline (Trmin cache + warm starts) with the
  /// engine's own warm-vs-cold verification enabled — every steady-state
  /// cycle then runs the O3 oracle for free.
  bool incremental_placement = true;
  bool check_oracles = true;
  /// Solver differential oracles run on at most this many (size-gated)
  /// cycles per scenario — they cost three extra solves plus enumeration.
  std::size_t max_oracle_cycles = 4;
  OracleOptions oracle;
  InvariantOptions invariant;
};

struct RunReport {
  std::vector<Violation> violations;
  std::size_t cycles_observed = 0;
  std::size_t oracle_cycles = 0;
  std::size_t offloads_created = 0;
  std::size_t keepalive_failures = 0;
  std::size_t releases = 0;
  std::uint64_t reps_received = 0;
  std::uint64_t messages_dropped = 0;
  /// Flight-recorder timeline (obs::write_flight_text of the last 64
  /// events) captured at the moment the FIRST violation was recorded —
  /// what the control plane was doing right before things went wrong.
  /// Empty when the run passed.
  std::string flight_tail;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
};

/// Deterministic given spec (all randomness derives from spec.seed).
/// Clears the global flight recorder at run start so the captured tail
/// belongs to this scenario alone.
[[nodiscard]] RunReport run_scenario(const ScenarioSpec& spec,
                                     const RunOptions& options = {});

/// Write a self-contained repro bundle for a failed run: the annotated .scn
/// scenario (replayable via scenario_cli / load_scenario), every violation,
/// and the flight-recorder tail captured at first failure.
void dump_repro(std::ostream& os, const ScenarioSpec& spec,
                const RunReport& report);

}  // namespace dust::check
