// dust::check scenario runner: drives the full Manager/Client protocol loop
// over a generated scenario (churn, faults, deaths) on the simulated
// transport, checking the invariant catalog after every placement cycle and
// the differential oracles on size-gated cycles, plus a time-based audit
// that every offload to a dead destination is replaced (REP) or torn down
// within 2x the keepalive timeout.
#pragma once

#include <iosfwd>

#include "check/invariants.hpp"
#include "check/oracles.hpp"
#include "check/scenario.hpp"

namespace dust::check {

struct RunOptions {
  // Fast protocol clocks (sim-time ms) so a 60 s scenario covers ~12
  // placement cycles and several keepalive windows.
  std::int64_t update_interval_ms = 1000;
  std::int64_t placement_period_ms = 5000;
  std::int64_t keepalive_timeout_ms = 4000;
  std::int64_t keepalive_check_period_ms = 1000;
  std::int64_t keepalive_interval_ms = 1000;
  /// Exercise the incremental pipeline (Trmin cache + warm starts) with the
  /// engine's own warm-vs-cold verification enabled — every steady-state
  /// cycle then runs the O3 oracle for free.
  bool incremental_placement = true;
  bool check_oracles = true;
  /// Solver differential oracles run on at most this many (size-gated)
  /// cycles per scenario — they cost three extra solves plus enumeration.
  std::size_t max_oracle_cycles = 4;
  OracleOptions oracle;
  InvariantOptions invariant;
  /// Trust-weighted placement (DESIGN.md §14) pass-throughs into
  /// core::ManagerConfig. Off by default so every pre-existing scenario runs
  /// exactly as before.
  bool trust_weighting = false;
  int keepalive_miss_threshold = 1;
  /// Cadence of the runner's deterministic delivery audit: per acknowledged
  /// offload it models what the destination actually delivered (blackhole →
  /// 0, capacity liar → 25%, flapper in a down window → 0, honest → all)
  /// and feeds core::DustManager::record_loss_audit. The audit runs in
  /// trust-blind runs too (where record_loss_audit is a no-op) so the
  /// delivered-sample tallies are comparable across the two modes.
  std::int64_t loss_audit_period_ms = 2000;
  /// I7: a node whose trust sat below the exclusion threshold for this many
  /// consecutive placement cycles must receive no new offloads.
  std::size_t i7_proven_cycles = 2;
};

struct RunReport {
  std::vector<Violation> violations;
  std::size_t cycles_observed = 0;
  std::size_t oracle_cycles = 0;
  std::size_t offloads_created = 0;
  std::size_t keepalive_failures = 0;
  std::size_t releases = 0;
  std::uint64_t reps_received = 0;
  std::uint64_t messages_dropped = 0;
  /// Flight-recorder timeline (obs::write_flight_text of the last 64
  /// events) captured at the moment the FIRST violation was recorded —
  /// what the control plane was doing right before things went wrong.
  /// Empty when the run passed.
  std::string flight_tail;
  /// Delivery-audit tallies (see RunOptions::loss_audit_period_ms): agent
  /// deliveries expected from acknowledged destinations vs what the
  /// byzantine model says actually arrived. The O7 oracle compares the
  /// delivered fraction between a trust-blind and a trust-weighted run.
  double samples_expected = 0.0;
  double samples_delivered = 0.0;
  /// splitmix64 fold of every cycle's planning inputs and outputs (busy set,
  /// candidate set, assignments, objective bits). Two runs made the same
  /// placement decisions iff their digests match — the I8 neutrality check.
  std::uint64_t placement_digest = 0;
  /// β = Σ x·Trmin summed over cycles and total unplaced load (placement
  /// quality axes reported by the O7 comparison).
  double objective_sum = 0.0;
  double unplaced_sum = 0.0;
  std::size_t trust_evictions = 0;
  double min_trust = 1.0;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
  [[nodiscard]] double delivered_fraction() const noexcept {
    return samples_expected > 0.0 ? samples_delivered / samples_expected
                                  : 1.0;
  }
};

/// Deterministic given spec (all randomness derives from spec.seed).
/// Clears the global flight recorder at run start so the captured tail
/// belongs to this scenario alone.
[[nodiscard]] RunReport run_scenario(const ScenarioSpec& spec,
                                     const RunOptions& options = {});

/// Write a self-contained repro bundle for a failed run: the annotated .scn
/// scenario (replayable via scenario_cli / load_scenario), every violation,
/// and the flight-recorder tail captured at first failure.
void dump_repro(std::ostream& os, const ScenarioSpec& spec,
                const RunReport& report);

/// O7 (differential, DESIGN.md §14): the same scenario run trust-blind and
/// trust-weighted, with everything else identical.
struct TrustComparison {
  RunReport blind;
  RunReport trusted;
};
[[nodiscard]] TrustComparison compare_trust_placement(
    const ScenarioSpec& spec, const RunOptions& base = {});

/// O7 verdict: trust weighting must never make delivery meaningfully worse,
/// and I1-I6 must hold in both runs. `tolerance` absorbs benign plan
/// differences on attack-free scenarios.
[[nodiscard]] std::vector<Violation> check_trust_improvement(
    const TrustComparison& comparison, double tolerance = 0.02);

/// I8: on a scenario with no attack scripts, the trust-blind and
/// trust-weighted runs must make bit-identical placement decisions (equal
/// placement digests). Returns violations; empty = neutral.
[[nodiscard]] std::vector<Violation> check_trust_neutrality(
    const ScenarioSpec& spec, const RunOptions& base = {});

}  // namespace dust::check
