#include "check/dataplane_check.hpp"

#include <chrono>
#include <cmath>
#include <sstream>

#include "util/rng.hpp"

namespace dust::check {

namespace {

std::string fmt(std::uint64_t value) { return std::to_string(value); }

}  // namespace

DataplaneSpec random_dataplane_spec(std::uint64_t seed) {
  util::Rng rng(seed ^ 0xDA7A91A5Eull);
  DataplaneSpec spec;
  spec.seed = seed;
  spec.owner = static_cast<graph::NodeId>(rng.below(64));
  spec.series_count = 1 + static_cast<std::uint32_t>(rng.below(6));
  spec.rounds = 20 + static_cast<std::uint32_t>(rng.below(60));
  spec.samples_per_round = 8 + static_cast<std::uint32_t>(rng.below(56));
  spec.seal_every_rounds = 1 + static_cast<std::uint32_t>(rng.below(3));
  // Polls rarer than seals, so the bounded queue actually chokes.
  spec.poll_every_rounds =
      spec.seal_every_rounds + 1 + static_cast<std::uint32_t>(rng.below(5));
  spec.max_queued_frames = 2 + static_cast<std::uint32_t>(rng.below(7));
  spec.max_blocks_per_frame = 1 + static_cast<std::uint32_t>(rng.below(12));
  spec.sample_interval_ms = 10 + static_cast<std::int64_t>(rng.below(191));
  return spec;
}

DataplaneRunReport run_dataplane_scenario(const DataplaneSpec& spec) {
  DataplaneRunReport report;
  report.spec = spec;

  wire::SocketTransportConfig hub_config;
  hub_config.role = wire::SocketTransportConfig::Role::kHub;
  wire::SocketTransport hub(hub_config);

  wire::SocketTransportConfig leaf_config;
  leaf_config.role = wire::SocketTransportConfig::Role::kLeaf;
  leaf_config.port = hub.listen_port();
  leaf_config.max_queued_frames = spec.max_queued_frames;
  wire::SocketTransport leaf(leaf_config);

  dataplane::Collector collector(hub, "dust-collector");

  const std::string streamer_endpoint =
      "dust-streamer-" + std::to_string(spec.owner);
  leaf.register_endpoint(streamer_endpoint, [](const sim::Envelope&) {});

  telemetry::Tsdb tsdb;
  std::vector<telemetry::MetricId> metrics;
  metrics.reserve(spec.series_count);
  for (std::uint32_t s = 0; s < spec.series_count; ++s)
    metrics.push_back(tsdb.register_metric(telemetry::MetricDescriptor{
        "series" + std::to_string(s), "units", telemetry::MetricKind::kGauge}));

  dataplane::BlockStreamerConfig streamer_config;
  streamer_config.owner = spec.owner;
  streamer_config.local_endpoint = streamer_endpoint;
  streamer_config.collector = collector.endpoint();
  streamer_config.max_blocks_per_frame = spec.max_blocks_per_frame;
  streamer_config.sampling_seed = spec.seed * 2654435761u + 1;
  dataplane::BlockStreamer streamer(leaf, tsdb, streamer_config);

  util::Rng rng(spec.seed);
  std::int64_t now_ms = 0;
  for (std::uint32_t round = 1; round <= spec.rounds; ++round) {
    for (std::uint32_t i = 0; i < spec.samples_per_round; ++i) {
      now_ms += spec.sample_interval_ms;
      for (telemetry::MetricId id : metrics)
        tsdb.append(id, telemetry::Sample{now_ms, rng.uniform(0.0, 100.0)});
      report.samples_appended += metrics.size();
    }
    if (round % spec.seal_every_rounds == 0)
      for (telemetry::MetricId id : metrics) tsdb.series(id).seal_now();
    streamer.pump();
    // The leaf flushes its bounded queue only when polled; the rounds in
    // between are the induced congestion.
    if (round % spec.poll_every_rounds == 0) {
      leaf.poll_once(0);
      hub.poll_once(0);
    }
  }

  streamer.flush();

  // Drain until the collector caught up with everything the streamer ever
  // put on (or declared off) the wire, bounded by a wall deadline so a
  // routing bug fails the audit instead of hanging the harness.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    leaf.poll_once(1);
    hub.poll_once(1);
    streamer.pump();  // flushes any still-deferred declaration
    const dataplane::CollectorStats& got = collector.stats();
    if (!streamer.announcement_pending() &&
        got.batches == streamer.stats().batches_sent &&
        got.degrade_announcements == streamer.stats().degrade_announcements) {
      report.drained = true;
      break;
    }
  }

  report.streamer = streamer.stats();
  report.collector = collector.stats();
  report.final_mode = streamer.mode();
  return report;
}

std::vector<Violation> check_dataplane(const DataplaneRunReport& report) {
  std::vector<Violation> violations;
  const dataplane::StreamerStats& sent = report.streamer;
  const dataplane::CollectorStats& got = report.collector;

  if (!report.drained) {
    violations.push_back(
        {"D0-drain", "collector never caught up: batches " + fmt(got.batches) +
                         "/" + fmt(sent.batches_sent) + ", announcements " +
                         fmt(got.degrade_announcements) + "/" +
                         fmt(sent.degrade_announcements)});
    return violations;  // the counters below would only echo the stall
  }
  if (got.undeclared_gap_batches != 0)
    violations.push_back({"D1-declared-loss",
                          fmt(got.undeclared_gap_batches) +
                              " missing batches nobody declared"});
  if (got.verify_failures != 0)
    violations.push_back(
        {"D2-verify",
         fmt(got.verify_failures) + " blocks contradicted their descriptors"});
  if (got.out_of_order != 0)
    violations.push_back(
        {"D3-order", fmt(got.out_of_order) + " out-of-order arrivals"});

  const std::uint64_t accounted =
      sent.samples_sent + sent.samples_thinned + sent.samples_dropped;
  if (accounted != report.samples_appended) {
    std::ostringstream os;
    os << "appended " << report.samples_appended << " != sent "
       << sent.samples_sent << " + thinned " << sent.samples_thinned
       << " + dropped " << sent.samples_dropped;
    violations.push_back({"D4-conservation", os.str()});
  }
  if (got.samples != sent.samples_sent)
    violations.push_back({"D4-conservation",
                          "collector stored " + fmt(got.samples) +
                              " samples, streamer sent " +
                              fmt(sent.samples_sent)});
  if (got.samples_declared_dropped != sent.samples_dropped)
    violations.push_back({"D4-conservation",
                          "declared-drop mismatch: collector " +
                              fmt(got.samples_declared_dropped) +
                              ", streamer " + fmt(sent.samples_dropped)});
  if (got.degrade_announcements != sent.degrade_announcements)
    violations.push_back({"D5-announcements",
                          "collector heard " + fmt(got.degrade_announcements) +
                              " of " + fmt(sent.degrade_announcements) +
                              " announcements"});
  // Loss of any kind requires a declaration on record.
  if ((sent.samples_dropped > 0 || sent.samples_thinned > 0) &&
      got.degrade_announcements == 0)
    violations.push_back(
        {"D5-announcements", "loss occurred but no announcement ever landed"});
  return violations;
}

}  // namespace dust::check
