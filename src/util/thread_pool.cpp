#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace dust::util {

namespace {

std::mutex g_pool_observer_mutex;
PoolObserver g_pool_observer;

void notify_pool_observer(std::uint64_t chunks, std::uint64_t steals) {
  std::lock_guard lock(g_pool_observer_mutex);
  if (g_pool_observer) g_pool_observer(chunks, steals);
}

}  // namespace

void set_pool_observer(PoolObserver observer) {
  std::lock_guard lock(g_pool_observer_mutex);
  g_pool_observer = std::move(observer);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    futures.push_back(submit([&fn, i] { fn(i); }));
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, std::size_t chunk, std::size_t max_workers,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t chunks = (n + chunk - 1) / chunk;
  std::size_t workers = std::min(size(), chunks);
  if (max_workers != 0) workers = std::min(workers, max_workers);
  workers = std::max<std::size_t>(workers, 1);

  // Shared claiming cursor: each participating worker loops, grabbing the
  // next unclaimed chunk. A chunk whose static block owner (an even split
  // of the chunk range across workers) is a different worker counts as a
  // steal — the dynamic schedule silently absorbing imbalance is exactly
  // what dust_pool_steal makes visible.
  std::atomic<std::size_t> cursor{0};
  std::uint64_t region_chunks = 0;
  std::uint64_t region_steals = 0;
  const auto drain = [&, this](std::size_t worker_index) {
    for (;;) {
      const std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      chunk_tasks_.fetch_add(1, std::memory_order_relaxed);
      const std::size_t owner = c * workers / chunks;
      if (owner != worker_index)
        chunk_steals_.fetch_add(1, std::memory_order_relaxed);
      const std::size_t begin = c * chunk;
      fn(begin, std::min(begin + chunk, n));
    }
  };

  if (workers == 1) {
    // Inline serial path: ascending chunk order on the calling thread.
    for (std::size_t c = 0; c < chunks; ++c) {
      chunk_tasks_.fetch_add(1, std::memory_order_relaxed);
      const std::size_t begin = c * chunk;
      fn(begin, std::min(begin + chunk, n));
    }
    region_chunks = chunks;
    notify_pool_observer(region_chunks, region_steals);
    return;
  }

  const std::uint64_t tasks_before = chunk_tasks();
  const std::uint64_t steals_before = chunk_steals();
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    futures.push_back(submit([&drain, w] { drain(w); }));
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  region_chunks = chunk_tasks() - tasks_before;
  region_steals = chunk_steals() - steals_before;
  notify_pool_observer(region_chunks, region_steals);
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool(std::size_t threads) {
  static ThreadPool pool([threads] {
    if (threads != 0) return threads;
    if (const char* env = std::getenv("DUST_THREADS")) {
      const unsigned long parsed = std::strtoul(env, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return std::size_t{0};  // ctor resolves to hardware concurrency
  }());
  return pool;
}

}  // namespace dust::util
