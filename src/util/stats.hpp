// Descriptive statistics helpers used across benches and the simulator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dust::util {

/// Streaming accumulator (Welford) for mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample using linear interpolation between order statistics.
/// `q` in [0, 100]. Copies and sorts; use for result reporting, not hot paths.
double percentile(std::span<const double> sample, double q);

double mean(std::span<const double> sample);
double stddev(std::span<const double> sample);

/// Least-squares fit y = a + b*x. Returns {a, b}. Requires >= 2 points.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Fit y = c * x^p by log-log linear regression (all inputs must be > 0).
/// Returns {log(c) as intercept-equivalent c, exponent p, r^2 in log space}.
struct PowerFit {
  double coefficient = 0.0;
  double exponent = 0.0;
  double r_squared = 0.0;
};
PowerFit power_fit(std::span<const double> x, std::span<const double> y);

/// Simple fixed-width histogram over [lo, hi) with `bins` buckets; values
/// outside the range clamp into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_low(std::size_t bucket) const noexcept;
  [[nodiscard]] double bucket_high(std::size_t bucket) const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dust::util
