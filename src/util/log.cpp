#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace dust::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;
EmitObserver g_emit_observer;  // guarded by g_emit_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char ch : name) lower.push_back(static_cast<char>(std::tolower(ch)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void init_log_level_from_env() {
  if (const char* env = std::getenv("DUST_LOG")) set_log_level(parse_log_level(env));
}

void set_emit_observer(EmitObserver observer) {
  std::lock_guard lock(g_emit_mutex);
  g_emit_observer = std::move(observer);
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_emit_mutex);
  if (g_emit_observer) g_emit_observer(level);
  std::cerr << "[dust:" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace dust::util
