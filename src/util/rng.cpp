#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace dust::util {

double Rng::sqrt_ratio(double s) noexcept {
  return std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::exponential(double rate) noexcept {
  // Inverse-CDF; uniform() < 1 so log argument is in (0, 1].
  return -std::log(1.0 - uniform()) / rate;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_indices: k > n");
  // Partial Fisher-Yates over an index vector; O(n) setup, fine for the
  // network sizes in this library (<= hundreds of thousands of nodes).
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace dust::util
