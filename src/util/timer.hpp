// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace dust::util {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  clock::time_point start_;
};

}  // namespace dust::util
