// Console table / CSV emitters for the figure-reproduction benches.
#pragma once

#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace dust::util {

/// A cell is a string, integer, or double (printed with fixed precision).
using Cell = std::variant<std::string, std::int64_t, double>;

/// Column-aligned text table with a title, printed to an ostream.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& set_precision(int digits) {
    precision_ = digits;
    return *this;
  }

  Table& header(std::vector<std::string> names);
  Table& row(std::vector<Cell> cells);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  [[nodiscard]] std::string format(const Cell& cell) const;

  std::string title_;
  int precision_ = 4;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace dust::util
