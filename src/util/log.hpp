// Minimal leveled logger.
//
// The library itself logs sparingly (managers log placement decisions at
// Info); benches/tests set the level via set_level or the DUST_LOG env var
// (trace|debug|info|warn|error|off).
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace dust::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parse "trace"/"debug"/... (case-insensitive); unknown -> kInfo.
LogLevel parse_log_level(const std::string& name) noexcept;

/// Initialize the level from the DUST_LOG environment variable once.
void init_log_level_from_env();

/// Called (under the emit lock) for every emitted line, with its level.
/// dust::obs installs a counter here (obs/log_metrics.hpp) so log volume is
/// observable without util depending on the registry. nullptr clears it.
using EmitObserver = std::function<void(LogLevel)>;
void set_emit_observer(EmitObserver observer);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: LOG_AT(LogLevel::kInfo) << "placed " << n;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace dust::util

#define DUST_LOG(level) ::dust::util::LogLine(level)
#define DUST_LOG_TRACE DUST_LOG(::dust::util::LogLevel::kTrace)
#define DUST_LOG_DEBUG DUST_LOG(::dust::util::LogLevel::kDebug)
#define DUST_LOG_INFO DUST_LOG(::dust::util::LogLevel::kInfo)
#define DUST_LOG_WARN DUST_LOG(::dust::util::LogLevel::kWarn)
#define DUST_LOG_ERROR DUST_LOG(::dust::util::LogLevel::kError)
