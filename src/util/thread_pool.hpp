// Fixed-size worker pool for parallel iteration sweeps.
//
// The benches average hundreds of independent optimization iterations; the
// pool runs them across hardware threads. Work items must be independent —
// give each its own Rng stream via Rng::fork.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dust::util {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n), blocking until all complete.
  /// Exceptions from work items are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool for benches/examples (lazily constructed).
ThreadPool& global_pool();

}  // namespace dust::util
