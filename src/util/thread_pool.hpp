// Fixed-size worker pool for parallel iteration sweeps.
//
// The benches average hundreds of independent optimization iterations; the
// pool runs them across hardware threads. Work items must be independent —
// give each its own Rng stream via Rng::fork.
//
// Two parallel primitives:
//   * parallel_for       — one queued task per index; convenient for coarse
//                          independent iterations (bench sweeps).
//   * parallel_for_chunks — [0, n) split into fixed chunks claimed from a
//                          shared cursor by at most `max_workers` workers;
//                          one queued task per *worker*, so the per-index
//                          overhead is a relaxed fetch_add instead of a
//                          heap-allocated task. Built for the placement
//                          row-fill hot path (DESIGN.md §13): each worker
//                          reuses its own thread_local scratch (NUMA-
//                          friendly first-touch), and chunk claims beyond a
//                          worker's static share are counted as steals so
//                          load imbalance is observable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dust::util {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n), blocking until all complete.
  /// Exceptions from work items are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Run fn(begin, end) over [0, n) in chunks of `chunk` indices (>= 1),
  /// using at most `max_workers` pool workers (0 = all). Workers claim
  /// chunks from a shared atomic cursor — no allocation per chunk, one
  /// queued task per participating worker. With max_workers == 1 (or a
  /// single-chunk sweep) the chunks run inline on the calling thread in
  /// ascending order, which is exactly the serial loop.
  /// Exceptions from chunks are rethrown (the first one encountered).
  void parallel_for_chunks(std::size_t n, std::size_t chunk,
                           std::size_t max_workers,
                           const std::function<void(std::size_t, std::size_t)>& fn);

  /// Cumulative chunk executions / chunk claims that crossed workers (a
  /// chunk whose static block owner is another worker), relaxed counters.
  [[nodiscard]] std::uint64_t chunk_tasks() const noexcept {
    return chunk_tasks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t chunk_steals() const noexcept {
    return chunk_steals_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> chunk_tasks_{0};
  std::atomic<std::uint64_t> chunk_steals_{0};
};

/// Pool-activity observer (util lives below obs in the layering, so the
/// registry bridge in obs/pool_metrics installs a callback instead of the
/// pool linking against it). Invoked once per parallel_for_chunks region,
/// from the calling thread, with that region's chunk/steal deltas.
using PoolObserver = std::function<void(std::uint64_t chunks,
                                        std::uint64_t steals)>;
void set_pool_observer(PoolObserver observer);

/// Process-wide pool, lazily constructed on first use. The first call fixes
/// the worker count: the `threads` argument when nonzero, else the
/// DUST_THREADS environment variable, else hardware concurrency. Later
/// calls return the same pool regardless of the argument.
ThreadPool& global_pool(std::size_t threads = 0);

}  // namespace dust::util
