// Deterministic random number generation for reproducible experiments.
//
// All randomness in the library flows through Rng so that every experiment is
// reproducible bit-for-bit given a seed. The generator is xoshiro256**, seeded
// via splitmix64 as recommended by its authors; independent streams for
// parallel iteration sweeps are derived with `fork(stream_id)`.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace dust::util {

/// splitmix64 step; used for seeding and stream derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedu) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent stream for parallel work item `stream_id`.
  /// Different (seed, stream_id) pairs give statistically independent streams.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept {
    std::uint64_t sm = state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL + 1);
    Rng child(0);
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection (Lemire-style).
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    // Rejection sampling on the top bits keeps the distribution exact.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = sqrt_ratio(s);
    cached_ = v * factor;
    have_cached_ = true;
    return u * factor;
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with given rate (lambda).
  double exponential(double rate) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrt_ratio(double s) noexcept;

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace dust::util
