#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dust::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> sample, double q) {
  if (sample.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 100.0) throw std::invalid_argument("percentile: q out of range");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean(std::span<const double> sample) {
  RunningStats s;
  for (double x : sample) s.add(x);
  return s.mean();
}

double stddev(std::span<const double> sample) {
  RunningStats s;
  for (double x : sample) s.add(x);
  return s.stddev();
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2)
    throw std::invalid_argument("linear_fit: need >= 2 equal-length samples");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("linear_fit: degenerate x");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += r * r;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

PowerFit power_fit(std::span<const double> x, std::span<const double> y) {
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0)
      throw std::invalid_argument("power_fit: inputs must be positive");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  const LinearFit fit = linear_fit(lx, ly);
  return PowerFit{std::exp(fit.intercept), fit.slope, fit.r_squared};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(lo < hi))
    throw std::invalid_argument("Histogram: invalid range or bins");
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bucket = static_cast<std::ptrdiff_t>((x - lo_) / width);
  bucket = std::clamp<std::ptrdiff_t>(bucket, 0,
                                      static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bucket)];
  ++total_;
}

double Histogram::bucket_low(std::size_t bucket) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bucket);
}

double Histogram::bucket_high(std::size_t bucket) const noexcept {
  return bucket_low(bucket + 1);
}

}  // namespace dust::util
