#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dust::util {

Table& Table::header(std::vector<std::string> names) {
  header_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<Cell> cells) {
  if (!header_.empty() && cells.size() != header_.size())
    throw std::invalid_argument("Table: row width != header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::format(const Cell& cell) const {
  if (const auto* text = std::get_if<std::string>(&cell)) return *text;
  if (const auto* integer = std::get_if<std::int64_t>(&cell))
    return std::to_string(*integer);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<std::size_t> widths(columns, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    auto& out = cells.emplace_back();
    out.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      out.push_back(format(row[c]));
      if (c < widths.size()) widths[c] = std::max(widths[c], out.back().size());
    }
  }
  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : cells) print_row(row);
  os.flush();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::string& field, bool last) {
    const bool quote = field.find_first_of(",\"\n") != std::string::npos;
    if (quote) {
      os << '"';
      for (char ch : field) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << field;
    }
    os << (last ? '\n' : ',');
  };
  if (!header_.empty()) {
    for (std::size_t c = 0; c < header_.size(); ++c)
      emit(header_[c], c + 1 == header_.size());
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      emit(format(row[c]), c + 1 == row.size());
  }
  os.flush();
}

}  // namespace dust::util
