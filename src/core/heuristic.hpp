// Heuristic min-cost offload (paper Algorithm 1) and the Heuristic Failure
// Rate metric (Eq. 4).
//
// For every busy node the candidate set is restricted to offload-candidates
// within `radius` hops (the paper fixes radius = 1; exposing it as a knob is
// the ablation of bench_abl_heuristic_radius). Each busy node then solves its
// private single-source min-cost assignment greedily cheapest-first — optimal
// for a single supply row — against the *shared* remaining capacities, so
// earlier busy nodes can consume a common neighbour's spare capacity.
// Whatever cannot be placed within the radius is Cse_i, and
//   HFR(%) = Σ Cse_i / Σ Cs_i × 100.
#pragma once

#include <cstdint>

#include "core/placement.hpp"

namespace dust::core {

struct HeuristicOptions {
  std::uint32_t radius = 1;  ///< paper Algorithm 1: max-hop = 1
  /// Busy-node processing order. The paper iterates the busy set directly;
  /// kLargestFirst is a fairness ablation (big shedders pick first).
  enum class Order { kNodeId, kLargestExcessFirst } order = Order::kNodeId;
  /// Candidate packing within one busy node's solve. kCheapestFirst is
  /// cost-optimal for that node (paper behaviour); kLargestCapacityFirst
  /// drains big bins first, leaving small neighbours usable for later busy
  /// nodes — it can trade objective for a lower HFR under contention.
  enum class Packing { kCheapestFirst, kLargestCapacityFirst } packing =
      Packing::kCheapestFirst;
};

struct HeuristicResult {
  std::vector<Assignment> assignments;
  double objective = 0.0;       ///< Σ x_ij · Tr(i,j) over chosen links
  double total_cs = 0.0;        ///< Σ Cs_i
  double total_cse = 0.0;       ///< Σ Cse_i (failed to place)
  std::size_t busy_count = 0;
  std::size_t fully_offloaded = 0;
  std::size_t partially_offloaded = 0;  ///< placed some but not all
  std::size_t failed = 0;               ///< placed nothing
  double solve_seconds = 0.0;

  /// HFR(%) per Eq. 4; 0 when there was nothing to offload.
  [[nodiscard]] double hfr_percent() const noexcept {
    return total_cs > 0 ? total_cse / total_cs * 100.0 : 0.0;
  }
  [[nodiscard]] bool complete() const noexcept { return total_cse <= 1e-9; }
};

class HeuristicEngine {
 public:
  explicit HeuristicEngine(HeuristicOptions options = {}) : options_(options) {}

  [[nodiscard]] const HeuristicOptions& options() const noexcept {
    return options_;
  }

  [[nodiscard]] HeuristicResult run(const Nmdb& nmdb) const;

 private:
  HeuristicOptions options_;
};

}  // namespace dust::core
