#include "core/multi_resource.hpp"

#include <algorithm>
#include <stdexcept>

#include "solver/simplex.hpp"
#include "util/timer.hpp"

namespace dust::core {

double MultiResourceProblem::total_excess() const {
  double total = 0.0;
  for (double v : cs_cpu) total += v;
  return total;
}

MultiResourceProblem build_multi_resource_problem(
    const Nmdb& nmdb, const std::vector<double>& memory_utilization_percent,
    const std::vector<double>& memory_per_cpu_unit,
    const MultiResourceOptions& options) {
  if (memory_utilization_percent.size() != nmdb.node_count() ||
      memory_per_cpu_unit.size() != nmdb.node_count())
    throw std::invalid_argument(
        "build_multi_resource_problem: per-node vector size mismatch");
  const PlacementProblem base =
      build_placement_problem(nmdb, options.placement);
  MultiResourceProblem problem;
  problem.busy = base.busy;
  problem.candidates = base.candidates;
  problem.cs_cpu = base.cs;
  problem.cd_cpu = base.cd;
  problem.trmin = base.trmin;
  problem.mem_ratio.reserve(base.busy.size());
  for (graph::NodeId b : base.busy) {
    const double ratio = memory_per_cpu_unit[b];
    if (ratio < 0)
      throw std::invalid_argument("multi-resource: negative memory ratio");
    problem.mem_ratio.push_back(ratio);
  }
  problem.cd_mem.reserve(base.candidates.size());
  for (graph::NodeId o : base.candidates)
    problem.cd_mem.push_back(
        std::max(0.0, options.mem_co_max - memory_utilization_percent[o]));
  return problem;
}

MultiResourceResult solve_multi_resource(const MultiResourceProblem& problem) {
  MultiResourceResult result;
  util::Timer timer;
  const std::size_t m = problem.busy.size();
  const std::size_t n = problem.candidates.size();
  if (m == 0) {
    result.status = solver::Status::kOptimal;
    return result;
  }
  solver::LinearProgram lp;
  for (std::size_t cell = 0; cell < m * n; ++cell) {
    if (problem.trmin[cell] == solver::kInfinity)
      lp.add_variable(0.0, 0.0, 0.0);
    else
      lp.add_variable(0.0, solver::kInfinity, problem.trmin[cell]);
  }
  for (std::size_t bi = 0; bi < m; ++bi) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t cj = 0; cj < n; ++cj) terms.emplace_back(bi * n + cj, 1.0);
    lp.add_constraint(std::move(terms), solver::Sense::kEqual,
                      problem.cs_cpu[bi]);
  }
  for (std::size_t cj = 0; cj < n; ++cj) {
    std::vector<std::pair<std::size_t, double>> cpu_terms, mem_terms;
    for (std::size_t bi = 0; bi < m; ++bi) {
      cpu_terms.emplace_back(bi * n + cj, 1.0);
      mem_terms.emplace_back(bi * n + cj, problem.mem_ratio[bi]);
    }
    lp.add_constraint(std::move(cpu_terms), solver::Sense::kLessEqual,
                      problem.cd_cpu[cj]);
    lp.add_constraint(std::move(mem_terms), solver::Sense::kLessEqual,
                      problem.cd_mem[cj]);
  }
  const solver::Solution s = solver::solve_simplex(lp);
  result.status = s.status;
  if (s.optimal()) {
    result.objective = s.objective;
    for (std::size_t bi = 0; bi < m; ++bi) {
      for (std::size_t cj = 0; cj < n; ++cj) {
        const double amount = s.values[bi * n + cj];
        if (amount <= 1e-9) continue;
        result.assignments.push_back(Assignment{problem.busy[bi],
                                                problem.candidates[cj], amount,
                                                problem.trmin[bi * n + cj]});
      }
    }
  }
  result.solve_seconds = timer.seconds();
  return result;
}

double multi_resource_violation(const MultiResourceProblem& problem,
                                const MultiResourceResult& result) {
  const std::size_t m = problem.busy.size();
  const std::size_t n = problem.candidates.size();
  double worst = 0.0;
  std::vector<double> shipped(m, 0.0), cpu(n, 0.0), mem(n, 0.0);
  for (const Assignment& a : result.assignments) {
    if (a.amount < 0) worst = std::max(worst, -a.amount);
    for (std::size_t bi = 0; bi < m; ++bi) {
      if (problem.busy[bi] != a.from) continue;
      shipped[bi] += a.amount;
      for (std::size_t cj = 0; cj < n; ++cj) {
        if (problem.candidates[cj] != a.to) continue;
        cpu[cj] += a.amount;
        mem[cj] += a.amount * problem.mem_ratio[bi];
      }
    }
  }
  for (std::size_t bi = 0; bi < m; ++bi)
    worst = std::max(worst, std::abs(shipped[bi] - problem.cs_cpu[bi]));
  for (std::size_t cj = 0; cj < n; ++cj) {
    worst = std::max(worst, cpu[cj] - problem.cd_cpu[cj]);
    worst = std::max(worst, mem[cj] - problem.cd_mem[cj]);
  }
  return worst;
}

}  // namespace dust::core
