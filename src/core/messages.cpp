#include "core/messages.hpp"

namespace dust::core {

std::string manager_endpoint() { return "dust-manager"; }

std::string client_endpoint(graph::NodeId node) {
  return "dust-client-" + std::to_string(node);
}

sim::Priority message_priority(const Message& message) {
  return std::holds_alternative<TelemetryDataMsg>(message)
             ? sim::Priority::kLow
             : sim::Priority::kNormal;
}

const char* message_kind(const Message& message) {
  return std::visit(
      [](const auto& msg) -> const char* {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, OffloadCapableMsg>) {
          return "offload_capable";
        } else if constexpr (std::is_same_v<T, AckMsg>) {
          return "ack";
        } else if constexpr (std::is_same_v<T, StatMsg>) {
          return "stat";
        } else if constexpr (std::is_same_v<T, OffloadRequestMsg>) {
          return "offload_request";
        } else if constexpr (std::is_same_v<T, OffloadAckMsg>) {
          return "offload_ack";
        } else if constexpr (std::is_same_v<T, AgentTransferMsg>) {
          return "agent_transfer";
        } else if constexpr (std::is_same_v<T, TelemetryDataMsg>) {
          return "telemetry_data";
        } else if constexpr (std::is_same_v<T, KeepaliveMsg>) {
          return "keepalive";
        } else if constexpr (std::is_same_v<T, RepMsg>) {
          return "rep";
        } else {
          static_assert(std::is_same_v<T, ReleaseMsg>);
          return "release";
        }
      },
      message);
}

}  // namespace dust::core
