#include "core/replay.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dust::core {

std::vector<LoadUpdate> load_trace(std::istream& in) {
  std::vector<LoadUpdate> trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    // Strip whitespace-only lines.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream fields(line);
    LoadUpdate update;
    char comma = ',';
    if (!(fields >> update.time_ms >> comma) || comma != ',' ||
        !(fields >> update.node >> comma) || comma != ',' ||
        !(fields >> update.utilization_percent)) {
      throw std::invalid_argument(
          "trace line " + std::to_string(line_no) +
          ": expected <time_ms>,<node>,<utilization>[,<data_mb>]");
    }
    if (fields >> comma && comma == ',') {
      if (!(fields >> update.monitoring_data_mb))
        throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                    ": bad data_mb field");
    }
    if (update.utilization_percent < 0 || update.utilization_percent > 100)
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": utilization out of [0,100]");
    trace.push_back(update);
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const LoadUpdate& a, const LoadUpdate& b) {
                     return a.time_ms < b.time_ms;
                   });
  return trace;
}

ReplayReport replay_trace(Nmdb& nmdb, const std::vector<LoadUpdate>& trace,
                          const ReplayOptions& options) {
  if (options.placement_period_ms <= 0)
    throw std::invalid_argument("replay_trace: non-positive period");
  ReplayReport report;
  if (trace.empty()) return report;

  const OptimizationEngine engine([&options] {
    OptimizerOptions opt = options.optimizer;
    opt.allow_partial = true;  // traces routinely exceed capacity
    return opt;
  }());

  std::size_t cursor = 0;
  std::int64_t next_cycle = trace.front().time_ms + options.placement_period_ms;
  const std::int64_t end_ms = trace.back().time_ms;

  auto run_cycle = [&]() {
    ++report.placement_cycles;
    PlacementProblem problem;
    const PlacementResult result =
        engine.run(nmdb, options.cycle_observer ? &problem : nullptr);
    if (options.cycle_observer) options.cycle_observer(problem, result);
    if (!result.assignments.empty()) {
      ++report.cycles_with_offloads;
      report.total_offloaded += result.offloaded_total();
      if (options.apply_plans) apply_assignments(nmdb, result.assignments);
    }
    report.total_unplaced += result.unplaced;
    for (graph::NodeId v = 0; v < nmdb.node_count(); ++v) {
      ++report.node_cycles;
      if (nmdb.network().node_utilization(v) >
          nmdb.thresholds(v).c_max + 1e-9)
        ++report.overloaded_node_cycles;
    }
  };

  while (next_cycle <= end_ms + options.placement_period_ms) {
    // Apply every update strictly before this cycle.
    while (cursor < trace.size() && trace[cursor].time_ms < next_cycle) {
      const LoadUpdate& update = trace[cursor];
      if (update.node >= nmdb.node_count())
        throw std::invalid_argument("replay_trace: node out of range");
      nmdb.network().set_node_utilization(update.node,
                                          update.utilization_percent);
      if (update.monitoring_data_mb >= 0)
        nmdb.network().set_monitoring_data_mb(update.node,
                                              update.monitoring_data_mb);
      ++report.updates_applied;
      ++cursor;
    }
    run_cycle();
    if (cursor >= trace.size()) break;  // all data consumed and measured
    next_cycle += options.placement_period_ms;
  }
  return report;
}

}  // namespace dust::core
