// Monitoring placement problem (paper §IV): builds the min-cost offload
// model from the NMDB snapshot — busy set V_b, candidate set V_o, excess
// loads Cs_i, spare capacities Cd_j, and the Trmin(i,j) matrix from the
// Eq. 1-2 response-time evaluation over hop-bounded controllable routes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/nmdb.hpp"
#include "net/response_cache.hpp"
#include "net/response_time.hpp"
#include "solver/lp.hpp"

namespace dust::core {

struct PlacementOptions {
  /// Max-hop bound on controllable routes (0 = unbounded).
  std::uint32_t max_hops = 0;
  /// Paper-faithful exhaustive enumeration vs. fast DP (see DESIGN.md).
  net::EvaluatorMode evaluator = net::EvaluatorMode::kEnumerate;
  /// Safety cap per source in enumerate mode (0 = none).
  std::size_t max_paths_per_source = 0;
  /// Compute Trmin rows on the global thread pool: busy rows are split into
  /// chunks claimed by pool workers (util::ThreadPool::parallel_for_chunks),
  /// each worker reusing its own thread_local evaluation scratch. Placements
  /// are bit-identical to the serial fill at any worker count (rows are
  /// disjoint; per-chunk work tallies are reduced serially in chunk order).
  bool parallel_trmin = false;
  /// Worker cap for the parallel row fill (0 = the whole pool). The pool
  /// itself is sized once at first use via DUST_THREADS or
  /// util::global_pool's argument; this knob narrows one build below that.
  std::size_t solver_threads = 0;
  /// Incremental pipeline (DESIGN.md §8): when set, Trmin rows are served
  /// from / recorded into this dirty-aware cache instead of evaluated from
  /// scratch. The caller owns the cache and must call begin_cycle() on it
  /// before each build. Null = always evaluate fresh (the default).
  net::ResponseTimeCache* response_cache = nullptr;
  /// Trust-weighted placement (DESIGN.md §14): candidates with
  /// Nmdb::trust below `trust_exclude_below` are dropped from V_o, and the
  /// Trmin column of every remaining candidate j is multiplied by
  ///   w_j = 1 + trust_cost_penalty * (1 - trust_j)
  /// after the row fill (the cache keeps unweighted rows, so toggling trust
  /// never pollutes it). w_j is exactly 1.0 at trust 1.0, so a fully trusted
  /// fleet builds a bit-identical problem with weighting on or off.
  bool trust_weighting = false;
  double trust_cost_penalty = 4.0;
  double trust_exclude_below = 0.5;
};

/// The built model, ready for any backend in optimizer.hpp.
struct PlacementProblem {
  std::vector<graph::NodeId> busy;        ///< V_b
  std::vector<graph::NodeId> candidates;  ///< V_o
  std::vector<double> cs;                 ///< Cs_i, aligned with busy
  std::vector<double> cd;                 ///< Cd_j, aligned with candidates
  /// Trmin seconds, row-major busy x candidates; kInfinity = no route
  /// within the hop bound.
  std::vector<double> trmin;
  /// Platform capacity factors (heterogeneity extension): a unit of load
  /// from busy i consumes busy_factor[i]/candidate_factor[j] units of
  /// destination j's capacity. All 1.0 under the paper's homogeneity
  /// assumption.
  std::vector<double> busy_factor;
  std::vector<double> candidate_factor;
  std::size_t paths_explored = 0;  ///< total enumeration work (Figs 8/10)
  bool truncated = false;          ///< a source hit max_paths_per_source

  [[nodiscard]] double trmin_at(std::size_t bi, std::size_t cj) const {
    return trmin.at(bi * candidates.size() + cj);
  }
  /// Destination capacity consumed per unit of load shipped from bi to cj.
  /// Problems built by hand may leave the factor vectors empty (homogeneous).
  [[nodiscard]] double capacity_coefficient(std::size_t bi,
                                            std::size_t cj) const {
    const double from = busy_factor.empty() ? 1.0 : busy_factor.at(bi);
    const double to = candidate_factor.empty() ? 1.0 : candidate_factor.at(cj);
    return from / to;
  }
  [[nodiscard]] bool heterogeneous() const noexcept;
  [[nodiscard]] double total_excess() const;
  [[nodiscard]] double total_spare() const;
};

PlacementProblem build_placement_problem(const Nmdb& nmdb,
                                         const PlacementOptions& options);

/// One flow of offloaded load: `amount` capacity-percent from a busy node to
/// a destination, at unit cost `trmin_seconds`.
struct Assignment {
  graph::NodeId from = graph::kInvalidNode;
  graph::NodeId to = graph::kInvalidNode;
  double amount = 0.0;
  double trmin_seconds = 0.0;
};

struct PlacementResult {
  solver::Status status = solver::Status::kInfeasible;
  double objective = 0.0;  ///< β = Σ x_ij · Trmin(i,j)
  std::vector<Assignment> assignments;
  double build_seconds = 0.0;
  double solve_seconds = 0.0;
  std::size_t paths_explored = 0;
  std::size_t solver_iterations = 0;
  /// Load that could not be placed (only nonzero for partial-mode solves).
  double unplaced = 0.0;

  [[nodiscard]] bool optimal() const noexcept {
    return status == solver::Status::kOptimal;
  }
  [[nodiscard]] double offloaded_total() const;
  /// Amount shed by one busy node across all its assignments.
  [[nodiscard]] double offloaded_from(graph::NodeId node) const;
  /// Amount absorbed by one destination.
  [[nodiscard]] double absorbed_by(graph::NodeId node) const;
};

/// Check a result against the problem's constraints (3a/3b); returns the
/// maximum violation (0 = feasible). Used by tests and the orchestrator.
double placement_violation(const PlacementProblem& problem,
                           const PlacementResult& result);

/// What-if: apply a plan to the NMDB's utilization state — each origin
/// drops by its shipped amount, each destination rises by the
/// platform-factor-weighted amount. This is the network state the manager
/// expects after the offload completes; the invariant (tested) is that no
/// destination crosses COmax and every fully-shed origin lands at Cmax.
void apply_assignments(Nmdb& nmdb, std::span<const Assignment> plan);

}  // namespace dust::core
