// DUST control-plane protocol (paper §III-B / Fig. 3).
//
// Wire flow:
//   client -> manager : OffloadCapableMsg (join handshake, '1'/'0')
//   manager -> client : AckMsg (sets the STAT Update-Interval Time)
//   client -> manager : StatMsg (periodic resource/monitoring state)
//   manager -> client : OffloadRequestMsg (placement decision, to the busy
//                        node and to each chosen destination)
//   client -> manager : OffloadAckMsg
//   busy   -> dest    : AgentTransferMsg (the moved monitoring workload)
//   busy   -> dest    : TelemetryDataMsg (remote snapshots; QoS kLow)
//   dest   -> manager : KeepaliveMsg (while hosting)
//   manager-> client  : RepMsg (failed destination replaced by a replica)
//   manager-> busy    : ReleaseMsg (reclaim: resources freed up again)
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "graph/graph.hpp"
#include "obs/trace.hpp"
#include "sim/priority.hpp"
#include "telemetry/agent.hpp"

namespace dust::core {

// Causal tracing (DESIGN.md §10): protocol messages that participate in an
// offload chain carry the TraceContext of the span that caused them, always
// as the *last* member (existing aggregate initializers keep working; the
// context default-initializes to invalid). STAT roots a trace; the solve /
// Offload-Request / Offload-ACK / REP spans extend it across processes.

struct OffloadCapableMsg {
  graph::NodeId node = graph::kInvalidNode;
  bool capable = true;  ///< '1' participates, '0' = none-offloading
  /// Device persona (§IV-A): platform capacity factor relative to the
  /// baseline switch; the manager stores it in the NMDB for heterogeneous
  /// placement. 1.0 = homogeneous default.
  double platform_factor = 1.0;
};

struct AckMsg {
  graph::NodeId node = graph::kInvalidNode;
  std::int64_t update_interval_ms = 60000;  ///< STAT Update-Interval Time
};

struct StatMsg {
  graph::NodeId node = graph::kInvalidNode;
  double utilization_percent = 0.0;
  double monitoring_data_mb = 0.0;
  std::uint32_t agent_count = 0;
  /// Surviving fraction of raw telemetry under data-plane degradation
  /// (1.0 = full fidelity). monitoring_data_mb is already scaled by this;
  /// the manager reads it so re-placement can tell "load shrank" apart from
  /// "load is being sampled away under backpressure".
  double telemetry_keep_fraction = 1.0;
  obs::TraceContext trace{};  ///< root of the offload causal chain
};

struct OffloadRequestMsg {
  std::uint64_t request_id = 0;
  graph::NodeId busy = graph::kInvalidNode;
  graph::NodeId destination = graph::kInvalidNode;
  double amount = 0.0;  ///< capacity-percent to shed along this assignment
  /// How many of the busy node's monitoring agents this share represents
  /// (manager computes round(agents * amount / Cs)).
  std::uint32_t agents_to_move = 0;
  /// The controllable route the manager selected (node sequence from busy to
  /// destination, achieving Trmin within the configured max-hop bound).
  std::vector<graph::NodeId> route;
  obs::TraceContext trace{};  ///< offload_request span (child of solve)
};

struct OffloadAckMsg {
  std::uint64_t request_id = 0;
  graph::NodeId node = graph::kInvalidNode;
  bool accepted = true;
  obs::TraceContext trace{};  ///< offload_ack span (child of the request)
};

/// The moved workload: agents (by value) re-hosted at the destination.
struct AgentTransferMsg {
  std::uint64_t request_id = 0;
  graph::NodeId owner = graph::kInvalidNode;
  std::vector<telemetry::MonitorAgent> agents;
  obs::TraceContext trace{};  ///< agent_transfer span (child of the request)
};

/// Remote monitoring data: the busy node streams snapshots of itself to the
/// destination hosting its agents. QoS class kLow (§III-C).
struct TelemetryDataMsg {
  graph::NodeId owner = graph::kInvalidNode;
  telemetry::DeviceSnapshot snapshot;
};

struct KeepaliveMsg {
  graph::NodeId node = graph::kInvalidNode;
  std::uint64_t seq = 0;
};

/// Replica substitution after a destination failure (§III-C).
struct RepMsg {
  graph::NodeId failed = graph::kInvalidNode;
  graph::NodeId replacement = graph::kInvalidNode;
  graph::NodeId busy = graph::kInvalidNode;
  std::uint64_t request_id = 0;  ///< new request covering the moved share
  double amount = 0.0;
  obs::TraceContext trace{};  ///< rep span (extends the original chain)
};

/// Busy node's load dropped below Cmax again: reclaim local monitoring.
struct ReleaseMsg {
  graph::NodeId busy = graph::kInvalidNode;
  graph::NodeId destination = graph::kInvalidNode;
};

using Message =
    std::variant<OffloadCapableMsg, AckMsg, StatMsg, OffloadRequestMsg,
                 OffloadAckMsg, AgentTransferMsg, TelemetryDataMsg,
                 KeepaliveMsg, RepMsg, ReleaseMsg>;

/// Endpoint naming convention on the simulated transport.
[[nodiscard]] std::string manager_endpoint();
[[nodiscard]] std::string client_endpoint(graph::NodeId node);

/// Canonical QoS class of a protocol message (§III-C): offloaded monitoring
/// data (TelemetryDataMsg) rides kLow and is discardable under congestion;
/// every control-plane message rides kNormal. The single source of truth for
/// send sites and wire transports, so a payload's priority can never
/// silently default back to kNormal on one path but not another.
[[nodiscard]] sim::Priority message_priority(const Message& message);

/// Short flight-recorder / wire label of a message ("stat",
/// "offload_request", ...). Stable across transports.
[[nodiscard]] const char* message_kind(const Message& message);

}  // namespace dust::core
