#include "core/placement.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace dust::core {

double PlacementProblem::total_excess() const {
  double total = 0.0;
  for (double v : cs) total += v;
  return total;
}

bool PlacementProblem::heterogeneous() const noexcept {
  for (double f : busy_factor)
    if (f != 1.0) return true;
  for (double f : candidate_factor)
    if (f != 1.0) return true;
  return false;
}

double PlacementProblem::total_spare() const {
  double total = 0.0;
  for (double v : cd) total += v;
  return total;
}

PlacementProblem build_placement_problem(const Nmdb& nmdb,
                                         const PlacementOptions& options) {
  PlacementProblem problem;
  nmdb.busy_nodes_into(problem.busy);
  nmdb.candidate_nodes_into(problem.candidates);
  if (options.trust_weighting)
    std::erase_if(problem.candidates, [&](graph::NodeId o) {
      return nmdb.trust(o) < options.trust_exclude_below;
    });
  const net::NetworkState& net = nmdb.network();

  problem.cs.reserve(problem.busy.size());
  for (graph::NodeId b : problem.busy)
    problem.cs.push_back(
        nmdb.thresholds(b).excess_load(net.node_utilization(b)));
  problem.cd.reserve(problem.candidates.size());
  for (graph::NodeId o : problem.candidates)
    problem.cd.push_back(
        nmdb.thresholds(o).spare_capacity(net.node_utilization(o)));
  problem.busy_factor.reserve(problem.busy.size());
  for (graph::NodeId b : problem.busy)
    problem.busy_factor.push_back(nmdb.platform_factor(b));
  problem.candidate_factor.reserve(problem.candidates.size());
  for (graph::NodeId o : problem.candidates)
    problem.candidate_factor.push_back(nmdb.platform_factor(o));

  problem.trmin.assign(problem.busy.size() * problem.candidates.size(),
                       solver::kInfinity);
  if (problem.busy.empty() || problem.candidates.empty()) return problem;

  net::ResponseTimeOptions rt;
  rt.max_hops = options.max_hops;
  rt.mode = options.evaluator;
  rt.max_paths_per_source = options.max_paths_per_source;

  // Shared read-only 1/Lu row for the fresh-evaluation path; the cache path
  // keeps its own pinned snapshot.
  std::vector<double> inverse_costs;
  if (options.response_cache == nullptr)
    net.inverse_bandwidth_costs_into(inverse_costs);
  auto fill_row = [&](std::size_t bi, std::size_t& work, bool& truncated) {
    const graph::NodeId source = problem.busy[bi];
    // Reused per-thread row buffer — the build allocates nothing per row
    // once each worker's buffers are grown.
    static thread_local net::ResponseTimeResult result;
    if (options.response_cache != nullptr) {
      options.response_cache->row_into(
          net, source, net.monitoring_data_mb(source), rt, result);
    } else {
      net::min_response_times_into(net, source, net.monitoring_data_mb(source),
                                   rt, inverse_costs, result);
    }
    for (std::size_t cj = 0; cj < problem.candidates.size(); ++cj) {
      const double t = result.trmin_seconds[problem.candidates[cj]];
      problem.trmin[bi * problem.candidates.size() + cj] =
          t == graph::kInfiniteCost ? solver::kInfinity : t;
    }
    work += result.work;
    if (result.truncated) truncated = true;
  };
  const std::size_t rows = problem.busy.size();
  if (options.parallel_trmin && rows > 1) {
    // Chunked fan-out (DESIGN.md §13): each worker claims row chunks and
    // fills them with its own thread_local scratch — no allocation per
    // chunk, NUMA-friendly first-touch. Per-chunk work tallies land in
    // slots indexed by chunk and are reduced serially below in chunk order,
    // so the built problem (matrix AND counters) is bit-identical to the
    // serial fill at every worker count.
    util::ThreadPool& pool = util::global_pool();
    std::size_t workers = pool.size();
    if (options.solver_threads != 0)
      workers = std::min(workers, options.solver_threads);
    workers = std::max<std::size_t>(workers, 1);
    // ~4 chunks per worker: coarse enough that the claim cursor is cold,
    // fine enough that one expensive row cannot straggle a whole sweep.
    const std::size_t chunk =
        std::max<std::size_t>(1, (rows + workers * 4 - 1) / (workers * 4));
    const std::size_t chunks = (rows + chunk - 1) / chunk;
    std::vector<std::size_t> chunk_work(chunks, 0);
    std::vector<char> chunk_truncated(chunks, 0);
    pool.parallel_for_chunks(
        rows, chunk, workers, [&](std::size_t begin, std::size_t end) {
          std::size_t work = 0;
          bool truncated = false;
          for (std::size_t bi = begin; bi < end; ++bi)
            fill_row(bi, work, truncated);
          chunk_work[begin / chunk] = work;
          chunk_truncated[begin / chunk] = truncated ? 1 : 0;
        });
    for (std::size_t c = 0; c < chunks; ++c) {
      problem.paths_explored += chunk_work[c];
      if (chunk_truncated[c]) problem.truncated = true;
    }
  } else {
    std::size_t work = 0;
    bool truncated = false;
    for (std::size_t bi = 0; bi < rows; ++bi) fill_row(bi, work, truncated);
    problem.paths_explored = work;
    problem.truncated = truncated;
  }
  if (options.trust_weighting) {
    // Column weights applied after the fill so cached rows stay unweighted.
    // trust == 1.0 gives w == 1.0 and t * 1.0 == t bit-for-bit.
    for (std::size_t cj = 0; cj < problem.candidates.size(); ++cj) {
      const double w = 1.0 + options.trust_cost_penalty *
                                 (1.0 - nmdb.trust(problem.candidates[cj]));
      if (w == 1.0) continue;
      for (std::size_t bi = 0; bi < rows; ++bi) {
        double& t = problem.trmin[bi * problem.candidates.size() + cj];
        if (t != solver::kInfinity) t *= w;
      }
    }
  }
  return problem;
}

double PlacementResult::offloaded_total() const {
  double total = 0.0;
  for (const Assignment& a : assignments) total += a.amount;
  return total;
}

double PlacementResult::offloaded_from(graph::NodeId node) const {
  double total = 0.0;
  for (const Assignment& a : assignments)
    if (a.from == node) total += a.amount;
  return total;
}

double PlacementResult::absorbed_by(graph::NodeId node) const {
  double total = 0.0;
  for (const Assignment& a : assignments)
    if (a.to == node) total += a.amount;
  return total;
}

void apply_assignments(Nmdb& nmdb, std::span<const Assignment> plan) {
  net::NetworkState& state = nmdb.network();
  for (const Assignment& a : plan) {
    const double origin =
        state.node_utilization(a.from) - a.amount;
    const double arriving = a.amount * nmdb.platform_factor(a.from) /
                            nmdb.platform_factor(a.to);
    const double destination = state.node_utilization(a.to) + arriving;
    state.set_node_utilization(a.from, std::clamp(origin, 0.0, 100.0));
    state.set_node_utilization(a.to, std::clamp(destination, 0.0, 100.0));
  }
}

double placement_violation(const PlacementProblem& problem,
                           const PlacementResult& result) {
  double worst = 0.0;
  // Flat node -> model-index maps; one pass over the assignments replaces
  // the old O(|assignments| * |V_b|) nested scan.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  graph::NodeId max_node = 0;
  for (graph::NodeId b : problem.busy) max_node = std::max(max_node, b);
  for (graph::NodeId o : problem.candidates) max_node = std::max(max_node, o);
  std::vector<std::size_t> busy_row(static_cast<std::size_t>(max_node) + 1,
                                    kNone);
  std::vector<std::size_t> candidate_col(
      static_cast<std::size_t>(max_node) + 1, kNone);
  for (std::size_t bi = 0; bi < problem.busy.size(); ++bi)
    busy_row[problem.busy[bi]] = bi;
  for (std::size_t cj = 0; cj < problem.candidates.size(); ++cj)
    candidate_col[problem.candidates[cj]] = cj;

  std::vector<double> shipped(problem.busy.size(), 0.0);
  std::vector<double> absorbed(problem.candidates.size(), 0.0);
  for (const Assignment& a : result.assignments) {
    const std::size_t bi = a.from <= max_node ? busy_row[a.from] : kNone;
    const std::size_t cj = a.to <= max_node ? candidate_col[a.to] : kNone;
    if (bi != kNone) shipped[bi] += a.amount;
    // 3a weighting needs the origin row's platform factor; assignments whose
    // origin is not a model row contribute nothing (same as before).
    if (cj != kNone && bi != kNone)
      absorbed[cj] += a.amount * problem.capacity_coefficient(bi, cj);
  }
  // 3b: every busy node sheds exactly Cs_i (>= for partial solves is checked
  // against unplaced separately — here we compare to Cs_i - unplaced share).
  for (std::size_t bi = 0; bi < problem.busy.size(); ++bi)
    if (shipped[bi] > problem.cs[bi])
      worst = std::max(worst, shipped[bi] - problem.cs[bi]);
  const double total_shortfall =
      problem.total_excess() - result.offloaded_total();
  worst = std::max(worst, std::abs(total_shortfall - result.unplaced));
  // 3a: destinations never exceed Cd_j (factor-weighted when heterogeneous).
  for (std::size_t cj = 0; cj < problem.candidates.size(); ++cj)
    if (absorbed[cj] > problem.cd[cj])
      worst = std::max(worst, absorbed[cj] - problem.cd[cj]);
  // No flow on forbidden (unreachable) pairs.
  for (const Assignment& a : result.assignments) {
    if (a.amount < 0) worst = std::max(worst, -a.amount);
    if (a.trmin_seconds == solver::kInfinity && a.amount > 0)
      worst = std::max(worst, a.amount);
  }
  return worst;
}

}  // namespace dust::core
