#include "core/client.hpp"

#include <algorithm>

#include "obs/span.hpp"
#include "util/log.hpp"

namespace dust::core {

DustClient::DustClient(sim::Simulator& sim, sim::TransportBase& transport,
                       graph::NodeId node, ClientConfig config, util::Rng rng,
                       sim::MonitoredNode* device)
    : sim_(&sim),
      transport_(&transport),
      node_(node),
      config_(config),
      rng_(rng),
      device_(device),
      track_("client-" + std::to_string(node)) {
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  metrics_.tx_offload_capable =
      &registry.counter("dust_core_tx_offload_capable_total");
  metrics_.tx_stat = &registry.counter("dust_core_tx_stat_total");
  metrics_.tx_keepalive = &registry.counter("dust_core_tx_keepalive_total");
  metrics_.tx_offload_ack =
      &registry.counter("dust_core_tx_offload_ack_total");
  metrics_.tx_agent_transfer =
      &registry.counter("dust_core_tx_agent_transfer_total");
  metrics_.tx_telemetry_data =
      &registry.counter("dust_core_tx_telemetry_data_total");
  endpoint_token_ = transport_->register_endpoint(
      client_endpoint(node_),
      [this](const sim::Envelope& envelope) { handle(envelope); });
}

DustClient::~DustClient() {
  // Token-scoped: if another client re-registered this node's endpoint
  // (e.g. a replacement instance), leave the new registration in place.
  transport_->unregister_endpoint(client_endpoint(node_), endpoint_token_);
}

void DustClient::start() {
  metrics_.tx_offload_capable->inc();
  transport_->send(client_endpoint(node_), config_.manager,
                   Message{OffloadCapableMsg{node_, config_.offload_capable,
                                             config_.platform_factor}},
                   sim::Priority::kNormal, "offload_capable");
}

void DustClient::rehome() {
  if (failed_) return;
  metrics_.tx_offload_capable->inc();
  transport_->send(client_endpoint(node_), config_.manager,
                   Message{OffloadCapableMsg{node_, config_.offload_capable,
                                             config_.platform_factor}},
                   sim::Priority::kNormal, "offload_capable");
  if (acknowledged_) send_stat();
}

void DustClient::set_reported_state(double utilization_percent,
                                    double monitoring_data_mb,
                                    std::uint32_t agent_count) {
  reported_utilization_ = utilization_percent;
  reported_data_mb_ = monitoring_data_mb;
  reported_agents_ = agent_count;
}

void DustClient::set_telemetry_degradation(double keep_fraction) {
  telemetry_keep_fraction_ = std::clamp(keep_fraction, 0.0, 1.0);
}

void DustClient::set_byzantine(const ByzantineBehavior& behavior) {
  byzantine_ = behavior;
  flap_task_.reset();
  if (byzantine_.flap_period_ms <= 0) return;
  // Fire exactly at each up-transition (offset flap_down_ms into every
  // window): the flapper re-announces Offload-capable, so a trust-blind
  // manager un-quarantines it and re-offloads — the thrash I3/Nmdb
  // staleness tests pin.
  const sim::TimeMs period = byzantine_.flap_period_ms;
  sim::TimeMs next_up =
      (sim_->now() / period) * period + byzantine_.flap_down_ms;
  if (next_up <= sim_->now()) next_up += period;
  flap_task_ = std::make_unique<sim::PeriodicTask>(
      *sim_, next_up, period, [this](sim::TimeMs) {
        if (failed_ || byzantine_.flap_period_ms <= 0) return;
        metrics_.tx_offload_capable->inc();
        transport_->send(
            client_endpoint(node_), config_.manager,
            Message{OffloadCapableMsg{node_, config_.offload_capable,
                                      config_.platform_factor}},
            sim::Priority::kNormal, "offload_capable");
      });
}

bool DustClient::flap_suppressed() const {
  if (byzantine_.flap_period_ms <= 0) return false;
  return (sim_->now() % byzantine_.flap_period_ms) < byzantine_.flap_down_ms;
}

void DustClient::send_stat() {
  if (failed_ || flap_suppressed()) return;
  StatMsg stat;
  stat.node = node_;
  if (device_ != nullptr) {
    stat.utilization_percent = device_->last_stats().device_cpu_percent;
    stat.monitoring_data_mb =
        static_cast<double>(device_->tsdb().storage_bytes()) * 8.0 / 1e6;
    stat.agent_count = static_cast<std::uint32_t>(device_->local_agent_count());
  } else {
    stat.utilization_percent = reported_utilization_;
    stat.monitoring_data_mb = reported_data_mb_;
    stat.agent_count = reported_agents_;
  }
  // Under data-plane degradation the monitoring volume the network actually
  // carries is already thinned; scale the advertised Cs contribution and
  // carry the raw fraction so the manager can tell the two apart.
  stat.monitoring_data_mb *= telemetry_keep_fraction_;
  stat.telemetry_keep_fraction = telemetry_keep_fraction_;
  // Capacity lying happens at the reporting edge: the device state is
  // honest, the wire copy is not.
  if (byzantine_.stat_utilization_bias != 0.0)
    stat.utilization_percent = std::clamp(
        stat.utilization_percent + byzantine_.stat_utilization_bias, 0.0,
        100.0);
  // Every STAT roots a new causal trace: whatever the solver does with this
  // report — and the whole offload chain that follows — hangs off it. Only
  // the ids are allocated here; the root span itself is materialized by the
  // manager for the rare STAT that actually parents a solve (most STATs
  // cause nothing, and this path runs once per node per update interval).
  stat.trace = obs::enabled() ? obs::new_trace() : obs::TraceContext{};
  metrics_.tx_stat->inc();
  transport_->send(client_endpoint(node_), config_.manager, Message{stat},
                   sim::Priority::kNormal, "stat", stat.trace.trace_id);
}

void DustClient::publish_snapshot(const telemetry::DeviceSnapshot& snapshot) {
  if (failed_) return;
  for (const OutboundOffload& outbound : outbound_) {
    metrics_.tx_telemetry_data->inc();
    Message message{TelemetryDataMsg{node_, snapshot}};
    const sim::Priority priority = message_priority(message);
    transport_->send(client_endpoint(node_),
                     client_endpoint(outbound.destination),
                     std::move(message), priority, "telemetry_data");
  }
}

void DustClient::set_failed(bool failed) {
  failed_ = failed;
  if (failed_) {
    stat_task_.reset();
    keepalive_task_.reset();
    flap_task_.reset();
  }
}

std::size_t DustClient::hosted_agent_count() const noexcept {
  std::size_t total = 0;
  for (const auto& [owner, count] : hosted_) total += count;
  return total;
}

std::size_t DustClient::offloaded_agent_count() const noexcept {
  std::size_t total = 0;
  for (const OutboundOffload& outbound : outbound_)
    total += outbound.blueprints.size();
  return total;
}

std::vector<graph::NodeId> DustClient::hosting_destinations() const {
  std::vector<graph::NodeId> out;
  out.reserve(outbound_.size());
  for (const OutboundOffload& outbound : outbound_)
    out.push_back(outbound.destination);
  return out;
}

void DustClient::handle(const sim::Envelope& envelope) {
  if (failed_) return;
  const Message* message = std::any_cast<Message>(&envelope.payload);
  if (message == nullptr) {
    DUST_LOG_WARN << "client " << node_ << ": non-protocol payload";
    return;
  }
  std::visit(
      [this](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, AckMsg>) {
          on_ack(msg);
        } else if constexpr (std::is_same_v<T, OffloadRequestMsg>) {
          on_offload_request(msg);
        } else if constexpr (std::is_same_v<T, AgentTransferMsg>) {
          on_agent_transfer(msg);
        } else if constexpr (std::is_same_v<T, TelemetryDataMsg>) {
          on_telemetry(msg);
        } else if constexpr (std::is_same_v<T, RepMsg>) {
          on_rep(msg);
        } else if constexpr (std::is_same_v<T, ReleaseMsg>) {
          on_release(msg);
        } else {
          DUST_LOG_WARN << "client " << node_ << ": unexpected message";
        }
      },
      *message);
}

void DustClient::on_ack(const AckMsg& msg) {
  if (acknowledged_) return;
  acknowledged_ = true;
  stat_task_ = std::make_unique<sim::PeriodicTask>(
      *sim_, sim_->now(), msg.update_interval_ms,
      [this](sim::TimeMs) { send_stat(); });
}

void DustClient::on_offload_request(const OffloadRequestMsg& msg) {
  if (msg.busy != node_) return;  // destination copy handled on transfer
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  // Retransmission makes duplicate requests possible (same request_id, the
  // original ACK or request raced a drop). Re-ACK so the manager converges,
  // but don't shed the same agents twice. The re-ACK's span joins the same
  // trace as the retry, so the recovered chain stays causally connected.
  const bool duplicate =
      std::any_of(outbound_.begin(), outbound_.end(),
                  [&msg](const OutboundOffload& o) {
                    return o.destination == msg.destination;
                  });
  const obs::TraceContext ack_ctx = obs::record_instant(
      registry, "offload_ack", track_, msg.trace, sim_->now());
  metrics_.tx_offload_ack->inc();
  transport_->send(client_endpoint(node_), config_.manager,
                   Message{OffloadAckMsg{msg.request_id, node_, true, ack_ctx}},
                   sim::Priority::kNormal, "offload_ack", ack_ctx.trace_id);
  if (duplicate) return;
  // Move agents off the device (or synthesize blueprints when device-less).
  AgentTransferMsg transfer;
  transfer.request_id = msg.request_id;
  transfer.owner = node_;
  if (device_ != nullptr) {
    std::vector<telemetry::MonitorAgent> local = device_->remove_local_agents();
    const std::size_t moving =
        std::min<std::size_t>(msg.agents_to_move, local.size());
    for (std::size_t i = 0; i < moving; ++i)
      transfer.agents.push_back(local.back()), local.pop_back();
    // Re-install what stays local.
    for (telemetry::MonitorAgent& agent : local)
      device_->add_local_agent(std::move(agent));
    device_->set_offloaded_agent_count(offloaded_agent_count() +
                                       transfer.agents.size());
  } else {
    for (std::uint32_t i = 0; i < msg.agents_to_move; ++i)
      transfer.agents.emplace_back(
          "synthetic." + std::to_string(node_) + "." + std::to_string(i),
          telemetry::AgentCostModel{}, 1000);
  }
  OutboundOffload outbound;
  outbound.destination = msg.destination;
  outbound.blueprints = transfer.agents;  // copies for REP re-instantiation
  outbound_.push_back(std::move(outbound));
  transfer.trace = obs::record_instant(registry, "agent_transfer", track_,
                                       msg.trace, sim_->now());
  metrics_.tx_agent_transfer->inc();
  const std::uint64_t transfer_trace = transfer.trace.trace_id;
  transport_->send(client_endpoint(node_), client_endpoint(msg.destination),
                   Message{std::move(transfer)}, sim::Priority::kNormal,
                   "agent_transfer", transfer_trace);
}

void DustClient::on_agent_transfer(const AgentTransferMsg& msg) {
  if (device_ != nullptr) {
    for (const telemetry::MonitorAgent& agent : msg.agents)
      device_->add_remote_agent(client_endpoint(msg.owner), agent);
  }
  last_host_trace_ =
      obs::record_instant(obs::MetricRegistry::global(), "host_agents",
                          track_, msg.trace, sim_->now());
  hosted_.emplace_back(msg.owner, static_cast<std::uint32_t>(msg.agents.size()));
  ensure_keepalive_task();
}

void DustClient::on_telemetry(const TelemetryDataMsg& msg) {
  if (device_ == nullptr) return;
  device_->observe_remote(client_endpoint(msg.owner), msg.snapshot, rng_);
}

void DustClient::on_rep(const RepMsg& msg) {
  if (msg.busy != node_) return;
  ++reps_received_;
  // Drop the failed relationship and re-home the same agents to the replica.
  auto it = std::find_if(outbound_.begin(), outbound_.end(),
                         [&msg](const OutboundOffload& o) {
                           return o.destination == msg.failed;
                         });
  if (it == outbound_.end()) return;
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  const obs::TraceContext ack_ctx = obs::record_instant(
      registry, "offload_ack", track_, msg.trace, sim_->now());
  AgentTransferMsg transfer;
  transfer.request_id = msg.request_id;
  transfer.owner = node_;
  transfer.agents = it->blueprints;
  transfer.trace = obs::record_instant(registry, "agent_transfer", track_,
                                       msg.trace, sim_->now());
  it->destination = msg.replacement;
  metrics_.tx_offload_ack->inc();
  metrics_.tx_agent_transfer->inc();
  transport_->send(client_endpoint(node_), config_.manager,
                   Message{OffloadAckMsg{msg.request_id, node_, true, ack_ctx}},
                   sim::Priority::kNormal, "offload_ack", ack_ctx.trace_id);
  const std::uint64_t transfer_trace = transfer.trace.trace_id;
  transport_->send(client_endpoint(node_), client_endpoint(msg.replacement),
                   Message{std::move(transfer)}, sim::Priority::kNormal,
                   "agent_transfer", transfer_trace);
}

void DustClient::on_release(const ReleaseMsg& msg) {
  ++releases_received_;
  if (msg.busy == node_) {
    // Reclaim: reinstall our agents locally.
    auto it = std::find_if(outbound_.begin(), outbound_.end(),
                           [&msg](const OutboundOffload& o) {
                             return o.destination == msg.destination;
                           });
    if (it == outbound_.end()) return;
    if (device_ != nullptr) {
      for (const telemetry::MonitorAgent& blueprint : it->blueprints)
        device_->add_local_agent(blueprint);
    }
    outbound_.erase(it);
    if (device_ != nullptr)
      device_->set_offloaded_agent_count(offloaded_agent_count());
  } else if (msg.destination == node_) {
    // Stop hosting this owner's agents.
    std::erase_if(hosted_, [&msg](const auto& entry) {
      return entry.first == msg.busy;
    });
    if (device_ != nullptr)
      device_->remove_remote_agents(client_endpoint(msg.busy));
    maybe_stop_keepalive_task();
  }
}

void DustClient::ensure_keepalive_task() {
  if (keepalive_task_ && keepalive_task_->active()) return;
  keepalive_task_ = std::make_unique<sim::PeriodicTask>(
      *sim_, sim_->now(), config_.keepalive_interval_ms,
      [this](sim::TimeMs) {
        if (failed_ || hosted_.empty() || flap_suppressed()) return;
        ++keepalives_sent_;
        metrics_.tx_keepalive->inc();
        transport_->send(client_endpoint(node_), config_.manager,
                         Message{KeepaliveMsg{node_, keepalive_seq_++}},
                         sim::Priority::kNormal, "keepalive");
      });
}

void DustClient::maybe_stop_keepalive_task() {
  if (hosted_.empty()) keepalive_task_.reset();
}

}  // namespace dust::core
