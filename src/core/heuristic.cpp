#include "core/heuristic.hpp"

#include <algorithm>
#include <numeric>

#include "graph/paths.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace dust::core {

HeuristicResult HeuristicEngine::run(const Nmdb& nmdb) const {
  util::Timer timer;
  HeuristicResult result;
  const net::NetworkState& net = nmdb.network();
  const graph::Graph& g = net.graph();

  std::vector<graph::NodeId> busy = nmdb.busy_nodes();
  result.busy_count = busy.size();
  if (busy.empty()) {
    result.solve_seconds = timer.seconds();
    return result;
  }

  // Shared remaining capacity across all busy nodes' local solves.
  std::vector<double> remaining(g.node_count(), 0.0);
  for (graph::NodeId o : nmdb.candidate_nodes())
    remaining[o] = nmdb.thresholds(o).spare_capacity(net.node_utilization(o));

  if (options_.order == HeuristicOptions::Order::kLargestExcessFirst) {
    std::stable_sort(busy.begin(), busy.end(),
                     [&](graph::NodeId a, graph::NodeId b) {
                       return nmdb.thresholds(a).excess_load(
                                  net.node_utilization(a)) >
                              nmdb.thresholds(b).excess_load(
                                  net.node_utilization(b));
                     });
  }

  const std::vector<double> inv_bandwidth = net.inverse_bandwidth_costs();
  for (graph::NodeId b : busy) {
    const double cs = nmdb.thresholds(b).excess_load(net.node_utilization(b));
    result.total_cs += cs;
    const double data_mb = net.monitoring_data_mb(b);

    // Candidates within `radius` hops with their Tr cost.
    struct Option {
      graph::NodeId node;
      double tr_seconds;
    };
    std::vector<Option> options;
    if (options_.radius == 1) {
      // Paper Algorithm 1: direct neighbours only; Tr = D_i / Lu_e.
      for (const graph::Adjacency& adj : g.neighbors(b)) {
        if (remaining[adj.neighbor] <= 0) continue;
        options.push_back(
            Option{adj.neighbor, data_mb * inv_bandwidth[adj.edge]});
      }
    } else {
      const std::vector<double> cost = graph::hop_bounded_min_cost(
          g, b, inv_bandwidth, options_.radius);
      for (graph::NodeId v = 0; v < g.node_count(); ++v) {
        if (v == b || remaining[v] <= 0) continue;
        if (cost[v] == graph::kInfiniteCost) continue;
        options.push_back(Option{v, data_mb * cost[v]});
      }
    }
    if (options_.packing == HeuristicOptions::Packing::kLargestCapacityFirst) {
      std::sort(options.begin(), options.end(),
                [&remaining](const Option& a, const Option& b) {
                  if (remaining[a.node] != remaining[b.node])
                    return remaining[a.node] > remaining[b.node];
                  if (a.tr_seconds != b.tr_seconds)
                    return a.tr_seconds < b.tr_seconds;
                  return a.node < b.node;
                });
    } else {
      std::sort(options.begin(), options.end(),
                [](const Option& a, const Option& b) {
                  return a.tr_seconds != b.tr_seconds
                             ? a.tr_seconds < b.tr_seconds
                             : a.node < b.node;
                });
    }

    double left = cs;
    bool placed_any = false;
    for (const Option& option : options) {
      if (left <= 1e-12) break;
      const double amount = std::min(left, remaining[option.node]);
      if (amount <= 0) continue;
      result.assignments.push_back(
          Assignment{b, option.node, amount, option.tr_seconds});
      result.objective += amount * option.tr_seconds;
      remaining[option.node] -= amount;
      left -= amount;
      placed_any = true;
    }
    if (left > 1e-9) {
      result.total_cse += left;
      if (placed_any)
        ++result.partially_offloaded;
      else
        ++result.failed;
    } else {
      ++result.fully_offloaded;
    }
  }
  result.solve_seconds = timer.seconds();
  // Expose the latest HFR (Eq. 4) as a gauge so the watchdog's hfr-spike
  // rule sees it without re-running the heuristic.
  obs::MetricRegistry::global()
      .gauge("dust_core_hfr_percent")
      .set(result.hfr_percent());
  return result;
}

}  // namespace dust::core
