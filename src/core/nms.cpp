#include "core/nms.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace dust::core {

void NetworkMonitorService::watch_node(graph::NodeId node,
                                       const telemetry::Tsdb* db,
                                       telemetry::AlertRule rule) {
  if (db == nullptr)
    throw std::invalid_argument("NetworkMonitorService: null TSDB");
  Watch& watch = watches_[node];
  watch.db = db;
  watch.engine.add_rule(std::move(rule));
}

std::size_t NetworkMonitorService::trigger_manual() {
  ++triggers_;
  return manager_->run_placement_cycle();
}

std::size_t NetworkMonitorService::evaluate(std::int64_t now_ms) {
  bool fired = false;
  for (auto& [node, watch] : watches_) {
    const std::size_t history_before = watch.engine.history().size();
    watch.engine.evaluate(*watch.db, now_ms);
    for (std::size_t i = history_before; i < watch.engine.history().size();
         ++i) {
      if (watch.engine.history()[i].to == telemetry::AlertState::kFiring) {
        DUST_LOG_INFO << "nms: rule '" << watch.engine.history()[i].rule
                      << "' firing on node " << node
                      << ", triggering placement";
        fired = true;
      }
    }
  }
  if (!fired) return 0;
  ++triggers_;
  return manager_->run_placement_cycle();
}

telemetry::AlertState NetworkMonitorService::state(graph::NodeId node) const {
  const auto it = watches_.find(node);
  if (it == watches_.end() || it->second.engine.rule_count() == 0)
    throw std::out_of_range("NetworkMonitorService: node not watched");
  return it->second.engine.state(0);
}

}  // namespace dust::core
