#include "core/manager.hpp"

#include "core/routes.hpp"

#include <algorithm>
#include <cmath>

#include "obs/flight_recorder.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"

namespace dust::core {

namespace {

constexpr const char* kManagerTrack = "manager";

obs::FlightRecorder& flight() { return obs::FlightRecorder::global(); }

}  // namespace

DustManager::DustManager(sim::Simulator& sim, sim::TransportBase& transport,
                         Nmdb nmdb, ManagerConfig config)
    : sim_(&sim),
      transport_(&transport),
      nmdb_(std::move(nmdb)),
      config_(config) {
  if (config_.incremental_placement) {
    config_.optimizer.placement.response_cache = &trmin_cache_;
    config_.optimizer.warm_start = true;
  }
  if (config_.solver_threads != 0) {
    config_.optimizer.placement.parallel_trmin = true;
    config_.optimizer.placement.solver_threads = config_.solver_threads;
  }
  if (config_.trust_weighting) {
    config_.optimizer.placement.trust_weighting = true;
    config_.optimizer.placement.trust_cost_penalty = config_.trust_cost_penalty;
    config_.optimizer.placement.trust_exclude_below =
        config_.trust_exclude_below;
  }
  engine_ = OptimizationEngine(config_.optimizer);
  const std::size_t n = nmdb_.network().graph().node_count();
  last_stat_at_.assign(n, kNeverStat);
  last_stat_trace_.assign(n, obs::TraceContext{});
  stat_spans_recorded_.assign(n, 0);
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  metrics_.rx_offload_capable =
      &registry.counter("dust_core_rx_offload_capable_total");
  metrics_.rx_stat = &registry.counter("dust_core_rx_stat_total");
  metrics_.rx_offload_ack = &registry.counter("dust_core_rx_offload_ack_total");
  metrics_.rx_keepalive = &registry.counter("dust_core_rx_keepalive_total");
  metrics_.rx_unexpected = &registry.counter("dust_core_rx_unexpected_total");
  metrics_.tx_ack = &registry.counter("dust_core_tx_ack_total");
  metrics_.tx_offload_request =
      &registry.counter("dust_core_tx_offload_request_total");
  metrics_.tx_release = &registry.counter("dust_core_tx_release_total");
  metrics_.tx_rep = &registry.counter("dust_core_tx_rep_total");
  metrics_.placement_cycles =
      &registry.counter("dust_core_placement_cycles_total");
  metrics_.offloads_created =
      &registry.counter("dust_core_offloads_created_total");
  metrics_.keepalive_failures =
      &registry.counter("dust_core_keepalive_failures_total");
  metrics_.releases = &registry.counter("dust_core_releases_total");
  metrics_.redirects = &registry.counter("dust_core_redirects_total");
  metrics_.trust_penalties =
      &registry.counter("dust_core_trust_penalties_total");
  metrics_.trust_evictions =
      &registry.counter("dust_core_trust_evictions_total");
  metrics_.loss_audits = &registry.counter("dust_core_loss_audits_total");
  metrics_.trust_min = &registry.gauge("dust_core_trust_min");
  metrics_.distrusted_nodes = &registry.gauge("dust_core_distrusted_nodes");
  metrics_.placement_solve_ms =
      &registry.histogram("dust_core_placement_solve_ms");
  metrics_.placement_build_ms =
      &registry.histogram("dust_core_placement_build_ms");
  metrics_.nmdb_staleness_ms =
      &registry.histogram("dust_core_nmdb_staleness_ms");
  transport_->register_endpoint(
      config_.endpoint,
      [this](const sim::Envelope& envelope) { handle(envelope); });
}

void DustManager::start() {
  placement_task_ = std::make_unique<sim::PeriodicTask>(
      *sim_, sim_->now() + config_.placement_period_ms,
      config_.placement_period_ms,
      [this](sim::TimeMs) { run_placement_cycle(); });
  keepalive_task_ = std::make_unique<sim::PeriodicTask>(
      *sim_, sim_->now() + config_.keepalive_check_period_ms,
      config_.keepalive_check_period_ms,
      [this](sim::TimeMs) { check_keepalives(); });
}

void DustManager::stop() {
  placement_task_.reset();
  keepalive_task_.reset();
}

void DustManager::handle(const sim::Envelope& envelope) {
  const Message* message = std::any_cast<Message>(&envelope.payload);
  if (message == nullptr) {
    DUST_LOG_WARN << "manager: non-protocol payload from " << envelope.from;
    return;
  }
  std::visit(
      [this](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, OffloadCapableMsg>) {
          metrics_.rx_offload_capable->inc();
          on_offload_capable(msg);
        } else if constexpr (std::is_same_v<T, StatMsg>) {
          metrics_.rx_stat->inc();
          on_stat(msg);
        } else if constexpr (std::is_same_v<T, OffloadAckMsg>) {
          metrics_.rx_offload_ack->inc();
          on_offload_ack(msg);
        } else if constexpr (std::is_same_v<T, KeepaliveMsg>) {
          metrics_.rx_keepalive->inc();
          on_keepalive(msg);
        } else {
          metrics_.rx_unexpected->inc();
          DUST_LOG_WARN << "manager: unexpected message type";
        }
      },
      *message);
}

void DustManager::on_offload_capable(const OffloadCapableMsg& msg) {
  nmdb_.set_offload_capable(msg.node, msg.capable);
  if (msg.platform_factor > 0)
    nmdb_.set_platform_factor(msg.node, msg.platform_factor);
  if (msg.capable) {
    metrics_.tx_ack->inc();
    transport_->send(config_.endpoint, client_endpoint(msg.node),
                     Message{AckMsg{msg.node, config_.update_interval_ms}},
                     sim::Priority::kNormal, "ack");
  }
}

void DustManager::on_stat(const StatMsg& msg) {
  ++stats_received_;
  if (msg.node >= last_stat_at_.size()) {
    last_stat_at_.resize(msg.node + 1, kNeverStat);
    last_stat_trace_.resize(msg.node + 1);
    stat_spans_recorded_.resize(msg.node + 1, 0);
  }
  last_stat_at_[msg.node] = sim_->now();
  last_stat_trace_[msg.node] = msg.trace;
  nmdb_.record_stat(msg.node, msg.utilization_percent, msg.monitoring_data_mb,
                    msg.agent_count, msg.telemetry_keep_fraction);
  // Reclaim: a previously busy node whose load (which already excludes the
  // offloaded agents) dropped back under Cmax with margin keeps its offloads;
  // release only when it could re-absorb them: load + offloaded < Cmax.
  double offloaded = 0.0;
  for (const auto& [id, offload] : offloads_)
    if (offload.busy == msg.node) offloaded += offload.amount;
  if (offloaded > 0 &&
      msg.utilization_percent + offloaded + config_.release_margin_percent <
          nmdb_.thresholds(msg.node).c_max) {
    release_offloads_of(msg.node);
  }
  // Redirect (§III-B): "an Offload-destination node can redirect the
  // workload to another node if it becomes busy." The node stays capable —
  // it is overloaded, not dead.
  if (destination_hosting(msg.node) &&
      msg.utilization_percent >= nmdb_.thresholds(msg.node).c_max) {
    ++redirects_;
    metrics_.redirects->inc();
    flight().record(obs::FlightEventKind::kRoleChange, sim_->now(),
                    msg.trace.trace_id, msg.node, obs::FlightEvent::kNoNode,
                    msg.utilization_percent, "host>busy");
    replace_destination(msg.node, /*quarantine=*/false);
  }
}

void DustManager::on_offload_ack(const OffloadAckMsg& msg) {
  auto it = offloads_.find(msg.request_id);
  if (it == offloads_.end()) return;
  if (!msg.accepted) {
    const graph::NodeId destination = it->second.destination;
    offloads_.erase(it);  // erase first: hosting reflects remaining offloads
    nmdb_.set_hosting(destination, destination_hosting(destination));
    return;
  }
  it->second.acknowledged = true;
  // The chain's tip moves to the client's offload_ack span, so any later
  // REP for this relationship extends the trace linearly.
  if (msg.trace.valid()) it->second.trace = msg.trace;
  flight().record(obs::FlightEventKind::kOffloadAcked, sim_->now(),
                  it->second.trace.trace_id, it->second.busy,
                  it->second.destination, it->second.amount,
                  "req " + std::to_string(msg.request_id));
  // Grace-stamp the keepalive clock so a just-acked destination is not
  // declared dead before its first Keepalive crosses the transport. A
  // delegated destination keepalives to its own shard instead — no clock
  // to stamp here.
  if (!it->second.external_destination) {
    sim::TimeMs& last = last_keepalive_[it->second.destination];
    last = std::max(last, sim_->now());
  }
}

void DustManager::on_keepalive(const KeepaliveMsg& msg) {
  last_keepalive_[msg.node] = sim_->now();
}

std::size_t DustManager::run_placement_cycle() {
  ++placement_cycles_;
  metrics_.placement_cycles->inc();
  flight().record(obs::FlightEventKind::kCycleStart, sim_->now(), 0,
                  obs::FlightEvent::kNoNode, obs::FlightEvent::kNoNode,
                  static_cast<double>(placement_cycles_), "");
  obs::Span cycle_span(obs::MetricRegistry::global(),
                       "dust_core_placement_cycle",
                       [this] { return sim_->now(); },
                       obs::SpanOptions{{}, kManagerTrack});
  // How stale is the state this cycle plans on? One observation per node
  // that has ever STATed: sim-time age of its latest report.
  for (const sim::TimeMs at : last_stat_at_)
    if (at != kNeverStat)
      metrics_.nmdb_staleness_ms->observe(
          static_cast<double>(sim_->now() - at));
  // Plan against a reservation-adjusted view: capacity already booked on a
  // destination is added to its utilization, so lagging STATs (which may
  // not yet reflect freshly transferred agents) cannot lead to over-booking
  // the same spare capacity in consecutive cycles. Conservative by design:
  // once the destination's STAT does include the hosted load, the
  // reservation double-counts it and the optimizer simply under-uses that
  // node slightly.
  // Sync the Trmin cache against the authoritative link state *before* the
  // planning copy below: the copy shares the links bit-for-bit (only node
  // utilizations are adjusted, and Trmin depends on links alone), so rows
  // cached against nmdb_ serve the adjusted view exactly.
  if (config_.incremental_placement) trmin_cache_.begin_cycle(nmdb_.network());
  Nmdb adjusted = nmdb_;
  for (const auto& [id, offload] : offloads_) {
    const double arriving = offload.amount *
                            nmdb_.platform_factor(offload.busy) /
                            nmdb_.platform_factor(offload.destination);
    const double utilization =
        adjusted.network().node_utilization(offload.destination) + arriving;
    adjusted.network().set_node_utilization(
        offload.destination, std::min(100.0, utilization));
  }
  PlacementProblem problem;
  const PlacementResult result =
      engine_.run(adjusted, cycle_observer_ ? &problem : nullptr);
  metrics_.placement_solve_ms->observe(result.solve_seconds * 1e3);
  metrics_.placement_build_ms->observe(result.build_seconds * 1e3);
  flight().record(obs::FlightEventKind::kSolverOutcome, sim_->now(), 0,
                  obs::FlightEvent::kNoNode, obs::FlightEvent::kNoNode,
                  result.objective, to_string(result.status));
  if (config_.incremental_placement) {
    const net::ResponseTimeCacheStats cache = trmin_cache_.stats();
    flight().record(obs::FlightEventKind::kCacheStats, sim_->now(), 0,
                    obs::FlightEvent::kNoNode,
                    static_cast<std::int32_t>(cache.misses -
                                              cache_misses_seen_),
                    static_cast<double>(cache.hits - cache_hits_seen_),
                    "trmin hits/misses");
    cache_hits_seen_ = cache.hits;
    cache_misses_seen_ = cache.misses;
  }
  if (cycle_observer_) {
    CycleObservation observation;
    observation.nmdb = &nmdb_;
    observation.planning_view = &adjusted;
    observation.problem = &problem;
    observation.result = &result;
    observation.now = sim_->now();
    cycle_observer_(observation);
  }
  if (!result.optimal() && result.assignments.empty()) {
    DUST_LOG_INFO << "manager: placement " << to_string(result.status)
                  << ", nothing offloaded";
    return 0;
  }
  // Resolve each assignment's controllable route for the request messages.
  RouteOptions route_options;
  route_options.max_hops = config_.optimizer.placement.max_hops;
  const std::vector<ResolvedRoute> routes =
      resolve_routes(nmdb_.network(), result.assignments, route_options);

  std::size_t created = 0;
  // One "solve" span per busy node per cycle, parented to that node's last
  // STAT — the causal story is "this STAT made the solver act". Memoized so
  // multiple assignments from one busy node share the solve span.
  std::map<graph::NodeId, obs::TraceContext> solve_ctx;
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  for (std::size_t index = 0; index < result.assignments.size(); ++index) {
    const Assignment& assignment = result.assignments[index];
    if (assignment.amount < config_.min_offload_amount_percent) continue;
    // One relationship per (busy, destination) pair; refresh amount if the
    // pair already exists.
    bool exists = false;
    for (auto& [id, offload] : offloads_) {
      if (offload.busy == assignment.from &&
          offload.destination == assignment.to) {
        exists = true;
        break;
      }
    }
    if (exists) continue;
    const double cs = nmdb_.thresholds(assignment.from)
                          .excess_load(nmdb_.network().node_utilization(
                              assignment.from));
    const std::uint32_t total_agents = nmdb_.agent_count(assignment.from);
    const auto agents_to_move = static_cast<std::uint32_t>(std::min<double>(
        total_agents,
        std::round(total_agents * (cs > 0 ? assignment.amount / cs : 0.0))));
    auto solve_it = solve_ctx.find(assignment.from);
    if (solve_it == solve_ctx.end()) {
      // The client allocated this STAT's trace ids but deferred the span
      // record (send_stat is the hottest protocol path and most STATs cause
      // nothing). This STAT did cause something — materialize its root span
      // now, on the owner's track, stamped with the STAT's arrival time.
      const obs::TraceContext stat_ctx = last_stat_trace_[assignment.from];
      if (stat_ctx.valid() &&
          stat_spans_recorded_[assignment.from] != stat_ctx.span_id) {
        stat_spans_recorded_[assignment.from] = stat_ctx.span_id;
        obs::SpanRecord stat_span;
        stat_span.name = "stat";
        stat_span.track = "client-" + std::to_string(assignment.from);
        stat_span.wall_ms = 0.0;
        stat_span.wall_start_ms = obs::wall_now_ms();
        stat_span.sim_start_ms = last_stat_at_[assignment.from];
        stat_span.sim_duration_ms = 0;
        stat_span.trace_id = stat_ctx.trace_id;
        stat_span.span_id = stat_ctx.span_id;
        stat_span.parent_span_id = 0;
        registry.record_span(std::move(stat_span));
      }
      solve_it = solve_ctx
                     .emplace(assignment.from,
                              obs::record_instant(registry, "solve",
                                                  kManagerTrack, stat_ctx,
                                                  sim_->now()))
                     .first;
    }
    const obs::TraceContext request_ctx = obs::record_instant(
        registry, "offload_request", kManagerTrack, solve_it->second,
        sim_->now());

    ActiveOffload offload;
    offload.request_id = next_request_id_++;
    offload.busy = assignment.from;
    offload.destination = assignment.to;
    offload.amount = assignment.amount;
    offload.agents = agents_to_move;
    offload.route = routes[index].primary.nodes;
    offload.trace = request_ctx;
    offload.requested_at = sim_->now();
    if (!destination_hosting(assignment.to))
      flight().record(obs::FlightEventKind::kRoleChange, sim_->now(),
                      request_ctx.trace_id, assignment.to,
                      obs::FlightEvent::kNoNode, 0.0, "normal>host");
    offloads_[offload.request_id] = offload;
    nmdb_.set_hosting(assignment.to, true);
    flight().record(obs::FlightEventKind::kOffloadCreated, sim_->now(),
                    request_ctx.trace_id, assignment.from, assignment.to,
                    assignment.amount,
                    "req " + std::to_string(offload.request_id));

    OffloadRequestMsg request{offload.request_id, assignment.from,
                              assignment.to,      assignment.amount,
                              agents_to_move,     {},
                              request_ctx};
    request.route = routes[index].primary.nodes;
    metrics_.tx_offload_request->inc(2);
    transport_->send(config_.endpoint, client_endpoint(assignment.from),
                     Message{request}, sim::Priority::kNormal,
                     "offload_request", request_ctx.trace_id);
    transport_->send(config_.endpoint, client_endpoint(assignment.to),
                     Message{request}, sim::Priority::kNormal,
                     "offload_request", request_ctx.trace_id);
    ++created;
  }
  metrics_.offloads_created->inc(created);
  flight().record(obs::FlightEventKind::kCycleEnd, sim_->now(), 0,
                  obs::FlightEvent::kNoNode, obs::FlightEvent::kNoNode,
                  static_cast<double>(created), "");
  DUST_LOG_INFO << "manager: placement cycle created " << created
                << " offload(s), objective " << result.objective;
  return created;
}

bool DustManager::destination_hosting(graph::NodeId node) const {
  for (const auto& [id, offload] : offloads_)
    if (offload.destination == node) return true;
  return false;
}

void DustManager::release_offloads_of(graph::NodeId busy) {
  std::vector<std::uint64_t> to_erase;
  for (const auto& [id, offload] : offloads_) {
    if (offload.busy != busy) continue;
    metrics_.tx_release->inc(2);
    const obs::TraceContext release_ctx = obs::record_instant(
        obs::MetricRegistry::global(), "release", kManagerTrack,
        offload.trace, sim_->now());
    flight().record(obs::FlightEventKind::kRelease, sim_->now(),
                    release_ctx.trace_id, busy, offload.destination,
                    offload.amount, "req " + std::to_string(id));
    transport_->send(config_.endpoint, client_endpoint(busy),
                     Message{ReleaseMsg{busy, offload.destination}},
                     sim::Priority::kNormal, "release",
                     release_ctx.trace_id);
    transport_->send(config_.endpoint, client_endpoint(offload.destination),
                     Message{ReleaseMsg{busy, offload.destination}},
                     sim::Priority::kNormal, "release",
                     release_ctx.trace_id);
    to_erase.push_back(id);
  }
  for (std::uint64_t id : to_erase) {
    const graph::NodeId dest = offloads_[id].destination;
    offloads_.erase(id);
    nmdb_.set_hosting(dest, destination_hosting(dest));
    ++releases_;
    metrics_.releases->inc();
  }
}

void DustManager::check_keepalives() {
  // Destinations with live offloads must keepalive within the timeout.
  std::vector<graph::NodeId> supervised;
  std::vector<graph::NodeId> overdue;
  std::vector<graph::NodeId> failed;
  for (auto& [id, offload] : offloads_) {
    // Delegated-out relationships: the granting shard supervises the
    // destination's keepalives (and owns retransmission of its side); the
    // origin shard's federation layer re-delegates on silence instead.
    if (offload.external_destination) continue;
    if (!offload.acknowledged) {
      // A request nobody acknowledged is invisible to keepalive supervision;
      // without retransmission a dropped Offload-Request dangles forever.
      // Re-send with the same request_id and the same trace, so the retry
      // visibly joins the truncated causal chain (DESIGN.md §10). REP-made
      // relationships are excluded — re-sending an OffloadRequestMsg would
      // not re-create them; the next sweep re-homes them instead.
      if (config_.offload_request_retry_ms > 0 && !offload.via_rep &&
          sim_->now() - offload.requested_at >=
              config_.offload_request_retry_ms) {
        offload.requested_at = sim_->now();
        ++offload.retransmits;
        flight().record(obs::FlightEventKind::kRetransmit, sim_->now(),
                        offload.trace.trace_id, offload.busy,
                        offload.destination,
                        static_cast<double>(offload.retransmits),
                        "req " + std::to_string(id));
        OffloadRequestMsg request{id,
                                  offload.busy,
                                  offload.destination,
                                  offload.amount,
                                  offload.agents,
                                  offload.route,
                                  offload.trace};
        metrics_.tx_offload_request->inc(2);
        transport_->send(config_.endpoint, client_endpoint(offload.busy),
                         Message{request}, sim::Priority::kNormal,
                         "offload_request", offload.trace.trace_id);
        transport_->send(config_.endpoint,
                         client_endpoint(offload.destination),
                         Message{request}, sim::Priority::kNormal,
                         "offload_request", offload.trace.trace_id);
      }
      continue;  // transfer still in flight
    }
    const auto it = last_keepalive_.find(offload.destination);
    const sim::TimeMs last = it == last_keepalive_.end() ? 0 : it->second;
    if (std::find(supervised.begin(), supervised.end(),
                  offload.destination) == supervised.end())
      supervised.push_back(offload.destination);
    if (sim_->now() - last > config_.keepalive_timeout_ms) {
      if (std::find(overdue.begin(), overdue.end(), offload.destination) ==
          overdue.end())
        overdue.push_back(offload.destination);
    }
  }
  // Hysteresis (keepalive_miss_threshold): declare a destination failed only
  // after that many consecutive overdue checks; one on-time keepalive resets
  // the streak. Threshold 1 reproduces the historical declare-on-first-miss.
  std::erase_if(keepalive_overdue_, [&](const auto& entry) {
    return std::find(supervised.begin(), supervised.end(), entry.first) ==
           supervised.end();
  });
  for (graph::NodeId node : supervised) {
    if (std::find(overdue.begin(), overdue.end(), node) == overdue.end()) {
      keepalive_overdue_.erase(node);
      continue;
    }
    if (++keepalive_overdue_[node] < config_.keepalive_miss_threshold)
      continue;
    keepalive_overdue_.erase(node);
    failed.push_back(node);
  }
  for (graph::NodeId node : failed) {
    ++keepalive_failures_;
    metrics_.keepalive_failures->inc();
    flight().record(obs::FlightEventKind::kKeepaliveFailure, sim_->now(), 0,
                    node, obs::FlightEvent::kNoNode, 0.0, "timeout");
    if (config_.trust_weighting) update_trust(node, 0.0);
    replace_destination(node, /*quarantine=*/true);
  }
}

void DustManager::record_loss_audit(graph::NodeId node, double expected,
                                    double delivered) {
  if (!config_.trust_weighting) return;
  metrics_.loss_audits->inc();
  const double observation =
      expected > 0.0 ? std::clamp(delivered / expected, 0.0, 1.0) : 1.0;
  update_trust(node, observation);
}

void DustManager::update_trust(graph::NodeId node, double observation) {
  if (node >= nmdb_.node_count()) return;
  const double before = nmdb_.trust(node);
  // t += alpha*(obs - t): exact fixpoint at t == obs, so a fleet that always
  // delivers what it promised stays at exactly 1.0 — and trust-blind vs
  // trust-weighted plans stay bit-identical when nothing misbehaves.
  const double after = std::clamp(
      before + config_.trust_ewma_alpha * (observation - before), 0.0, 1.0);
  if (after == before) return;
  nmdb_.set_trust(node, after);
  if (after < before) metrics_.trust_penalties->inc();
  metrics_.trust_min->set(nmdb_.min_trust());
  metrics_.distrusted_nodes->set(
      static_cast<double>(nmdb_.distrusted_count(config_.trust_exclude_below)));
  flight().record(obs::FlightEventKind::kRoleChange, sim_->now(), 0, node,
                  obs::FlightEvent::kNoNode, after, "trust");
  if (before >= config_.trust_exclude_below &&
      after < config_.trust_exclude_below) {
    DUST_LOG_INFO << "manager: node " << node << " trust " << after
                  << " crossed below " << config_.trust_exclude_below
                  << " — excluded from placement";
    if (destination_hosting(node)) {
      ++trust_evictions_;
      metrics_.trust_evictions->inc();
      replace_destination(node, /*quarantine=*/false);
    }
  }
}

void DustManager::replace_destination(graph::NodeId failed, bool quarantine) {
  DUST_LOG_INFO << "manager: moving offloads off destination " << failed
                << (quarantine ? " (keepalive failure)" : " (became busy)");
  if (quarantine) {
    nmdb_.set_offload_capable(failed, false);
    flight().record(obs::FlightEventKind::kRoleChange, sim_->now(), 0, failed,
                    obs::FlightEvent::kNoNode, 0.0, "host>dead");
  }
  nmdb_.set_hosting(failed, false);
  // Collect the relationships to move.
  std::vector<ActiveOffload> moved;
  std::vector<std::uint64_t> to_erase;
  for (const auto& [id, offload] : offloads_) {
    if (offload.destination != failed) continue;
    // Adopted delegations are dropped, not REP'd: the replica would serve a
    // foreign busy node this manager never hears STATs from. Release the
    // busy client (reachable over the federation bridge) so it reclaims its
    // agents; the origin shard re-solves and re-delegates.
    if (offload.external_origin) {
      to_erase.push_back(id);
      metrics_.tx_release->inc();
      ++releases_;
      metrics_.releases->inc();
      transport_->send(config_.endpoint, client_endpoint(offload.busy),
                       Message{ReleaseMsg{offload.busy, failed}},
                       sim::Priority::kNormal, "release",
                       offload.trace.trace_id);
      continue;
    }
    moved.push_back(offload);
    to_erase.push_back(id);
    // Tell the (possibly still alive) old destination to drop the hosted
    // agents; harmless no-op when it is actually dead. Carries the same
    // kind/trace passengers as every other Release so the hop is labelled
    // in the flight recorder and classified by the wire codec.
    metrics_.tx_release->inc();
    transport_->send(config_.endpoint, client_endpoint(failed),
                     Message{ReleaseMsg{offload.busy, failed}},
                     sim::Priority::kNormal, "release",
                     offload.trace.trace_id);
  }
  for (std::uint64_t id : to_erase) offloads_.erase(id);

  // Pick replicas: nearest candidate (by hops) with spare capacity, net of
  // capacity already booked by live relationships (same reservation rule as
  // the placement cycle — lagging STATs must not cause over-booking).
  std::map<graph::NodeId, double> booked;
  for (const auto& [id, offload] : offloads_)
    booked[offload.destination] += offload.amount *
                                   nmdb_.platform_factor(offload.busy) /
                                   nmdb_.platform_factor(offload.destination);
  for (const ActiveOffload& old : moved) {
    const std::vector<std::uint32_t> hops =
        graph::bfs_hops(nmdb_.network().graph(), old.busy);
    graph::NodeId best = graph::kInvalidNode;
    std::uint32_t best_hops = graph::kUnreachable;
    for (graph::NodeId candidate : nmdb_.candidate_nodes()) {
      if (candidate == failed || candidate == old.busy) continue;
      // Distrusted nodes are no better as replicas than as planned
      // destinations (DESIGN.md §14).
      if (config_.trust_weighting &&
          nmdb_.trust(candidate) < config_.trust_exclude_below)
        continue;
      const double spare =
          nmdb_.thresholds(candidate)
              .spare_capacity(nmdb_.network().node_utilization(candidate)) -
          booked[candidate];
      if (spare < old.amount) continue;
      if (hops[candidate] < best_hops) {
        best_hops = hops[candidate];
        best = candidate;
      }
    }
    if (best == graph::kInvalidNode) {
      DUST_LOG_WARN << "manager: no replica available for busy node "
                    << old.busy;
      continue;
    }
    booked[best] += old.amount * nmdb_.platform_factor(old.busy) /
                    nmdb_.platform_factor(best);
    // The REP span extends the original offload's causal chain (whose tip
    // is the client's offload_ack span once acknowledged).
    const obs::TraceContext rep_ctx = obs::record_instant(
        obs::MetricRegistry::global(), "rep", kManagerTrack, old.trace,
        sim_->now());
    ActiveOffload replacement = old;
    replacement.request_id = next_request_id_++;
    replacement.destination = best;
    replacement.acknowledged = false;
    replacement.trace = rep_ctx;
    replacement.requested_at = sim_->now();
    replacement.retransmits = 0;
    replacement.via_rep = true;
    // The old controllable route pointed at the dead destination; install
    // the best hop-bounded route to the replica instead.
    replacement.route =
        graph::hop_bounded_path(nmdb_.network().graph(), old.busy, best,
                                nmdb_.network().inverse_bandwidth_costs(),
                                config_.optimizer.placement.max_hops)
            .nodes;
    offloads_[replacement.request_id] = replacement;
    nmdb_.set_hosting(best, true);
    metrics_.tx_rep->inc();
    flight().record(obs::FlightEventKind::kReplicaSubstitution, sim_->now(),
                    rep_ctx.trace_id, failed, best, old.amount,
                    "req " + std::to_string(replacement.request_id));
    transport_->send(
        config_.endpoint, client_endpoint(old.busy),
        Message{RepMsg{failed, best, old.busy, replacement.request_id,
                       old.amount, rep_ctx}},
        sim::Priority::kNormal, "rep", rep_ctx.trace_id);
  }
}

std::uint64_t DustManager::create_delegated_offload(graph::NodeId busy,
                                                    graph::NodeId destination,
                                                    double amount,
                                                    std::uint32_t agents) {
  const obs::TraceContext stat_ctx =
      busy < last_stat_trace_.size() ? last_stat_trace_[busy]
                                     : obs::TraceContext{};
  const obs::TraceContext request_ctx =
      obs::record_instant(obs::MetricRegistry::global(), "delegate_offload",
                          kManagerTrack, stat_ctx, sim_->now());
  ActiveOffload offload;
  offload.request_id = next_request_id_++;
  offload.busy = busy;
  offload.destination = destination;
  offload.amount = amount;
  offload.agents = agents;
  offload.trace = request_ctx;
  offload.requested_at = sim_->now();
  offload.external_destination = true;
  offloads_[offload.request_id] = offload;
  metrics_.offloads_created->inc();
  flight().record(obs::FlightEventKind::kOffloadCreated, sim_->now(),
                  request_ctx.trace_id, busy, destination, amount,
                  "delegated req " + std::to_string(offload.request_id));
  // Only the busy client gets the request: it ACKs here and sends the
  // AgentTransfer straight to the foreign destination (whose own shard
  // already booked the capacity when it granted the delegation).
  OffloadRequestMsg request{offload.request_id, busy,         destination,
                            amount,             agents,       {},
                            request_ctx};
  metrics_.tx_offload_request->inc();
  transport_->send(config_.endpoint, client_endpoint(busy), Message{request},
                   sim::Priority::kNormal, "offload_request",
                   request_ctx.trace_id);
  return offload.request_id;
}

std::uint64_t DustManager::adopt_external_offload(graph::NodeId busy,
                                                  graph::NodeId destination,
                                                  double amount,
                                                  std::uint32_t agents) {
  ActiveOffload offload;
  offload.request_id = next_request_id_++;
  offload.busy = busy;
  offload.destination = destination;
  offload.amount = amount;
  offload.agents = agents;
  // The origin shard owns the busy-side handshake; by the time the grant is
  // sent this side's only job is supervising the destination.
  offload.acknowledged = true;
  offload.requested_at = sim_->now();
  offload.external_origin = true;
  offloads_[offload.request_id] = offload;
  nmdb_.set_hosting(destination, true);
  metrics_.offloads_created->inc();
  flight().record(obs::FlightEventKind::kOffloadCreated, sim_->now(), 0, busy,
                  destination, amount,
                  "adopted req " + std::to_string(offload.request_id));
  // Grace-stamp the keepalive clock: the destination only starts
  // keepaliving after the foreign AgentTransfer lands.
  sim::TimeMs& last = last_keepalive_[destination];
  last = std::max(last, sim_->now());
  return offload.request_id;
}

bool DustManager::drop_offload(std::uint64_t request_id) {
  auto it = offloads_.find(request_id);
  if (it == offloads_.end()) return false;
  const graph::NodeId destination = it->second.destination;
  offloads_.erase(it);
  nmdb_.set_hosting(destination, destination_hosting(destination));
  return true;
}

std::size_t DustManager::nodes_reporting() const noexcept {
  std::size_t n = 0;
  for (const sim::TimeMs at : last_stat_at_)
    if (at != kNeverStat) ++n;
  return n;
}

std::vector<ActiveOffload> DustManager::active_offloads() const {
  std::vector<ActiveOffload> out;
  out.reserve(offloads_.size());
  for (const auto& [id, offload] : offloads_) out.push_back(offload);
  return out;
}

}  // namespace dust::core
