#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "solver/branch_and_bound.hpp"
#include "solver/min_cost_flow.hpp"
#include "solver/simplex.hpp"
#include "solver/transportation.hpp"
#include "util/timer.hpp"

namespace dust::core {

namespace {

constexpr double kAmountEps = 1e-9;

solver::TransportationProblem to_transportation(const PlacementProblem& p) {
  solver::TransportationProblem t;
  t.supply = p.cs;
  t.capacity = p.cd;
  t.cost = p.trmin;
  return t;
}

void extract_assignments(const PlacementProblem& problem,
                         const std::vector<double>& flow,
                         PlacementResult& result) {
  const std::size_t n = problem.candidates.size();
  for (std::size_t bi = 0; bi < problem.busy.size(); ++bi) {
    for (std::size_t cj = 0; cj < n; ++cj) {
      const double amount = flow[bi * n + cj];
      if (amount <= kAmountEps) continue;
      result.assignments.push_back(Assignment{
          problem.busy[bi], problem.candidates[cj], amount,
          problem.trmin[bi * n + cj]});
    }
  }
}

// Generalized (heterogeneous) model: capacity rows carry the platform
// coefficient f_i / f_j. No longer a pure transportation problem, so it is
// solved with the general simplex regardless of the configured backend.
solver::LinearProgram to_general_lp(const PlacementProblem& p,
                                    bool supply_equality) {
  const std::size_t m = p.busy.size();
  const std::size_t n = p.candidates.size();
  solver::LinearProgram lp;
  for (std::size_t cell = 0; cell < m * n; ++cell) {
    if (p.trmin[cell] == solver::kInfinity)
      lp.add_variable(0.0, 0.0, 0.0);
    else
      lp.add_variable(0.0, solver::kInfinity, p.trmin[cell]);
  }
  for (std::size_t bi = 0; bi < m; ++bi) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t cj = 0; cj < n; ++cj) terms.emplace_back(bi * n + cj, 1.0);
    lp.add_constraint(std::move(terms),
                      supply_equality ? solver::Sense::kEqual
                                      : solver::Sense::kLessEqual,
                      p.cs[bi]);
  }
  for (std::size_t cj = 0; cj < n; ++cj) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t bi = 0; bi < m; ++bi)
      terms.emplace_back(bi * n + cj, p.capacity_coefficient(bi, cj));
    lp.add_constraint(std::move(terms), solver::Sense::kLessEqual, p.cd[cj]);
  }
  return lp;
}

PlacementResult solve_heterogeneous_exact(const PlacementProblem& problem) {
  PlacementResult result;
  util::Timer timer;
  const solver::LinearProgram lp = to_general_lp(problem, true);
  const solver::Solution s = solver::solve_simplex(lp);
  result.status = s.status;
  result.solver_iterations = s.iterations;
  if (s.optimal()) {
    result.objective = s.objective;
    extract_assignments(problem, s.values, result);
  }
  result.solve_seconds = timer.seconds();
  return result;
}

PlacementResult solve_heterogeneous_partial(const PlacementProblem& problem) {
  // Phase 1: maximize shipped load; phase 2: minimum cost at that level.
  PlacementResult result;
  util::Timer timer;
  const std::size_t total_vars = problem.busy.size() * problem.candidates.size();
  solver::LinearProgram max_ship = to_general_lp(problem, false);
  {
    // Overwrite objective: maximize Σ x == minimize -Σ x.
    solver::LinearProgram rebuilt;
    for (std::size_t v = 0; v < max_ship.variable_count(); ++v) {
      const solver::Variable& var = max_ship.variable(v);
      rebuilt.add_variable(var.lower, var.upper, -1.0);
    }
    for (std::size_t c = 0; c < max_ship.constraint_count(); ++c)
      rebuilt.add_constraint(max_ship.constraint(c));
    max_ship = std::move(rebuilt);
  }
  const solver::Solution ship = solver::solve_simplex(max_ship);
  if (!ship.optimal()) {
    result.status = ship.status;
    result.solve_seconds = timer.seconds();
    return result;
  }
  const double shipped = -ship.objective;
  solver::LinearProgram min_cost = to_general_lp(problem, false);
  std::vector<std::pair<std::size_t, double>> all;
  for (std::size_t v = 0; v < total_vars; ++v) all.emplace_back(v, 1.0);
  // Slight slack keeps the pinned total numerically feasible.
  min_cost.add_constraint(std::move(all), solver::Sense::kGreaterEqual,
                          shipped * (1.0 - 1e-9) - 1e-9);
  const solver::Solution s = solver::solve_simplex(min_cost);
  result.status = s.status;
  result.solver_iterations = ship.iterations + s.iterations;
  if (s.optimal()) {
    result.objective = s.objective;
    extract_assignments(problem, s.values, result);
    result.unplaced = std::max(0.0, problem.total_excess() - shipped);
  }
  result.solve_seconds = timer.seconds();
  return result;
}

}  // namespace

const char* to_string(SolverBackend backend) noexcept {
  switch (backend) {
    case SolverBackend::kTransportation: return "transportation";
    case SolverBackend::kSimplex: return "simplex";
    case SolverBackend::kMinCostFlow: return "min-cost-flow";
    case SolverBackend::kBranchAndBound: return "branch-and-bound";
  }
  return "?";
}

namespace {

// Engine-level solve metrics; per-backend detail (simplex iterations, B&B
// node counts) is recorded inside dust::solver itself. Handles are magic
// statics so parallel iteration sweeps only pay relaxed atomics per solve.
struct EngineMetrics {
  obs::Counter& solves;
  obs::Counter& infeasible;
  obs::Counter& partial;
  obs::Histogram& solve_ms;
  obs::Histogram& build_ms;
  obs::Histogram& iterations;
  obs::Counter& warm_solves;
  obs::Counter& cold_solves;
  obs::Counter& dirty_resolves;
  obs::Counter& warm_shape_fallback;
  obs::Counter& warm_verify_mismatch;
  obs::Histogram& warm_solve_ms;
  obs::Histogram& cold_solve_ms;
  static EngineMetrics& get() {
    obs::MetricRegistry& registry = obs::MetricRegistry::global();
    static EngineMetrics metrics{
        registry.counter("dust_solver_solves_total"),
        registry.counter("dust_solver_infeasible_total"),
        registry.counter("dust_solver_partial_total"),
        registry.histogram("dust_solver_solve_ms"),
        registry.histogram("dust_solver_build_ms"),
        registry.histogram("dust_solver_iterations"),
        registry.counter("dust_solver_warm_solves_total"),
        registry.counter("dust_solver_cold_solves_total"),
        registry.counter("dust_solver_dirty_resolves_total"),
        registry.counter("dust_solver_warm_shape_fallback_total"),
        registry.counter("dust_solver_warm_verify_mismatch_total"),
        registry.histogram("dust_solver_warm_solve_ms"),
        registry.histogram("dust_solver_cold_solve_ms")};
    return metrics;
  }
};

}  // namespace

PlacementResult OptimizationEngine::run(const Nmdb& nmdb) const {
  return run(nmdb, nullptr);
}

PlacementResult OptimizationEngine::run(const Nmdb& nmdb,
                                        PlacementProblem* problem_out) const {
  util::Timer build_timer;
  PlacementProblem problem = build_placement_problem(nmdb, options_.placement);
  const double build_seconds = build_timer.seconds();
  PlacementResult result = solve(problem);
  result.build_seconds = build_seconds;
  EngineMetrics::get().build_ms.observe(build_seconds * 1e3);
  if (problem_out != nullptr) *problem_out = std::move(problem);
  return result;
}

PlacementResult OptimizationEngine::solve(const PlacementProblem& problem) const {
  EngineMetrics& metrics = EngineMetrics::get();
  metrics.solves.inc();
  if (problem.busy.empty()) {
    // Nothing to place. Return a fresh zero-flow optimum and drop any
    // retained warm state: when churn empties the busy set mid-run the next
    // non-empty cycle must solve cold rather than seed from a basis whose
    // shape no longer reflects reality.
    warm_.valid = false;
    warm_.basis.valid = false;
    PlacementResult result;
    result.status = solver::Status::kOptimal;
    result.paths_explored = problem.paths_explored;
    return result;
  }
  PlacementResult result = solve_exact(problem);
  if (result.status == solver::Status::kInfeasible && options_.allow_partial) {
    metrics.partial.inc();
    PlacementResult partial = solve_partial(problem);
    partial.paths_explored = problem.paths_explored;
    metrics.solve_ms.observe(partial.solve_seconds * 1e3);
    metrics.iterations.observe(static_cast<double>(partial.solver_iterations));
    return partial;
  }
  if (result.status == solver::Status::kInfeasible) metrics.infeasible.inc();
  result.paths_explored = problem.paths_explored;
  metrics.solve_ms.observe(result.solve_seconds * 1e3);
  metrics.iterations.observe(static_cast<double>(result.solver_iterations));
  return result;
}

PlacementResult OptimizationEngine::solve_exact(
    const PlacementProblem& problem) const {
  if (problem.heterogeneous()) return solve_heterogeneous_exact(problem);
  PlacementResult result;
  util::Timer timer;
  switch (options_.backend) {
    case SolverBackend::kTransportation:
      return solve_transportation_backend(problem);
    case SolverBackend::kSimplex: {
      const solver::LinearProgram lp =
          solver::to_linear_program(to_transportation(problem));
      const solver::Solution s = solver::solve_simplex(lp);
      result.status = s.status;
      result.solver_iterations = s.iterations;
      if (s.optimal()) {
        result.objective = s.objective;
        extract_assignments(problem, s.values, result);
      }
      break;
    }
    case SolverBackend::kBranchAndBound: {
      const solver::LinearProgram lp =
          solver::to_linear_program(to_transportation(problem));
      const solver::Solution s = solver::solve_branch_and_bound(lp);
      result.status = s.status;
      result.solver_iterations = s.iterations;
      if (s.optimal()) {
        result.objective = s.objective;
        extract_assignments(problem, s.values, result);
      }
      break;
    }
    case SolverBackend::kMinCostFlow: {
      // Exact solve via MCMF: feasible iff max-flow == ΣCs over finite arcs.
      const std::size_t m = problem.busy.size();
      const std::size_t n = problem.candidates.size();
      solver::MinCostFlow mcf(m + n + 2);
      const std::size_t source = m + n;
      const std::size_t sink = m + n + 1;
      for (std::size_t bi = 0; bi < m; ++bi)
        mcf.add_arc(source, bi, problem.cs[bi], 0.0);
      std::vector<std::size_t> arc_of(m * n, static_cast<std::size_t>(-1));
      for (std::size_t bi = 0; bi < m; ++bi)
        for (std::size_t cj = 0; cj < n; ++cj)
          if (problem.trmin[bi * n + cj] != solver::kInfinity)
            arc_of[bi * n + cj] = mcf.add_arc(bi, m + cj, solver::kInfinity,
                                              problem.trmin[bi * n + cj]);
      for (std::size_t cj = 0; cj < n; ++cj)
        mcf.add_arc(m + cj, sink, problem.cd[cj], 0.0);
      const solver::MinCostFlow::FlowResult f = mcf.solve(source, sink);
      result.solver_iterations = f.augmentations;
      if (f.max_flow + 1e-6 < problem.total_excess()) {
        result.status = solver::Status::kInfeasible;
        break;
      }
      result.status = solver::Status::kOptimal;
      result.objective = f.total_cost;
      std::vector<double> flow(m * n, 0.0);
      for (std::size_t cell = 0; cell < m * n; ++cell)
        if (arc_of[cell] != static_cast<std::size_t>(-1))
          flow[cell] = mcf.arc_flow(arc_of[cell]);
      extract_assignments(problem, flow, result);
      break;
    }
  }
  result.solve_seconds = timer.seconds();
  return result;
}

PlacementResult OptimizationEngine::solve_transportation_backend(
    const PlacementProblem& problem) const {
  EngineMetrics& metrics = EngineMetrics::get();
  const std::size_t cells = problem.busy.size() * problem.candidates.size();
  const bool shape_matches = warm_.valid && warm_.flow.size() == cells &&
                             warm_.busy == problem.busy &&
                             warm_.candidates == problem.candidates;
  const bool warm = options_.warm_start && shape_matches;
  if (options_.warm_start && warm_.valid && !shape_matches)
    metrics.warm_shape_fallback.inc();

  PlacementResult result;
  util::Timer timer;
  const solver::TransportationProblem t = to_transportation(problem);
  // Under warm_start the solver also consults/refreshes the retained basis:
  // if this instance differs from the previous one in cost cells only, it
  // re-optimizes from that basis (dirty-basis path) and ignores the flow
  // hint; otherwise the flow hint seeds a fresh least-cost start as before.
  // A shape mismatch at the engine level implies mismatched balanced
  // quantities at the solver level, so the basis never leaks across shapes.
  solver::TransportationResult solved =
      options_.warm_start
          ? solver::solve_transportation_dirty(t, warm_.basis,
                                               warm ? &warm_.flow : nullptr)
          : solver::solve_transportation(t);
  result.status = solved.status;
  result.solver_iterations = solved.iterations;
  if (solved.optimal()) {
    result.objective = solved.objective;
    extract_assignments(problem, solved.flow, result);
  }
  result.solve_seconds = timer.seconds();
  if (solved.dirty_resolve) {
    ++warm_.dirty_resolves;
    metrics.dirty_resolves.inc();
  }
  if (warm || solved.dirty_resolve) {
    ++warm_.warm_solves;
    metrics.warm_solves.inc();
    metrics.warm_solve_ms.observe(result.solve_seconds * 1e3);
  } else {
    ++warm_.cold_solves;
    metrics.cold_solves.inc();
    metrics.cold_solve_ms.observe(result.solve_seconds * 1e3);
  }

  if ((warm || solved.dirty_resolve) && options_.verify_warm_start) {
    // Debug cross-check: a warm start may only change the pivot path, never
    // the optimum. Disagreement means a solver bug — count it and trust the
    // cold answer.
    solver::TransportationResult cold = solver::solve_transportation(t);
    const bool agree =
        cold.status == solved.status &&
        (!cold.optimal() ||
         std::abs(cold.objective - solved.objective) <=
             1e-6 * std::max(1.0, std::abs(cold.objective)));
    if (!agree) {
      metrics.warm_verify_mismatch.inc();
      warm_.basis.valid = false;  // the retained basis produced a wrong optimum
      result = PlacementResult{};
      result.status = cold.status;
      result.solver_iterations = cold.iterations;
      if (cold.optimal()) {
        result.objective = cold.objective;
        extract_assignments(problem, cold.flow, result);
      }
      result.solve_seconds = timer.seconds();
      solved = std::move(cold);
    }
  }

  if (options_.warm_start && solved.optimal()) {
    warm_.busy = problem.busy;
    warm_.candidates = problem.candidates;
    warm_.flow = std::move(solved.flow);
    warm_.valid = true;
  } else {
    warm_.valid = false;
  }
  return result;
}

PlacementResult OptimizationEngine::solve_partial(
    const PlacementProblem& problem) const {
  if (problem.heterogeneous()) return solve_heterogeneous_partial(problem);
  // Min-cost max-offload: ship as much of ΣCs as the reachable capacity
  // allows, at minimum cost; the remainder is reported as unplaced.
  PlacementResult result;
  util::Timer timer;
  const std::size_t m = problem.busy.size();
  const std::size_t n = problem.candidates.size();
  solver::MinCostFlow mcf(m + n + 2);
  const std::size_t source = m + n;
  const std::size_t sink = m + n + 1;
  for (std::size_t bi = 0; bi < m; ++bi)
    mcf.add_arc(source, bi, problem.cs[bi], 0.0);
  std::vector<std::size_t> arc_of(m * n, static_cast<std::size_t>(-1));
  for (std::size_t bi = 0; bi < m; ++bi)
    for (std::size_t cj = 0; cj < n; ++cj)
      if (problem.trmin[bi * n + cj] != solver::kInfinity)
        arc_of[bi * n + cj] = mcf.add_arc(bi, m + cj, solver::kInfinity,
                                          problem.trmin[bi * n + cj]);
  for (std::size_t cj = 0; cj < n; ++cj)
    mcf.add_arc(m + cj, sink, problem.cd[cj], 0.0);
  const solver::MinCostFlow::FlowResult f = mcf.solve(source, sink);
  result.solver_iterations = f.augmentations;
  result.status = solver::Status::kOptimal;
  result.objective = f.total_cost;
  result.unplaced = std::max(0.0, problem.total_excess() - f.max_flow);
  std::vector<double> flow(m * n, 0.0);
  for (std::size_t cell = 0; cell < m * n; ++cell)
    if (arc_of[cell] != static_cast<std::size_t>(-1))
      flow[cell] = mcf.arc_flow(arc_of[cell]);
  extract_assignments(problem, flow, result);
  result.solve_seconds = timer.seconds();
  return result;
}

}  // namespace dust::core
