// Zone partitioning (paper §V-B conclusion): "dividing large-scale networks
// into zones containing a maximum of 80 nodes" keeps per-zone optimization
// cheap. ZonePartitioner grows connected zones by BFS; ZonedOptimizer runs
// the optimization engine independently per zone (offloads never cross zone
// boundaries) and merges the results.
#pragma once

#include <vector>

#include "core/optimizer.hpp"

namespace dust::core {

struct Zone {
  std::vector<graph::NodeId> members;
};

/// Partition the graph into connected zones of at most `max_zone_size` nodes
/// via BFS growth from unassigned seeds. Every node lands in exactly one
/// zone; zones are connected subgraphs.
std::vector<Zone> partition_zones(const graph::Graph& graph,
                                  std::size_t max_zone_size);

struct ZonedResult {
  std::vector<PlacementResult> per_zone;
  double objective = 0.0;
  double unplaced = 0.0;       ///< excess that its own zone could not absorb
  double total_seconds = 0.0;  ///< sum of per-zone build+solve times
  std::size_t zones = 0;

  [[nodiscard]] std::vector<Assignment> all_assignments() const;
};

/// Run the optimizer per zone. Busy/candidate sets are restricted to zone
/// members; per-zone infeasibility degrades to a partial solve so other
/// zones still complete.
ZonedResult optimize_by_zones(const Nmdb& nmdb, std::size_t max_zone_size,
                              OptimizerOptions options);

}  // namespace dust::core
