#include "core/baselines.hpp"

#include <algorithm>

#include "graph/paths.hpp"
#include "util/timer.hpp"

namespace dust::core {

namespace {

struct CandidateInfo {
  graph::NodeId node;
  std::uint32_t hops;
  double tr_seconds;
};

std::vector<CandidateInfo> reachable_candidates(
    const Nmdb& nmdb, graph::NodeId busy, const std::vector<double>& remaining,
    std::uint32_t max_hops) {
  const net::NetworkState& net = nmdb.network();
  const std::vector<std::uint32_t> hops = graph::bfs_hops(net.graph(), busy);
  const std::vector<double> cost = graph::hop_bounded_min_cost(
      net.graph(), busy, net.inverse_bandwidth_costs(), max_hops);
  const double data_mb = net.monitoring_data_mb(busy);
  std::vector<CandidateInfo> out;
  for (graph::NodeId v = 0; v < net.node_count(); ++v) {
    if (v == busy || remaining[v] <= 0) continue;
    if (hops[v] == graph::kUnreachable) continue;
    if (max_hops != 0 && hops[v] > max_hops) continue;
    if (cost[v] == graph::kInfiniteCost) continue;
    out.push_back(CandidateInfo{v, hops[v], data_mb * cost[v]});
  }
  return out;
}

BaselineResult place(const Nmdb& nmdb, std::uint32_t max_hops,
                     const std::function<void(std::vector<CandidateInfo>&)>&
                         order_candidates) {
  util::Timer timer;
  BaselineResult result;
  const net::NetworkState& net = nmdb.network();
  std::vector<double> remaining(net.node_count(), 0.0);
  for (graph::NodeId o : nmdb.candidate_nodes())
    remaining[o] = nmdb.thresholds(o).spare_capacity(net.node_utilization(o));

  for (graph::NodeId b : nmdb.busy_nodes()) {
    double left = nmdb.thresholds(b).excess_load(net.node_utilization(b));
    std::vector<CandidateInfo> candidates =
        reachable_candidates(nmdb, b, remaining, max_hops);
    order_candidates(candidates);
    for (const CandidateInfo& candidate : candidates) {
      if (left <= 1e-12) break;
      const double amount = std::min(left, remaining[candidate.node]);
      if (amount <= 0) continue;
      result.assignments.push_back(
          Assignment{b, candidate.node, amount, candidate.tr_seconds});
      result.objective += amount * candidate.tr_seconds;
      remaining[candidate.node] -= amount;
      left -= amount;
    }
    result.unplaced += std::max(0.0, left);
  }
  result.solve_seconds = timer.seconds();
  return result;
}

}  // namespace

BaselineResult greedy_nearest_placement(const Nmdb& nmdb,
                                        std::uint32_t max_hops) {
  return place(nmdb, max_hops, [](std::vector<CandidateInfo>& candidates) {
    std::sort(candidates.begin(), candidates.end(),
              [](const CandidateInfo& a, const CandidateInfo& b) {
                if (a.hops != b.hops) return a.hops < b.hops;
                if (a.tr_seconds != b.tr_seconds)
                  return a.tr_seconds < b.tr_seconds;
                return a.node < b.node;
              });
  });
}

BaselineResult random_placement(const Nmdb& nmdb, util::Rng& rng,
                                std::uint32_t max_hops) {
  return place(nmdb, max_hops, [&rng](std::vector<CandidateInfo>& candidates) {
    rng.shuffle(candidates);
  });
}

}  // namespace dust::core
