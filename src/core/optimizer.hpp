// Optimization engine: solves the placement model (paper Eq. 3) with a
// choice of exact backends, plus a partial-offload fallback for infeasible
// instances (documented extension — the paper reports such instances as
// "infeasible optimization", Fig. 7).
#pragma once

#include "core/placement.hpp"

namespace dust::core {

enum class SolverBackend {
  kTransportation,  ///< dedicated transportation simplex (default, fastest)
  kSimplex,         ///< general two-phase simplex on the LP form
  kMinCostFlow,     ///< successive-shortest-paths on the bipartite graph
  kBranchAndBound,  ///< MILP path (identical result; model is continuous)
};

[[nodiscard]] const char* to_string(SolverBackend backend) noexcept;

struct OptimizerOptions {
  PlacementOptions placement;
  SolverBackend backend = SolverBackend::kTransportation;
  /// If the exact model is infeasible (ΣCs > reachable ΣCd), fall back to a
  /// min-cost max-offload solve and report the remainder in `unplaced`.
  bool allow_partial = false;
};

class OptimizationEngine {
 public:
  explicit OptimizationEngine(OptimizerOptions options = {})
      : options_(options) {}

  [[nodiscard]] const OptimizerOptions& options() const noexcept {
    return options_;
  }

  /// Build the model from the NMDB snapshot and solve it.
  [[nodiscard]] PlacementResult run(const Nmdb& nmdb) const;

  /// Solve an already-built model (timing excludes the build phase).
  [[nodiscard]] PlacementResult solve(const PlacementProblem& problem) const;

 private:
  [[nodiscard]] PlacementResult solve_exact(const PlacementProblem& problem) const;
  [[nodiscard]] PlacementResult solve_partial(const PlacementProblem& problem) const;

  OptimizerOptions options_;
};

}  // namespace dust::core
