// Optimization engine: solves the placement model (paper Eq. 3) with a
// choice of exact backends, plus a partial-offload fallback for infeasible
// instances (documented extension — the paper reports such instances as
// "infeasible optimization", Fig. 7).
#pragma once

#include "core/placement.hpp"
#include "solver/transportation.hpp"

namespace dust::core {

enum class SolverBackend {
  kTransportation,  ///< dedicated transportation simplex (default, fastest)
  kSimplex,         ///< general two-phase simplex on the LP form
  kMinCostFlow,     ///< successive-shortest-paths on the bipartite graph
  kBranchAndBound,  ///< MILP path (identical result; model is continuous)
};

[[nodiscard]] const char* to_string(SolverBackend backend) noexcept;

struct OptimizerOptions {
  PlacementOptions placement;
  SolverBackend backend = SolverBackend::kTransportation;
  /// If the exact model is infeasible (ΣCs > reachable ΣCd), fall back to a
  /// min-cost max-offload solve and report the remainder in `unplaced`.
  bool allow_partial = false;
  /// Incremental pipeline (DESIGN.md §8): retain the previous cycle's
  /// optimal flow and use it to seed the next solve's starting basis when
  /// the problem shape (busy/candidate sets) is unchanged; cold solve
  /// otherwise. Additionally retains the simplex basis itself: when only
  /// cost cells changed since the previous solve (supplies and capacities
  /// bit-identical — the common steady-state case where links churn but
  /// node loads hold), MODI resumes from the old basis directly instead of
  /// rebuilding an initial solution (dirty-basis re-solve, DESIGN.md §13).
  /// kTransportation only; other backends always solve cold.
  /// Makes the engine stateful across solve() calls — keep one engine per
  /// control loop (or per thread) rather than sharing an instance.
  bool warm_start = false;
  /// Debug cross-check: after every warm-started solve, also solve cold and
  /// compare objectives; on disagreement log an error and return the cold
  /// result. Costs a full extra solve per cycle — tests/debugging only.
  bool verify_warm_start = false;
};

class OptimizationEngine {
 public:
  explicit OptimizationEngine(OptimizerOptions options = {})
      : options_(options) {}

  [[nodiscard]] const OptimizerOptions& options() const noexcept {
    return options_;
  }

  /// Build the model from the NMDB snapshot and solve it.
  [[nodiscard]] PlacementResult run(const Nmdb& nmdb) const;

  /// Same, but also hands the built model back to the caller (the
  /// dust::check harness re-checks the result against the exact problem the
  /// engine solved). `problem_out` may be null.
  [[nodiscard]] PlacementResult run(const Nmdb& nmdb,
                                    PlacementProblem* problem_out) const;

  /// Solve an already-built model (timing excludes the build phase).
  [[nodiscard]] PlacementResult solve(const PlacementProblem& problem) const;

  /// Warm solves since construction (shape matched and the previous flow
  /// seeded the basis) — observable for tests and benches.
  [[nodiscard]] std::size_t warm_solves() const noexcept {
    return warm_.warm_solves;
  }
  [[nodiscard]] std::size_t cold_solves() const noexcept {
    return warm_.cold_solves;
  }
  /// Warm solves that took the dirty-basis fast path (only costs changed;
  /// MODI resumed from the retained basis with no initial-solution build).
  [[nodiscard]] std::size_t dirty_resolves() const noexcept {
    return warm_.dirty_resolves;
  }
  /// Drop the retained flow and basis (next solve is cold).
  void reset_warm_state() const noexcept {
    warm_.valid = false;
    warm_.basis.valid = false;
  }

 private:
  [[nodiscard]] PlacementResult solve_exact(const PlacementProblem& problem) const;
  [[nodiscard]] PlacementResult solve_partial(const PlacementProblem& problem) const;
  [[nodiscard]] PlacementResult solve_transportation_backend(
      const PlacementProblem& problem) const;

  /// Previous cycle's optimal flow + the shape it was solved under.
  /// `mutable` so the const solve path can maintain it; guarded by the
  /// warm_start contract above (one engine per control loop).
  struct WarmState {
    bool valid = false;
    std::vector<graph::NodeId> busy;
    std::vector<graph::NodeId> candidates;
    std::vector<double> flow;  ///< row-major busy x candidates
    /// Retained simplex basis for cost-only re-solves; validity is managed
    /// by the solver (refreshed on optimal exits, dropped on mismatch).
    solver::TransportationBasis basis;
    std::size_t warm_solves = 0;
    std::size_t cold_solves = 0;
    std::size_t dirty_resolves = 0;
  };

  OptimizerOptions options_;
  mutable WarmState warm_;
};

}  // namespace dust::core
