#include "core/routes.hpp"

namespace dust::core {

std::vector<ResolvedRoute> resolve_routes(const net::NetworkState& net,
                                          std::span<const Assignment> plan,
                                          const RouteOptions& options) {
  const std::vector<double> inv = net.inverse_bandwidth_costs();
  std::vector<ResolvedRoute> routes;
  routes.reserve(plan.size());
  for (const Assignment& assignment : plan) {
    ResolvedRoute route;
    route.assignment = assignment;
    const double data_mb = net.monitoring_data_mb(assignment.from);
    route.primary = graph::hop_bounded_path(net.graph(), assignment.from,
                                            assignment.to, inv,
                                            options.max_hops);
    route.primary_seconds = data_mb * route.primary.cost(inv);
    if (options.with_backup && !route.primary.nodes.empty()) {
      // Two cheapest edge-disjoint routes; the one that is not the primary
      // (or the second of the pair) becomes the standby.
      const std::vector<graph::Path> pair = graph::edge_disjoint_paths(
          net.graph(), assignment.from, assignment.to, inv, 2);
      for (const graph::Path& candidate : pair) {
        if (candidate.edges == route.primary.edges) continue;
        // Must share no edge with the primary.
        bool disjoint = true;
        for (graph::EdgeId e : candidate.edges)
          for (graph::EdgeId p : route.primary.edges)
            if (e == p) disjoint = false;
        if (!disjoint) continue;
        route.backup = candidate;
        route.backup_seconds = data_mb * candidate.cost(inv);
        break;
      }
    }
    routes.push_back(std::move(route));
  }
  return routes;
}

}  // namespace dust::core
