// Core DUST domain types: node roles, thresholds, and the Δ_io feasibility
// guide (Eq. 5).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "graph/graph.hpp"

namespace dust::core {

/// DUST-Client roles (§III-B).
enum class NodeRole : std::uint8_t {
  kNoneOffloading,     ///< opted out of offloading (Offload-capable = 0)
  kBusy,               ///< C_i >= Cmax: must shed Cs_i = C_i - Cmax
  kOffloadCandidate,   ///< C_j <= COmax: can absorb Cd_j = COmax - C_j
  kNeutral,            ///< COmax < C < Cmax: neither busy nor a candidate
  kOffloadDestination, ///< candidate currently hosting offloaded agents
};

[[nodiscard]] const char* to_string(NodeRole role) noexcept;

/// User-defined capacity thresholds (percent). Requires
/// x_min <= co_max <= c_max <= 100 — a node cannot be simultaneously a safe
/// destination above co_max, and busy-ness starts at c_max.
struct Thresholds {
  double c_max = 80.0;   ///< busy threshold (Cmax)
  double co_max = 60.0;  ///< offload-candidate threshold (COmax)
  double x_min = 10.0;   ///< minimum node usage (constraint 3e)

  void validate() const {
    if (!(0.0 <= x_min && x_min <= co_max && co_max <= c_max && c_max <= 100.0))
      throw std::invalid_argument(
          "Thresholds: require 0 <= x_min <= co_max <= c_max <= 100");
  }

  /// Role from utilized capacity (ignoring offload-capability opt-out).
  [[nodiscard]] NodeRole classify(double utilization_percent) const noexcept {
    if (utilization_percent >= c_max) return NodeRole::kBusy;
    if (utilization_percent <= co_max) return NodeRole::kOffloadCandidate;
    return NodeRole::kNeutral;
  }

  /// Cs_i for a busy node (callers must check classify() first).
  [[nodiscard]] double excess_load(double utilization_percent) const noexcept {
    return utilization_percent - c_max;
  }
  /// Cd_j for a candidate node.
  [[nodiscard]] double spare_capacity(double utilization_percent) const noexcept {
    return co_max - utilization_percent;
  }

  /// Δ_io = (COmax - x_min) / (100 - Cmax), Eq. 5. The paper recommends
  /// choosing thresholds such that Δ_io >= K_io with K_io ~= 2 to keep the
  /// infeasible-optimization rate low (Fig. 7).
  [[nodiscard]] double delta_io() const {
    const double busy_band = 100.0 - c_max;
    if (busy_band <= 0.0)
      throw std::invalid_argument("Thresholds::delta_io: c_max must be < 100");
    return (co_max - x_min) / busy_band;
  }

  /// Recommended minimum Δ_io (the paper's K_io >= 2 guidance).
  static constexpr double kRecommendedKio = 2.0;
};

}  // namespace dust::core
