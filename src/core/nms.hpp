// Network Monitor Service (NMS) — Fig. 2's trigger box.
//
// "Our 'Network Monitor Service' can initiate network monitoring either
// based on user input or through automated triggers." The NMS watches
// per-node TSDBs through alert rules; when a watched rule transitions to
// Firing it kicks the DUST-Manager into an immediate placement cycle
// instead of waiting for the next periodic run.
#pragma once

#include <map>

#include "core/manager.hpp"
#include "telemetry/alerts.hpp"

namespace dust::core {

class NetworkMonitorService {
 public:
  explicit NetworkMonitorService(DustManager& manager) : manager_(&manager) {}

  /// Watch `db` (non-owning) with `rule`; a Firing transition triggers
  /// placement. One AlertEngine per watched node.
  void watch_node(graph::NodeId node, const telemetry::Tsdb* db,
                  telemetry::AlertRule rule);

  [[nodiscard]] std::size_t watched_count() const noexcept {
    return watches_.size();
  }

  /// User-input trigger (§III-A): run a placement cycle now.
  /// Returns offload relationships created.
  std::size_t trigger_manual();

  /// Evaluate every watched node's rules at `now_ms`; any rule newly firing
  /// triggers one placement cycle (at most one per evaluate call, however
  /// many rules fired). Returns offloads created (0 if nothing fired).
  std::size_t evaluate(std::int64_t now_ms);

  [[nodiscard]] std::size_t triggers() const noexcept { return triggers_; }
  /// Alert state of a node's first watched rule (for tests/inspection).
  [[nodiscard]] telemetry::AlertState state(graph::NodeId node) const;

 private:
  struct Watch {
    const telemetry::Tsdb* db = nullptr;
    telemetry::AlertEngine engine;
  };

  DustManager* manager_;
  std::map<graph::NodeId, Watch> watches_;
  std::size_t triggers_ = 0;
};

}  // namespace dust::core
