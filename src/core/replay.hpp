// Load-trace replay: drive placement from recorded telemetry.
//
// A trace is CSV-ish text, one update per line:
//
//   <time_ms>,<node>,<utilization_percent>[,<monitoring_data_mb>]
//
// sorted or unsorted (replay sorts). ReplayDriver applies updates in time
// order onto an NMDB and runs the optimization engine on a fixed cadence,
// accumulating the overload/offload statistics the closed-loop bench
// reports — but from *your* data instead of a synthetic drift model. Used
// by scenario_cli --trace.
#pragma once

#include <functional>
#include <istream>
#include <vector>

#include "core/optimizer.hpp"

namespace dust::core {

struct LoadUpdate {
  std::int64_t time_ms = 0;
  graph::NodeId node = graph::kInvalidNode;
  double utilization_percent = 0.0;
  double monitoring_data_mb = -1.0;  ///< < 0 = leave unchanged
};

/// Parse a trace; throws std::invalid_argument with a line number on
/// malformed input. '#' comments and blank lines are ignored.
std::vector<LoadUpdate> load_trace(std::istream& in);

struct ReplayOptions {
  std::int64_t placement_period_ms = 60000;
  OptimizerOptions optimizer;
  /// Apply each cycle's plan to the NMDB (the what-if operator), modelling
  /// completed offloads. Off = measure-only.
  bool apply_plans = true;
  /// Invariant observation hook (dust::check): called after every cycle
  /// with the model the engine solved and its result.
  std::function<void(const PlacementProblem&, const PlacementResult&)>
      cycle_observer;
};

struct ReplayReport {
  std::size_t updates_applied = 0;
  std::size_t placement_cycles = 0;
  std::size_t cycles_with_offloads = 0;
  double total_offloaded = 0.0;     ///< capacity-percent moved overall
  double total_unplaced = 0.0;      ///< excess no cycle could place
  std::size_t overloaded_node_cycles = 0;  ///< node-cycles above Cmax after
                                           ///< the cycle's plan applied
  std::size_t node_cycles = 0;

  [[nodiscard]] double overload_fraction() const noexcept {
    return node_cycles ? static_cast<double>(overloaded_node_cycles) /
                             static_cast<double>(node_cycles)
                       : 0.0;
  }
};

/// Replay `trace` over `nmdb` (mutated in place). Updates referencing nodes
/// outside the topology throw. The first placement cycle runs one period
/// after the earliest update.
ReplayReport replay_trace(Nmdb& nmdb, const std::vector<LoadUpdate>& trace,
                          const ReplayOptions& options = {});

}  // namespace dust::core
