#include "core/types.hpp"

namespace dust::core {

const char* to_string(NodeRole role) noexcept {
  switch (role) {
    case NodeRole::kNoneOffloading: return "none-offloading";
    case NodeRole::kBusy: return "busy";
    case NodeRole::kOffloadCandidate: return "offload-candidate";
    case NodeRole::kNeutral: return "neutral";
    case NodeRole::kOffloadDestination: return "offload-destination";
  }
  return "?";
}

}  // namespace dust::core
