// Scenario file I/O: a small line-based text format describing a network
// state + thresholds, so experiments can be authored, saved, and replayed
// without writing C++. Used by the scenario_cli example.
//
// Format ('#' starts a comment, blank lines ignored):
//   nodes <count>                          (must come first)
//   thresholds <cmax> <comax> <xmin>       (optional; defaults 80 60 10)
//   edge <a> <b> <bandwidth_mbps> <utilization>
//   load <node> <utilization_%> <monitoring_data_mb>
//   capable <node> <0|1>
//   factor <node> <platform_factor>
#pragma once

#include <istream>
#include <ostream>

#include "core/nmdb.hpp"

namespace dust::core {

/// Parse a scenario; throws std::invalid_argument with a line number on
/// malformed input.
Nmdb load_scenario(std::istream& in);

/// Serialize an NMDB back to the scenario format (lossless round-trip for
/// everything the format covers).
void save_scenario(std::ostream& os, const Nmdb& nmdb);

}  // namespace dust::core
