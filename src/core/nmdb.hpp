// Network Monitoring Data Base (NMDB) — the DUST-Manager's view of the
// network (§III-B): topology, link utilization, per-node resource
// utilization, offload capability, thresholds, and monitoring-agent counts.
// STAT messages update it; the optimization engine reads it.
#pragma once

#include <optional>
#include <vector>

#include "core/types.hpp"
#include "net/network_state.hpp"

namespace dust::core {

class Nmdb {
 public:
  Nmdb(net::NetworkState state, Thresholds defaults);

  [[nodiscard]] const net::NetworkState& network() const noexcept {
    return state_;
  }
  [[nodiscard]] net::NetworkState& network() noexcept { return state_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return state_.node_count();
  }
  [[nodiscard]] const Thresholds& default_thresholds() const noexcept {
    return defaults_;
  }

  /// Per-node threshold override (heterogeneous personas, §IV-A).
  void set_thresholds(graph::NodeId node, const Thresholds& thresholds);
  [[nodiscard]] const Thresholds& thresholds(graph::NodeId node) const;

  /// Offload-capable handshake result ('1' participates, '0' opts out).
  void set_offload_capable(graph::NodeId node, bool capable);
  [[nodiscard]] bool offload_capable(graph::NodeId node) const;

  /// Platform capacity factor (paper §IV-A: the homogeneity assumption "can
  /// be adjusted with a coefficient factor relating two endpoint platform
  /// capacities"). A node with factor 2 absorbs a unit of another node's
  /// load using half of its own capacity. Default 1 (homogeneous).
  void set_platform_factor(graph::NodeId node, double factor);
  [[nodiscard]] double platform_factor(graph::NodeId node) const;
  [[nodiscard]] bool homogeneous() const noexcept;

  /// Per-node trust score in [0, 1] (DESIGN.md §14): an EWMA of
  /// observed-vs-promised behavior maintained by the manager (keepalive
  /// failures, collector loss audits). 1.0 — the default — means fully
  /// trusted; placement weights Trmin by it when trust weighting is on.
  void set_trust(graph::NodeId node, double trust);
  [[nodiscard]] double trust(graph::NodeId node) const;
  /// Lowest trust across all nodes, and the count below `threshold`.
  [[nodiscard]] double min_trust() const noexcept;
  [[nodiscard]] std::size_t distrusted_count(double threshold) const noexcept;

  /// STAT update: current utilized capacity and monitoring state.
  /// `telemetry_keep_fraction` < 1 records that the node is streaming under
  /// data-plane degradation — its monitoring volume is already thinned.
  void record_stat(graph::NodeId node, double utilization_percent,
                   double monitoring_data_mb, std::uint32_t agent_count,
                   double telemetry_keep_fraction = 1.0);
  [[nodiscard]] std::uint32_t agent_count(graph::NodeId node) const;
  [[nodiscard]] double telemetry_keep_fraction(graph::NodeId node) const;
  /// Any node currently reporting keep fraction < 1 — the signal the next
  /// placement cycle uses to shift load off congested destinations.
  [[nodiscard]] bool any_degraded() const noexcept;

  /// Role of a node under current utilization (opt-outs are kNoneOffloading;
  /// nodes currently hosting offloaded work report kOffloadDestination).
  [[nodiscard]] NodeRole role(graph::NodeId node) const;
  void set_hosting(graph::NodeId node, bool hosting);

  /// V_b: offload-capable nodes with C_i >= Cmax.
  [[nodiscard]] std::vector<graph::NodeId> busy_nodes() const;
  /// V_o: offload-capable nodes with C_j <= COmax. Busy nodes never qualify.
  [[nodiscard]] std::vector<graph::NodeId> candidate_nodes() const;
  /// Allocation-reusing variants: clear `out` and fill it in node order.
  void busy_nodes_into(std::vector<graph::NodeId>& out) const;
  void candidate_nodes_into(std::vector<graph::NodeId>& out) const;

  /// Total load to shed / capacity available (the paper's Cs and Cd).
  [[nodiscard]] double total_excess() const;
  [[nodiscard]] double total_spare() const;

 private:
  net::NetworkState state_;
  Thresholds defaults_;
  std::vector<std::optional<Thresholds>> overrides_;
  std::vector<char> capable_;
  std::vector<char> hosting_;
  std::vector<std::uint32_t> agents_;
  std::vector<double> platform_factor_;
  std::vector<double> keep_fraction_;
  std::vector<double> trust_;
};

}  // namespace dust::core
