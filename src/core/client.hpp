// DUST-Client: per-device agent of the protocol (paper §III-B).
//
// Joins via Offload-capable, streams periodic STATs once acknowledged,
// sheds monitoring agents on Offload-Request (transferring them to the
// destination client), hosts transferred agents and keepalives while doing
// so, re-homes its agents on REP, and reinstalls them on Release.
//
// A client can optionally wrap a sim::MonitoredNode (the testbed device
// model); without one, STAT contents are set explicitly — useful for
// protocol-only tests.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/messages.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/node.hpp"
#include "sim/transport.hpp"
#include "util/rng.hpp"

namespace dust::core {

struct ClientConfig {
  bool offload_capable = true;
  std::int64_t keepalive_interval_ms = 5000;
  /// Device persona sent in the Offload-capable handshake (see
  /// OffloadCapableMsg::platform_factor).
  double platform_factor = 1.0;
  /// Endpoint of the manager this client reports to. The default is the
  /// classic single-manager name; federated deployments point each client
  /// at its home shard's manager endpoint (DESIGN.md §16).
  std::string manager = manager_endpoint();
};

/// Scripted byzantine misbehavior (the dust::check attack axis, DESIGN.md
/// §14). Defaults are fully honest; dust::check installs one of these per
/// attacked node from the scenario's attack script.
struct ByzantineBehavior {
  /// Capacity lying: added to the utilization every STAT reports. Negative
  /// bias under-reports load (the node promises spare capacity it does not
  /// have); positive bias over-reports (hoards capacity). 0 = honest.
  double stat_utilization_bias = 0.0;
  /// Accept-then-drop: the node ACKs offloads and keepalives normally but
  /// silently discards the hosted agents' telemetry. Invisible on the
  /// control plane — only the manager's loss audits can catch it.
  bool blackhole = false;
  /// Keepalive flapping: when flap_period_ms > 0 the node goes silent
  /// (no keepalives, no STATs) for the first flap_down_ms of every
  /// flap_period_ms window, and re-announces Offload-capable on each
  /// up-transition — un-quarantining itself to a trust-blind manager.
  std::int64_t flap_period_ms = 0;
  std::int64_t flap_down_ms = 0;

  [[nodiscard]] bool any() const noexcept {
    return stat_utilization_bias != 0.0 || blackhole || flap_period_ms > 0;
  }
};

class DustClient {
 public:
  DustClient(sim::Simulator& sim, sim::TransportBase& transport,
             graph::NodeId node, ClientConfig config, util::Rng rng,
             sim::MonitoredNode* device = nullptr);
  ~DustClient();

  DustClient(const DustClient&) = delete;
  DustClient& operator=(const DustClient&) = delete;

  /// Send the Offload-capable handshake. STATs begin after the manager ACKs.
  void start();

  /// Re-home after a transport reconnect (the wire layer's reconnect
  /// listener): re-send the Offload-capable handshake so a restarted or
  /// failed-over manager learns this node exists, and — once this client is
  /// already acknowledged — push a fresh STAT immediately so the new
  /// manager plans from current load instead of waiting a full update
  /// interval. Idempotent against the original manager (the duplicate
  /// handshake just re-ACKs; the on_ack guard keeps the STAT task).
  void rehome();

  /// Without a device model: the values the next STATs will report.
  void set_reported_state(double utilization_percent, double monitoring_data_mb,
                          std::uint32_t agent_count);

  /// Push one STAT immediately (also happens on the ACKed interval).
  void send_stat();

  /// Data-plane degradation feedback (the BlockStreamer's ModeListener hook):
  /// records the surviving telemetry fraction so the next STAT advertises a
  /// shrunken Cs — monitoring_data_mb is scaled by it and the raw fraction
  /// rides StatMsg::telemetry_keep_fraction so the manager can re-place load
  /// off the congested destination instead of reading "load shrank".
  void set_telemetry_degradation(double keep_fraction);
  [[nodiscard]] double telemetry_keep_fraction() const noexcept {
    return telemetry_keep_fraction_;
  }

  /// Stream a snapshot of this node to every destination hosting its agents
  /// (QoS kLow). The testbed harness calls this after each device tick.
  void publish_snapshot(const telemetry::DeviceSnapshot& snapshot);

  /// Simulate a node crash: stops keepalives/STATs and ignores messages.
  void set_failed(bool failed);
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// Install a scripted misbehavior (replaces any previous one). Flapping
  /// schedules the up-transition re-announce task immediately.
  void set_byzantine(const ByzantineBehavior& behavior);
  [[nodiscard]] const ByzantineBehavior& byzantine() const noexcept {
    return byzantine_;
  }
  /// True while a flapping node is inside the silent part of its window.
  [[nodiscard]] bool flap_suppressed() const;

  [[nodiscard]] graph::NodeId node() const noexcept { return node_; }
  [[nodiscard]] bool acknowledged() const noexcept { return acknowledged_; }
  /// Agents currently running here for remote owners.
  [[nodiscard]] std::size_t hosted_agent_count() const noexcept;
  /// This node's own agents currently running remotely.
  [[nodiscard]] std::size_t offloaded_agent_count() const noexcept;
  [[nodiscard]] std::vector<graph::NodeId> hosting_destinations() const;
  [[nodiscard]] std::uint64_t keepalives_sent() const noexcept {
    return keepalives_sent_;
  }
  /// Protocol observability for the dust::check harness: how many REP
  /// re-homing orders and Release teardowns this client processed.
  [[nodiscard]] std::uint64_t reps_received() const noexcept {
    return reps_received_;
  }
  [[nodiscard]] std::uint64_t releases_received() const noexcept {
    return releases_received_;
  }
  /// Context of the most recent "host_agents" span (the destination-side
  /// end of an offload chain). A BlockStreamer on this node parents its
  /// data-block spans here, so the fleet trace runs STAT → solve → offload
  /// → ACK → transfer → data blocks across processes. Invalid until the
  /// first transfer lands.
  [[nodiscard]] obs::TraceContext last_host_trace() const noexcept {
    return last_host_trace_;
  }

 private:
  void handle(const sim::Envelope& envelope);
  void on_ack(const AckMsg& msg);
  void on_offload_request(const OffloadRequestMsg& msg);
  void on_agent_transfer(const AgentTransferMsg& msg);
  void on_telemetry(const TelemetryDataMsg& msg);
  void on_rep(const RepMsg& msg);
  void on_release(const ReleaseMsg& msg);
  void ensure_keepalive_task();
  void maybe_stop_keepalive_task();

  /// Global-registry handles (dust_core_tx_*), shared across all clients so
  /// the scrape shows fleet-wide per-message-type counts.
  struct Metrics {
    obs::Counter* tx_offload_capable = nullptr;
    obs::Counter* tx_stat = nullptr;
    obs::Counter* tx_keepalive = nullptr;
    obs::Counter* tx_offload_ack = nullptr;
    obs::Counter* tx_agent_transfer = nullptr;
    obs::Counter* tx_telemetry_data = nullptr;
  };

  sim::Simulator* sim_;
  sim::TransportBase* transport_;
  graph::NodeId node_;
  ClientConfig config_;
  util::Rng rng_;
  sim::MonitoredNode* device_;
  Metrics metrics_;
  std::string track_;  ///< span track label ("client-<node>"), precomputed
  obs::TraceContext last_host_trace_{};  ///< see last_host_trace()

  bool acknowledged_ = false;
  bool failed_ = false;
  double reported_utilization_ = 0.0;
  double reported_data_mb_ = 0.0;
  std::uint32_t reported_agents_ = 0;
  double telemetry_keep_fraction_ = 1.0;

  /// Where this node's own agents went: destination -> blueprint copies
  /// (used to re-instantiate on REP / Release).
  struct OutboundOffload {
    graph::NodeId destination;
    std::vector<telemetry::MonitorAgent> blueprints;
  };
  std::vector<OutboundOffload> outbound_;
  /// Owners whose agents run here, with counts (hosted agents live in the
  /// device model).
  std::vector<std::pair<graph::NodeId, std::uint32_t>> hosted_;

  ByzantineBehavior byzantine_;
  std::unique_ptr<sim::PeriodicTask> stat_task_;
  std::unique_ptr<sim::PeriodicTask> keepalive_task_;
  std::unique_ptr<sim::PeriodicTask> flap_task_;
  std::uint64_t keepalive_seq_ = 0;
  std::uint64_t keepalives_sent_ = 0;
  std::uint64_t reps_received_ = 0;
  std::uint64_t releases_received_ = 0;
  std::uint64_t endpoint_token_ = 0;
};

}  // namespace dust::core
