// Baseline placement strategies for ablation against the ILP optimizer and
// the paper's one-hop heuristic:
//   * greedy-nearest — each busy node ships to the hop-closest candidates
//     with spare capacity (ties by response time), no hop radius limit;
//   * random — each busy node ships to uniformly random candidates with
//     spare capacity. A lower bound on placement quality.
// Both respect capacities (3a) and never overship (3b).
#pragma once

#include "core/placement.hpp"
#include "util/rng.hpp"

namespace dust::core {

struct BaselineResult {
  std::vector<Assignment> assignments;
  double objective = 0.0;  ///< Σ amount · Trmin over chosen pairs
  double unplaced = 0.0;
  double solve_seconds = 0.0;

  [[nodiscard]] bool complete() const noexcept { return unplaced <= 1e-9; }
};

/// Greedy: busy nodes in id order; candidates by (hop distance, response
/// time). max_hops = 0 means unbounded.
BaselineResult greedy_nearest_placement(const Nmdb& nmdb,
                                        std::uint32_t max_hops = 0);

/// Random feasible placement (seeded); max_hops = 0 means unbounded.
BaselineResult random_placement(const Nmdb& nmdb, util::Rng& rng,
                                std::uint32_t max_hops = 0);

}  // namespace dust::core
