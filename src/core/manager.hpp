// DUST-Manager: the decision node (paper §III-B, Fig. 3).
//
// Owns the NMDB, runs the optimization engine on a period, notifies busy
// nodes and destinations with Offload-Request messages, tracks Keepalives
// from hosting destinations, substitutes failed destinations with replicas
// (REP), and releases offloads when a busy node's load recedes below Cmax.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/messages.hpp"
#include "core/nmdb.hpp"
#include "core/optimizer.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/transport.hpp"

namespace dust::core {

struct ManagerConfig {
  std::int64_t update_interval_ms = 60000;    ///< STAT interval sent in ACK
  std::int64_t placement_period_ms = 60000;   ///< optimization cadence
  std::int64_t keepalive_timeout_ms = 15000;  ///< destination declared dead
  std::int64_t keepalive_check_period_ms = 5000;
  /// Hysteresis: release offloads only when the busy node could re-absorb
  /// them with this much headroom below Cmax (prevents offload/release
  /// oscillation when the shed monitoring load is close to the excess).
  double release_margin_percent = 5.0;
  /// Assignments smaller than this (capacity-percent) are not worth a
  /// relationship: skip them rather than move zero agents.
  double min_offload_amount_percent = 1.0;
  /// Re-send an Offload-Request (same request_id, same trace) when it has
  /// not been acknowledged within this long — a dropped request otherwise
  /// dangles forever, since keepalive supervision only covers acknowledged
  /// relationships. 0 disables retransmission (the historical behaviour,
  /// and the default: existing seeded runs consume exactly the same
  /// transport RNG stream). Placement-created offloads only; REP-created
  /// ones are re-homed by the next keepalive sweep instead.
  std::int64_t offload_request_retry_ms = 0;
  /// Incremental placement pipeline (DESIGN.md §8): reuse Trmin rows across
  /// cycles via a dirty-aware cache and warm-start the solver from the
  /// previous cycle's flow. With the default link epsilon of 0 the plans are
  /// identical to full recomputation (warm starts change the pivot path, not
  /// the optimum); steady-state cycles get dramatically cheaper. Off by
  /// default so explicitly configured optimizer options are untouched.
  bool incremental_placement = false;
  /// Keepalive hysteresis: a supervised destination is declared failed only
  /// after this many *consecutive* keepalive checks found it overdue. The
  /// default of 1 is the historical behaviour (declare on the first overdue
  /// check); 2+ keeps a node oscillating just inside/outside the deadline
  /// from thrashing replica substitution (DESIGN.md §14).
  int keepalive_miss_threshold = 1;
  /// Trust-weighted placement (DESIGN.md §14). Off by default: with it off
  /// the manager never writes trust state and plans exactly as before. On,
  /// each node carries an EWMA trust score updated from observed-vs-promised
  /// behaviour — keepalive failures and loss audits push it down, clean
  /// audits pull it back up — which (a) multiplies that candidate's Trmin
  /// column by 1 + trust_cost_penalty*(1-trust), (b) excludes candidates
  /// below trust_exclude_below from placement and replica selection, and
  /// (c) evicts live offloads from a node the moment it crosses below the
  /// exclusion threshold.
  bool trust_weighting = false;
  /// EWMA weight of the newest observation: t += alpha * (obs - t).
  double trust_ewma_alpha = 0.4;
  double trust_exclude_below = 0.5;
  double trust_cost_penalty = 4.0;
  /// Parallel Trmin row fill (DESIGN.md §13): nonzero turns on
  /// placement.parallel_trmin capped at this many pool workers; plans stay
  /// bit-identical to the serial fill. 0 leaves the configured optimizer
  /// options untouched. The pool itself is sized via DUST_THREADS (or
  /// util::global_pool's first-use argument).
  std::size_t solver_threads = 0;
  /// Transport endpoint this manager answers on. The default is the
  /// classic single-manager name every client targets; federated
  /// deployments give each shard its own ("dust-manager-shard0", ...) and
  /// point their clients' ClientConfig::manager at it (DESIGN.md §16).
  std::string endpoint = manager_endpoint();
  OptimizerOptions optimizer;
};

/// Snapshot handed to a cycle observer after every placement cycle —
/// everything the dust::check invariants need: the authoritative NMDB, the
/// reservation-adjusted view the engine actually planned on, the built
/// model, and the solve result. Pointers are valid only for the duration of
/// the callback.
struct CycleObservation {
  const Nmdb* nmdb = nullptr;
  const Nmdb* planning_view = nullptr;
  const PlacementProblem* problem = nullptr;
  const PlacementResult* result = nullptr;
  sim::TimeMs now = 0;
};
using CycleObserver = std::function<void(const CycleObservation&)>;

/// One live offload relationship.
struct ActiveOffload {
  std::uint64_t request_id = 0;
  graph::NodeId busy = graph::kInvalidNode;
  graph::NodeId destination = graph::kInvalidNode;
  double amount = 0.0;
  std::uint32_t agents = 0;
  bool acknowledged = false;
  /// Controllable route installed for this relationship (busy ... dest).
  std::vector<graph::NodeId> route;
  /// Causal context of the latest span in this relationship's trace: the
  /// offload_request span until the ACK arrives, then the client's
  /// offload_ack span (so a later REP extends the chain linearly).
  obs::TraceContext trace{};
  sim::TimeMs requested_at = 0;   ///< when the request was (re)sent
  std::uint32_t retransmits = 0;  ///< unacked re-sends so far
  bool via_rep = false;           ///< created by replica substitution
  /// Federation (DESIGN.md §16): the destination lives in another manager's
  /// domain. Keepalive supervision and replica substitution for it belong
  /// to the granting shard; this manager only tracks the busy side.
  bool external_destination = false;
  /// Federation: the busy node lives in another manager's domain — this
  /// manager adopted the offload when it granted a DelegateRequest, and it
  /// supervises the (local) destination's keepalives. On destination
  /// failure the offload is dropped, not REP'd: the origin shard re-solves
  /// and re-delegates instead.
  bool external_origin = false;
};

class DustManager {
 public:
  /// Programs against the transport interface: pass a sim::Transport for
  /// deterministic in-process runs or a wire::SocketTransport for the
  /// multi-process daemon runtime (DESIGN.md §11) — the protocol state
  /// machine is identical over both.
  DustManager(sim::Simulator& sim, sim::TransportBase& transport, Nmdb nmdb,
              ManagerConfig config);

  /// Begin periodic placement and keepalive supervision.
  void start();
  void stop();

  /// Run one placement cycle immediately (also called by the periodic task).
  /// Returns the number of new offload relationships created.
  std::size_t run_placement_cycle();

  [[nodiscard]] Nmdb& nmdb() noexcept { return nmdb_; }
  [[nodiscard]] const Nmdb& nmdb() const noexcept { return nmdb_; }

  [[nodiscard]] std::size_t active_offload_count() const noexcept {
    return offloads_.size();
  }
  [[nodiscard]] std::vector<ActiveOffload> active_offloads() const;
  [[nodiscard]] std::size_t placement_cycles() const noexcept {
    return placement_cycles_;
  }
  [[nodiscard]] std::size_t keepalive_failures() const noexcept {
    return keepalive_failures_;
  }
  [[nodiscard]] std::size_t releases() const noexcept { return releases_; }
  [[nodiscard]] std::size_t redirects() const noexcept { return redirects_; }
  /// Feed one loss-audit observation (collector declared/undeclared gap
  /// audit, or the dust::check delivery model): of `expected` samples
  /// promised by destination `node` in the audit window, `delivered`
  /// actually arrived. No-op unless trust_weighting is on.
  void record_loss_audit(graph::NodeId node, double expected,
                         double delivered);
  [[nodiscard]] double trust(graph::NodeId node) const {
    return nmdb_.trust(node);
  }
  /// Offload relationships evicted because their destination's trust
  /// crossed below the exclusion threshold.
  [[nodiscard]] std::size_t trust_evictions() const noexcept {
    return trust_evictions_;
  }
  [[nodiscard]] std::size_t stats_received() const noexcept {
    return stats_received_;
  }
  /// Distinct nodes that have reported at least one STAT — the daemon
  /// runtime gates its first placement cycle on full fleet visibility.
  [[nodiscard]] std::size_t nodes_reporting() const noexcept;
  /// Trmin cache behaviour (hits/misses/invalidations) — only moves when
  /// incremental_placement is on.
  [[nodiscard]] net::ResponseTimeCacheStats trmin_cache_stats() const {
    return trmin_cache_.stats();
  }
  /// The persistent engine (exposes warm/cold solve counts).
  [[nodiscard]] const OptimizationEngine& engine() const noexcept {
    return engine_;
  }
  /// Invariant observation hook: called after every placement cycle (even
  /// when nothing was offloaded) with the model and result of that cycle.
  /// Used by the dust::check harness; pass {} to clear.
  void set_cycle_observer(CycleObserver observer) {
    cycle_observer_ = std::move(observer);
  }

  // --- federation hooks (DESIGN.md §16) -------------------------------------
  /// The endpoint name this manager registered on the transport.
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return config_.endpoint;
  }
  /// Origin side of a granted delegation: create an offload whose
  /// destination another shard supervises. Sends the Offload-Request to the
  /// busy client only (the destination-side bookkeeping happens on the
  /// granting shard via adopt_external_offload). Returns the request_id.
  std::uint64_t create_delegated_offload(graph::NodeId busy,
                                         graph::NodeId destination,
                                         double amount, std::uint32_t agents);
  /// Granting side of a delegation: adopt an offload whose busy node lives
  /// in the requesting shard. The local `destination` will receive the
  /// AgentTransfer directly from the foreign busy client; this manager
  /// supervises its keepalives from now on. Returns the request_id.
  std::uint64_t adopt_external_offload(graph::NodeId busy,
                                       graph::NodeId destination,
                                       double amount, std::uint32_t agents);
  /// Epoch-fenced cleanup: erase one offload relationship without sending
  /// protocol messages (used when a DomainHandoff invalidates delegations
  /// against a dead peer epoch — the new primary re-solves from scratch, so
  /// keeping the booking would double-count capacity). Returns whether the
  /// id existed.
  bool drop_offload(std::uint64_t request_id);

 private:
  void handle(const sim::Envelope& envelope);
  void on_offload_capable(const OffloadCapableMsg& msg);
  void on_stat(const StatMsg& msg);
  void on_offload_ack(const OffloadAckMsg& msg);
  void on_keepalive(const KeepaliveMsg& msg);
  void check_keepalives();
  void release_offloads_of(graph::NodeId busy);
  /// Move all relationships off `node`. `quarantine` marks it non-capable
  /// (keepalive death); without it the node stays eligible (it merely became
  /// busy and redirects its hosted workload, §III-B).
  void replace_destination(graph::NodeId node, bool quarantine);
  [[nodiscard]] bool destination_hosting(graph::NodeId node) const;
  /// EWMA-update `node`'s trust toward `observation` (0 = betrayed promise,
  /// 1 = behaved). Evicts the node's live offloads when it crosses below
  /// the exclusion threshold. Only called when trust_weighting is on.
  void update_trust(graph::NodeId node, double observation);

  /// Global-registry handles (dust_core_*), resolved once at construction.
  /// rx_* / tx_* count protocol messages by type; staleness is the age of
  /// each node's last STAT at planning time (how outdated the NMDB view the
  /// optimizer ran on actually was).
  struct Metrics {
    obs::Counter* rx_offload_capable = nullptr;
    obs::Counter* rx_stat = nullptr;
    obs::Counter* rx_offload_ack = nullptr;
    obs::Counter* rx_keepalive = nullptr;
    obs::Counter* rx_unexpected = nullptr;
    obs::Counter* tx_ack = nullptr;
    obs::Counter* tx_offload_request = nullptr;
    obs::Counter* tx_release = nullptr;
    obs::Counter* tx_rep = nullptr;
    obs::Counter* placement_cycles = nullptr;
    obs::Counter* offloads_created = nullptr;
    obs::Counter* keepalive_failures = nullptr;
    obs::Counter* releases = nullptr;
    obs::Counter* redirects = nullptr;
    obs::Counter* trust_penalties = nullptr;   ///< EWMA moves below 1.0
    obs::Counter* trust_evictions = nullptr;   ///< offloads evicted on crossing
    obs::Counter* loss_audits = nullptr;       ///< record_loss_audit calls
    obs::Gauge* trust_min = nullptr;           ///< lowest trust in the fleet
    obs::Gauge* distrusted_nodes = nullptr;    ///< nodes below the threshold
    obs::Histogram* placement_solve_ms = nullptr;  ///< wall, solver only
    obs::Histogram* placement_build_ms = nullptr;  ///< wall, model build
    obs::Histogram* nmdb_staleness_ms = nullptr;   ///< sim-time STAT age
  };

  sim::Simulator* sim_;
  sim::TransportBase* transport_;
  Nmdb nmdb_;
  ManagerConfig config_;
  /// Declared before engine_: the engine's options point at this cache when
  /// incremental_placement is on. Both persist across cycles by design —
  /// that persistence is what makes the pipeline incremental.
  net::ResponseTimeCache trmin_cache_;
  OptimizationEngine engine_;
  Metrics metrics_;
  /// Per-node STAT bookkeeping, indexed by NodeId (sized to the topology at
  /// construction, grown on demand for out-of-range ids). Vectors, not maps:
  /// these are written on every STAT, the hottest message path.
  /// kNeverStat marks nodes that have never reported.
  static constexpr sim::TimeMs kNeverStat = -1;
  std::vector<sim::TimeMs> last_stat_at_;
  /// Trace context of each node's most recent STAT — the root every
  /// solve/offload chain for that node hangs off (DESIGN.md §10).
  std::vector<obs::TraceContext> last_stat_trace_;
  /// span_id of the last STAT root span materialized per node (clients
  /// defer the record; the manager writes it when a solve first uses it).
  std::vector<std::uint64_t> stat_spans_recorded_;
  /// Trmin cache totals at the previous cycle end, for per-cycle deltas in
  /// the flight recorder's cache_stats events.
  std::uint64_t cache_hits_seen_ = 0;
  std::uint64_t cache_misses_seen_ = 0;
  std::uint64_t next_request_id_ = 1;
  std::map<std::uint64_t, ActiveOffload> offloads_;
  std::map<graph::NodeId, sim::TimeMs> last_keepalive_;
  /// Consecutive overdue keepalive checks per supervised destination
  /// (keepalive_miss_threshold hysteresis).
  std::map<graph::NodeId, int> keepalive_overdue_;
  std::unique_ptr<sim::PeriodicTask> placement_task_;
  std::unique_ptr<sim::PeriodicTask> keepalive_task_;
  std::size_t placement_cycles_ = 0;
  std::size_t keepalive_failures_ = 0;
  std::size_t releases_ = 0;
  std::size_t redirects_ = 0;
  std::size_t stats_received_ = 0;
  std::size_t trust_evictions_ = 0;
  CycleObserver cycle_observer_;
};

}  // namespace dust::core
