#include "core/nmdb.hpp"

#include <algorithm>

namespace dust::core {

Nmdb::Nmdb(net::NetworkState state, Thresholds defaults)
    : state_(std::move(state)),
      defaults_(defaults),
      overrides_(state_.node_count()),
      capable_(state_.node_count(), 1),
      hosting_(state_.node_count(), 0),
      agents_(state_.node_count(), 0),
      platform_factor_(state_.node_count(), 1.0),
      keep_fraction_(state_.node_count(), 1.0),
      trust_(state_.node_count(), 1.0) {
  defaults_.validate();
}

void Nmdb::set_platform_factor(graph::NodeId node, double factor) {
  if (factor <= 0.0)
    throw std::invalid_argument("Nmdb: platform factor must be positive");
  platform_factor_.at(node) = factor;
}

double Nmdb::platform_factor(graph::NodeId node) const {
  return platform_factor_.at(node);
}

bool Nmdb::homogeneous() const noexcept {
  for (double f : platform_factor_)
    if (f != 1.0) return false;
  return true;
}

void Nmdb::set_thresholds(graph::NodeId node, const Thresholds& thresholds) {
  thresholds.validate();
  overrides_.at(node) = thresholds;
}

const Thresholds& Nmdb::thresholds(graph::NodeId node) const {
  const std::optional<Thresholds>& override = overrides_.at(node);
  return override ? *override : defaults_;
}

void Nmdb::set_offload_capable(graph::NodeId node, bool capable) {
  capable_.at(node) = capable ? 1 : 0;
}

bool Nmdb::offload_capable(graph::NodeId node) const {
  return capable_.at(node) != 0;
}

void Nmdb::set_trust(graph::NodeId node, double trust) {
  trust_.at(node) = std::clamp(trust, 0.0, 1.0);
}

double Nmdb::trust(graph::NodeId node) const { return trust_.at(node); }

double Nmdb::min_trust() const noexcept {
  double lowest = 1.0;
  for (double t : trust_) lowest = std::min(lowest, t);
  return lowest;
}

std::size_t Nmdb::distrusted_count(double threshold) const noexcept {
  std::size_t n = 0;
  for (double t : trust_)
    if (t < threshold) ++n;
  return n;
}

void Nmdb::record_stat(graph::NodeId node, double utilization_percent,
                       double monitoring_data_mb, std::uint32_t agent_count,
                       double telemetry_keep_fraction) {
  state_.set_node_utilization(node, utilization_percent);
  state_.set_monitoring_data_mb(node, monitoring_data_mb);
  agents_.at(node) = agent_count;
  keep_fraction_.at(node) = telemetry_keep_fraction;
}

std::uint32_t Nmdb::agent_count(graph::NodeId node) const {
  return agents_.at(node);
}

double Nmdb::telemetry_keep_fraction(graph::NodeId node) const {
  return keep_fraction_.at(node);
}

bool Nmdb::any_degraded() const noexcept {
  for (double keep : keep_fraction_)
    if (keep < 1.0) return true;
  return false;
}

NodeRole Nmdb::role(graph::NodeId node) const {
  if (!offload_capable(node)) return NodeRole::kNoneOffloading;
  const NodeRole base = thresholds(node).classify(state_.node_utilization(node));
  if (base == NodeRole::kOffloadCandidate && hosting_.at(node))
    return NodeRole::kOffloadDestination;
  return base;
}

void Nmdb::set_hosting(graph::NodeId node, bool hosting) {
  hosting_.at(node) = hosting ? 1 : 0;
}

void Nmdb::busy_nodes_into(std::vector<graph::NodeId>& out) const {
  out.clear();
  for (graph::NodeId v = 0; v < state_.node_count(); ++v)
    if (offload_capable(v) &&
        thresholds(v).classify(state_.node_utilization(v)) == NodeRole::kBusy)
      out.push_back(v);
}

std::vector<graph::NodeId> Nmdb::busy_nodes() const {
  std::vector<graph::NodeId> out;
  busy_nodes_into(out);
  return out;
}

void Nmdb::candidate_nodes_into(std::vector<graph::NodeId>& out) const {
  out.clear();
  for (graph::NodeId v = 0; v < state_.node_count(); ++v)
    if (offload_capable(v) && thresholds(v).classify(state_.node_utilization(v)) ==
                                  NodeRole::kOffloadCandidate)
      out.push_back(v);
}

std::vector<graph::NodeId> Nmdb::candidate_nodes() const {
  std::vector<graph::NodeId> out;
  candidate_nodes_into(out);
  return out;
}

double Nmdb::total_excess() const {
  double total = 0.0;
  for (graph::NodeId v : busy_nodes())
    total += thresholds(v).excess_load(state_.node_utilization(v));
  return total;
}

double Nmdb::total_spare() const {
  double total = 0.0;
  for (graph::NodeId v : candidate_nodes())
    total += thresholds(v).spare_capacity(state_.node_utilization(v));
  return total;
}

}  // namespace dust::core
