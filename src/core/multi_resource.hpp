// Multi-resource placement (extension).
//
// The paper's evaluation tracks *both* CPU and memory (Fig. 6) but the
// placement model (Eq. 3) is single-resource. Moving a monitoring agent in
// reality ships a coupled bundle: x CPU-percent plus mem_ratio * x memory.
// This module extends the model with a per-destination memory capacity row:
//
//   min β = Σ x_ij · Trmin(i,j)
//   s.t.  Σ_i x_ij             ≤ CdCpu_j   ∀j      (CPU capacity)
//         Σ_i mem_ratio_i x_ij ≤ CdMem_j   ∀j      (memory capacity)
//         Σ_j x_ij             = Cs_i      ∀i      (shed everything)
//
// Still an LP; solved with the general simplex. With all memory rows slack
// it reduces exactly to the paper's model (tested).
#pragma once

#include "core/placement.hpp"

namespace dust::core {

struct MultiResourceProblem {
  std::vector<graph::NodeId> busy;
  std::vector<graph::NodeId> candidates;
  std::vector<double> cs_cpu;     ///< per busy node, capacity-percent
  std::vector<double> mem_ratio;  ///< per busy node: memory shipped per unit CPU
  std::vector<double> cd_cpu;     ///< per candidate
  std::vector<double> cd_mem;     ///< per candidate, memory-percent
  std::vector<double> trmin;      ///< row-major busy x candidates

  [[nodiscard]] double total_excess() const;
};

struct MultiResourceOptions {
  PlacementOptions placement;
  /// Memory-side thresholds (percent), mirroring Cmax/COmax for CPU.
  double mem_co_max = 80.0;
};

/// Build from the NMDB (CPU side) plus explicit per-node memory utilization
/// (percent) and per-busy-node memory ratios.
MultiResourceProblem build_multi_resource_problem(
    const Nmdb& nmdb, const std::vector<double>& memory_utilization_percent,
    const std::vector<double>& memory_per_cpu_unit,
    const MultiResourceOptions& options);

struct MultiResourceResult {
  solver::Status status = solver::Status::kInfeasible;
  double objective = 0.0;
  std::vector<Assignment> assignments;
  double solve_seconds = 0.0;

  [[nodiscard]] bool optimal() const noexcept {
    return status == solver::Status::kOptimal;
  }
};

MultiResourceResult solve_multi_resource(const MultiResourceProblem& problem);

/// Max violation of the CPU/memory capacity and supply rows (0 = feasible).
double multi_resource_violation(const MultiResourceProblem& problem,
                                const MultiResourceResult& result);

}  // namespace dust::core
