#include "core/zones.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace dust::core {

namespace {

/// BFS-grow zones over `graph` visiting seeds in the given order.
std::vector<Zone> grow_zones(const graph::Graph& graph,
                             std::size_t max_zone_size,
                             const std::vector<graph::NodeId>& seeds) {
  std::vector<Zone> zones;
  std::vector<char> assigned(graph.node_count(), 0);
  for (graph::NodeId seed : seeds) {
    if (assigned[seed]) continue;
    Zone zone;
    std::queue<graph::NodeId> frontier;
    frontier.push(seed);
    assigned[seed] = 1;
    while (!frontier.empty() && zone.members.size() < max_zone_size) {
      const graph::NodeId node = frontier.front();
      frontier.pop();
      zone.members.push_back(node);
      for (const graph::Adjacency& adj : graph.neighbors(node)) {
        if (assigned[adj.neighbor]) continue;
        if (zone.members.size() + frontier.size() >= max_zone_size) break;
        assigned[adj.neighbor] = 1;
        frontier.push(adj.neighbor);
      }
    }
    // Nodes still queued when the zone filled: release them for later seeds.
    while (!frontier.empty()) {
      assigned[frontier.front()] = 0;
      frontier.pop();
    }
    zones.push_back(std::move(zone));
  }
  return zones;
}

/// Merge any zone into an adjacent one whenever the union still fits the
/// cap (the connecting edge keeps the merged zone connected). BFS growth
/// strands fragments whose neighbours were claimed by earlier zones; this
/// coalesces them. Iterates to a fixed point.
void merge_fragments(const graph::Graph& graph, std::size_t max_zone_size,
                     std::vector<Zone>& zones) {
  std::vector<std::size_t> zone_of(graph.node_count());
  for (std::size_t z = 0; z < zones.size(); ++z)
    for (graph::NodeId v : zones[z].members) zone_of[v] = z;
  bool merged = true;
  while (merged) {
    merged = false;
    // Smallest zones first so fragments coalesce before big zones fill up.
    std::vector<std::size_t> order(zones.size());
    for (std::size_t z = 0; z < zones.size(); ++z) order[z] = z;
    std::sort(order.begin(), order.end(),
              [&zones](std::size_t a, std::size_t b) {
                return zones[a].members.size() < zones[b].members.size();
              });
    for (std::size_t z : order) {
      if (zones[z].members.empty()) continue;
      std::size_t target = zones.size();
      for (graph::NodeId v : zones[z].members) {
        for (const graph::Adjacency& adj : graph.neighbors(v)) {
          const std::size_t other = zone_of[adj.neighbor];
          if (other == z || zones[other].members.empty()) continue;
          if (zones[other].members.size() + zones[z].members.size() >
              max_zone_size)
            continue;
          // Prefer the fullest neighbour that still fits (best packing).
          if (target == zones.size() ||
              zones[other].members.size() > zones[target].members.size())
            target = other;
        }
      }
      if (target == zones.size()) continue;
      for (graph::NodeId v : zones[z].members) zone_of[v] = target;
      zones[target].members.insert(zones[target].members.end(),
                                   zones[z].members.begin(),
                                   zones[z].members.end());
      zones[z].members.clear();
      merged = true;
    }
  }
  std::erase_if(zones, [](const Zone& zone) { return zone.members.empty(); });
}

}  // namespace

std::vector<Zone> partition_zones(const graph::Graph& graph,
                                  std::size_t max_zone_size) {
  if (max_zone_size == 0)
    throw std::invalid_argument("partition_zones: max_zone_size == 0");
  // Two seed orders behave very differently depending on how the cap
  // relates to the topology's natural clusters: id order packs well when
  // zones can span whole tiers; low-degree-first grows zones around the
  // periphery so hub nodes (fat-tree cores) are absorbed as neighbours
  // instead of being stranded. Grow both, repair both, keep the partition
  // with fewer zones (deterministic tie-break: id order).
  std::vector<graph::NodeId> by_id(graph.node_count());
  for (graph::NodeId v = 0; v < graph.node_count(); ++v) by_id[v] = v;
  std::vector<graph::NodeId> by_degree = by_id;
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&graph](graph::NodeId a, graph::NodeId b) {
                     return graph.degree(a) < graph.degree(b);
                   });

  std::vector<Zone> id_zones = grow_zones(graph, max_zone_size, by_id);
  merge_fragments(graph, max_zone_size, id_zones);
  std::vector<Zone> degree_zones = grow_zones(graph, max_zone_size, by_degree);
  merge_fragments(graph, max_zone_size, degree_zones);
  return degree_zones.size() < id_zones.size() ? std::move(degree_zones)
                                               : std::move(id_zones);
}

std::vector<Assignment> ZonedResult::all_assignments() const {
  std::vector<Assignment> out;
  for (const PlacementResult& zone : per_zone)
    out.insert(out.end(), zone.assignments.begin(), zone.assignments.end());
  return out;
}

namespace {

/// Induced-subgraph NMDB over the zone, with old->new id mapping.
struct SubNmdb {
  Nmdb nmdb;
  std::vector<graph::NodeId> to_global;
};

SubNmdb make_zone_nmdb(const Nmdb& full, const Zone& zone) {
  const net::NetworkState& net = full.network();
  const graph::Graph& g = net.graph();
  std::vector<graph::NodeId> to_local(g.node_count(), graph::kInvalidNode);
  for (std::size_t i = 0; i < zone.members.size(); ++i)
    to_local[zone.members[i]] = static_cast<graph::NodeId>(i);

  graph::Graph sub(zone.members.size());
  std::vector<graph::EdgeId> edge_source;
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const graph::Edge& edge = g.edge(e);
    const graph::NodeId a = to_local[edge.a];
    const graph::NodeId b = to_local[edge.b];
    if (a == graph::kInvalidNode || b == graph::kInvalidNode) continue;
    sub.add_edge(a, b);
    edge_source.push_back(e);
  }
  net::NetworkState state(std::move(sub));
  for (graph::EdgeId e = 0; e < state.edge_count(); ++e)
    state.set_link(e, net.link(edge_source[e]));
  for (std::size_t i = 0; i < zone.members.size(); ++i) {
    state.set_node_utilization(static_cast<graph::NodeId>(i),
                               net.node_utilization(zone.members[i]));
    state.set_monitoring_data_mb(static_cast<graph::NodeId>(i),
                                 net.monitoring_data_mb(zone.members[i]));
  }
  SubNmdb out{Nmdb(std::move(state), full.default_thresholds()), zone.members};
  for (std::size_t i = 0; i < zone.members.size(); ++i) {
    const auto local = static_cast<graph::NodeId>(i);
    out.nmdb.set_thresholds(local, full.thresholds(zone.members[i]));
    out.nmdb.set_offload_capable(local,
                                 full.offload_capable(zone.members[i]));
    out.nmdb.set_platform_factor(local,
                                 full.platform_factor(zone.members[i]));
  }
  return out;
}

}  // namespace

ZonedResult optimize_by_zones(const Nmdb& nmdb, std::size_t max_zone_size,
                              OptimizerOptions options) {
  // Per-zone infeasibility must not sink the whole run.
  options.allow_partial = true;
  ZonedResult result;
  const std::vector<Zone> zones =
      partition_zones(nmdb.network().graph(), max_zone_size);
  result.zones = zones.size();
  const OptimizationEngine engine(options);
  for (const Zone& zone : zones) {
    SubNmdb sub = make_zone_nmdb(nmdb, zone);
    PlacementResult zone_result = engine.run(sub.nmdb);
    // Map assignment ids back to the global graph.
    for (Assignment& a : zone_result.assignments) {
      a.from = sub.to_global[a.from];
      a.to = sub.to_global[a.to];
    }
    result.objective += zone_result.objective;
    result.unplaced += zone_result.unplaced;
    result.total_seconds +=
        zone_result.build_seconds + zone_result.solve_seconds;
    result.per_zone.push_back(std::move(zone_result));
  }
  return result;
}

}  // namespace dust::core
