#include "core/scenario.hpp"

#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace dust::core {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("scenario line " + std::to_string(line) + ": " +
                              message);
}

}  // namespace

Nmdb load_scenario(std::istream& in) {
  std::optional<net::NetworkState> state;
  Thresholds thresholds;
  struct Pending {
    enum class Kind { kCapable, kFactor } kind;
    graph::NodeId node;
    double value;
  };
  std::vector<Pending> pending;

  // First pass builds the graph topology; node attributes are applied to the
  // state as we go, capability/factor buffered until the Nmdb exists.
  std::optional<graph::Graph> graph;
  struct EdgeSpec {
    graph::NodeId a, b;
    double bandwidth, utilization;
  };
  std::vector<EdgeSpec> edges;
  struct LoadSpec {
    graph::NodeId node;
    double utilization, data_mb;
  };
  std::vector<LoadSpec> loads;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank
    if (keyword == "nodes") {
      std::size_t count = 0;
      if (!(tokens >> count) || count == 0) fail(line_no, "nodes <count>");
      if (graph) fail(line_no, "duplicate nodes directive");
      graph.emplace(count);
    } else if (keyword == "thresholds") {
      if (!(tokens >> thresholds.c_max >> thresholds.co_max >>
            thresholds.x_min))
        fail(line_no, "thresholds <cmax> <comax> <xmin>");
      try {
        thresholds.validate();
      } catch (const std::invalid_argument& error) {
        fail(line_no, error.what());
      }
    } else if (keyword == "edge") {
      if (!graph) fail(line_no, "edge before nodes");
      EdgeSpec spec{};
      if (!(tokens >> spec.a >> spec.b >> spec.bandwidth >> spec.utilization))
        fail(line_no, "edge <a> <b> <bandwidth_mbps> <utilization>");
      if (spec.a >= graph->node_count() || spec.b >= graph->node_count())
        fail(line_no, "edge endpoint out of range");
      try {
        graph->add_edge(spec.a, spec.b);
      } catch (const std::exception& error) {
        fail(line_no, error.what());
      }
      edges.push_back(spec);
    } else if (keyword == "load") {
      if (!graph) fail(line_no, "load before nodes");
      LoadSpec spec{};
      if (!(tokens >> spec.node >> spec.utilization >> spec.data_mb))
        fail(line_no, "load <node> <utilization> <data_mb>");
      if (spec.node >= graph->node_count())
        fail(line_no, "load node out of range");
      loads.push_back(spec);
    } else if (keyword == "capable") {
      int flag = 1;
      graph::NodeId node = 0;
      if (!(tokens >> node >> flag)) fail(line_no, "capable <node> <0|1>");
      pending.push_back({Pending::Kind::kCapable, node, double(flag)});
    } else if (keyword == "factor") {
      graph::NodeId node = 0;
      double factor = 1.0;
      if (!(tokens >> node >> factor)) fail(line_no, "factor <node> <value>");
      pending.push_back({Pending::Kind::kFactor, node, factor});
    } else {
      fail(line_no, "unknown directive '" + keyword + "'");
    }
  }
  if (!graph) throw std::invalid_argument("scenario: missing nodes directive");

  state.emplace(std::move(*graph));
  for (std::size_t e = 0; e < edges.size(); ++e) {
    try {
      state->set_link(static_cast<graph::EdgeId>(e),
                      net::LinkState{edges[e].bandwidth, edges[e].utilization});
    } catch (const std::exception& error) {
      throw std::invalid_argument(std::string("scenario edge ") +
                                  std::to_string(e) + ": " + error.what());
    }
  }
  for (const LoadSpec& load : loads) {
    state->set_node_utilization(load.node, load.utilization);
    state->set_monitoring_data_mb(load.node, load.data_mb);
  }
  Nmdb nmdb(std::move(*state), thresholds);
  for (const Pending& entry : pending) {
    if (entry.node >= nmdb.node_count())
      throw std::invalid_argument("scenario: node attribute out of range");
    if (entry.kind == Pending::Kind::kCapable)
      nmdb.set_offload_capable(entry.node, entry.value != 0.0);
    else
      nmdb.set_platform_factor(entry.node, entry.value);
  }
  return nmdb;
}

void save_scenario(std::ostream& os, const Nmdb& nmdb) {
  const net::NetworkState& state = nmdb.network();
  // Round-trip exactness: shortest representation that restores the double.
  os.precision(17);
  os << "# dust scenario\n";
  os << "nodes " << state.node_count() << '\n';
  const Thresholds& t = nmdb.default_thresholds();
  os << "thresholds " << t.c_max << ' ' << t.co_max << ' ' << t.x_min << '\n';
  for (graph::EdgeId e = 0; e < state.edge_count(); ++e) {
    const graph::Edge& edge = state.graph().edge(e);
    const net::LinkState& link = state.link(e);
    os << "edge " << edge.a << ' ' << edge.b << ' ' << link.bandwidth_mbps
       << ' ' << link.utilization << '\n';
  }
  for (graph::NodeId v = 0; v < state.node_count(); ++v) {
    os << "load " << v << ' ' << state.node_utilization(v) << ' '
       << state.monitoring_data_mb(v) << '\n';
    if (!nmdb.offload_capable(v)) os << "capable " << v << " 0\n";
    if (nmdb.platform_factor(v) != 1.0)
      os << "factor " << v << ' ' << nmdb.platform_factor(v) << '\n';
  }
}

}  // namespace dust::core
