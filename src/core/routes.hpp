// Controllable-route resolution: turn placement assignments into concrete
// installable routes.
//
// The optimizer prices each (busy, destination) pair at Trmin — the cost of
// the best hop-bounded route — but reports only the pair. This module
// reconstructs that route (and, optionally, an edge-disjoint backup for the
// replica path of §III-C) so the manager can install it, which is the
// "corresponding routing control solution" the paper's related-work section
// claims over prior schemes.
#pragma once

#include <span>

#include "core/placement.hpp"
#include "graph/paths.hpp"

namespace dust::core {

struct ResolvedRoute {
  Assignment assignment;
  graph::Path primary;            ///< achieves Trmin(i,j) within the bound
  double primary_seconds = 0.0;
  graph::Path backup;             ///< edge-disjoint from primary; may be empty
  double backup_seconds = 0.0;

  [[nodiscard]] bool has_backup() const noexcept {
    return !backup.nodes.empty();
  }
};

struct RouteOptions {
  std::uint32_t max_hops = 0;   ///< same bound the placement used
  bool with_backup = false;     ///< also compute an edge-disjoint standby
};

/// Resolve every assignment to a concrete route. The primary path's response
/// time equals the assignment's trmin_seconds (asserted in tests). Backup is
/// empty when no edge-disjoint alternative exists; the backup is not
/// hop-bounded (a standby route trades latency for survivability).
std::vector<ResolvedRoute> resolve_routes(const net::NetworkState& net,
                                          std::span<const Assignment> plan,
                                          const RouteOptions& options = {});

}  // namespace dust::core
