// Simulated network device with a resource model and hosted monitoring.
//
// Replaces the paper's hardware testbed (HPE Aruba 8325: 8 cores, 16 GiB RAM)
// for Figs 1 and 6. A MonitoredNode charges CPU for its primary switching
// functions (base load) plus every monitoring agent it hosts — local agents
// observing itself and remote agents observing *other* nodes that offloaded
// to it (the paper's homogeneity assumption: an offloaded agent costs the
// destination what it cost the source). Memory = base + agent footprints +
// compressed TSDB storage.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/agent.hpp"
#include "telemetry/tsdb.hpp"
#include "util/rng.hpp"

namespace dust::sim {

struct NodeResources {
  std::uint32_t cores = 8;
  double memory_mib = 16384.0;  // 16 GiB
};

/// One tick's resource readings.
struct TickStats {
  std::int64_t timestamp_ms = 0;
  double device_cpu_percent = 0.0;   ///< whole-device CPU, 0-100
  double monitor_cpu_cores = 0.0;    ///< monitoring-only load in cores
                                     ///< (x100 = the "module CPU %" of Fig. 1)
  double memory_percent = 0.0;
  double monitor_memory_mib = 0.0;
};

class MonitoredNode {
 public:
  MonitoredNode(std::string name, NodeResources resources,
                double base_cpu_percent, double base_memory_mib);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const NodeResources& resources() const noexcept {
    return resources_;
  }
  [[nodiscard]] telemetry::Tsdb& tsdb() noexcept { return db_; }
  [[nodiscard]] const telemetry::Tsdb& tsdb() const noexcept { return db_; }

  /// Install an agent that monitors this node itself.
  void add_local_agent(telemetry::MonitorAgent agent);
  /// Install an agent offloaded from `owner` — it monitors the owner's
  /// snapshots remotely but consumes *this* node's CPU/memory.
  void add_remote_agent(const std::string& owner, telemetry::MonitorAgent agent);
  /// Remove local agents by name; returns them (for re-hosting elsewhere).
  std::vector<telemetry::MonitorAgent> remove_local_agents();
  /// Drop remote agents belonging to `owner`; returns how many were dropped.
  std::size_t remove_remote_agents(const std::string& owner);

  [[nodiscard]] std::size_t local_agent_count() const noexcept {
    return local_agents_.size();
  }
  [[nodiscard]] std::size_t remote_agent_count() const noexcept {
    return remote_agents_.size();
  }

  /// Advance one tick of `tick_ms` with the node's own traffic. Runs local
  /// agents (they observe this node) and charges their CPU/memory here.
  /// `export_remote` should be true while this node's agents run elsewhere:
  /// it charges the small telemetry-export residual instead of agent cost.
  TickStats tick(std::int64_t now_ms, std::int64_t tick_ms, double rx_mbps,
                 double tx_mbps, util::Rng& rng);

  /// Feed a remote owner's snapshot to the agents hosted here for it.
  /// Returns CPU charged (core-ms) — included in the next tick()'s stats.
  double observe_remote(const std::string& owner,
                        const telemetry::DeviceSnapshot& snapshot,
                        util::Rng& rng);

  /// Residual per-tick export cost charged while agents run remotely
  /// (core-ms per offloaded agent; streams DB table deltas to the host).
  void set_export_cost_ms(double cost) { export_cost_ms_ = cost; }
  /// Number of this node's own agents currently running remotely.
  void set_offloaded_agent_count(std::size_t n) { offloaded_agents_ = n; }

  [[nodiscard]] const TickStats& last_stats() const noexcept { return last_; }

 private:
  [[nodiscard]] telemetry::DeviceSnapshot make_snapshot(
      std::int64_t now_ms, double rx_mbps, double tx_mbps,
      util::Rng& rng) const;

  std::string name_;
  NodeResources resources_;
  double base_cpu_percent_;
  double base_memory_mib_;
  telemetry::Tsdb db_;
  std::vector<telemetry::MonitorAgent> local_agents_;
  struct RemoteAgent {
    std::string owner;
    telemetry::MonitorAgent agent;
  };
  std::vector<RemoteAgent> remote_agents_;
  double export_cost_ms_ = 0.5;
  std::size_t offloaded_agents_ = 0;
  double pending_remote_cpu_ms_ = 0.0;  // charged by observe_remote
  TickStats last_;
};

}  // namespace dust::sim
