// VxLAN-like overlay traffic generator for the testbed simulation.
//
// The paper's Fig. 1 scenario subjects the switch to "20% line-rate VxLAN
// overlay traffic in a data-center topology" and observes the monitoring
// module averaging ~100% CPU with spikes to ~600% (8-core DUT). This model
// produces a nominal load with multiplicative noise plus occasional flood
// ticks toward the visible line rate — the floods are what drive the spikes.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace dust::sim {

struct OverlayTrafficProfile {
  double line_rate_mbps = 100000.0;  ///< telemetry-visible line rate (100 G)
  double load_fraction = 0.20;       ///< "20% line-rate"
  double noise_stddev = 0.10;        ///< multiplicative lognormal-ish noise
  double burst_probability = 0.02;   ///< flood tick probability
  double burst_low = 4.0;            ///< flood multiplier range over nominal
  double burst_high = 5.0;
  double tx_fraction = 0.0;          ///< tx as a fraction of rx (overlay
                                     ///< mirroring; 0 = rx-only accounting)
};

struct TrafficTick {
  double rx_mbps = 0.0;
  double tx_mbps = 0.0;
  bool burst = false;
};

class OverlayTraffic {
 public:
  explicit OverlayTraffic(OverlayTrafficProfile profile) : profile_(profile) {}

  [[nodiscard]] const OverlayTrafficProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] double nominal_mbps() const noexcept {
    return profile_.line_rate_mbps * profile_.load_fraction;
  }

  /// Draw one tick of traffic.
  TrafficTick next(util::Rng& rng);

 private:
  OverlayTrafficProfile profile_;
};

}  // namespace dust::sim
