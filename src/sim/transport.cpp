#include "sim/transport.hpp"

#include <stdexcept>
#include <memory>
#include <utility>

namespace dust::sim {

Transport::Transport(Simulator& sim, util::Rng rng) : sim_(&sim), rng_(rng) {
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  metrics_.sent = &registry.counter("dust_sim_transport_sent_total");
  metrics_.sent_low = &registry.counter("dust_sim_transport_sent_low_total");
  metrics_.delivered = &registry.counter("dust_sim_transport_delivered_total");
  metrics_.dropped = &registry.counter("dust_sim_transport_dropped_total");
  metrics_.dropped_congestion =
      &registry.counter("dust_sim_transport_dropped_congestion_total");
  metrics_.dropped_loss =
      &registry.counter("dust_sim_transport_dropped_loss_total");
  metrics_.dropped_partition =
      &registry.counter("dust_sim_transport_dropped_partition_total");
  metrics_.dropped_no_endpoint =
      &registry.counter("dust_sim_transport_dropped_no_endpoint_total");
  metrics_.delivery_latency_ms =
      &registry.histogram("dust_sim_transport_delivery_latency_ms");
}

void Transport::set_loss_probability(double p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("Transport: loss probability out of [0,1]");
  loss_probability_ = p;
}

void Transport::set_partitioned(const std::string& endpoint, bool partitioned) {
  partitioned_[endpoint] = partitioned;
}

std::uint64_t Transport::register_endpoint(const std::string& name,
                                           Handler handler) {
  if (!handler) throw std::invalid_argument("Transport: null handler");
  const std::uint64_t token = next_token_++;
  endpoints_[name] = Endpoint{std::move(handler), token};
  return token;
}

void Transport::unregister_endpoint(const std::string& name) {
  endpoints_.erase(name);
}

void Transport::unregister_endpoint(const std::string& name,
                                    std::uint64_t token) {
  auto it = endpoints_.find(name);
  if (it != endpoints_.end() && it->second.token == token)
    endpoints_.erase(it);
}

bool Transport::has_endpoint(const std::string& name) const {
  return endpoints_.count(name) > 0;
}

void Transport::send(const std::string& from, const std::string& to,
                     std::any payload, Priority priority) {
  ++sent_;
  metrics_.sent->inc();
  if (priority == Priority::kLow) metrics_.sent_low->inc();
  // Precedence: loss -> partition -> congestion. The loss draw must come
  // first so partition/congestion toggles never change how many RNG draws a
  // message sequence consumes; otherwise a fault schedule flipping
  // congestion would shift every subsequent loss decision and runs would
  // not replay under a fixed seed (see header comment on send()).
  if (loss_probability_ > 0 && rng_.bernoulli(loss_probability_)) {
    ++dropped_;
    metrics_.dropped->inc();
    metrics_.dropped_loss->inc();
    return;
  }
  if (auto it = partitioned_.find(to); it != partitioned_.end() && it->second) {
    ++dropped_;
    metrics_.dropped->inc();
    metrics_.dropped_partition->inc();
    return;
  }
  if (congested_ && priority == Priority::kLow) {
    ++dropped_;  // QoS: monitoring data is discardable under congestion
    metrics_.dropped->inc();
    metrics_.dropped_congestion->inc();
    return;
  }
  auto envelope = std::make_shared<Envelope>(
      Envelope{from, to, std::move(payload), priority});
  const TimeMs sent_at = sim_->now();
  sim_->schedule(default_latency_ms_, [this, envelope, sent_at] {
    // Endpoint may have unregistered while in flight (e.g. failed node).
    auto it = endpoints_.find(envelope->to);
    if (it == endpoints_.end()) {
      ++dropped_;
      metrics_.dropped->inc();
      metrics_.dropped_no_endpoint->inc();
      return;
    }
    ++delivered_;
    metrics_.delivered->inc();
    metrics_.delivery_latency_ms->observe(
        static_cast<double>(sim_->now() - sent_at));
    it->second.handler(*envelope);
  });
}

void schedule_fault_script(Simulator& sim, Transport& transport,
                           const std::vector<FaultEvent>& script) {
  const TimeMs now = sim.now();
  for (const FaultEvent& event : script) {
    const TimeMs delay = event.at_ms > now ? event.at_ms - now : 0;
    sim.schedule(delay, [&transport, event] {
      switch (event.kind) {
        case FaultEvent::Kind::kLossProbability:
          transport.set_loss_probability(event.value);
          break;
        case FaultEvent::Kind::kPartition:
          transport.set_partitioned(event.endpoint, true);
          break;
        case FaultEvent::Kind::kHeal:
          transport.set_partitioned(event.endpoint, false);
          break;
        case FaultEvent::Kind::kCongestionOn:
          transport.set_congested(true);
          break;
        case FaultEvent::Kind::kCongestionOff:
          transport.set_congested(false);
          break;
      }
    });
  }
}

}  // namespace dust::sim
