#include "sim/transport.hpp"

#include <stdexcept>
#include <memory>
#include <utility>

namespace dust::sim {

void Transport::set_loss_probability(double p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("Transport: loss probability out of [0,1]");
  loss_probability_ = p;
}

void Transport::set_partitioned(const std::string& endpoint, bool partitioned) {
  partitioned_[endpoint] = partitioned;
}

std::uint64_t Transport::register_endpoint(const std::string& name,
                                           Handler handler) {
  if (!handler) throw std::invalid_argument("Transport: null handler");
  const std::uint64_t token = next_token_++;
  endpoints_[name] = Endpoint{std::move(handler), token};
  return token;
}

void Transport::unregister_endpoint(const std::string& name) {
  endpoints_.erase(name);
}

void Transport::unregister_endpoint(const std::string& name,
                                    std::uint64_t token) {
  auto it = endpoints_.find(name);
  if (it != endpoints_.end() && it->second.token == token)
    endpoints_.erase(it);
}

bool Transport::has_endpoint(const std::string& name) const {
  return endpoints_.count(name) > 0;
}

void Transport::send(const std::string& from, const std::string& to,
                     std::any payload, Priority priority) {
  ++sent_;
  if (congested_ && priority == Priority::kLow) {
    ++dropped_;  // QoS: monitoring data is discardable under congestion
    return;
  }
  if (loss_probability_ > 0 && rng_.bernoulli(loss_probability_)) {
    ++dropped_;
    return;
  }
  if (auto it = partitioned_.find(to); it != partitioned_.end() && it->second) {
    ++dropped_;
    return;
  }
  auto envelope = std::make_shared<Envelope>(
      Envelope{from, to, std::move(payload), priority});
  sim_->schedule(default_latency_ms_, [this, envelope] {
    // Endpoint may have unregistered while in flight (e.g. failed node).
    auto it = endpoints_.find(envelope->to);
    if (it == endpoints_.end()) {
      ++dropped_;
      return;
    }
    ++delivered_;
    it->second.handler(*envelope);
  });
}

}  // namespace dust::sim
