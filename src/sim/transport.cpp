#include "sim/transport.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <memory>
#include <string_view>
#include <utility>

#include "obs/flight_recorder.hpp"

namespace dust::sim {

namespace {

// Parse the node id out of "dust-client-<n>" endpoint names; the manager
// ("dust-manager") and anything unrecognised map to kNoNode.
std::int32_t endpoint_node(const std::string& endpoint) {
  constexpr std::string_view kPrefix = "dust-client-";
  if (endpoint.compare(0, kPrefix.size(), kPrefix) != 0)
    return obs::FlightEvent::kNoNode;
  std::int32_t node = 0;
  bool any = false;
  for (std::size_t i = kPrefix.size(); i < endpoint.size(); ++i) {
    const char ch = endpoint[i];
    if (ch < '0' || ch > '9') return obs::FlightEvent::kNoNode;
    node = node * 10 + (ch - '0');
    any = true;
  }
  return any ? node : obs::FlightEvent::kNoNode;
}

// Compact flight-recorder detail for a hop, built allocation-free into a
// stack buffer: "[<cause>: ]<kind> c3>M". This runs on every tx/rx/drop,
// so it must stay off the heap; truncation to the event's 31 detail chars
// is fine (the recorder truncates anyway).
struct DetailBuf {
  char data[obs::FlightEvent::kDetailCapacity];
  std::size_t len = 0;

  void append(std::string_view text) {
    const std::size_t room = sizeof(data) - 1 - len;
    const std::size_t n = text.size() < room ? text.size() : room;
    std::memcpy(data + len, text.data(), n);
    len += n;
  }
  void append_endpoint(const std::string& endpoint, std::int32_t node) {
    if (endpoint == "dust-manager") {
      append("M");
    } else if (node != obs::FlightEvent::kNoNode) {
      char digits[12];
      const int n = std::snprintf(digits, sizeof(digits), "c%d", node);
      if (n > 0) append(std::string_view(digits, static_cast<std::size_t>(n)));
    } else {
      append(endpoint);
    }
  }
  [[nodiscard]] std::string_view view() const { return {data, len}; }
};

void record_hop(obs::FlightEventKind event_kind, Simulator& sim,
                const std::string& kind, const std::string& from,
                const std::string& to, std::uint64_t trace_id,
                const char* cause = nullptr) {
  if (!obs::enabled()) return;  // skip the detail work entirely
  const std::int32_t from_node = endpoint_node(from);
  const std::int32_t to_node = endpoint_node(to);
  DetailBuf detail;
  if (cause != nullptr) {
    detail.append(cause);
    detail.append(": ");
  }
  detail.append(kind.empty() ? std::string_view("?") : std::string_view(kind));
  detail.append(" ");
  detail.append_endpoint(from, from_node);
  detail.append(">");
  detail.append_endpoint(to, to_node);
  obs::FlightRecorder::global().record(event_kind, sim.now(), trace_id,
                                       from_node, to_node, 0.0, detail.view());
}

}  // namespace

Transport::Transport(Simulator& sim, util::Rng rng) : sim_(&sim), rng_(rng) {
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  metrics_.sent = &registry.counter("dust_sim_transport_sent_total");
  metrics_.sent_low = &registry.counter("dust_sim_transport_sent_low_total");
  metrics_.delivered = &registry.counter("dust_sim_transport_delivered_total");
  metrics_.dropped = &registry.counter("dust_sim_transport_dropped_total");
  metrics_.dropped_congestion =
      &registry.counter("dust_sim_transport_dropped_congestion_total");
  metrics_.dropped_loss =
      &registry.counter("dust_sim_transport_dropped_loss_total");
  metrics_.dropped_partition =
      &registry.counter("dust_sim_transport_dropped_partition_total");
  metrics_.dropped_no_endpoint =
      &registry.counter("dust_sim_transport_dropped_no_endpoint_total");
  metrics_.delivery_latency_ms =
      &registry.histogram("dust_sim_transport_delivery_latency_ms");
}

void Transport::set_loss_probability(double p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("Transport: loss probability out of [0,1]");
  loss_probability_ = p;
}

void Transport::set_partitioned(const std::string& endpoint, bool partitioned) {
  partitioned_[endpoint] = partitioned;
}

std::uint64_t Transport::register_endpoint(const std::string& name,
                                           Handler handler) {
  if (!handler) throw std::invalid_argument("Transport: null handler");
  const std::uint64_t token = next_token_++;
  endpoints_[name] = Endpoint{std::move(handler), token};
  return token;
}

void Transport::unregister_endpoint(const std::string& name) {
  endpoints_.erase(name);
}

void Transport::unregister_endpoint(const std::string& name,
                                    std::uint64_t token) {
  auto it = endpoints_.find(name);
  if (it != endpoints_.end() && it->second.token == token)
    endpoints_.erase(it);
}

bool Transport::has_endpoint(const std::string& name) const {
  return endpoints_.count(name) > 0;
}

void Transport::send(const std::string& from, const std::string& to,
                     std::any payload, Priority priority, std::string kind,
                     std::uint64_t trace_id) {
  ++sent_;
  metrics_.sent->inc();
  if (priority == Priority::kLow) metrics_.sent_low->inc();
  record_hop(obs::FlightEventKind::kMessageTx, *sim_, kind, from, to,
             trace_id);
  // Precedence: loss -> partition -> congestion. The loss draw must come
  // first so partition/congestion toggles never change how many RNG draws a
  // message sequence consumes; otherwise a fault schedule flipping
  // congestion would shift every subsequent loss decision and runs would
  // not replay under a fixed seed (see header comment on send()).
  if (loss_probability_ > 0 && rng_.bernoulli(loss_probability_)) {
    ++dropped_;
    metrics_.dropped->inc();
    metrics_.dropped_loss->inc();
    record_hop(obs::FlightEventKind::kMessageDrop, *sim_, kind, from, to,
               trace_id, "loss");
    return;
  }
  if (auto it = partitioned_.find(to); it != partitioned_.end() && it->second) {
    ++dropped_;
    metrics_.dropped->inc();
    metrics_.dropped_partition->inc();
    record_hop(obs::FlightEventKind::kMessageDrop, *sim_, kind, from, to,
               trace_id, "partition");
    return;
  }
  if (congested_ && priority == Priority::kLow) {
    ++dropped_;  // QoS: monitoring data is discardable under congestion
    metrics_.dropped->inc();
    metrics_.dropped_congestion->inc();
    record_hop(obs::FlightEventKind::kMessageDrop, *sim_, kind, from, to,
               trace_id, "congestion");
    return;
  }
  auto envelope = std::make_shared<Envelope>(Envelope{
      from, to, std::move(payload), priority, std::move(kind), trace_id});
  const TimeMs sent_at = sim_->now();
  sim_->schedule(default_latency_ms_, [this, envelope, sent_at] {
    // Endpoint may have unregistered while in flight (e.g. failed node).
    auto it = endpoints_.find(envelope->to);
    if (it == endpoints_.end()) {
      ++dropped_;
      metrics_.dropped->inc();
      metrics_.dropped_no_endpoint->inc();
      record_hop(obs::FlightEventKind::kMessageDrop, *sim_, envelope->kind,
                 envelope->from, envelope->to, envelope->trace_id,
                 "no_endpoint");
      return;
    }
    ++delivered_;
    metrics_.delivered->inc();
    metrics_.delivery_latency_ms->observe(
        static_cast<double>(sim_->now() - sent_at));
    // No flight event for an ordinary delivery: every send is already
    // recorded as msg_tx and every failure as msg_drop, so delivery is the
    // implied default — recording it too would double the hot-path flight
    // volume for no extra diagnostic power.
    it->second.handler(*envelope);
  });
}

void schedule_fault_script(Simulator& sim, Transport& transport,
                           const std::vector<FaultEvent>& script) {
  const TimeMs now = sim.now();
  for (const FaultEvent& event : script) {
    const TimeMs delay = event.at_ms > now ? event.at_ms - now : 0;
    sim.schedule(delay, [&transport, event] {
      switch (event.kind) {
        case FaultEvent::Kind::kLossProbability:
          transport.set_loss_probability(event.value);
          break;
        case FaultEvent::Kind::kPartition:
          transport.set_partitioned(event.endpoint, true);
          break;
        case FaultEvent::Kind::kHeal:
          transport.set_partitioned(event.endpoint, false);
          break;
        case FaultEvent::Kind::kCongestionOn:
          transport.set_congested(true);
          break;
        case FaultEvent::Kind::kCongestionOff:
          transport.set_congested(false);
          break;
      }
    });
  }
}

}  // namespace dust::sim
