#include "sim/event_queue.hpp"

#include <memory>
#include <stdexcept>

namespace dust::sim {

void Simulator::schedule(TimeMs delay_ms, std::function<void()> fn) {
  if (delay_ms < 0) throw std::invalid_argument("Simulator: negative delay");
  schedule_at(now_ + delay_ms, std::move(fn));
}

void Simulator::schedule_at(TimeMs when_ms, std::function<void()> fn) {
  if (when_ms < now_)
    throw std::invalid_argument("Simulator: schedule in the past");
  queue_.push(Event{when_ms, next_seq_++, std::move(fn)});
}

std::size_t Simulator::run_until(TimeMs until_ms) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= until_ms) {
    // Copy out before pop: fn may schedule new events.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    event.fn();
    ++executed;
  }
  if (now_ < until_ms) now_ = until_ms;
  return executed;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    event.fn();
    ++executed;
  }
  return executed;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

struct PeriodicTask::State {
  Simulator* sim = nullptr;
  TimeMs period = 0;
  std::function<void(TimeMs)> fn;
  bool cancelled = false;

  void arm(TimeMs when, const std::shared_ptr<State>& self) {
    sim->schedule_at(when, [self] {
      if (self->cancelled) return;
      self->fn(self->sim->now());
      if (!self->cancelled) self->arm(self->sim->now() + self->period, self);
    });
  }
};

PeriodicTask::PeriodicTask(Simulator& sim, TimeMs start_ms, TimeMs period_ms,
                           std::function<void(TimeMs)> fn)
    : state_(std::make_shared<State>()) {
  if (period_ms <= 0) throw std::invalid_argument("PeriodicTask: period <= 0");
  state_->sim = &sim;
  state_->period = period_ms;
  state_->fn = std::move(fn);
  state_->arm(start_ms, state_);
}

PeriodicTask::~PeriodicTask() { cancel(); }

void PeriodicTask::cancel() noexcept {
  if (state_) state_->cancelled = true;
}

bool PeriodicTask::active() const noexcept {
  return state_ && !state_->cancelled;
}

}  // namespace dust::sim
