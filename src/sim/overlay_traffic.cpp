#include "sim/overlay_traffic.hpp"

#include <algorithm>
#include <cmath>

namespace dust::sim {

TrafficTick OverlayTraffic::next(util::Rng& rng) {
  TrafficTick tick;
  const double nominal = nominal_mbps();
  // Multiplicative noise: exp(N(0, sigma)) keeps traffic positive and
  // right-skewed like real overlay load.
  double rx = nominal * std::exp(rng.normal(0.0, profile_.noise_stddev));
  if (profile_.burst_probability > 0 &&
      rng.bernoulli(profile_.burst_probability)) {
    rx = nominal * rng.uniform(profile_.burst_low, profile_.burst_high);
    tick.burst = true;
  }
  tick.rx_mbps = std::min(rx, profile_.line_rate_mbps);
  tick.tx_mbps = tick.rx_mbps * profile_.tx_fraction;
  return tick;
}

}  // namespace dust::sim
