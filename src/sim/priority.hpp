// QoS priority classes of the DUST control plane (§III-C).
//
// Split out of sim/transport.hpp so headers that only need to *name* a
// priority (core/messages.hpp, wire/codec.hpp) don't pull in the simulator,
// RNG, and metrics machinery the full transport header depends on.
#pragma once

#include <cstdint>

namespace dust::sim {

/// QoS class. Offloaded monitoring data travels at kLow ("assigned the
/// lowest priority value", §III-C) and is dropped when the transport is
/// congested; control-plane messages ride kNormal.
enum class Priority : std::uint8_t { kLow, kNormal };

}  // namespace dust::sim
