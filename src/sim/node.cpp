#include "sim/node.hpp"

#include <algorithm>
#include <stdexcept>

namespace dust::sim {

MonitoredNode::MonitoredNode(std::string name, NodeResources resources,
                             double base_cpu_percent, double base_memory_mib)
    : name_(std::move(name)),
      resources_(resources),
      base_cpu_percent_(base_cpu_percent),
      base_memory_mib_(base_memory_mib) {
  if (resources_.cores == 0 || resources_.memory_mib <= 0)
    throw std::invalid_argument("MonitoredNode: empty resources");
  if (base_cpu_percent < 0 || base_cpu_percent > 100)
    throw std::invalid_argument("MonitoredNode: base CPU out of range");
  if (base_memory_mib < 0 || base_memory_mib > resources_.memory_mib)
    throw std::invalid_argument("MonitoredNode: base memory out of range");
}

void MonitoredNode::add_local_agent(telemetry::MonitorAgent agent) {
  agent.bind(db_);
  local_agents_.push_back(std::move(agent));
}

void MonitoredNode::add_remote_agent(const std::string& owner,
                                     telemetry::MonitorAgent agent) {
  agent.bind(db_);
  remote_agents_.push_back(RemoteAgent{owner, std::move(agent)});
}

std::vector<telemetry::MonitorAgent> MonitoredNode::remove_local_agents() {
  std::vector<telemetry::MonitorAgent> out = std::move(local_agents_);
  local_agents_.clear();
  return out;
}

std::size_t MonitoredNode::remove_remote_agents(const std::string& owner) {
  const std::size_t before = remote_agents_.size();
  std::erase_if(remote_agents_,
                [&owner](const RemoteAgent& r) { return r.owner == owner; });
  return before - remote_agents_.size();
}

telemetry::DeviceSnapshot MonitoredNode::make_snapshot(std::int64_t now_ms,
                                                       double rx_mbps,
                                                       double tx_mbps,
                                                       util::Rng& rng) const {
  telemetry::DeviceSnapshot snap;
  snap.timestamp_ms = now_ms;
  snap.device_cpu_percent = last_.device_cpu_percent;  // self-observation lag
  snap.memory_used_mib =
      last_.memory_percent / 100.0 * resources_.memory_mib;
  snap.rx_mbps = rx_mbps;
  snap.tx_mbps = tx_mbps;
  snap.temperature_c = 38.0 + rx_mbps / 10000.0 + rng.uniform(0.0, 2.0);
  snap.links_total = 32;
  snap.links_up = 32 - static_cast<std::uint32_t>(rng.bernoulli(0.01) ? 1 : 0);
  snap.protocol_flaps = rng.bernoulli(0.02) ? 1 : 0;
  snap.faults = rng.bernoulli(0.005) ? 1 : 0;
  return snap;
}

TickStats MonitoredNode::tick(std::int64_t now_ms, std::int64_t tick_ms,
                              double rx_mbps, double tx_mbps, util::Rng& rng) {
  if (tick_ms <= 0) throw std::invalid_argument("MonitoredNode::tick: tick_ms");
  const telemetry::DeviceSnapshot snapshot =
      make_snapshot(now_ms, rx_mbps, tx_mbps, rng);

  double monitor_cpu_ms = 0.0;
  for (telemetry::MonitorAgent& agent : local_agents_)
    if (agent.due(now_ms)) monitor_cpu_ms += agent.sample(snapshot, db_, rng);
  // Export residual for agents of this node running remotely.
  monitor_cpu_ms += export_cost_ms_ * static_cast<double>(offloaded_agents_);
  // Remote observations charged since the last tick.
  monitor_cpu_ms += pending_remote_cpu_ms_;
  pending_remote_cpu_ms_ = 0.0;

  const double available_core_ms =
      static_cast<double>(resources_.cores) * static_cast<double>(tick_ms);
  const double monitor_cpu_fraction =
      std::min(1.0, monitor_cpu_ms / available_core_ms);

  double monitor_memory = 0.0;
  for (const telemetry::MonitorAgent& agent : local_agents_)
    monitor_memory += agent.memory_mib();
  for (const RemoteAgent& remote : remote_agents_)
    monitor_memory += remote.agent.memory_mib();
  monitor_memory += static_cast<double>(db_.storage_bytes()) / (1024.0 * 1024.0);

  TickStats stats;
  stats.timestamp_ms = now_ms;
  stats.monitor_cpu_cores = monitor_cpu_ms / static_cast<double>(tick_ms);
  stats.device_cpu_percent =
      std::min(100.0, base_cpu_percent_ + 100.0 * monitor_cpu_fraction);
  stats.monitor_memory_mib = monitor_memory;
  stats.memory_percent = std::min(
      100.0, (base_memory_mib_ + monitor_memory) / resources_.memory_mib * 100.0);
  last_ = stats;
  return stats;
}

double MonitoredNode::observe_remote(const std::string& owner,
                                     const telemetry::DeviceSnapshot& snapshot,
                                     util::Rng& rng) {
  double cpu_ms = 0.0;
  for (RemoteAgent& remote : remote_agents_) {
    if (remote.owner != owner) continue;
    if (remote.agent.due(snapshot.timestamp_ms))
      cpu_ms += remote.agent.sample(snapshot, db_, rng);
  }
  pending_remote_cpu_ms_ += cpu_ms;
  return cpu_ms;
}

}  // namespace dust::sim
