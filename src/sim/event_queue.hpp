// Discrete-event simulation core.
//
// A Simulator owns virtual time (milliseconds) and a priority queue of
// callbacks. Everything in the testbed simulation — traffic ticks, agent
// sampling, protocol timers (STAT, Keepalive) — is scheduled here, so
// experiments are deterministic and run at CPU speed, not wall-clock speed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace dust::sim {

using TimeMs = std::int64_t;

class Simulator {
 public:
  [[nodiscard]] TimeMs now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay_ms >= 0` after the current time.
  void schedule(TimeMs delay_ms, std::function<void()> fn);
  /// Schedule at an absolute time >= now().
  void schedule_at(TimeMs when_ms, std::function<void()> fn);

  /// Run events until the queue is empty or `until_ms` is passed
  /// (events exactly at until_ms are executed). Returns events executed.
  std::size_t run_until(TimeMs until_ms);

  /// Run until the queue drains. Returns events executed.
  std::size_t run();

  /// Cancel everything not yet executed.
  void clear();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    TimeMs when;
    std::uint64_t seq;  // FIFO among same-time events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  TimeMs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Repeating timer helper: schedules `fn(now)` every `period_ms` starting at
/// `start_ms`, until cancel() or the simulator is cleared.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, TimeMs start_ms, TimeMs period_ms,
               std::function<void(TimeMs)> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void cancel() noexcept;
  [[nodiscard]] bool active() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace dust::sim
