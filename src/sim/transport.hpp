// In-memory message transport with latency and loss injection.
//
// Stands in for the REST/gRPC channels between DUST-Clients and the
// DUST-Manager. Endpoints register a handler under a name; send() delivers a
// type-erased payload after the configured latency, unless the (seeded) loss
// process drops it. Protocol state machines in dust::core are exercised over
// this transport, including Keepalive loss -> replica substitution.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/priority.hpp"
#include "util/rng.hpp"

namespace dust::sim {

struct Envelope {
  std::string from;
  std::string to;
  std::any payload;
  Priority priority = Priority::kNormal;
  // Observability passengers (appended — aggregate initializers above keep
  // working). `kind` is a short message label ("stat", "offload_request");
  // `trace_id` ties the hop to a causal trace (obs/trace.hpp). Both feed the
  // flight recorder's msg_tx/msg_rx/msg_drop events.
  std::string kind;
  std::uint64_t trace_id = 0;
};

/// The transport surface the protocol state machines (core::DustManager,
/// core::DustClient) program against: named endpoints with token-scoped
/// registration and fire-and-forget sends. Implementations decide what a
/// "send" physically is — the in-memory simulator Transport below delivers
/// through the event queue; wire::SocketTransport frames the payload with
/// wire::Codec and moves it over TCP. Everything QoS-relevant (priority) and
/// observability-relevant (kind, trace_id) crosses the interface so no
/// implementation can lose it.
class TransportBase {
 public:
  using Handler = std::function<void(const Envelope&)>;

  virtual ~TransportBase() = default;

  /// Register (or replace) the handler for `name`. Returns a registration
  /// token; unregistering with a stale token is a no-op, so a destroyed
  /// owner can never tear down a successor that re-registered the name.
  virtual std::uint64_t register_endpoint(const std::string& name,
                                          Handler handler) = 0;
  virtual void unregister_endpoint(const std::string& name,
                                   std::uint64_t token) = 0;
  [[nodiscard]] virtual bool has_endpoint(const std::string& name) const = 0;

  /// Queue delivery of `payload` to `to`. `kind` and `trace_id` are
  /// observability-only passengers; `priority` is the §III-C QoS class and
  /// MUST survive to the receiver's Envelope verbatim.
  virtual void send(const std::string& from, const std::string& to,
                    std::any payload, Priority priority = Priority::kNormal,
                    std::string kind = {}, std::uint64_t trace_id = 0) = 0;
};

class Transport : public TransportBase {
 public:
  using Handler = TransportBase::Handler;

  Transport(Simulator& sim, util::Rng rng);

  void set_default_latency_ms(TimeMs latency) { default_latency_ms_ = latency; }
  /// Message loss probability in [0, 1] applied to every send.
  void set_loss_probability(double p);
  /// Per-destination partition: all traffic to `endpoint` is dropped.
  void set_partitioned(const std::string& endpoint, bool partitioned);

  /// Register (or replace) the handler for `name`. Returns a registration
  /// token; unregistering with a stale token is a no-op, so a destroyed
  /// owner can never tear down a successor that re-registered the name.
  std::uint64_t register_endpoint(const std::string& name,
                                  Handler handler) override;
  void unregister_endpoint(const std::string& name);
  void unregister_endpoint(const std::string& name,
                           std::uint64_t token) override;
  [[nodiscard]] bool has_endpoint(const std::string& name) const override;

  /// Congestion drops all kLow-priority traffic (QoS guarantee of §III-C).
  void set_congested(bool congested) noexcept { congested_ = congested; }
  [[nodiscard]] bool congested() const noexcept { return congested_; }

  /// Queue delivery of `payload` to `to` after the transport latency.
  /// Messages to unknown endpoints, lost messages, low-priority messages
  /// under congestion, and messages to partitioned endpoints are counted in
  /// dropped().
  ///
  /// Drop precedence is fixed at loss -> partition -> congestion: the random
  /// loss draw happens first on every send regardless of partition or
  /// congestion state, so the RNG stream consumed by a run is a function of
  /// the message sequence alone. Toggling partitions or congestion mid-run
  /// (e.g. via a fault schedule) therefore never shifts later loss draws,
  /// and a fault schedule replays bit-identically under a fixed seed.
  /// `kind` and `trace_id` are observability-only passengers: they label the
  /// flight-recorder events for this hop and ride in the Envelope, but never
  /// influence delivery.
  void send(const std::string& from, const std::string& to, std::any payload,
            Priority priority = Priority::kNormal, std::string kind = {},
            std::uint64_t trace_id = 0) override;

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  /// Global-registry handles (dust_sim_transport_*), resolved once at
  /// construction so the send path stays lock-free. Drops are counted both
  /// in total and by cause so QoS behaviour under congestion is scrapable.
  struct Metrics {
    obs::Counter* sent = nullptr;
    obs::Counter* sent_low = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* dropped_congestion = nullptr;
    obs::Counter* dropped_loss = nullptr;
    obs::Counter* dropped_partition = nullptr;
    obs::Counter* dropped_no_endpoint = nullptr;
    obs::Histogram* delivery_latency_ms = nullptr;  ///< sim-time latency
  };

  Simulator* sim_;
  util::Rng rng_;
  Metrics metrics_;
  TimeMs default_latency_ms_ = 1;
  double loss_probability_ = 0.0;
  bool congested_ = false;
  struct Endpoint {
    Handler handler;
    std::uint64_t token = 0;
  };
  std::unordered_map<std::string, Endpoint> endpoints_;
  std::uint64_t next_token_ = 1;
  std::unordered_map<std::string, bool> partitioned_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

/// One entry of a scripted fault schedule. Applied to a Transport at
/// `at_ms` sim-time by schedule_fault_script(); the dust::check scenario
/// generator emits these so a scenario's fault injection is replayable.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kLossProbability,  ///< set_loss_probability(value)
    kPartition,        ///< set_partitioned(endpoint, true)
    kHeal,             ///< set_partitioned(endpoint, false)
    kCongestionOn,     ///< set_congested(true)
    kCongestionOff,    ///< set_congested(false)
  };
  TimeMs at_ms = 0;
  Kind kind = Kind::kLossProbability;
  double value = 0.0;     ///< kLossProbability only
  std::string endpoint;   ///< kPartition / kHeal only
};

/// Schedule every event of `script` against `transport` at its `at_ms`.
/// Events may be in any order; the transport must outlive the simulator run.
void schedule_fault_script(Simulator& sim, Transport& transport,
                           const std::vector<FaultEvent>& script);

}  // namespace dust::sim
