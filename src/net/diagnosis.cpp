#include "net/diagnosis.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace dust::net {

double expected_probe_seconds(const NetworkState& net, const PathProbe& probe) {
  double seconds = 0.0;
  for (graph::EdgeId e : probe.path.edges)
    seconds += probe.data_mb / net.link(e).utilized_bandwidth();
  return seconds;
}

Diagnosis localize_bottleneck(const NetworkState& net,
                              const std::vector<PathProbe>& probes,
                              const DiagnosisOptions& options) {
  Diagnosis diagnosis;
  std::set<graph::EdgeId> healthy_edges;
  struct Accumulator {
    double ratio_sum = 0.0;
    std::size_t count = 0;
  };
  std::map<graph::EdgeId, Accumulator> degraded_edges;
  std::set<graph::EdgeId> in_all_degraded;
  bool first_degraded = true;

  for (const PathProbe& probe : probes) {
    const double expected = expected_probe_seconds(net, probe);
    const bool degraded =
        expected > 0 && probe.measured_seconds > options.tolerance * expected;
    if (!degraded) {
      ++diagnosis.healthy_probes;
      healthy_edges.insert(probe.path.edges.begin(), probe.path.edges.end());
      continue;
    }
    ++diagnosis.degraded_probes;
    const double ratio = probe.measured_seconds / expected;
    std::set<graph::EdgeId> edges(probe.path.edges.begin(),
                                  probe.path.edges.end());
    for (graph::EdgeId e : edges) {
      Accumulator& acc = degraded_edges[e];
      acc.ratio_sum += ratio;
      ++acc.count;
    }
    if (first_degraded) {
      in_all_degraded = edges;
      first_degraded = false;
    } else {
      std::set<graph::EdgeId> intersection;
      std::set_intersection(in_all_degraded.begin(), in_all_degraded.end(),
                            edges.begin(), edges.end(),
                            std::inserter(intersection, intersection.begin()));
      in_all_degraded = std::move(intersection);
    }
  }
  if (diagnosis.degraded_probes == 0) return diagnosis;

  // Suspects: edges on every degraded probe that no healthy probe crossed.
  // If healthy probes exonerate everything (shared edge was fine elsewhere),
  // fall back to the un-exonerated edges of any degraded probe.
  std::vector<graph::EdgeId> candidates;
  for (graph::EdgeId e : in_all_degraded)
    if (!healthy_edges.count(e)) candidates.push_back(e);
  if (candidates.empty()) {
    for (const auto& [e, acc] : degraded_edges)
      if (!healthy_edges.count(e)) candidates.push_back(e);
  }
  for (graph::EdgeId e : candidates) {
    const Accumulator& acc = degraded_edges.at(e);
    Suspect suspect;
    suspect.edge = e;
    suspect.slowdown = acc.ratio_sum / static_cast<double>(acc.count);
    suspect.degraded_probes = acc.count;
    diagnosis.suspects.push_back(suspect);
  }
  std::sort(diagnosis.suspects.begin(), diagnosis.suspects.end(),
            [](const Suspect& a, const Suspect& b) {
              if (a.degraded_probes != b.degraded_probes)
                return a.degraded_probes > b.degraded_probes;
              if (a.slowdown != b.slowdown) return a.slowdown > b.slowdown;
              return a.edge < b.edge;
            });
  return diagnosis;
}

}  // namespace dust::net
