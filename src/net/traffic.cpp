#include "net/traffic.hpp"

#include <stdexcept>

namespace dust::net {

void randomize_links(NetworkState& net, const LinkProfile& profile,
                     util::Rng& rng) {
  if (profile.min_utilization <= 0 || profile.max_utilization > 1.0 ||
      profile.min_utilization > profile.max_utilization)
    throw std::invalid_argument("randomize_links: bad utilization range");
  for (graph::EdgeId e = 0; e < net.edge_count(); ++e) {
    LinkState state;
    state.bandwidth_mbps = profile.bandwidth_mbps;
    state.utilization =
        rng.uniform(profile.min_utilization, profile.max_utilization);
    net.set_link(e, state);
  }
}

void randomize_node_loads(NetworkState& net, const NodeLoadProfile& profile,
                          util::Rng& rng) {
  if (profile.x_min < 0 || profile.x_max > 100 || profile.x_min > profile.x_max)
    throw std::invalid_argument("randomize_node_loads: bad load range");
  for (graph::NodeId v = 0; v < net.node_count(); ++v) {
    net.set_node_utilization(v, rng.uniform(profile.x_min, profile.x_max));
    net.set_monitoring_data_mb(
        v, rng.uniform(profile.monitoring_data_min_mb,
                       profile.monitoring_data_max_mb));
  }
}

NetworkState make_random_state(graph::Graph graph, const LinkProfile& links,
                               const NodeLoadProfile& loads, util::Rng& rng) {
  NetworkState net(std::move(graph));
  randomize_links(net, links, rng);
  randomize_node_loads(net, loads, rng);
  return net;
}

}  // namespace dust::net
