// Dynamic network state: per-link bandwidth/utilization and per-node
// utilized capacity. This is the data the paper's NMDB stores (topology,
// link utilization, node resource utilization) and the optimization engine
// consumes.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"

namespace dust::net {

/// One link's dynamic state. Lu (the paper's "link utilization bandwidth",
/// Mbps) = physical bandwidth x utilization rate of data in transit.
struct LinkState {
  double bandwidth_mbps = 10000.0;  ///< physical capacity
  double utilization = 0.5;         ///< fraction of capacity in use, (0, 1]

  /// Lu_e in Mbps; the denominator of the paper's Eq. 1.
  [[nodiscard]] double utilized_bandwidth() const noexcept {
    return bandwidth_mbps * utilization;
  }
};

/// Topology + per-edge link state + per-node utilized capacity C_j (%) and
/// monitoring data volume D_i (Mb).
class NetworkState {
 public:
  explicit NetworkState(graph::Graph graph)
      : graph_(std::move(graph)),
        links_(graph_.edge_count()),
        node_utilization_(graph_.node_count(), 0.0),
        monitoring_data_mb_(graph_.node_count(), 0.0) {}

  [[nodiscard]] const graph::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return graph_.node_count(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return graph_.edge_count(); }

  [[nodiscard]] const LinkState& link(graph::EdgeId edge) const {
    return links_.at(edge);
  }
  void set_link(graph::EdgeId edge, LinkState state) {
    if (state.bandwidth_mbps <= 0 || state.utilization <= 0 ||
        state.utilization > 1.0)
      throw std::invalid_argument("NetworkState::set_link: invalid link state");
    links_.at(edge) = state;
  }

  /// C_j, percent in [0, 100].
  [[nodiscard]] double node_utilization(graph::NodeId node) const {
    return node_utilization_.at(node);
  }
  void set_node_utilization(graph::NodeId node, double percent) {
    if (percent < 0.0 || percent > 100.0)
      throw std::invalid_argument("NetworkState: utilization out of [0,100]");
    node_utilization_.at(node) = percent;
  }

  /// D_i, the monitoring data volume to move if node i offloads (Mb).
  [[nodiscard]] double monitoring_data_mb(graph::NodeId node) const {
    return monitoring_data_mb_.at(node);
  }
  void set_monitoring_data_mb(graph::NodeId node, double mb) {
    if (mb < 0.0)
      throw std::invalid_argument("NetworkState: negative monitoring data");
    monitoring_data_mb_.at(node) = mb;
  }

  /// Per-edge Lu vector (Mbps), aligned with edge ids.
  [[nodiscard]] std::vector<double> utilized_bandwidths() const;

  /// Per-edge cost 1/Lu_e — the Eq. 1 response-time weight without the D_i
  /// factor (multiply by D_i to get seconds).
  [[nodiscard]] std::vector<double> inverse_bandwidth_costs() const;

 private:
  graph::Graph graph_;
  std::vector<LinkState> links_;
  std::vector<double> node_utilization_;
  std::vector<double> monitoring_data_mb_;
};

}  // namespace dust::net
