// Dynamic network state: per-link bandwidth/utilization and per-node
// utilized capacity. This is the data the paper's NMDB stores (topology,
// link utilization, node resource utilization) and the optimization engine
// consumes.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"

namespace dust::net {

/// One link's dynamic state. Lu (the paper's "link utilization bandwidth",
/// Mbps) = physical bandwidth x utilization rate of data in transit.
struct LinkState {
  double bandwidth_mbps = 10000.0;  ///< physical capacity
  double utilization = 0.5;         ///< fraction of capacity in use, (0, 1]

  /// Lu_e in Mbps; the denominator of the paper's Eq. 1.
  [[nodiscard]] double utilized_bandwidth() const noexcept {
    return bandwidth_mbps * utilization;
  }
};

/// Topology + per-edge link state + per-node utilized capacity C_j (%) and
/// monitoring data volume D_i (Mb).
class NetworkState {
 public:
  explicit NetworkState(graph::Graph graph)
      : graph_(std::move(graph)),
        links_(graph_.edge_count()),
        node_utilization_(graph_.node_count(), 0.0),
        monitoring_data_mb_(graph_.node_count(), 0.0),
        baseline_lu_(graph_.edge_count(), LinkState{}.utilized_bandwidth()),
        link_dirty_(graph_.edge_count(), 0) {}

  [[nodiscard]] const graph::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return graph_.node_count(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return graph_.edge_count(); }

  [[nodiscard]] const LinkState& link(graph::EdgeId edge) const {
    return links_.at(edge);
  }
  void set_link(graph::EdgeId edge, LinkState state) {
    if (state.bandwidth_mbps <= 0 || state.utilization <= 0 ||
        state.utilization > 1.0)
      throw std::invalid_argument("NetworkState::set_link: invalid link state");
    links_.at(edge) = state;
    if (!link_dirty_[edge]) {
      const double baseline = baseline_lu_[edge];
      if (std::abs(state.utilized_bandwidth() - baseline) >
          link_epsilon_ * baseline) {
        link_dirty_[edge] = 1;
        dirty_links_.push_back(edge);
        ++link_version_;
      }
    }
  }

  // --- Dirty-link tracking (incremental consumers, DESIGN.md §8) ---
  //
  // set_link marks an edge dirty when its Lu moves by more than
  // `link_epsilon` (relative) from the baseline captured at the last
  // snapshot_links(). Once dirty, an edge stays dirty until the next
  // snapshot, so intermediate reverts cannot hide a change a consumer has
  // not yet seen. snapshot_links() re-baselines only the dirty edges:
  // sub-epsilon drift on clean edges keeps accumulating against the old
  // baseline and eventually trips, bounding a consumer's total staleness
  // per edge to the epsilon band.

  /// Relative Lu change that marks a link dirty (0 = any change).
  void set_link_epsilon(double epsilon) {
    if (epsilon < 0.0)
      throw std::invalid_argument("NetworkState: negative link epsilon");
    link_epsilon_ = epsilon;
  }
  [[nodiscard]] double link_epsilon() const noexcept { return link_epsilon_; }

  /// Edges whose Lu moved beyond epsilon since the last snapshot_links().
  [[nodiscard]] const std::vector<graph::EdgeId>& dirty_links() const noexcept {
    return dirty_links_;
  }
  [[nodiscard]] bool link_dirty(graph::EdgeId edge) const {
    return link_dirty_.at(edge) != 0;
  }
  /// Monotonic counter bumped each time a link turns dirty; an unchanged
  /// value guarantees no link crossed the epsilon band since it was read.
  [[nodiscard]] std::uint64_t link_version() const noexcept {
    return link_version_;
  }
  /// Accept the current state of all dirty links as the new baseline and
  /// clear the dirty set. Does not advance link_version().
  void snapshot_links() {
    for (graph::EdgeId e : dirty_links_) {
      baseline_lu_[e] = links_[e].utilized_bandwidth();
      link_dirty_[e] = 0;
    }
    dirty_links_.clear();
  }

  /// C_j, percent in [0, 100].
  [[nodiscard]] double node_utilization(graph::NodeId node) const {
    return node_utilization_.at(node);
  }
  void set_node_utilization(graph::NodeId node, double percent) {
    if (percent < 0.0 || percent > 100.0)
      throw std::invalid_argument("NetworkState: utilization out of [0,100]");
    node_utilization_.at(node) = percent;
  }

  /// D_i, the monitoring data volume to move if node i offloads (Mb).
  [[nodiscard]] double monitoring_data_mb(graph::NodeId node) const {
    return monitoring_data_mb_.at(node);
  }
  void set_monitoring_data_mb(graph::NodeId node, double mb) {
    if (mb < 0.0)
      throw std::invalid_argument("NetworkState: negative monitoring data");
    monitoring_data_mb_.at(node) = mb;
  }

  /// Per-edge Lu vector (Mbps), aligned with edge ids.
  [[nodiscard]] std::vector<double> utilized_bandwidths() const;

  /// Per-edge cost 1/Lu_e — the Eq. 1 response-time weight without the D_i
  /// factor (multiply by D_i to get seconds).
  [[nodiscard]] std::vector<double> inverse_bandwidth_costs() const;

  /// As inverse_bandwidth_costs(), overwriting `out` (capacity reused).
  void inverse_bandwidth_costs_into(std::vector<double>& out) const;

 private:
  graph::Graph graph_;
  std::vector<LinkState> links_;
  std::vector<double> node_utilization_;
  std::vector<double> monitoring_data_mb_;
  std::vector<double> baseline_lu_;
  std::vector<char> link_dirty_;
  std::vector<graph::EdgeId> dirty_links_;
  double link_epsilon_ = 0.0;
  std::uint64_t link_version_ = 0;
};

}  // namespace dust::net
