#include "net/response_cache.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "graph/paths.hpp"
#include "obs/metrics.hpp"

namespace dust::net {

ResponseTimeCache::ResponseTimeCache() {
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  hit_counter_ = &registry.counter("dust_net_trmin_cache_hits_total");
  miss_counter_ = &registry.counter("dust_net_trmin_cache_misses_total");
  invalidation_counter_ =
      &registry.counter("dust_net_trmin_cache_invalidated_rows_total");
  bypass_counter_ = &registry.counter("dust_net_trmin_cache_bypasses_total");
}

void ResponseTimeCache::set_lu_quantum(double step) {
  if (step < 0.0 || !std::isfinite(step))
    throw std::invalid_argument("ResponseTimeCache: Lu quantum must be >= 0");
  if (step == lu_quantum_) return;
  lu_quantum_ = step;
  // Cached rows and the cost snapshot were built against the old
  // representatives; force a wholesale rebuild on the next begin_cycle.
  clear();
}

void ResponseTimeCache::set_reprice_epsilon(double epsilon) {
  if (epsilon < 0.0 || epsilon >= 1.0 || !std::isfinite(epsilon))
    throw std::invalid_argument(
        "ResponseTimeCache: reprice epsilon must be in [0, 1)");
  if (epsilon == reprice_epsilon_) return;
  // Tightening: surviving rows may be staler than the new band promises.
  if (epsilon < reprice_epsilon_) clear();
  reprice_epsilon_ = epsilon;
}

double ResponseTimeCache::quantize(double inverse_cost) const noexcept {
  if (lu_quantum_ <= 0.0 || !(inverse_cost > 0.0) ||
      !std::isfinite(inverse_cost))
    return inverse_cost;  // exact mode; keep 0 / inf / NaN sentinels as-is
  const double log_step = std::log1p(lu_quantum_);
  const double bucket = std::floor(std::log(inverse_cost) / log_step);
  return std::exp((bucket + 0.5) * log_step);
}

bool ResponseTimeCache::synced_with(const NetworkState& net) const noexcept {
  return synced_once_ && entries_.size() == net.node_count() &&
         inverse_costs_.size() == net.edge_count() &&
         synced_version_ == net.link_version() && net.dirty_links().empty();
}

void ResponseTimeCache::begin_cycle(NetworkState& net) {
  const std::size_t n = net.node_count();
  if (!synced_once_ || entries_.size() != n ||
      inverse_costs_.size() != net.edge_count()) {
    // First use or topology change: rebuild wholesale.
    entries_.assign(n, Entry{});
    net.inverse_bandwidth_costs_into(inverse_costs_);
    for (double& cost : inverse_costs_) cost = quantize(cost);
    net.snapshot_links();
    synced_version_ = net.link_version();
    synced_once_ = true;
    return;
  }
  if (net.dirty_links().empty()) {
    synced_version_ = net.link_version();
    return;
  }

  // Refresh the cost snapshot for the links that moved. Clean links keep
  // their pinned value — NetworkState's baseline rule guarantees the live
  // Lu stays within the epsilon band of it. Under quantization a dirty link
  // whose bucket representative is unchanged only jittered inside its band:
  // it re-baselines (snapshot below) without invalidating anything. Moves
  // are kept with their direction, because the invalidation tests below
  // treat cost increases and decreases differently.
  struct MovedLink {
    graph::EdgeId e;
    double new_cost;
    bool worsened;  ///< cost increased (link got more utilized)
  };
  static thread_local std::vector<MovedLink> moved;
  moved.clear();
  for (graph::EdgeId e : net.dirty_links()) {
    const double fresh = quantize(1.0 / net.link(e).utilized_bandwidth());
    if (fresh == inverse_costs_[e]) continue;
    moved.push_back({e, fresh, fresh > inverse_costs_[e]});
    inverse_costs_[e] = fresh;
  }
  if (moved.empty()) {
    net.snapshot_links();
    synced_version_ = net.link_version();
    return;
  }

  const graph::Graph& g = net.graph();

  // Per-direction row tests (the reason a hot core link no longer nukes
  // every row on the topology):
  //
  //   worsened link  — paths through it only got more expensive, so a row
  //                    whose winning paths (used_edges) avoid it keeps its
  //                    exact values. O(1) bitmap probe per link.
  //   improved link  — it may have created a better path the row never
  //                    evaluated. A row survives a destination v when no
  //                    route through the link can fit the hop budget
  //                    (hops(s,a) + 1 + hops(b,v) > max_hops, by BFS) or
  //                    when the cost lower bound through it — hop-bounded
  //                    segment minima d(s,a) + cost + d(b,v) on the
  //                    refreshed costs — cannot beat the cached unit Trmin.
  //
  // Rows without used_edges (kHopBoundedDp) fall back to the conservative
  // hop-ball test: one multi-source BFS from all moved endpoints, row
  // invalid iff dist(s) + 1 <= max_hops (0 = unbounded).
  std::uint32_t max_hops_cap = 0;  // loosest hop bound any valid row uses
  bool unbounded_rows = false;
  for (const Entry& entry : entries_) {
    if (!entry.valid || entry.unit.used_edges.empty()) continue;
    if (entry.max_hops == 0)
      unbounded_rows = true;
    else
      max_hops_cap = std::max(max_hops_cap, entry.max_hops);
  }
  struct ImprovedLink {
    double cost;
    std::vector<double> from_a;  ///< segment cost minima from endpoint a
    std::vector<double> from_b;
    std::vector<std::uint32_t> hops_a;  ///< BFS hop counts from endpoint a
    std::vector<std::uint32_t> hops_b;
  };
  static thread_local std::vector<ImprovedLink> improved;
  improved.clear();
  bool any_worsened_ball = false;
  for (const MovedLink& m : moved) {
    if (m.worsened) {
      any_worsened_ball = true;
      continue;
    }
    const graph::Edge& edge = g.edge(m.e);
    ImprovedLink link;
    link.cost = m.new_cost;
    // Each side of a via-link path has at most max_hops - 1 edges, so the
    // hop-bounded segment minimum is a valid (and much tighter than
    // unbounded Dijkstra) lower bound. Rows with no hop bound need the
    // unbounded minimum.
    if (unbounded_rows || max_hops_cap == 0) {
      link.from_a = graph::dijkstra(g, edge.a, inverse_costs_).distance;
      link.from_b = graph::dijkstra(g, edge.b, inverse_costs_).distance;
    } else {
      link.from_a = graph::hop_bounded_min_cost(g, edge.a, inverse_costs_,
                                                max_hops_cap - 1);
      link.from_b = graph::hop_bounded_min_cost(g, edge.b, inverse_costs_,
                                                max_hops_cap - 1);
    }
    link.hops_a = graph::bfs_hops(g, edge.a);
    link.hops_b = graph::bfs_hops(g, edge.b);
    improved.push_back(std::move(link));
  }

  // Hop ball for the fallback rows, lazily: dist to the nearest moved link.
  static thread_local std::vector<std::uint32_t> dist;
  bool ball_built = false;
  const auto build_ball = [&] {
    dist.assign(n, graph::kUnreachable);
    std::queue<graph::NodeId> frontier;
    for (const MovedLink& m : moved) {
      const graph::Edge& edge = g.edge(m.e);
      for (graph::NodeId endpoint : {edge.a, edge.b}) {
        if (dist[endpoint] != 0) {
          dist[endpoint] = 0;
          frontier.push(endpoint);
        }
      }
    }
    while (!frontier.empty()) {
      const graph::NodeId node = frontier.front();
      frontier.pop();
      for (const graph::Adjacency& adj : g.neighbors(node)) {
        if (dist[adj.neighbor] == graph::kUnreachable) {
          dist[adj.neighbor] = dist[node] + 1;
          frontier.push(adj.neighbor);
        }
      }
    }
    ball_built = true;
  };

  const auto row_survives = [&](graph::NodeId s, const Entry& entry) {
    if (entry.unit.used_edges.empty()) {
      // No edge support recorded: conservative hop-ball reachability.
      if (!ball_built) build_ball();
      if (dist[s] == graph::kUnreachable) return true;
      return entry.max_hops != 0 && dist[s] + 1 > entry.max_hops;
    }
    if (any_worsened_ball) {
      for (const MovedLink& m : moved) {
        if (!m.worsened) continue;
        if (entry.unit.used_edges[m.e / 64] &
            (std::uint64_t{1} << (m.e % 64)))
          return false;
      }
    }
    // Deadband: only a beat by more than the relative epsilon forces a
    // reprice. scale == 1.0 when the band is off, keeping the test exact.
    const double scale = 1.0 - reprice_epsilon_;
    for (const ImprovedLink& link : improved) {
      const std::vector<double>& trmin = entry.unit.trmin_seconds;
      const std::uint32_t h = entry.max_hops;
      const double to_a = link.from_a[s];
      const double to_b = link.from_b[s];
      const std::uint32_t sh_a = link.hops_a[s];
      const std::uint32_t sh_b = link.hops_b[s];
      for (graph::NodeId v = 0; v < n; ++v) {
        // A new path via the link needs hops(s, x) + 1 + hops(y, v) edges
        // at minimum; beyond the row's hop budget it cannot exist at all.
        const bool a_side_fits =
            h == 0 || (sh_a != graph::kUnreachable &&
                       link.hops_b[v] != graph::kUnreachable &&
                       sh_a + 1 + link.hops_b[v] <= h);
        const bool b_side_fits =
            h == 0 || (sh_b != graph::kUnreachable &&
                       link.hops_a[v] != graph::kUnreachable &&
                       sh_b + 1 + link.hops_a[v] <= h);
        if (a_side_fits && to_a + link.cost + link.from_b[v] < trmin[v] * scale)
          return false;
        if (b_side_fits && to_b + link.cost + link.from_a[v] < trmin[v] * scale)
          return false;
      }
    }
    return true;
  };

  std::uint64_t dropped = 0;
  for (graph::NodeId s = 0; s < n; ++s) {
    Entry& entry = entries_[s];
    if (!entry.valid) continue;
    if (!row_survives(s, entry)) {
      entry.valid = false;
      ++dropped;
    }
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  invalidation_counter_->inc(dropped);

  net.snapshot_links();
  synced_version_ = net.link_version();
}

void ResponseTimeCache::serve(const Entry& entry, double data_mb,
                              ResponseTimeResult& out) const {
  const std::vector<double>& unit = entry.unit.trmin_seconds;
  out.trmin_seconds.resize(unit.size());
  for (std::size_t v = 0; v < unit.size(); ++v)
    out.trmin_seconds[v] =
        unit[v] == graph::kInfiniteCost ? graph::kInfiniteCost
                                        : unit[v] * data_mb;
  out.truncated = entry.unit.truncated;
}

void ResponseTimeCache::row_into(const NetworkState& net, graph::NodeId source,
                                 double data_mb,
                                 const ResponseTimeOptions& options,
                                 ResponseTimeResult& out) {
  if (!synced_with(net)) {
    // Out of sync (begin_cycle not run since the links moved): evaluate
    // directly without touching the cache — correct, just not incremental.
    bypasses_.fetch_add(1, std::memory_order_relaxed);
    bypass_counter_->inc();
    static thread_local std::vector<double> inv;
    net.inverse_bandwidth_costs_into(inv);
    min_response_times_into(net, source, data_mb, options, inv, out);
    return;
  }
  Entry& entry = entries_.at(source);
  const bool hit = entry.valid && entry.max_hops == options.max_hops &&
                   entry.mode == options.mode &&
                   entry.max_paths == options.max_paths_per_source;
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hit_counter_->inc();
    out.work = 0;  // nothing evaluated; the row came from cache
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_counter_->inc();
    min_response_times_into(net, source, 1.0, options, inverse_costs_,
                            entry.unit);
    entry.max_hops = options.max_hops;
    entry.mode = options.mode;
    entry.max_paths = options.max_paths_per_source;
    entry.valid = true;
    out.work = entry.unit.work;
  }
  serve(entry, data_mb, out);
}

ResponseTimeResult ResponseTimeCache::row(const NetworkState& net,
                                          graph::NodeId source, double data_mb,
                                          const ResponseTimeOptions& options) {
  ResponseTimeResult out;
  row_into(net, source, data_mb, options, out);
  return out;
}

void ResponseTimeCache::clear() {
  for (Entry& entry : entries_) entry.valid = false;
  synced_once_ = false;
}

ResponseTimeCacheStats ResponseTimeCache::stats() const {
  ResponseTimeCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.bypasses = bypasses_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ResponseTimeCache::cached_rows() const {
  std::size_t count = 0;
  for (const Entry& entry : entries_)
    if (entry.valid) ++count;
  return count;
}

}  // namespace dust::net
