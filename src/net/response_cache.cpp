#include "net/response_cache.hpp"

#include <queue>

#include "graph/paths.hpp"
#include "obs/metrics.hpp"

namespace dust::net {

ResponseTimeCache::ResponseTimeCache() {
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  hit_counter_ = &registry.counter("dust_net_trmin_cache_hits_total");
  miss_counter_ = &registry.counter("dust_net_trmin_cache_misses_total");
  invalidation_counter_ =
      &registry.counter("dust_net_trmin_cache_invalidated_rows_total");
  bypass_counter_ = &registry.counter("dust_net_trmin_cache_bypasses_total");
}

bool ResponseTimeCache::synced_with(const NetworkState& net) const noexcept {
  return synced_once_ && entries_.size() == net.node_count() &&
         inverse_costs_.size() == net.edge_count() &&
         synced_version_ == net.link_version() && net.dirty_links().empty();
}

void ResponseTimeCache::begin_cycle(NetworkState& net) {
  const std::size_t n = net.node_count();
  if (!synced_once_ || entries_.size() != n ||
      inverse_costs_.size() != net.edge_count()) {
    // First use or topology change: rebuild wholesale.
    entries_.assign(n, Entry{});
    net.inverse_bandwidth_costs_into(inverse_costs_);
    net.snapshot_links();
    synced_version_ = net.link_version();
    synced_once_ = true;
    return;
  }
  if (net.dirty_links().empty()) {
    synced_version_ = net.link_version();
    return;
  }

  // Refresh the cost snapshot for the links that moved. Clean links keep
  // their pinned value — NetworkState's baseline rule guarantees the live
  // Lu stays within the epsilon band of it.
  for (graph::EdgeId e : net.dirty_links())
    inverse_costs_[e] = 1.0 / net.link(e).utilized_bandwidth();

  // One multi-source BFS from every dirty link's endpoints gives, for each
  // node s, the hop distance to the nearest dirty link; a cached row is
  // invalid iff that link is usable within the row's hop bound:
  // dist(s) + 1 <= max_hops (max_hops == 0 means unbounded, so any
  // reachable dirty link invalidates).
  static thread_local std::vector<std::uint32_t> dist;
  dist.assign(n, graph::kUnreachable);
  std::queue<graph::NodeId> frontier;
  const graph::Graph& g = net.graph();
  for (graph::EdgeId e : net.dirty_links()) {
    const graph::Edge& edge = g.edge(e);
    for (graph::NodeId endpoint : {edge.a, edge.b}) {
      if (dist[endpoint] != 0) {
        dist[endpoint] = 0;
        frontier.push(endpoint);
      }
    }
  }
  while (!frontier.empty()) {
    const graph::NodeId node = frontier.front();
    frontier.pop();
    for (const graph::Adjacency& adj : g.neighbors(node)) {
      if (dist[adj.neighbor] == graph::kUnreachable) {
        dist[adj.neighbor] = dist[node] + 1;
        frontier.push(adj.neighbor);
      }
    }
  }

  std::uint64_t dropped = 0;
  for (graph::NodeId s = 0; s < n; ++s) {
    Entry& entry = entries_[s];
    if (!entry.valid || dist[s] == graph::kUnreachable) continue;
    if (entry.max_hops == 0 || dist[s] + 1 <= entry.max_hops) {
      entry.valid = false;
      ++dropped;
    }
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  invalidation_counter_->inc(dropped);

  net.snapshot_links();
  synced_version_ = net.link_version();
}

void ResponseTimeCache::serve(const Entry& entry, double data_mb,
                              ResponseTimeResult& out) const {
  const std::vector<double>& unit = entry.unit.trmin_seconds;
  out.trmin_seconds.resize(unit.size());
  for (std::size_t v = 0; v < unit.size(); ++v)
    out.trmin_seconds[v] =
        unit[v] == graph::kInfiniteCost ? graph::kInfiniteCost
                                        : unit[v] * data_mb;
  out.truncated = entry.unit.truncated;
}

void ResponseTimeCache::row_into(const NetworkState& net, graph::NodeId source,
                                 double data_mb,
                                 const ResponseTimeOptions& options,
                                 ResponseTimeResult& out) {
  if (!synced_with(net)) {
    // Out of sync (begin_cycle not run since the links moved): evaluate
    // directly without touching the cache — correct, just not incremental.
    bypasses_.fetch_add(1, std::memory_order_relaxed);
    bypass_counter_->inc();
    static thread_local std::vector<double> inv;
    net.inverse_bandwidth_costs_into(inv);
    min_response_times_into(net, source, data_mb, options, inv, out);
    return;
  }
  Entry& entry = entries_.at(source);
  const bool hit = entry.valid && entry.max_hops == options.max_hops &&
                   entry.mode == options.mode &&
                   entry.max_paths == options.max_paths_per_source;
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hit_counter_->inc();
    out.work = 0;  // nothing evaluated; the row came from cache
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_counter_->inc();
    min_response_times_into(net, source, 1.0, options, inverse_costs_,
                            entry.unit);
    entry.max_hops = options.max_hops;
    entry.mode = options.mode;
    entry.max_paths = options.max_paths_per_source;
    entry.valid = true;
    out.work = entry.unit.work;
  }
  serve(entry, data_mb, out);
}

ResponseTimeResult ResponseTimeCache::row(const NetworkState& net,
                                          graph::NodeId source, double data_mb,
                                          const ResponseTimeOptions& options) {
  ResponseTimeResult out;
  row_into(net, source, data_mb, options, out);
  return out;
}

void ResponseTimeCache::clear() {
  for (Entry& entry : entries_) entry.valid = false;
  synced_once_ = false;
}

ResponseTimeCacheStats ResponseTimeCache::stats() const {
  ResponseTimeCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.bypasses = bypasses_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ResponseTimeCache::cached_rows() const {
  std::size_t count = 0;
  for (const Entry& entry : entries_)
    if (entry.valid) ++count;
  return count;
}

}  // namespace dust::net
