#include "net/response_time.hpp"

#include "graph/paths.hpp"

namespace dust::net {

double path_response_time(const NetworkState& net, const graph::Path& path,
                          double data_mb) {
  double seconds = 0.0;
  for (graph::EdgeId e : path.edges)
    seconds += data_mb / net.link(e).utilized_bandwidth();
  return seconds;
}

ResponseTimeResult min_response_times(const NetworkState& net,
                                      graph::NodeId source, double data_mb,
                                      const ResponseTimeOptions& options) {
  ResponseTimeResult result;
  const std::vector<double> inv = net.inverse_bandwidth_costs();

  if (options.mode == EvaluatorMode::kHopBoundedDp) {
    result.trmin_seconds =
        graph::hop_bounded_min_cost(net.graph(), source, inv, options.max_hops);
    for (double& t : result.trmin_seconds)
      if (t != graph::kInfiniteCost) t *= data_mb;
    result.work = options.max_hops ? options.max_hops : net.node_count() - 1;
    return result;
  }

  // Paper-faithful exhaustive enumeration: every node is a target, so a
  // single DFS from `source` covers all pairs (i, j).
  result.trmin_seconds.assign(net.node_count(), graph::kInfiniteCost);
  result.trmin_seconds[source] = 0.0;
  std::size_t visited = 0;
  graph::for_each_simple_path(
      net.graph(), source, [](graph::NodeId) { return true; },
      options.max_hops,
      [&](const graph::Path& path) {
        ++visited;
        double cost = 0.0;
        for (graph::EdgeId e : path.edges) cost += inv[e];
        const graph::NodeId dst = path.destination();
        if (cost < result.trmin_seconds[dst]) result.trmin_seconds[dst] = cost;
        if (options.max_paths_per_source &&
            visited >= options.max_paths_per_source) {
          result.truncated = true;
          return false;
        }
        return true;
      });
  result.work = visited;
  for (graph::NodeId v = 0; v < net.node_count(); ++v)
    if (v != source && result.trmin_seconds[v] != graph::kInfiniteCost)
      result.trmin_seconds[v] *= data_mb;
  return result;
}

}  // namespace dust::net
