#include "net/response_time.hpp"

#include "graph/paths.hpp"

namespace dust::net {

double path_response_time(const NetworkState& net, const graph::Path& path,
                          double data_mb) {
  double seconds = 0.0;
  for (graph::EdgeId e : path.edges)
    seconds += data_mb / net.link(e).utilized_bandwidth();
  return seconds;
}

ResponseTimeResult min_response_times(const NetworkState& net,
                                      graph::NodeId source, double data_mb,
                                      const ResponseTimeOptions& options) {
  ResponseTimeResult result;
  static thread_local std::vector<double> inv;
  net.inverse_bandwidth_costs_into(inv);
  min_response_times_into(net, source, data_mb, options, inv, result);
  return result;
}

void min_response_times_into(const NetworkState& net, graph::NodeId source,
                             double data_mb, const ResponseTimeOptions& options,
                             std::span<const double> inverse_costs,
                             ResponseTimeResult& out) {
  out.work = 0;
  out.truncated = false;
  out.used_edges.clear();

  if (options.mode == EvaluatorMode::kHopBoundedDp) {
    graph::hop_bounded_min_cost_into(net.graph(), source, inverse_costs,
                                     options.max_hops, out.trmin_seconds);
    for (double& t : out.trmin_seconds)
      if (t != graph::kInfiniteCost) t *= data_mb;
    out.work = options.max_hops ? options.max_hops : net.node_count() - 1;
    return;
  }

  if (options.mode == EvaluatorMode::kSharedFrontier) {
    // One sparse layered sweep computes the whole row *and* the winning-path
    // edge support — same labels as kHopBoundedDp, same used_edges contract
    // as kEnumerate (see graph::shared_frontier_labels_into).
    std::size_t rounds = 0;
    graph::shared_frontier_labels_into(net.graph(), source, inverse_costs,
                                       options.max_hops, out.trmin_seconds,
                                       out.used_edges, &rounds);
    for (graph::NodeId v = 0; v < net.node_count(); ++v)
      if (v != source && out.trmin_seconds[v] != graph::kInfiniteCost)
        out.trmin_seconds[v] *= data_mb;
    out.work = rounds;
    return;
  }

  // Paper-faithful exhaustive enumeration: every node is a target, so a
  // single DFS from `source` covers all pairs (i, j). Alongside the minima,
  // record each destination's winning path so used_edges ends up as the
  // exact edge support of the row.
  out.trmin_seconds.assign(net.node_count(), graph::kInfiniteCost);
  out.trmin_seconds[source] = 0.0;
  static thread_local std::vector<std::vector<graph::EdgeId>> winning;
  winning.assign(net.node_count(), {});
  std::size_t visited = 0;
  graph::for_each_simple_path(
      net.graph(), source, [](graph::NodeId) { return true; },
      options.max_hops,
      [&](const graph::Path& path) {
        ++visited;
        double cost = 0.0;
        for (graph::EdgeId e : path.edges) cost += inverse_costs[e];
        const graph::NodeId dst = path.destination();
        if (cost < out.trmin_seconds[dst]) {
          out.trmin_seconds[dst] = cost;
          winning[dst] = path.edges;
        }
        if (options.max_paths_per_source &&
            visited >= options.max_paths_per_source) {
          out.truncated = true;
          return false;
        }
        return true;
      });
  out.work = visited;
  out.used_edges.assign((net.edge_count() + 63) / 64, 0);
  for (const std::vector<graph::EdgeId>& edges : winning)
    for (graph::EdgeId e : edges)
      out.used_edges[e / 64] |= std::uint64_t{1} << (e % 64);
  for (graph::NodeId v = 0; v < net.node_count(); ++v)
    if (v != source && out.trmin_seconds[v] != graph::kInfiniteCost)
      out.trmin_seconds[v] *= data_mb;
}

}  // namespace dust::net
