// Response-time evaluation (paper Eq. 1-2).
//
//   Tr_{i,j}(r_k) = sum_{e in r_k} D_i / Lu_e            (Eq. 1)
//   Trmin_{i,j}   = min_{r_k in p} Tr_{i,j}(r_k)         (Eq. 2)
//
// where p is the set of simple paths between i and j with at most `max_hops`
// edges. Two evaluators:
//   kEnumerate — exhaustive DFS over all hop-bounded simple paths. This is
//     the paper-faithful mode whose cost grows explosively with max-hop and
//     produces the runtime shapes of Figs 8/10/11b.
//   kHopBoundedDp — layered Bellman-Ford, O(max_hops * |E|); provably equal
//     Trmin for non-negative edge costs (validated in tests + ablation).
//   kSharedFrontier — one sparse layered-DP sweep per source (DESIGN.md §13)
//     that yields the same Trmin labels as kHopBoundedDp *and* the used-edge
//     support bitmap kEnumerate records, so ResponseTimeCache keeps its
//     direction-aware invalidation at DP cost. The scale mode: this is what
//     makes fat-tree k=32 and 10^5-node graphs tractable per cycle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/paths.hpp"
#include "net/network_state.hpp"

namespace dust::net {

enum class EvaluatorMode { kEnumerate, kHopBoundedDp, kSharedFrontier };

struct ResponseTimeOptions {
  std::uint32_t max_hops = 0;  ///< 0 = unbounded (node_count - 1)
  EvaluatorMode mode = EvaluatorMode::kEnumerate;
  /// Safety cap on paths explored per source in kEnumerate mode
  /// (0 = no cap). When hit, results are still valid upper bounds on Trmin.
  std::size_t max_paths_per_source = 0;
};

struct ResponseTimeResult {
  /// Trmin in seconds to every node (infinity where unreachable within the
  /// hop bound). Entry [source] is 0.
  std::vector<double> trmin_seconds;
  /// Paths explored (kEnumerate) or relaxation rounds (kHopBoundedDp).
  std::size_t work = 0;
  bool truncated = false;  ///< kEnumerate hit max_paths_per_source
  /// kEnumerate / kSharedFrontier: bitmap over EdgeId (bit e = word e/64,
  /// bit e%64) of the edges on the winning path to each destination. The
  /// row's values depend on exactly these edges plus, for *improvements*,
  /// any edge whose cost drops — which is what lets ResponseTimeCache keep
  /// a row alive when a link it never used got worse. Empty in
  /// kHopBoundedDp mode (callers must then treat every edge as potentially
  /// used).
  std::vector<std::uint64_t> used_edges;
};

/// Trmin from `source` (shipping volume data_mb) to all nodes.
ResponseTimeResult min_response_times(const NetworkState& net,
                                      graph::NodeId source, double data_mb,
                                      const ResponseTimeOptions& options);

/// As min_response_times, with the per-edge 1/Lu costs precomputed by the
/// caller (must match net's current links for exact results) and the result
/// written into `out` — its vector capacity is reused, so a caller that
/// keeps the ResponseTimeResult across cycles evaluates rows without
/// allocating. Hot path of the incremental placement pipeline (DESIGN.md §8).
void min_response_times_into(const NetworkState& net, graph::NodeId source,
                             double data_mb, const ResponseTimeOptions& options,
                             std::span<const double> inverse_costs,
                             ResponseTimeResult& out);

/// Response time of one concrete path for volume data_mb (Eq. 1).
double path_response_time(const NetworkState& net, const graph::Path& path,
                          double data_mb);

}  // namespace dust::net
