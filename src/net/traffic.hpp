// Random scenario generation: link states and node loads for the
// iteration-based evaluations (Figs 7-12), plus simple traffic matrices.
#pragma once

#include "net/network_state.hpp"
#include "util/rng.hpp"

namespace dust::net {

struct LinkProfile {
  double bandwidth_mbps = 10000.0;  ///< 10 GbE default
  double min_utilization = 0.1;
  double max_utilization = 0.9;
};

struct NodeLoadProfile {
  double x_min = 10.0;   ///< paper's x_min: nodes' minimum usage capacity (%)
  double x_max = 100.0;  ///< constraint 3e upper end
  double monitoring_data_min_mb = 10.0;
  double monitoring_data_max_mb = 100.0;
};

/// Assign every link uniform-random utilization within the profile.
void randomize_links(NetworkState& net, const LinkProfile& profile,
                     util::Rng& rng);

/// Assign every node uniform-random utilized capacity C_j in [x_min, x_max]
/// and a monitoring data volume D_i.
void randomize_node_loads(NetworkState& net, const NodeLoadProfile& profile,
                          util::Rng& rng);

/// Convenience: build a fully randomized state over a topology.
NetworkState make_random_state(graph::Graph graph, const LinkProfile& links,
                               const NodeLoadProfile& loads, util::Rng& rng);

}  // namespace dust::net
