// Latency-bottleneck localization — one of the in-device telemetry use
// cases the paper's introduction motivates ("localization of latency
// bottlenecks acquired in case an anomaly is detected").
//
// Input: path probes (a route plus its measured end-to-end response time).
// Each probe's expected time comes from the network model (Eq. 1); a probe
// is degraded when measurement exceeds expectation by the tolerance factor.
// Suspect edges are those shared by degraded probes and exonerated by
// healthy ones; each surviving suspect is scored by the mean excess latency
// of the degraded probes crossing it.
#pragma once

#include <vector>

#include "graph/paths.hpp"
#include "net/network_state.hpp"

namespace dust::net {

struct PathProbe {
  graph::Path path;
  double measured_seconds = 0.0;
  double data_mb = 1.0;  ///< probe payload used for the expected-time model
};

struct Suspect {
  graph::EdgeId edge = graph::kInvalidEdge;
  /// Mean measured/expected ratio over degraded probes crossing this edge.
  double slowdown = 1.0;
  std::size_t degraded_probes = 0;  ///< degraded probes crossing the edge
};

struct DiagnosisOptions {
  /// A probe is degraded when measured > tolerance x expected.
  double tolerance = 1.5;
};

struct Diagnosis {
  std::vector<Suspect> suspects;  ///< sorted by slowdown, worst first
  std::size_t degraded_probes = 0;
  std::size_t healthy_probes = 0;

  [[nodiscard]] bool localized() const noexcept { return !suspects.empty(); }
  /// The top suspect (precondition: localized()).
  [[nodiscard]] const Suspect& culprit() const { return suspects.front(); }
};

/// Expected response time of a probe under the current network model.
double expected_probe_seconds(const NetworkState& net, const PathProbe& probe);

/// Localize: intersect degraded probes' edges, subtract edges any healthy
/// probe crossed, score the rest.
Diagnosis localize_bottleneck(const NetworkState& net,
                              const std::vector<PathProbe>& probes,
                              const DiagnosisOptions& options = {});

}  // namespace dust::net
