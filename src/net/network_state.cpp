#include "net/network_state.hpp"

namespace dust::net {

std::vector<double> NetworkState::utilized_bandwidths() const {
  std::vector<double> lu(links_.size());
  for (std::size_t e = 0; e < links_.size(); ++e)
    lu[e] = links_[e].utilized_bandwidth();
  return lu;
}

std::vector<double> NetworkState::inverse_bandwidth_costs() const {
  std::vector<double> cost;
  inverse_bandwidth_costs_into(cost);
  return cost;
}

void NetworkState::inverse_bandwidth_costs_into(std::vector<double>& out) const {
  out.resize(links_.size());
  for (std::size_t e = 0; e < links_.size(); ++e)
    out[e] = 1.0 / links_[e].utilized_bandwidth();
}

}  // namespace dust::net
