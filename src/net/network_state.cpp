#include "net/network_state.hpp"

namespace dust::net {

std::vector<double> NetworkState::utilized_bandwidths() const {
  std::vector<double> lu(links_.size());
  for (std::size_t e = 0; e < links_.size(); ++e)
    lu[e] = links_[e].utilized_bandwidth();
  return lu;
}

std::vector<double> NetworkState::inverse_bandwidth_costs() const {
  std::vector<double> cost(links_.size());
  for (std::size_t e = 0; e < links_.size(); ++e)
    cost[e] = 1.0 / links_[e].utilized_bandwidth();
  return cost;
}

}  // namespace dust::net
