// Dirty-aware Trmin row cache — the first stage of the incremental placement
// pipeline (DESIGN.md §8).
//
// The control loop recomputes the Trmin matrix (Eq. 1-2) every placement
// period even though, in steady state, only a handful of links move between
// cycles. This cache keeps one Trmin row per source node (stored per unit of
// monitoring data, so D_i changes rescale instead of recompute) and drops a
// row only when a moved link can actually change it, direction-aware:
//
//   cost increased — the row survives unless the link is in its used_edges
//                    support (the winning paths recorded by the evaluator);
//                    paths the row never used only got worse.
//   cost decreased — the row survives unless a route through the link could
//                    beat some cached value: for link (a, b) at cost c,
//                    invalidate iff d(s,a) + c + d(b,v) < Trmin[s][v] for
//                    some v (Dijkstra lower bound on the refreshed costs).
//
// Rows without recorded edge support (kHopBoundedDp) fall back to the
// conservative hop-ball test — one multi-source BFS from all moved
// endpoints, invalidate iff dist(s) + 1 <= max_hops. Dirty links come
// from NetworkState's epsilon-filtered tracking: with epsilon = 0 cached rows
// are bit-identical to from-scratch evaluation (tested); with epsilon > 0
// they are stale by at most the configured Lu band (the same trade a
// telemetry system makes when it reports utilization with hysteresis).
//
// Thread-safety: begin_cycle is exclusive; row()/row_into() may then be
// called concurrently for distinct sources (per-source slots, atomic stats),
// which is exactly how build_placement_problem fans rows out over
// util::global_pool().
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/response_time.hpp"

namespace dust::obs {
class Counter;
}

namespace dust::net {

struct ResponseTimeCacheStats {
  std::uint64_t hits = 0;          ///< rows served from cache
  std::uint64_t misses = 0;        ///< rows (re)computed
  std::uint64_t invalidations = 0; ///< cached rows dropped by dirty links
  std::uint64_t bypasses = 0;      ///< queries while out of sync (no caching)

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class ResponseTimeCache {
 public:
  ResponseTimeCache();

  /// Sync with the network's links: consume net.dirty_links() (the network is
  /// re-snapshotted), refresh the cached 1/Lu costs for those links, and
  /// invalidate every cached row whose hop ball touches one. Call once per
  /// placement cycle, before any row() query. A topology change (different
  /// node/edge counts) resets the cache wholesale.
  void begin_cycle(NetworkState& net);

  /// Multiplicative Lu quantization (DESIGN.md §8). With step > 0, link costs
  /// enter the cache as bucket representatives — bucket edges at (1+step)^k,
  /// representative at the bucket's geometric midpoint — and a dirty link
  /// whose representative did not change re-baselines WITHOUT invalidating
  /// rows. This is what rescues the hit rate under hot-links / scattered-heavy
  /// churn, where every cycle dirties some link inside almost every row's hop
  /// ball but utilization only jitters: jitter within a bucket is invisible.
  /// Cost: each link's 1/Lu is off by at most a factor (1+step)^(1/2), so a
  /// row's Trmin is within (1+step)^(hops/2) of exact. step = 0 (default)
  /// restores exact costs and bit-identical rows. Changing the step drops all
  /// cached rows (they were built against other representatives).
  void set_lu_quantum(double step);
  [[nodiscard]] double lu_quantum() const noexcept { return lu_quantum_; }

  /// Per-pair repricing deadband (DESIGN.md §13). An *improved* link drops a
  /// cached row only when the new route through it could beat some cached
  /// value by more than this relative margin: invalidate iff
  /// d(s,a) + c + d(b,v) < Trmin[s][v] * (1 - epsilon) for some v. Worsened
  /// links are unaffected (their used-edges test is exact either way). This
  /// is what rescues the hit rate under scattered churn, where links all
  /// over the topology improve by hairline amounts every cycle and each one
  /// would otherwise reprice dozens of rows for sub-percent Trmin gains.
  /// Cost: a served row's values can be above the true optimum by at most
  /// the epsilon fraction per skipped reprice (bounded by the link epsilon
  /// band, which re-baselines each cycle). epsilon = 0 (default) keeps rows
  /// bit-identical to from-scratch evaluation. Tightening the band drops all
  /// cached rows (they may be staler than the new bound promises).
  void set_reprice_epsilon(double epsilon);
  [[nodiscard]] double reprice_epsilon() const noexcept {
    return reprice_epsilon_;
  }

  /// Trmin row from `source` for volume data_mb: served from cache when the
  /// row is clean and the evaluator options match, recomputed into the cache
  /// otherwise. Queries made while the cache is out of sync with `net`
  /// (links changed since begin_cycle) fall back to direct evaluation and do
  /// not pollute the cache. Cache hits report work == 0.
  void row_into(const NetworkState& net, graph::NodeId source, double data_mb,
                const ResponseTimeOptions& options, ResponseTimeResult& out);
  [[nodiscard]] ResponseTimeResult row(const NetworkState& net,
                                       graph::NodeId source, double data_mb,
                                       const ResponseTimeOptions& options);

  /// Drop every cached row (stats survive; handles stay valid).
  void clear();

  [[nodiscard]] ResponseTimeCacheStats stats() const;
  [[nodiscard]] std::size_t cached_rows() const;

 private:
  struct Entry {
    bool valid = false;
    std::uint32_t max_hops = 0;
    EvaluatorMode mode = EvaluatorMode::kEnumerate;
    std::size_t max_paths = 0;
    /// Trmin for data_mb == 1 (seconds per Mb); multiplied by the query's
    /// D_i on serve, which is bit-exact because evaluation accumulates the
    /// unscaled 1/Lu costs and multiplies once at the end.
    ResponseTimeResult unit;
  };

  [[nodiscard]] bool synced_with(const NetworkState& net) const noexcept;
  void serve(const Entry& entry, double data_mb, ResponseTimeResult& out) const;
  [[nodiscard]] double quantize(double inverse_cost) const noexcept;

  std::vector<Entry> entries_;
  std::vector<double> inverse_costs_;  ///< 1/Lu snapshot rows were built on
  double lu_quantum_ = 0.0;            ///< 0 = exact costs
  double reprice_epsilon_ = 0.0;       ///< 0 = exact repricing
  std::uint64_t synced_version_ = 0;
  bool synced_once_ = false;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> bypasses_{0};

  /// Global-registry handles (dust_net_trmin_cache_*), resolved once.
  obs::Counter* hit_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
  obs::Counter* invalidation_counter_ = nullptr;
  obs::Counter* bypass_counter_ = nullptr;
};

}  // namespace dust::net
