#include "telemetry/sampled_flow.hpp"

#include <cmath>
#include <stdexcept>

namespace dust::telemetry {

SampledFlowCollector::SampledFlowCollector(std::uint32_t sampling_rate,
                                           util::Rng rng)
    : rate_(sampling_rate), rng_(rng) {
  if (sampling_rate == 0)
    throw std::invalid_argument("SampledFlowCollector: rate must be >= 1");
}

void SampledFlowCollector::offer(const ParsedPacket& packet) {
  ++offered_;
  // Random 1-in-N sampling (as sFlow does), not deterministic striding —
  // deterministic sampling aliases against periodic traffic.
  if (rate_ > 1 && rng_.below(rate_) != 0) return;
  ++sampled_;
  samples_.add(packet);
}

std::map<std::uint32_t, FlowCounter::Counters>
SampledFlowCollector::estimate() const {
  std::map<std::uint32_t, FlowCounter::Counters> out;
  for (const auto& [vni, counters] : samples_.per_vni()) {
    FlowCounter::Counters scaled;
    scaled.packets = counters.packets * rate_;
    scaled.bytes = counters.bytes * rate_;
    out.emplace(vni, scaled);
  }
  return out;
}

std::uint64_t SampledFlowCollector::estimated_total_packets() const {
  return samples_.total_packets() * rate_;
}

double estimation_error(const FlowCounter& truth,
                        const std::map<std::uint32_t, FlowCounter::Counters>&
                            estimate) {
  if (truth.per_vni().empty()) return 0.0;
  double total_error = 0.0;
  for (const auto& [vni, actual] : truth.per_vni()) {
    const auto it = estimate.find(vni);
    const double estimated =
        it == estimate.end() ? 0.0 : static_cast<double>(it->second.packets);
    total_error += std::abs(estimated - static_cast<double>(actual.packets)) /
                   static_cast<double>(actual.packets);
  }
  return total_error / static_cast<double>(truth.per_vni().size());
}

}  // namespace dust::telemetry
