#include "telemetry/federation.hpp"

#include <algorithm>
#include <stdexcept>

namespace dust::telemetry {

void Federation::add_member(const std::string& node_name, const Tsdb* db) {
  if (db == nullptr) throw std::invalid_argument("Federation: null member");
  members_[node_name] = db;
}

void Federation::remove_member(const std::string& node_name) {
  members_.erase(node_name);
}

std::vector<std::string> Federation::member_names() const {
  std::vector<std::string> names;
  names.reserve(members_.size());
  for (const auto& [name, db] : members_) names.push_back(name);
  return names;
}

std::vector<Federation::NodeSamples> Federation::query(
    const std::string& metric_name, std::int64_t from_ms,
    std::int64_t to_ms) const {
  std::vector<NodeSamples> out;
  for (const auto& [name, db] : members_) {
    const std::optional<MetricId> id = db->find(metric_name);
    if (!id) continue;
    out.push_back(NodeSamples{name, db->query(*id, from_ms, to_ms)});
  }
  return out;
}

std::map<std::string, double> Federation::aggregate_per_node(
    const std::string& metric_name, std::int64_t from_ms, std::int64_t to_ms,
    Aggregation op) const {
  std::map<std::string, double> out;
  for (const auto& [name, db] : members_) {
    const std::optional<MetricId> id = db->find(metric_name);
    if (!id) continue;
    if (const std::optional<double> value =
            db->aggregate(*id, from_ms, to_ms, op))
      out.emplace(name, *value);
  }
  return out;
}

std::optional<double> Federation::aggregate(const std::string& metric_name,
                                            std::int64_t from_ms,
                                            std::int64_t to_ms,
                                            Aggregation op) const {
  // Merge all member samples, then aggregate once so kMean/kRate weight
  // samples (not nodes) uniformly.
  std::vector<Sample> merged;
  for (const NodeSamples& node : query(metric_name, from_ms, to_ms))
    merged.insert(merged.end(), node.samples.begin(), node.samples.end());
  if (merged.empty()) return std::nullopt;
  std::sort(merged.begin(), merged.end(),
            [](const Sample& a, const Sample& b) {
              return a.timestamp_ms < b.timestamp_ms;
            });
  // Reuse TimeSeries aggregation by rebuilding a scratch series.
  TimeSeries scratch(MetricDescriptor{metric_name, "", MetricKind::kGauge});
  for (const Sample& s : merged) scratch.append(s);
  return scratch.aggregate(from_ms, to_ms, op);
}

std::size_t Federation::total_storage_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [name, db] : members_) total += db->storage_bytes();
  return total;
}

}  // namespace dust::telemetry
