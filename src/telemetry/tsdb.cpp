#include "telemetry/tsdb.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace dust::telemetry {

namespace {

constexpr std::uint32_t kTsdbMagic = 0x44534442;  // "DSDB"
constexpr std::uint32_t kTsdbVersion = 1;

void put_u64(std::ostream& os, std::uint64_t value) {
  for (std::size_t i = 0; i < 8; ++i)
    os.put(static_cast<char>((value >> (8 * i)) & 0xff));
}

std::uint64_t get_u64(std::istream& is) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const int byte = is.get();
    if (byte == std::char_traits<char>::eof())
      throw std::runtime_error("Tsdb: truncated stream");
    value |= static_cast<std::uint64_t>(byte & 0xff) << (8 * i);
  }
  return value;
}

void put_string(std::ostream& os, const std::string& text) {
  put_u64(os, text.size());
  os.write(text.data(), static_cast<std::streamsize>(text.size()));
}

std::string get_string(std::istream& is) {
  const auto size = static_cast<std::size_t>(get_u64(is));
  if (size > (1u << 20)) throw std::runtime_error("Tsdb: absurd string size");
  std::string text(size, '\0');
  is.read(text.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(is.gcount()) != size)
    throw std::runtime_error("Tsdb: truncated string");
  return text;
}

}  // namespace

TimeSeries::TimeSeries(MetricDescriptor descriptor, std::size_t samples_per_block)
    : descriptor_(std::move(descriptor)), samples_per_block_(samples_per_block) {
  if (samples_per_block_ == 0)
    throw std::invalid_argument("TimeSeries: samples_per_block == 0");
}

void TimeSeries::seal_active() {
  if (active_.sample_count() > 0) {
    static obs::Histogram& ratio_metric =
        obs::MetricRegistry::global().histogram(
            "dust_telemetry_block_compression_ratio");
    ratio_metric.observe(active_.compression_ratio());
  }
  sealed_.push_back(std::move(active_));
  active_ = CompressedBlock{};
}

void TimeSeries::append(const Sample& sample) {
  if (last_ && sample.timestamp_ms < last_->timestamp_ms)
    throw std::invalid_argument("TimeSeries: out-of-order sample");
  if (active_.sample_count() >= samples_per_block_) seal_active();
  active_.append(sample);
  last_ = sample;
  ++count_;
}

std::vector<Sample> TimeSeries::query(std::int64_t from_ms,
                                      std::int64_t to_ms) const {
  std::vector<Sample> out;
  auto scan = [&](const CompressedBlock& block) {
    if (block.sample_count() == 0) return;
    if (block.last_timestamp_ms() < from_ms || block.first_timestamp_ms() > to_ms)
      return;
    for (const Sample& s : block.decode())
      if (s.timestamp_ms >= from_ms && s.timestamp_ms <= to_ms) out.push_back(s);
  };
  for (const CompressedBlock& block : sealed_) scan(block);
  scan(active_);
  return out;
}

std::optional<double> TimeSeries::aggregate(std::int64_t from_ms,
                                            std::int64_t to_ms,
                                            Aggregation op) const {
  const std::vector<Sample> samples = query(from_ms, to_ms);
  if (samples.empty()) return std::nullopt;
  switch (op) {
    case Aggregation::kMean: {
      double sum = 0;
      for (const Sample& s : samples) sum += s.value;
      return sum / static_cast<double>(samples.size());
    }
    case Aggregation::kMin: {
      double best = samples.front().value;
      for (const Sample& s : samples) best = std::min(best, s.value);
      return best;
    }
    case Aggregation::kMax: {
      double best = samples.front().value;
      for (const Sample& s : samples) best = std::max(best, s.value);
      return best;
    }
    case Aggregation::kSum: {
      double sum = 0;
      for (const Sample& s : samples) sum += s.value;
      return sum;
    }
    case Aggregation::kLast:
      return samples.back().value;
    case Aggregation::kCount:
      return static_cast<double>(samples.size());
    case Aggregation::kRate: {
      if (samples.size() < 2) return std::nullopt;
      const double dv = samples.back().value - samples.front().value;
      const double dt_s =
          static_cast<double>(samples.back().timestamp_ms -
                              samples.front().timestamp_ms) /
          1000.0;
      if (dt_s <= 0) return std::nullopt;
      return dv / dt_s;
    }
  }
  return std::nullopt;
}

std::vector<Sample> TimeSeries::rollup(std::int64_t from_ms, std::int64_t to_ms,
                                       std::int64_t window_ms,
                                       Aggregation op) const {
  if (window_ms <= 0)
    throw std::invalid_argument("TimeSeries::rollup: window_ms <= 0");
  std::vector<Sample> out;
  const std::vector<Sample> raw = query(from_ms, to_ms);
  std::size_t i = 0;
  while (i < raw.size()) {
    // Window containing raw[i], aligned to from_ms.
    const std::int64_t window_index = (raw[i].timestamp_ms - from_ms) / window_ms;
    const std::int64_t start = from_ms + window_index * window_ms;
    const std::int64_t end = start + window_ms - 1;
    std::size_t j = i;
    while (j < raw.size() && raw[j].timestamp_ms <= end) ++j;
    // Aggregate raw[i, j) with a scratch series to reuse the operators.
    TimeSeries scratch(descriptor_);
    for (std::size_t k = i; k < j; ++k) scratch.append(raw[k]);
    if (const std::optional<double> value = scratch.aggregate(start, end, op))
      out.push_back(Sample{start, *value});
    i = j;
  }
  return out;
}

void TimeSeries::seal_now() {
  if (active_.sample_count() > 0) seal_active();
}

std::size_t TimeSeries::take_sealed(std::vector<CompressedBlock>& out) {
  std::size_t moved = 0;
  for (CompressedBlock& block : sealed_) {
    moved += block.sample_count();
    out.push_back(std::move(block));
  }
  sealed_.clear();
  count_ -= moved;
  return moved;
}

void TimeSeries::adopt_sealed(CompressedBlock block, const Sample& last) {
  if (block.sample_count() == 0) return;
  if (last_ && block.first_timestamp_ms() < last_->timestamp_ms)
    throw std::invalid_argument("TimeSeries: out-of-order adopted block");
  seal_now();
  count_ += block.sample_count();
  sealed_.push_back(std::move(block));
  last_ = last;
}

std::size_t TimeSeries::drop_before(std::int64_t cutoff_ms) {
  std::size_t dropped = 0;
  auto keep_from = sealed_.begin();
  for (; keep_from != sealed_.end(); ++keep_from) {
    if (keep_from->last_timestamp_ms() >= cutoff_ms) break;
    dropped += keep_from->sample_count();
  }
  sealed_.erase(sealed_.begin(), keep_from);
  count_ -= dropped;
  return dropped;
}

std::size_t TimeSeries::compressed_bytes() const noexcept {
  std::size_t total = active_.compressed_bytes();
  for (const CompressedBlock& block : sealed_) total += block.compressed_bytes();
  return total;
}

void TimeSeries::serialize(std::ostream& os) const {
  put_string(os, descriptor_.name);
  put_string(os, descriptor_.unit);
  put_u64(os, static_cast<std::uint64_t>(descriptor_.kind));
  put_u64(os, samples_per_block_);
  put_u64(os, sealed_.size());
  for (const CompressedBlock& block : sealed_) block.serialize(os);
  active_.serialize(os);
}

TimeSeries TimeSeries::deserialize(std::istream& is) {
  MetricDescriptor descriptor;
  descriptor.name = get_string(is);
  descriptor.unit = get_string(is);
  const std::uint64_t kind = get_u64(is);
  if (kind > static_cast<std::uint64_t>(MetricKind::kCounter))
    throw std::runtime_error("TimeSeries: bad metric kind");
  descriptor.kind = static_cast<MetricKind>(kind);
  const auto samples_per_block = static_cast<std::size_t>(get_u64(is));
  TimeSeries series(std::move(descriptor), samples_per_block);
  const auto sealed_count = static_cast<std::size_t>(get_u64(is));
  for (std::size_t i = 0; i < sealed_count; ++i)
    series.sealed_.push_back(CompressedBlock::deserialize(is));
  series.active_ = CompressedBlock::deserialize(is);
  // Rebuild derived state (count, last sample).
  series.count_ = series.active_.sample_count();
  for (const CompressedBlock& block : series.sealed_)
    series.count_ += block.sample_count();
  const CompressedBlock* tail =
      series.active_.sample_count() > 0
          ? &series.active_
          : (series.sealed_.empty() ? nullptr : &series.sealed_.back());
  if (tail != nullptr && tail->sample_count() > 0)
    series.last_ = tail->decode().back();
  return series;
}

MetricId Tsdb::register_metric(const MetricDescriptor& descriptor) {
  if (auto it = by_name_.find(descriptor.name); it != by_name_.end())
    return it->second;
  series_.emplace_back(descriptor);
  const auto id = static_cast<MetricId>(series_.size() - 1);
  by_name_.emplace(descriptor.name, id);
  return id;
}

std::optional<MetricId> Tsdb::find(const std::string& name) const {
  if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  return std::nullopt;
}

void Tsdb::append(MetricId id, const Sample& sample) {
  static obs::Counter& appends_metric = obs::MetricRegistry::global().counter(
      "dust_telemetry_tsdb_appends_total");
  appends_metric.inc();
  series_.at(id).append(sample);
}

const TimeSeries& Tsdb::series(MetricId id) const { return series_.at(id); }
TimeSeries& Tsdb::series(MetricId id) { return series_.at(id); }

std::vector<Sample> Tsdb::query(MetricId id, std::int64_t from_ms,
                                std::int64_t to_ms) const {
  return series_.at(id).query(from_ms, to_ms);
}

std::optional<double> Tsdb::aggregate(MetricId id, std::int64_t from_ms,
                                      std::int64_t to_ms, Aggregation op) const {
  return series_.at(id).aggregate(from_ms, to_ms, op);
}

std::size_t Tsdb::drop_before(std::int64_t cutoff_ms) {
  std::size_t dropped = 0;
  for (TimeSeries& s : series_) dropped += s.drop_before(cutoff_ms);
  return dropped;
}

std::size_t Tsdb::storage_bytes() const noexcept {
  std::size_t total = 0;
  for (const TimeSeries& s : series_) total += s.compressed_bytes();
  return total;
}

void Tsdb::save(std::ostream& os) const {
  put_u64(os, kTsdbMagic);
  put_u64(os, kTsdbVersion);
  put_u64(os, series_.size());
  for (const TimeSeries& s : series_) s.serialize(os);
}

Tsdb Tsdb::load(std::istream& is) {
  if (get_u64(is) != kTsdbMagic) throw std::runtime_error("Tsdb: bad magic");
  if (get_u64(is) != kTsdbVersion)
    throw std::runtime_error("Tsdb: unsupported version");
  const auto count = static_cast<std::size_t>(get_u64(is));
  Tsdb db;
  for (std::size_t i = 0; i < count; ++i) {
    TimeSeries series = TimeSeries::deserialize(is);
    const std::string name = series.descriptor().name;
    db.series_.push_back(std::move(series));
    db.by_name_.emplace(name, static_cast<MetricId>(db.series_.size() - 1));
  }
  return db;
}

}  // namespace dust::telemetry
