#include "telemetry/agent.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace dust::telemetry {

MonitorAgent::MonitorAgent(std::string name, AgentCostModel cost_model,
                           std::int64_t interval_ms)
    : name_(std::move(name)), cost_model_(cost_model), interval_ms_(interval_ms) {
  if (interval_ms_ <= 0)
    throw std::invalid_argument("MonitorAgent: interval must be positive");
}

void MonitorAgent::bind(Tsdb& db) {
  metric_ids_.clear();
  // Every agent publishes a small fixed schema derived from its name; the
  // extractors in sample() map snapshot fields onto these.
  const MetricDescriptor descriptors[] = {
      {name_ + ".value", "", MetricKind::kGauge},
      {name_ + ".aux", "", MetricKind::kGauge},
      {name_ + ".events", "count", MetricKind::kCounter},
  };
  for (const MetricDescriptor& d : descriptors)
    metric_ids_.push_back(db.register_metric(d));
  bound_ = true;
}

bool MonitorAgent::due(std::int64_t now_ms) const noexcept {
  // Sentinel check first: subtracting INT64_MIN would overflow.
  if (last_sample_ms_ == std::numeric_limits<std::int64_t>::min()) return true;
  return now_ms - last_sample_ms_ >= interval_ms_;
}

double MonitorAgent::sample(const DeviceSnapshot& snapshot, Tsdb& db,
                            util::Rng& rng) {
  if (!bound_) throw std::logic_error("MonitorAgent::sample before bind");
  last_sample_ms_ = snapshot.timestamp_ms;
  ++samples_;
  static obs::Counter& samples_metric = obs::MetricRegistry::global().counter(
      "dust_telemetry_agent_samples_total");
  samples_metric.inc();

  // Each agent family tracks a primary and an auxiliary signal; the exact
  // field chosen only matters for realism of the stored series.
  double primary = snapshot.device_cpu_percent;
  double aux = snapshot.memory_used_mib;
  double events = 0.0;
  if (name_.find("rxtx") != std::string::npos) {
    primary = snapshot.rx_mbps;
    aux = snapshot.tx_mbps;
  } else if (name_.find("link") != std::string::npos) {
    primary = static_cast<double>(snapshot.links_up);
    aux = static_cast<double>(snapshot.links_total);
  } else if (name_.find("temperature") != std::string::npos ||
             name_.find("hardware") != std::string::npos) {
    primary = snapshot.temperature_c;
    aux = static_cast<double>(snapshot.faults);
    events = static_cast<double>(snapshot.faults);
  } else if (name_.find("routing") != std::string::npos ||
             name_.find("protocol") != std::string::npos) {
    primary = static_cast<double>(snapshot.protocol_flaps);
    aux = snapshot.rx_mbps;
    events = static_cast<double>(snapshot.protocol_flaps);
  } else if (name_.find("fault") != std::string::npos) {
    primary = static_cast<double>(snapshot.faults);
    aux = static_cast<double>(snapshot.protocol_flaps);
    events = static_cast<double>(snapshot.faults);
  }
  db.append(metric_ids_[0], Sample{snapshot.timestamp_ms, primary});
  db.append(metric_ids_[1], Sample{snapshot.timestamp_ms, aux});
  db.append(metric_ids_[2], Sample{snapshot.timestamp_ms, events});

  // CPU charge: fixed table scan + traffic-proportional parse work,
  // occasionally multiplied by a heavy full-table walk.
  const double traffic_gbps = (snapshot.rx_mbps + snapshot.tx_mbps) / 1000.0;
  double cpu_ms =
      cost_model_.cpu_base_ms + cost_model_.cpu_per_gbps_ms * traffic_gbps;
  if (cost_model_.burst_probability > 0 &&
      rng.bernoulli(cost_model_.burst_probability))
    cpu_ms *= cost_model_.burst_multiplier;
  return cpu_ms;
}

std::vector<MonitorAgent> standard_agents() {
  // Calibration (see DESIGN.md / EXPERIMENTS.md): with a 1 s sampling tick
  // and ~20 Gbps of monitored overlay traffic the ten agents together charge
  // ~80 ms + 60 ms/Gbps * 20 = ~1280 core-ms per second — about 1.3 cores on
  // average ("around 100%"), i.e. 16 points of an 8-core device, and spike
  // toward ~6 cores when traffic bursts near the visible line rate (Fig. 1).
  // Memory: 10 agents x ~128 MiB ~= 1.28 GiB, the Fig. 6 memory delta.
  struct Spec {
    const char* name;
    double base_ms;
    double per_gbps_ms;
    double burst_p;
    double burst_x;
    double mem_mib;
  };
  // base_ms sums to 80; per_gbps_ms sums to 60; mem sums to ~1280.
  static constexpr Spec kSpecs[] = {
      {"routing.protocol.health", 10.0, 4.0, 0.02, 3.0, 130.0},
      {"network.health", 8.0, 6.0, 0.02, 2.5, 125.0},
      {"software.health", 8.0, 2.0, 0.01, 2.0, 120.0},
      {"software.functions", 8.0, 3.0, 0.01, 2.0, 130.0},
      {"system.cpu.memory", 6.0, 1.0, 0.00, 1.0, 110.0},
      {"interface.rxtx.rates", 12.0, 22.0, 0.03, 2.0, 150.0},
      {"link.states", 7.0, 6.0, 0.01, 2.0, 120.0},
      {"system.temperature", 5.0, 1.0, 0.00, 1.0, 110.0},
      {"hardware.health", 6.0, 3.0, 0.01, 2.5, 135.0},
      {"fault.finder", 10.0, 12.0, 0.04, 3.0, 150.0},
  };
  std::vector<MonitorAgent> agents;
  agents.reserve(std::size(kSpecs));
  for (const Spec& spec : kSpecs) {
    AgentCostModel cost;
    cost.cpu_base_ms = spec.base_ms;
    cost.cpu_per_gbps_ms = spec.per_gbps_ms;
    cost.burst_probability = spec.burst_p;
    cost.burst_multiplier = spec.burst_x;
    cost.memory_base_mib = spec.mem_mib;
    agents.emplace_back(spec.name, cost, 1000);
  }
  return agents;
}

}  // namespace dust::telemetry
