#include "telemetry/sampling.hpp"

#include <stdexcept>

namespace dust::telemetry {

const char* to_string(DegradeMode mode) noexcept {
  switch (mode) {
    case DegradeMode::kFull: return "full";
    case DegradeMode::kSampled: return "sampled";
    case DegradeMode::kAggregated: return "aggregated";
  }
  return "unknown";
}

DegradeMode escalate(DegradeMode mode) noexcept {
  switch (mode) {
    case DegradeMode::kFull: return DegradeMode::kSampled;
    case DegradeMode::kSampled: return DegradeMode::kAggregated;
    case DegradeMode::kAggregated: return DegradeMode::kAggregated;
  }
  return DegradeMode::kAggregated;
}

DegradeMode relax(DegradeMode mode) noexcept {
  switch (mode) {
    case DegradeMode::kFull: return DegradeMode::kFull;
    case DegradeMode::kSampled: return DegradeMode::kFull;
    case DegradeMode::kAggregated: return DegradeMode::kSampled;
  }
  return DegradeMode::kFull;
}

namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mix, so consecutive
/// timestamps land uniformly in [0, 2^64).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

bool SamplingPolicy::admit(std::uint64_t key) const noexcept {
  if (keep_probability >= 1.0) return true;
  if (keep_probability <= 0.0) return false;
  const std::uint64_t hash = mix64(key ^ seed);
  // Compare in the unit interval; 2^64 as a double is exact.
  return static_cast<double>(hash) <
         keep_probability * 18446744073709551616.0;
}

std::vector<Sample> SamplingPolicy::apply(
    const std::vector<Sample>& samples) const {
  switch (mode) {
    case DegradeMode::kFull:
      return samples;
    case DegradeMode::kSampled: {
      std::vector<Sample> kept;
      kept.reserve(samples.size());
      for (const Sample& s : samples)
        if (admit(static_cast<std::uint64_t>(s.timestamp_ms)))
          kept.push_back(s);
      return kept;
    }
    case DegradeMode::kAggregated: {
      if (aggregate_window_ms <= 0)
        throw std::invalid_argument(
            "SamplingPolicy: aggregate_window_ms <= 0");
      std::vector<Sample> out;
      std::size_t i = 0;
      while (i < samples.size()) {
        // Windows aligned to absolute time, so block boundaries do not
        // shift the aggregation grid.
        const std::int64_t start =
            samples[i].timestamp_ms -
            (((samples[i].timestamp_ms % aggregate_window_ms) +
              aggregate_window_ms) %
             aggregate_window_ms);
        const std::int64_t end = start + aggregate_window_ms - 1;
        double sum = 0.0;
        std::size_t j = i;
        while (j < samples.size() && samples[j].timestamp_ms <= end)
          sum += samples[j++].value;
        // Stamp the aggregate with the window's last contributing sample time
        // (not the window start): a real timestamp from the stream keeps the
        // series monotone across mode changes, where a window-start stamp
        // could rewind behind full-rate samples shipped just before.
        out.push_back(Sample{samples[j - 1].timestamp_ms,
                             sum / static_cast<double>(j - i)});
        i = j;
      }
      return out;
    }
  }
  return samples;
}

double SamplingPolicy::effective_keep_fraction(
    double samples_per_window) const noexcept {
  switch (mode) {
    case DegradeMode::kFull:
      return 1.0;
    case DegradeMode::kSampled:
      return keep_probability < 0.0   ? 0.0
             : keep_probability > 1.0 ? 1.0
                                      : keep_probability;
    case DegradeMode::kAggregated:
      return samples_per_window > 1.0 ? 1.0 / samples_per_window : 1.0;
  }
  return 1.0;
}

}  // namespace dust::telemetry
