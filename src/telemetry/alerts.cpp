#include "telemetry/alerts.hpp"

#include <stdexcept>

namespace dust::telemetry {

const char* to_string(AlertState state) noexcept {
  switch (state) {
    case AlertState::kOk: return "ok";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
  }
  return "?";
}

AlertEngine::RuleId AlertEngine::add_rule(AlertRule rule) {
  if (rule.name.empty() || rule.metric.empty())
    throw std::invalid_argument("AlertEngine: rule needs name and metric");
  if (rule.for_ms < 0)
    throw std::invalid_argument("AlertEngine: negative hold duration");
  rules_.push_back(Entry{std::move(rule), AlertState::kOk, 0});
  return rules_.size() - 1;
}

void AlertEngine::transition(Entry& entry, AlertState to, std::int64_t now_ms) {
  if (entry.state == to) return;
  history_.push_back(AlertTransition{now_ms, entry.rule.name, entry.state, to});
  entry.state = to;
}

std::size_t AlertEngine::evaluate(const Tsdb& db, std::int64_t now_ms) {
  const std::size_t before = history_.size();
  for (Entry& entry : rules_) {
    const std::optional<MetricId> id = db.find(entry.rule.metric);
    if (!id) continue;
    const std::optional<Sample> last = db.series(*id).last();
    if (!last) continue;
    const bool breached = entry.rule.comparison == Comparison::kAbove
                              ? last->value > entry.rule.threshold
                              : last->value < entry.rule.threshold;
    if (!breached) {
      transition(entry, AlertState::kOk, now_ms);
      continue;
    }
    switch (entry.state) {
      case AlertState::kOk:
        entry.pending_since_ms = now_ms;
        if (entry.rule.for_ms == 0) {
          transition(entry, AlertState::kFiring, now_ms);
        } else {
          transition(entry, AlertState::kPending, now_ms);
        }
        break;
      case AlertState::kPending:
        if (now_ms - entry.pending_since_ms >= entry.rule.for_ms)
          transition(entry, AlertState::kFiring, now_ms);
        break;
      case AlertState::kFiring:
        break;
    }
  }
  return history_.size() - before;
}

std::vector<std::string> AlertEngine::firing() const {
  std::vector<std::string> names;
  for (const Entry& entry : rules_)
    if (entry.state == AlertState::kFiring) names.push_back(entry.rule.name);
  return names;
}

}  // namespace dust::telemetry
