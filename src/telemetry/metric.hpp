// Metric model for the in-device telemetry substrate.
//
// Monitoring agents (agent.hpp) sample device state into named metrics; the
// TSDB (tsdb.hpp) stores them Gorilla-compressed; the federation layer
// (federation.hpp) aggregates across nodes — the paper's "Time-Series
// Federation" component.
#pragma once

#include <cstdint>
#include <string>

namespace dust::telemetry {

using MetricId = std::uint32_t;
inline constexpr MetricId kInvalidMetric = static_cast<MetricId>(-1);

enum class MetricKind : std::uint8_t {
  kGauge,    ///< point-in-time value (CPU %, temperature)
  kCounter,  ///< monotonically increasing (packets, bytes)
};

struct MetricDescriptor {
  std::string name;  ///< e.g. "cpu.utilization"
  std::string unit;  ///< e.g. "%", "pkts", "C"
  MetricKind kind = MetricKind::kGauge;
};

struct Sample {
  std::int64_t timestamp_ms = 0;
  double value = 0.0;

  bool operator==(const Sample&) const = default;
};

}  // namespace dust::telemetry
