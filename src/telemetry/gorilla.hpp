// Gorilla-style time-series compression (Pelkonen et al., VLDB'15):
// delta-of-delta timestamps + XOR-encoded doubles. This implements the
// paper's "in-situ data compression ... which aids in reducing data
// transfers" (§III-A) for the TSDB substrate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "telemetry/metric.hpp"

namespace dust::telemetry {

/// Append-only bit stream.
class BitWriter {
 public:
  void write_bit(bool bit);
  /// Write the low `bits` bits of `value`, most-significant first. bits<=64.
  void write_bits(std::uint64_t value, unsigned bits);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return data_;
  }
  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }

  /// Adopt an already-encoded bit stream wholesale (the data-plane receive
  /// path: the payload crossed the wire verbatim, no reason to replay it bit
  /// by bit). Throws std::invalid_argument when `bit_count` does not fit
  /// `data`.
  static BitWriter from_bytes(std::vector<std::uint8_t> data,
                              std::size_t bit_count);

 private:
  std::vector<std::uint8_t> data_;
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  BitReader(const std::vector<std::uint8_t>& data, std::size_t bit_count)
      : data_(data), bit_count_(bit_count) {}

  bool read_bit();
  std::uint64_t read_bits(unsigned bits);
  [[nodiscard]] bool exhausted() const noexcept { return cursor_ >= bit_count_; }

 private:
  const std::vector<std::uint8_t>& data_;
  std::size_t bit_count_;
  std::size_t cursor_ = 0;
};

/// One compressed block of a single series. Samples must be appended in
/// non-decreasing timestamp order.
class CompressedBlock {
 public:
  void append(const Sample& sample);

  [[nodiscard]] std::size_t sample_count() const noexcept { return count_; }
  [[nodiscard]] std::size_t compressed_bytes() const noexcept {
    return writer_.bytes().size();
  }
  [[nodiscard]] std::int64_t first_timestamp_ms() const noexcept {
    return first_timestamp_;
  }
  [[nodiscard]] std::int64_t last_timestamp_ms() const noexcept {
    return prev_timestamp_;
  }

  /// Decode the whole block.
  [[nodiscard]] std::vector<Sample> decode() const;

  /// Compression ratio vs. raw (16 bytes/sample); >= 1 means smaller.
  [[nodiscard]] double compression_ratio() const;

  /// Binary (de)serialization of the block including its append state, so a
  /// restored block can keep accepting samples. Format is little-endian and
  /// versioned; deserialize throws std::runtime_error on corrupt input.
  void serialize(std::ostream& os) const;
  static CompressedBlock deserialize(std::istream& is);

  /// The raw encoded bit stream — what the data plane puts on the wire
  /// (scatter-gathered, never copied into the codec buffer).
  [[nodiscard]] const std::vector<std::uint8_t>& payload() const noexcept {
    return writer_.bytes();
  }
  [[nodiscard]] std::size_t payload_bit_count() const noexcept {
    return writer_.bit_count();
  }

  /// Rebuild a block from its wire form (payload + framing metadata). The
  /// result is read-only in spirit: decode() works, but the XOR append state
  /// is not recovered, so appending to it would corrupt the stream. Throws
  /// std::invalid_argument on inconsistent sizes.
  static CompressedBlock from_wire(std::vector<std::uint8_t> payload,
                                   std::size_t bit_count,
                                   std::size_t sample_count,
                                   std::int64_t first_timestamp_ms,
                                   std::int64_t last_timestamp_ms);

 private:
  BitWriter writer_;
  std::size_t count_ = 0;
  std::int64_t first_timestamp_ = 0;
  std::int64_t prev_timestamp_ = 0;
  std::int64_t prev_delta_ = 0;
  std::uint64_t prev_value_bits_ = 0;
  unsigned prev_leading_ = 0;
  unsigned prev_trailing_ = 0;
  bool has_window_ = false;
};

}  // namespace dust::telemetry
