// In-memory time-series database with Gorilla-compressed storage.
//
// The paper's TSDB "efficiently stores the metrics and rules established by
// the Monitor Agents" on each DUST node. Series are stored as a chain of
// compressed blocks; queries decode only blocks overlapping the range.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/gorilla.hpp"
#include "telemetry/metric.hpp"

namespace dust::telemetry {

enum class Aggregation { kMean, kMin, kMax, kSum, kLast, kCount, kRate };

/// One metric's storage: sealed compressed blocks plus an active block.
class TimeSeries {
 public:
  explicit TimeSeries(MetricDescriptor descriptor,
                      std::size_t samples_per_block = 1024);

  void append(const Sample& sample);

  [[nodiscard]] const MetricDescriptor& descriptor() const noexcept {
    return descriptor_;
  }
  [[nodiscard]] std::size_t sample_count() const noexcept { return count_; }
  [[nodiscard]] std::optional<Sample> last() const noexcept { return last_; }

  /// All samples with from_ms <= t <= to_ms, in timestamp order.
  [[nodiscard]] std::vector<Sample> query(std::int64_t from_ms,
                                          std::int64_t to_ms) const;

  /// Aggregate over a range. kRate = (last-first)/(seconds) for counters.
  /// Returns nullopt if the range holds no samples (or <2 for kRate).
  [[nodiscard]] std::optional<double> aggregate(std::int64_t from_ms,
                                                std::int64_t to_ms,
                                                Aggregation op) const;

  /// Downsample [from_ms, to_ms] into fixed windows of `window_ms`; each
  /// output sample carries the window's start timestamp and the aggregate of
  /// the raw samples inside it (empty windows are omitted). This is the
  /// "collective interval" view enterprise telemetry tools export (§III-B).
  [[nodiscard]] std::vector<Sample> rollup(std::int64_t from_ms,
                                           std::int64_t to_ms,
                                           std::int64_t window_ms,
                                           Aggregation op) const;

  /// Drop sealed blocks entirely older than `cutoff_ms`. Returns samples
  /// dropped. The active block is never dropped.
  std::size_t drop_before(std::int64_t cutoff_ms);

  // --- data-plane handoff ---------------------------------------------------

  /// Seal the active block (if non-empty) so take_sealed() can ship it. A
  /// streamer calls this on flush, not per tick — premature sealing hurts
  /// the compression ratio.
  void seal_now();

  /// Move all sealed blocks out, oldest first, removing their samples from
  /// this series (they now live wherever the caller ships them). The active
  /// block is untouched. Returns the number of samples moved.
  std::size_t take_sealed(std::vector<CompressedBlock>& out);

  /// Ingest an already-compressed block as-is — the collector path: no
  /// decode/re-encode round trip. The block must start at or after the last
  /// adopted timestamp; `last` is the block's final sample (the wire carries
  /// it, so the collector need not decode just to track ordering). Throws
  /// std::invalid_argument on out-of-order blocks. Seals any active samples
  /// first so the chain stays timestamp-ordered.
  void adopt_sealed(CompressedBlock block, const Sample& last);

  [[nodiscard]] std::size_t compressed_bytes() const noexcept;

  void serialize(std::ostream& os) const;
  static TimeSeries deserialize(std::istream& is);

 private:
  void seal_active();

  MetricDescriptor descriptor_;
  std::size_t samples_per_block_;
  std::vector<CompressedBlock> sealed_;
  CompressedBlock active_;
  std::size_t count_ = 0;
  std::optional<Sample> last_;
};

/// Named-metric registry + storage, one instance per DUST node.
class Tsdb {
 public:
  /// Registering the same name twice returns the existing id (descriptor of
  /// the first registration wins).
  MetricId register_metric(const MetricDescriptor& descriptor);

  [[nodiscard]] std::optional<MetricId> find(const std::string& name) const;
  [[nodiscard]] std::size_t metric_count() const noexcept { return series_.size(); }

  void append(MetricId id, const Sample& sample);
  [[nodiscard]] const TimeSeries& series(MetricId id) const;
  [[nodiscard]] TimeSeries& series(MetricId id);

  [[nodiscard]] std::vector<Sample> query(MetricId id, std::int64_t from_ms,
                                          std::int64_t to_ms) const;
  [[nodiscard]] std::optional<double> aggregate(MetricId id, std::int64_t from_ms,
                                                std::int64_t to_ms,
                                                Aggregation op) const;

  /// Apply retention across all series; returns samples dropped.
  std::size_t drop_before(std::int64_t cutoff_ms);

  /// Total compressed storage footprint (bytes) — used by the simulator's
  /// node memory model.
  [[nodiscard]] std::size_t storage_bytes() const noexcept;

  /// Snapshot/restore the whole database (descriptors + compressed blocks,
  /// still compressed on the wire). A restored database keeps accepting
  /// appends. load() throws std::runtime_error on corrupt input.
  void save(std::ostream& os) const;
  static Tsdb load(std::istream& is);

 private:
  std::vector<TimeSeries> series_;
  std::unordered_map<std::string, MetricId> by_name_;
};

}  // namespace dust::telemetry
