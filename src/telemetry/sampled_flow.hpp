// Legacy sampled-flow telemetry (sFlow/NetFlow-style), for comparison.
//
// The paper positions DUST against "centralized and legacy mechanisms such
// as SNMP, sFlow, Netflow" and "outdated sampling-based telemetry" — this
// module implements that baseline: 1-in-N packet sampling with scaled-up
// per-VNI estimates, so the accuracy gap versus full in-device counting
// (FlowCounter) can be measured instead of asserted. See
// estimation_error() and the telemetry tests.
#pragma once

#include <cstdint>
#include <map>

#include "telemetry/packet.hpp"
#include "util/rng.hpp"

namespace dust::telemetry {

class SampledFlowCollector {
 public:
  /// Sample 1 in `sampling_rate` packets (1 = count everything).
  SampledFlowCollector(std::uint32_t sampling_rate, util::Rng rng);

  /// Offer a packet; it is counted only if sampled.
  void offer(const ParsedPacket& packet);

  [[nodiscard]] std::uint32_t sampling_rate() const noexcept { return rate_; }
  [[nodiscard]] std::uint64_t offered() const noexcept { return offered_; }
  [[nodiscard]] std::uint64_t sampled() const noexcept { return sampled_; }

  /// Scaled estimates (sampled counts x rate), per VNI.
  [[nodiscard]] std::map<std::uint32_t, FlowCounter::Counters> estimate() const;
  [[nodiscard]] std::uint64_t estimated_total_packets() const;

 private:
  std::uint32_t rate_;
  util::Rng rng_;
  FlowCounter samples_;
  std::uint64_t offered_ = 0;
  std::uint64_t sampled_ = 0;
};

/// Mean relative per-VNI packet-count error of a sampled estimate against
/// ground truth (VNIs missing from the estimate count as 100% error).
double estimation_error(const FlowCounter& truth,
                        const std::map<std::uint32_t, FlowCounter::Counters>&
                            estimate);

}  // namespace dust::telemetry
