// In-situ packet parsing (paper §III-A: "in-situ data compression and packet
// parsing capabilities in SmartNICs, which aid in reducing data transfers").
//
// A minimal, allocation-free parser for the header stack the testbed's
// overlay traffic carries — Ethernet II / IPv4 / UDP / VxLAN / inner
// Ethernet — plus a builder for synthesizing test traffic and a per-VNI
// flow counter, the aggregation a SmartNIC would run before exporting
// telemetry instead of raw packets.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

namespace dust::telemetry {

using MacAddress = std::array<std::uint8_t, 6>;

struct EthernetHeader {
  MacAddress destination{};
  MacAddress source{};
  std::uint16_t ethertype = 0;  ///< 0x0800 = IPv4

  static constexpr std::size_t kSize = 14;
  static constexpr std::uint16_t kEthertypeIpv4 = 0x0800;
};

struct Ipv4Header {
  std::uint8_t ihl = 5;  ///< header length in 32-bit words
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 17;  ///< 17 = UDP
  std::uint16_t total_length = 0;
  std::uint16_t checksum = 0;
  std::uint32_t source = 0;
  std::uint32_t destination = 0;

  static constexpr std::uint8_t kProtocolUdp = 17;
  [[nodiscard]] std::size_t header_bytes() const { return ihl * 4u; }
};

struct UdpHeader {
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint16_t length = 0;

  static constexpr std::size_t kSize = 8;
  static constexpr std::uint16_t kVxlanPort = 4789;
};

struct VxlanHeader {
  std::uint32_t vni = 0;  ///< 24-bit VxLAN network identifier

  static constexpr std::size_t kSize = 8;
};

enum class ParseError {
  kTruncated,
  kNotIpv4,
  kBadIpHeader,
  kBadChecksum,
  kNotUdp,
};

struct ParsedPacket {
  EthernetHeader ethernet;
  Ipv4Header ip;
  std::optional<UdpHeader> udp;
  std::optional<VxlanHeader> vxlan;       ///< set when UDP dst port is 4789
  std::optional<EthernetHeader> inner;    ///< inner frame behind the VxLAN tag
  std::size_t payload_offset = 0;         ///< first byte past parsed headers
  std::size_t total_bytes = 0;
};

/// RFC 1071 ones'-complement sum over the IPv4 header (checksum field
/// counted as zero). A valid header verifies to its stored checksum.
std::uint16_t ipv4_checksum(std::span<const std::uint8_t> header);

/// Parse an Ethernet/IPv4/UDP(/VxLAN) packet. On success, nested headers
/// are present as deep as the packet actually goes (a non-UDP IPv4 packet
/// parses fine with udp == nullopt). Checksum is verified.
std::optional<ParsedPacket> parse_packet(std::span<const std::uint8_t> bytes,
                                         ParseError* error = nullptr);

/// Synthesize a VxLAN-encapsulated packet carrying `inner_payload_bytes` of
/// zero payload behind an inner Ethernet frame. Checksums are valid.
std::vector<std::uint8_t> build_vxlan_packet(std::uint32_t vni,
                                             std::uint32_t outer_src_ip,
                                             std::uint32_t outer_dst_ip,
                                             std::size_t inner_payload_bytes);

/// Plain (non-encapsulated) UDP/IPv4 packet.
std::vector<std::uint8_t> build_udp_packet(std::uint32_t src_ip,
                                           std::uint32_t dst_ip,
                                           std::uint16_t src_port,
                                           std::uint16_t dst_port,
                                           std::size_t payload_bytes);

/// Per-VNI aggregation a SmartNIC keeps instead of exporting raw packets.
class FlowCounter {
 public:
  struct Counters {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  /// Account a parsed packet. Non-VxLAN traffic lands in VNI 0xffffffff.
  void add(const ParsedPacket& packet);

  [[nodiscard]] const std::map<std::uint32_t, Counters>& per_vni() const {
    return counters_;
  }
  [[nodiscard]] std::uint64_t total_packets() const noexcept { return packets_; }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return bytes_; }

  static constexpr std::uint32_t kNonVxlan = 0xffffffffu;

 private:
  std::map<std::uint32_t, Counters> counters_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace dust::telemetry
