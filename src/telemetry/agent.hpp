// User-defined modular monitoring agents — the movable workload unit of DUST.
//
// The paper's testbed (§V-A) runs 10 Python analytic agents on a switch NOS:
// routing-protocol health, software/network health, software functions,
// CPU/memory utilization, Rx/Tx packet rates, link states, temperature,
// hardware health, fault finder. Each agent samples a DeviceSnapshot into
// TSDB metrics and charges CPU according to its cost model; the simulator
// (sim::MonitoredNode) accumulates those charges into node CPU utilization.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "telemetry/tsdb.hpp"
#include "util/rng.hpp"

namespace dust::telemetry {

/// Point-in-time device state an agent observes.
struct DeviceSnapshot {
  std::int64_t timestamp_ms = 0;
  double device_cpu_percent = 0.0;     ///< core switching/bridging CPU
  double memory_used_mib = 0.0;
  double rx_mbps = 0.0;
  double tx_mbps = 0.0;
  double temperature_c = 40.0;
  std::uint32_t links_up = 0;
  std::uint32_t links_total = 0;
  std::uint32_t protocol_flaps = 0;    ///< routing adjacency changes this tick
  std::uint32_t faults = 0;            ///< hardware fault events this tick
};

/// CPU/memory cost model for one agent. CPU is charged in core-milliseconds
/// per sampling tick; the traffic-proportional term is what makes in-device
/// monitoring blow up under line-rate overlay traffic (Fig. 1).
struct AgentCostModel {
  double cpu_base_ms = 2.0;           ///< fixed DB-table scan per tick
  double cpu_per_gbps_ms = 10.0;      ///< per Gbps of device traffic
  double burst_probability = 0.0;     ///< heavy tick (full table walk)
  double burst_multiplier = 1.0;
  double memory_base_mib = 25.0;      ///< interpreter + agent footprint
};

/// One monitoring agent: samples device state into metrics and reports cost.
class MonitorAgent {
 public:
  MonitorAgent(std::string name, AgentCostModel cost_model,
               std::int64_t interval_ms);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const AgentCostModel& cost_model() const noexcept {
    return cost_model_;
  }
  [[nodiscard]] std::int64_t interval_ms() const noexcept { return interval_ms_; }

  /// Register this agent's metrics in `db` (idempotent).
  void bind(Tsdb& db);

  /// True if a sample is due at `now_ms` (first call always samples).
  [[nodiscard]] bool due(std::int64_t now_ms) const noexcept;

  /// Sample the device into the bound TSDB. Returns CPU consumed this tick
  /// in core-milliseconds. Requires bind() first.
  double sample(const DeviceSnapshot& snapshot, Tsdb& db, util::Rng& rng);

  /// Steady-state memory footprint excluding TSDB storage (MiB).
  [[nodiscard]] double memory_mib() const noexcept {
    return cost_model_.memory_base_mib;
  }

  [[nodiscard]] std::size_t samples_taken() const noexcept { return samples_; }

 private:
  std::string name_;
  AgentCostModel cost_model_;
  std::int64_t interval_ms_;
  std::int64_t last_sample_ms_ = std::numeric_limits<std::int64_t>::min();
  std::vector<MetricId> metric_ids_;
  bool bound_ = false;
  std::size_t samples_ = 0;
};

/// The 10 user-defined agents of the paper's testbed (§V-A footnote), with
/// cost models calibrated so that under ~20% line-rate VxLAN overlay traffic
/// the monitoring module averages ~100% of one core and spikes to ~600%
/// (Fig. 1), and at the Fig. 6 operating point local monitoring adds ~16
/// points of 8-core CPU and ~1.2 GiB of memory.
std::vector<MonitorAgent> standard_agents();

}  // namespace dust::telemetry
