#include "telemetry/packet.hpp"

namespace dust::telemetry {

namespace {

std::uint16_t read_u16(std::span<const std::uint8_t> bytes, std::size_t at) {
  return static_cast<std::uint16_t>((bytes[at] << 8) | bytes[at + 1]);
}

std::uint32_t read_u32(std::span<const std::uint8_t> bytes, std::size_t at) {
  return (static_cast<std::uint32_t>(bytes[at]) << 24) |
         (static_cast<std::uint32_t>(bytes[at + 1]) << 16) |
         (static_cast<std::uint32_t>(bytes[at + 2]) << 8) |
         static_cast<std::uint32_t>(bytes[at + 3]);
}

void write_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value & 0xff));
}

void write_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>((value >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>(value & 0xff));
}

std::optional<EthernetHeader> parse_ethernet(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < EthernetHeader::kSize) return std::nullopt;
  EthernetHeader eth;
  for (int i = 0; i < 6; ++i) eth.destination[i] = bytes[i];
  for (int i = 0; i < 6; ++i) eth.source[i] = bytes[6 + i];
  eth.ethertype = read_u16(bytes, 12);
  return eth;
}

void append_ethernet(std::vector<std::uint8_t>& out, std::uint16_t ethertype) {
  const MacAddress dst{0x02, 0, 0, 0, 0, 0x01};
  const MacAddress src{0x02, 0, 0, 0, 0, 0x02};
  out.insert(out.end(), dst.begin(), dst.end());
  out.insert(out.end(), src.begin(), src.end());
  write_u16(out, ethertype);
}

void append_ipv4(std::vector<std::uint8_t>& out, std::uint32_t src,
                 std::uint32_t dst, std::uint16_t payload_bytes) {
  const std::size_t start = out.size();
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(0);     // DSCP/ECN
  write_u16(out, static_cast<std::uint16_t>(20 + payload_bytes));
  write_u16(out, 0);  // identification
  write_u16(out, 0);  // flags/fragment
  out.push_back(64);  // TTL
  out.push_back(Ipv4Header::kProtocolUdp);
  write_u16(out, 0);  // checksum placeholder
  write_u32(out, src);
  write_u32(out, dst);
  const std::uint16_t checksum =
      ipv4_checksum(std::span<const std::uint8_t>(out).subspan(start, 20));
  out[start + 10] = static_cast<std::uint8_t>(checksum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(checksum & 0xff);
}

void append_udp(std::vector<std::uint8_t>& out, std::uint16_t src_port,
                std::uint16_t dst_port, std::uint16_t payload_bytes) {
  write_u16(out, src_port);
  write_u16(out, dst_port);
  write_u16(out, static_cast<std::uint16_t>(UdpHeader::kSize + payload_bytes));
  write_u16(out, 0);  // UDP checksum optional over IPv4
}

}  // namespace

std::uint16_t ipv4_checksum(std::span<const std::uint8_t> header) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < header.size(); i += 2) {
    if (i == 10) continue;  // checksum field counts as zero
    sum += static_cast<std::uint32_t>((header[i] << 8) | header[i + 1]);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::optional<ParsedPacket> parse_packet(std::span<const std::uint8_t> bytes,
                                         ParseError* error) {
  auto fail = [error](ParseError code) -> std::optional<ParsedPacket> {
    if (error != nullptr) *error = code;
    return std::nullopt;
  };
  ParsedPacket packet;
  packet.total_bytes = bytes.size();
  const std::optional<EthernetHeader> eth = parse_ethernet(bytes);
  if (!eth) return fail(ParseError::kTruncated);
  packet.ethernet = *eth;
  if (eth->ethertype != EthernetHeader::kEthertypeIpv4)
    return fail(ParseError::kNotIpv4);
  std::size_t at = EthernetHeader::kSize;

  if (bytes.size() < at + 20) return fail(ParseError::kTruncated);
  const std::uint8_t version_ihl = bytes[at];
  if ((version_ihl >> 4) != 4) return fail(ParseError::kBadIpHeader);
  Ipv4Header ip;
  ip.ihl = version_ihl & 0x0f;
  if (ip.ihl < 5) return fail(ParseError::kBadIpHeader);
  if (bytes.size() < at + ip.header_bytes()) return fail(ParseError::kTruncated);
  ip.total_length = read_u16(bytes, at + 2);
  ip.ttl = bytes[at + 8];
  ip.protocol = bytes[at + 9];
  ip.checksum = read_u16(bytes, at + 10);
  ip.source = read_u32(bytes, at + 12);
  ip.destination = read_u32(bytes, at + 16);
  if (ipv4_checksum(bytes.subspan(at, ip.header_bytes())) != ip.checksum)
    return fail(ParseError::kBadChecksum);
  packet.ip = ip;
  at += ip.header_bytes();
  packet.payload_offset = at;
  if (ip.protocol != Ipv4Header::kProtocolUdp) {
    // Parsed as deep as this stack goes; not an error.
    return packet;
  }

  if (bytes.size() < at + UdpHeader::kSize) return fail(ParseError::kTruncated);
  UdpHeader udp;
  udp.source_port = read_u16(bytes, at);
  udp.destination_port = read_u16(bytes, at + 2);
  udp.length = read_u16(bytes, at + 4);
  packet.udp = udp;
  at += UdpHeader::kSize;
  packet.payload_offset = at;
  if (udp.destination_port != UdpHeader::kVxlanPort) return packet;

  if (bytes.size() < at + VxlanHeader::kSize)
    return fail(ParseError::kTruncated);
  VxlanHeader vxlan;
  vxlan.vni = read_u32(bytes, at + 4) >> 8;  // VNI sits in bytes 4-6
  packet.vxlan = vxlan;
  at += VxlanHeader::kSize;
  packet.payload_offset = at;

  if (const std::optional<EthernetHeader> inner =
          parse_ethernet(bytes.subspan(at))) {
    packet.inner = *inner;
    packet.payload_offset = at + EthernetHeader::kSize;
  }
  return packet;
}

std::vector<std::uint8_t> build_vxlan_packet(std::uint32_t vni,
                                             std::uint32_t outer_src_ip,
                                             std::uint32_t outer_dst_ip,
                                             std::size_t inner_payload_bytes) {
  std::vector<std::uint8_t> out;
  const std::size_t inner_frame =
      EthernetHeader::kSize + inner_payload_bytes;
  const std::size_t udp_payload = VxlanHeader::kSize + inner_frame;
  append_ethernet(out, EthernetHeader::kEthertypeIpv4);
  append_ipv4(out, outer_src_ip, outer_dst_ip,
              static_cast<std::uint16_t>(UdpHeader::kSize + udp_payload));
  append_udp(out, 49152, UdpHeader::kVxlanPort,
             static_cast<std::uint16_t>(udp_payload));
  // VxLAN header: flags (I bit set) + reserved, then VNI << 8.
  write_u32(out, 0x08000000u);
  write_u32(out, vni << 8);
  // Inner Ethernet frame (ethertype 0x0800 but no inner IP needed).
  append_ethernet(out, EthernetHeader::kEthertypeIpv4);
  out.insert(out.end(), inner_payload_bytes, 0);
  return out;
}

std::vector<std::uint8_t> build_udp_packet(std::uint32_t src_ip,
                                           std::uint32_t dst_ip,
                                           std::uint16_t src_port,
                                           std::uint16_t dst_port,
                                           std::size_t payload_bytes) {
  std::vector<std::uint8_t> out;
  append_ethernet(out, EthernetHeader::kEthertypeIpv4);
  append_ipv4(out, src_ip, dst_ip,
              static_cast<std::uint16_t>(UdpHeader::kSize + payload_bytes));
  append_udp(out, src_port, dst_port,
             static_cast<std::uint16_t>(payload_bytes));
  out.insert(out.end(), payload_bytes, 0);
  return out;
}

void FlowCounter::add(const ParsedPacket& packet) {
  const std::uint32_t vni = packet.vxlan ? packet.vxlan->vni : kNonVxlan;
  Counters& entry = counters_[vni];
  ++entry.packets;
  entry.bytes += packet.total_bytes;
  ++packets_;
  bytes_ += packet.total_bytes;
}

}  // namespace dust::telemetry
