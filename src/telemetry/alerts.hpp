// Alerting over TSDB metrics.
//
// The paper's Monitor Agents "update the associated time series data" and
// the TSDB "stores the metrics and rules established by these Monitor
// Agents"; alerts are also how DUST's Network Monitor Service triggers
// monitoring "through automated triggers" (§III-A). An AlertRule watches one
// metric against a threshold; a breach must persist for `for_ms` before the
// rule transitions Pending -> Firing (the usual anti-flap hold), and clears
// as soon as a sample is back in range.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/tsdb.hpp"

namespace dust::telemetry {

enum class Comparison : std::uint8_t { kAbove, kBelow };
enum class AlertState : std::uint8_t { kOk, kPending, kFiring };

[[nodiscard]] const char* to_string(AlertState state) noexcept;

struct AlertRule {
  std::string name;          ///< e.g. "cpu-overload"
  std::string metric;        ///< TSDB metric name to watch
  Comparison comparison = Comparison::kAbove;
  double threshold = 0.0;
  std::int64_t for_ms = 0;   ///< breach must persist this long to fire
};

struct AlertTransition {
  std::int64_t timestamp_ms = 0;
  std::string rule;
  AlertState from = AlertState::kOk;
  AlertState to = AlertState::kOk;
};

class AlertEngine {
 public:
  using RuleId = std::size_t;

  RuleId add_rule(AlertRule rule);
  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }
  [[nodiscard]] const AlertRule& rule(RuleId id) const { return rules_.at(id).rule; }

  /// Evaluate every rule against the latest sample of its metric in `db`.
  /// Metrics with no data yet leave their rule untouched. Returns the number
  /// of state transitions that occurred.
  std::size_t evaluate(const Tsdb& db, std::int64_t now_ms);

  [[nodiscard]] AlertState state(RuleId id) const { return rules_.at(id).state; }
  /// Names of rules currently firing.
  [[nodiscard]] std::vector<std::string> firing() const;
  [[nodiscard]] const std::vector<AlertTransition>& history() const noexcept {
    return history_;
  }

 private:
  struct Entry {
    AlertRule rule;
    AlertState state = AlertState::kOk;
    std::int64_t pending_since_ms = 0;
  };

  void transition(Entry& entry, AlertState to, std::int64_t now_ms);

  std::vector<Entry> rules_;
  std::vector<AlertTransition> history_;
};

}  // namespace dust::telemetry
