// Time-Series Federation: network-wide aggregation over per-node TSDBs
// (the "Time-Series Federation" component of Fig. 2).
//
// Nodes register their local Tsdb under a name; queries fan out across all
// member databases and merge results. Federation never copies series — it
// reads members in place, which mirrors DUST's "aggregate where the data
// lives" philosophy.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/tsdb.hpp"

namespace dust::telemetry {

class Federation {
 public:
  /// Register a member database (non-owning; caller keeps it alive).
  /// Re-registering a name replaces the pointer.
  void add_member(const std::string& node_name, const Tsdb* db);
  void remove_member(const std::string& node_name);

  [[nodiscard]] std::size_t member_count() const noexcept {
    return members_.size();
  }
  [[nodiscard]] std::vector<std::string> member_names() const;

  struct NodeSamples {
    std::string node;
    std::vector<Sample> samples;
  };

  /// Range query for `metric_name` across all members that have it.
  [[nodiscard]] std::vector<NodeSamples> query(const std::string& metric_name,
                                               std::int64_t from_ms,
                                               std::int64_t to_ms) const;

  /// Per-node aggregate for a metric; nodes without data are omitted.
  [[nodiscard]] std::map<std::string, double> aggregate_per_node(
      const std::string& metric_name, std::int64_t from_ms, std::int64_t to_ms,
      Aggregation op) const;

  /// Network-wide aggregate: applies `op` over the union of all samples.
  [[nodiscard]] std::optional<double> aggregate(const std::string& metric_name,
                                                std::int64_t from_ms,
                                                std::int64_t to_ms,
                                                Aggregation op) const;

  /// Total compressed storage across members (bytes).
  [[nodiscard]] std::size_t total_storage_bytes() const noexcept;

 private:
  std::map<std::string, const Tsdb*> members_;
};

}  // namespace dust::telemetry
