#include "telemetry/gorilla.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace dust::telemetry {

void BitWriter::write_bit(bool bit) {
  const std::size_t byte = bit_count_ / 8;
  if (byte == data_.size()) data_.push_back(0);
  if (bit) data_[byte] |= static_cast<std::uint8_t>(0x80u >> (bit_count_ % 8));
  ++bit_count_;
}

void BitWriter::write_bits(std::uint64_t value, unsigned bits) {
  if (bits > 64) throw std::invalid_argument("BitWriter::write_bits: bits > 64");
  for (unsigned i = bits; i-- > 0;)
    write_bit((value >> i) & 1u);
}

BitWriter BitWriter::from_bytes(std::vector<std::uint8_t> data,
                                std::size_t bit_count) {
  if (data.size() != (bit_count + 7) / 8)
    throw std::invalid_argument("BitWriter::from_bytes: inconsistent sizes");
  BitWriter writer;
  writer.data_ = std::move(data);
  writer.bit_count_ = bit_count;
  return writer;
}

bool BitReader::read_bit() {
  if (cursor_ >= bit_count_)
    throw std::out_of_range("BitReader: read past end");
  const bool bit =
      (data_[cursor_ / 8] >> (7 - cursor_ % 8)) & 1u;
  ++cursor_;
  return bit;
}

std::uint64_t BitReader::read_bits(unsigned bits) {
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bits; ++i) value = (value << 1) | (read_bit() ? 1u : 0u);
  return value;
}

namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

/// Zig-zag to keep small signed deltas in few bits.
std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace

void CompressedBlock::append(const Sample& sample) {
  if (count_ > 0 && sample.timestamp_ms < prev_timestamp_)
    throw std::invalid_argument("CompressedBlock: timestamps must not decrease");

  // --- timestamp ---
  if (count_ == 0) {
    first_timestamp_ = prev_timestamp_ = sample.timestamp_ms;
    writer_.write_bits(static_cast<std::uint64_t>(sample.timestamp_ms), 64);
  } else {
    const std::int64_t delta = sample.timestamp_ms - prev_timestamp_;
    const std::int64_t dod = delta - prev_delta_;
    if (dod == 0) {
      writer_.write_bit(false);
    } else if (dod >= -63 && dod <= 64) {
      writer_.write_bits(0b10, 2);
      writer_.write_bits(zigzag(dod), 7);
    } else if (dod >= -255 && dod <= 256) {
      writer_.write_bits(0b110, 3);
      writer_.write_bits(zigzag(dod), 9);
    } else if (dod >= -2047 && dod <= 2048) {
      writer_.write_bits(0b1110, 4);
      writer_.write_bits(zigzag(dod), 12);
    } else {
      writer_.write_bits(0b1111, 4);
      writer_.write_bits(zigzag(dod), 64);
    }
    prev_delta_ = delta;
    prev_timestamp_ = sample.timestamp_ms;
  }

  // --- value ---
  const std::uint64_t bits = double_bits(sample.value);
  if (count_ == 0) {
    writer_.write_bits(bits, 64);
  } else {
    const std::uint64_t x = bits ^ prev_value_bits_;
    if (x == 0) {
      writer_.write_bit(false);
    } else {
      writer_.write_bit(true);
      auto leading = static_cast<unsigned>(std::countl_zero(x));
      auto trailing = static_cast<unsigned>(std::countr_zero(x));
      if (leading > 31) leading = 31;  // cap so the window field fits
      if (has_window_ && leading >= prev_leading_ && trailing >= prev_trailing_) {
        // Fits in the previous meaningful-bit window.
        writer_.write_bit(false);
        const unsigned length = 64 - prev_leading_ - prev_trailing_;
        writer_.write_bits(x >> prev_trailing_, length);
      } else {
        writer_.write_bit(true);
        const unsigned length = 64 - leading - trailing;
        writer_.write_bits(leading, 6);
        writer_.write_bits(length - 1, 6);  // length in [1, 64]
        writer_.write_bits(x >> trailing, length);
        prev_leading_ = leading;
        prev_trailing_ = trailing;
        has_window_ = true;
      }
    }
    prev_value_bits_ = bits;
  }
  if (count_ == 0) prev_value_bits_ = bits;
  ++count_;
}

std::vector<Sample> CompressedBlock::decode() const {
  std::vector<Sample> samples;
  samples.reserve(count_);
  if (count_ == 0) return samples;
  BitReader reader(writer_.bytes(), writer_.bit_count());

  std::int64_t timestamp =
      static_cast<std::int64_t>(reader.read_bits(64));
  std::uint64_t value_bits = reader.read_bits(64);
  samples.push_back(Sample{timestamp, bits_double(value_bits)});

  std::int64_t delta = 0;
  unsigned leading = 0, trailing = 0;
  for (std::size_t i = 1; i < count_; ++i) {
    // timestamp
    std::int64_t dod = 0;
    if (!reader.read_bit()) {
      dod = 0;
    } else if (!reader.read_bit()) {
      dod = unzigzag(reader.read_bits(7));
    } else if (!reader.read_bit()) {
      dod = unzigzag(reader.read_bits(9));
    } else if (!reader.read_bit()) {
      dod = unzigzag(reader.read_bits(12));
    } else {
      dod = unzigzag(reader.read_bits(64));
    }
    delta += dod;
    timestamp += delta;
    // value
    if (reader.read_bit()) {
      if (reader.read_bit()) {
        leading = static_cast<unsigned>(reader.read_bits(6));
        const unsigned length = static_cast<unsigned>(reader.read_bits(6)) + 1;
        trailing = 64 - leading - length;
        value_bits ^= reader.read_bits(length) << trailing;
      } else {
        const unsigned length = 64 - leading - trailing;
        value_bits ^= reader.read_bits(length) << trailing;
      }
    }
    samples.push_back(Sample{timestamp, bits_double(value_bits)});
  }
  return samples;
}

namespace {

constexpr std::uint32_t kBlockMagic = 0x44535442;  // "DSTB"
constexpr std::uint32_t kBlockVersion = 1;

template <typename T>
void put(std::ostream& os, T value) {
  // Little-endian regardless of host (portable snapshots).
  for (std::size_t i = 0; i < sizeof(T); ++i)
    os.put(static_cast<char>((static_cast<std::uint64_t>(value) >> (8 * i)) &
                             0xff));
}

template <typename T>
T get(std::istream& is) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int byte = is.get();
    if (byte == std::char_traits<char>::eof())
      throw std::runtime_error("CompressedBlock: truncated stream");
    value |= static_cast<std::uint64_t>(byte & 0xff) << (8 * i);
  }
  return static_cast<T>(value);
}

}  // namespace

void CompressedBlock::serialize(std::ostream& os) const {
  put(os, kBlockMagic);
  put(os, kBlockVersion);
  put(os, static_cast<std::uint64_t>(count_));
  put(os, static_cast<std::uint64_t>(first_timestamp_));
  put(os, static_cast<std::uint64_t>(prev_timestamp_));
  put(os, static_cast<std::uint64_t>(prev_delta_));
  put(os, prev_value_bits_);
  put(os, static_cast<std::uint32_t>(prev_leading_));
  put(os, static_cast<std::uint32_t>(prev_trailing_));
  put(os, static_cast<std::uint8_t>(has_window_ ? 1 : 0));
  put(os, static_cast<std::uint64_t>(writer_.bit_count()));
  const auto& bytes = writer_.bytes();
  put(os, static_cast<std::uint64_t>(bytes.size()));
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

CompressedBlock CompressedBlock::deserialize(std::istream& is) {
  if (get<std::uint32_t>(is) != kBlockMagic)
    throw std::runtime_error("CompressedBlock: bad magic");
  if (get<std::uint32_t>(is) != kBlockVersion)
    throw std::runtime_error("CompressedBlock: unsupported version");
  CompressedBlock block;
  block.count_ = static_cast<std::size_t>(get<std::uint64_t>(is));
  block.first_timestamp_ = static_cast<std::int64_t>(get<std::uint64_t>(is));
  block.prev_timestamp_ = static_cast<std::int64_t>(get<std::uint64_t>(is));
  block.prev_delta_ = static_cast<std::int64_t>(get<std::uint64_t>(is));
  block.prev_value_bits_ = get<std::uint64_t>(is);
  block.prev_leading_ = get<std::uint32_t>(is);
  block.prev_trailing_ = get<std::uint32_t>(is);
  block.has_window_ = get<std::uint8_t>(is) != 0;
  const auto bit_count = static_cast<std::size_t>(get<std::uint64_t>(is));
  const auto byte_count = static_cast<std::size_t>(get<std::uint64_t>(is));
  if (byte_count != (bit_count + 7) / 8)
    throw std::runtime_error("CompressedBlock: inconsistent sizes");
  std::vector<char> raw(byte_count);
  is.read(raw.data(), static_cast<std::streamsize>(byte_count));
  if (static_cast<std::size_t>(is.gcount()) != byte_count)
    throw std::runtime_error("CompressedBlock: truncated payload");
  // Rebuild the writer bit-exactly.
  BitWriter writer;
  for (std::size_t bit = 0; bit < bit_count; ++bit) {
    const auto byte = static_cast<std::uint8_t>(raw[bit / 8]);
    writer.write_bit((byte >> (7 - bit % 8)) & 1u);
  }
  block.writer_ = std::move(writer);
  return block;
}

CompressedBlock CompressedBlock::from_wire(std::vector<std::uint8_t> payload,
                                           std::size_t bit_count,
                                           std::size_t sample_count,
                                           std::int64_t first_timestamp_ms,
                                           std::int64_t last_timestamp_ms) {
  CompressedBlock block;
  block.writer_ = BitWriter::from_bytes(std::move(payload), bit_count);
  block.count_ = sample_count;
  block.first_timestamp_ = first_timestamp_ms;
  block.prev_timestamp_ = last_timestamp_ms;
  return block;
}

double CompressedBlock::compression_ratio() const {
  if (count_ == 0) return 1.0;
  const double raw = static_cast<double>(count_) * 16.0;
  const double stored = static_cast<double>(compressed_bytes());
  return stored > 0 ? raw / stored : 1.0;
}

}  // namespace dust::telemetry
