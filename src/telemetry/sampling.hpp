// Degraded-mode telemetry reduction (PINT-style, Ben Basat et al.,
// arXiv:2007.03731): when the data plane pushes back, the streamer trades
// fidelity for bandwidth along an explicit ladder instead of silently
// shedding — probabilistic per-sample sampling first, coarse window
// aggregation second. Every mode change is declared on the wire, so a
// collector always knows which fraction of the stream to expect.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/metric.hpp"

namespace dust::telemetry {

/// The degradation ladder, least to most lossy. Values are the wire
/// encoding (kDataBlocks / kDataDegrade frames) — do not renumber.
enum class DegradeMode : std::uint8_t {
  kFull = 0,        ///< every sample forwarded
  kSampled = 1,     ///< keep each sample with probability p (PINT-style)
  kAggregated = 2,  ///< one mean sample per aggregation window
};

[[nodiscard]] const char* to_string(DegradeMode mode) noexcept;

/// One step up (more lossy) / down (less lossy) the ladder.
[[nodiscard]] DegradeMode escalate(DegradeMode mode) noexcept;
[[nodiscard]] DegradeMode relax(DegradeMode mode) noexcept;

/// Deterministic per-sample reduction policy. The keep decision is a pure
/// function of (seed, sample key), so replaying the same stream — or
/// re-evaluating it at the collector — makes identical choices.
struct SamplingPolicy {
  DegradeMode mode = DegradeMode::kFull;
  double keep_probability = 0.25;        ///< used by kSampled
  std::int64_t aggregate_window_ms = 1000;  ///< used by kAggregated
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;

  /// kSampled coin for a sample identified by `key` (timestamp works well:
  /// distinct per sample within a series, stable across replays).
  [[nodiscard]] bool admit(std::uint64_t key) const noexcept;

  /// Reduce a decoded sample run according to the current mode. kFull
  /// passes through, kSampled keeps the admitted subset, kAggregated emits
  /// one mean sample per window (stamped with its last contributing time).
  [[nodiscard]] std::vector<Sample> apply(
      const std::vector<Sample>& samples) const;

  /// Expected surviving fraction of the raw stream under this mode —
  /// what a STAT should scale the advertised monitoring volume by.
  /// kAggregated assumes `samples_per_window` raw samples per window.
  [[nodiscard]] double effective_keep_fraction(
      double samples_per_window) const noexcept;
};

}  // namespace dust::telemetry
