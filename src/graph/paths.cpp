#include "graph/paths.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

#include "solver/min_cost_flow.hpp"

namespace dust::graph {

double Path::cost(std::span<const double> edge_cost) const {
  double total = 0.0;
  for (EdgeId e : edges) total += edge_cost[e];
  return total;
}

std::vector<std::uint32_t> bfs_hops(const Graph& graph, NodeId src) {
  std::vector<std::uint32_t> dist(graph.node_count(), kUnreachable);
  if (src >= graph.node_count()) throw std::out_of_range("bfs_hops: src");
  std::queue<NodeId> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    for (const Adjacency& adj : graph.neighbors(node)) {
      if (dist[adj.neighbor] == kUnreachable) {
        dist[adj.neighbor] = dist[node] + 1;
        frontier.push(adj.neighbor);
      }
    }
  }
  return dist;
}

Path ShortestPathTree::extract(const Graph& graph, NodeId src, NodeId dst) const {
  Path path;
  if (distance.at(dst) == kInfiniteCost) return path;
  NodeId node = dst;
  while (node != src) {
    const EdgeId via = parent_edge.at(node);
    path.edges.push_back(via);
    path.nodes.push_back(node);
    node = graph.edge(via).other(node);
  }
  path.nodes.push_back(src);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

ShortestPathTree dijkstra(const Graph& graph, NodeId src,
                          std::span<const double> edge_cost) {
  if (edge_cost.size() != graph.edge_count())
    throw std::invalid_argument("dijkstra: edge_cost size mismatch");
  ShortestPathTree tree;
  tree.distance.assign(graph.node_count(), kInfiniteCost);
  tree.parent_edge.assign(graph.node_count(), kInvalidEdge);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  tree.distance.at(src) = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [dist, node] = heap.top();
    heap.pop();
    if (dist > tree.distance[node]) continue;  // stale entry
    for (const Adjacency& adj : graph.neighbors(node)) {
      const double cost = edge_cost[adj.edge];
      if (cost < 0) throw std::invalid_argument("dijkstra: negative edge cost");
      const double candidate = dist + cost;
      if (candidate < tree.distance[adj.neighbor]) {
        tree.distance[adj.neighbor] = candidate;
        tree.parent_edge[adj.neighbor] = adj.edge;
        heap.emplace(candidate, adj.neighbor);
      }
    }
  }
  return tree;
}

std::vector<double> hop_bounded_min_cost(const Graph& graph, NodeId src,
                                         std::span<const double> edge_cost,
                                         std::uint32_t max_hops) {
  std::vector<double> best;
  hop_bounded_min_cost_into(graph, src, edge_cost, max_hops, best);
  return best;
}

void hop_bounded_min_cost_into(const Graph& graph, NodeId src,
                               std::span<const double> edge_cost,
                               std::uint32_t max_hops,
                               std::vector<double>& out) {
  if (edge_cost.size() != graph.edge_count())
    throw std::invalid_argument("hop_bounded_min_cost: edge_cost size mismatch");
  if (src >= graph.node_count())
    throw std::out_of_range("hop_bounded_min_cost: src");
  const std::uint32_t bound =
      max_hops == 0 ? static_cast<std::uint32_t>(graph.node_count()) - 1 : max_hops;
  std::vector<double>& best = out;
  best.assign(graph.node_count(), kInfiniteCost);
  // Relaxation frontiers persist per thread; every row recompute in a
  // placement cycle reuses the same capacity instead of allocating O(n).
  static thread_local std::vector<double> frontier;
  static thread_local std::vector<double> next;
  frontier.assign(graph.node_count(), kInfiniteCost);
  best[src] = frontier[src] = 0.0;
  next.resize(graph.node_count());
  for (std::uint32_t hop = 0; hop < bound; ++hop) {
    std::fill(next.begin(), next.end(), kInfiniteCost);
    bool improved = false;
    for (NodeId node = 0; node < graph.node_count(); ++node) {
      if (frontier[node] == kInfiniteCost) continue;
      for (const Adjacency& adj : graph.neighbors(node)) {
        const double candidate = frontier[node] + edge_cost[adj.edge];
        if (candidate < next[adj.neighbor]) next[adj.neighbor] = candidate;
      }
    }
    for (NodeId node = 0; node < graph.node_count(); ++node) {
      if (next[node] < best[node]) {
        best[node] = next[node];
        improved = true;
      }
    }
    frontier.swap(next);
    if (!improved) break;  // converged before the hop bound
  }
}

void shared_frontier_labels_into(const Graph& graph, NodeId src,
                                 std::span<const double> edge_cost,
                                 std::uint32_t max_hops,
                                 std::vector<double>& best,
                                 std::vector<std::uint64_t>& used_edges,
                                 std::size_t* rounds_out) {
  if (edge_cost.size() != graph.edge_count())
    throw std::invalid_argument(
        "shared_frontier_labels: edge_cost size mismatch");
  if (src >= graph.node_count())
    throw std::out_of_range("shared_frontier_labels: src");
  const std::size_t n = graph.node_count();
  const std::uint32_t bound =
      max_hops == 0 ? static_cast<std::uint32_t>(n) - 1 : max_hops;
  best.assign(n, kInfiniteCost);
  best[src] = 0.0;
  used_edges.assign((graph.edge_count() + 63) / 64, 0);

  // Layer h of the flattened tables holds the cost/predecessor of reaching a
  // node in exactly h hops; layers are grown on demand so the high-water
  // memory is rounds-actually-run * n, not max_hops * n (the sweep converges
  // at the weighted diameter, far below n - 1 for unbounded queries). All
  // scratch is per-thread and reused across calls.
  static thread_local std::vector<double> layer_cost;
  static thread_local std::vector<EdgeId> layer_via;
  static thread_local std::vector<std::uint32_t> best_layer;
  static thread_local std::vector<NodeId> frontier;
  static thread_local std::vector<NodeId> fresh;
  static thread_local std::vector<char> touched;
  best_layer.assign(n, 0);
  touched.assign(n, 0);
  if (layer_cost.size() < n) {
    layer_cost.resize(n);
    layer_via.resize(n);
  }
  layer_cost[src] = 0.0;  // layer 0
  frontier.clear();
  frontier.push_back(src);
  std::size_t rounds = 0;
  for (std::uint32_t h = 1; h <= bound && !frontier.empty(); ++h) {
    ++rounds;
    const std::size_t prev = (h - 1) * n;
    const std::size_t cur = h * n;
    if (layer_cost.size() < cur + n) {
      layer_cost.resize(cur + n);
      layer_via.resize(cur + n);
    }
    fresh.clear();
    for (NodeId node : frontier) {
      const double base = layer_cost[prev + node];
      for (const Adjacency& adj : graph.neighbors(node)) {
        const double candidate = base + edge_cost[adj.edge];
        if (!touched[adj.neighbor]) {
          touched[adj.neighbor] = 1;
          fresh.push_back(adj.neighbor);
          layer_cost[cur + adj.neighbor] = candidate;
          layer_via[cur + adj.neighbor] = adj.edge;
        } else if (candidate < layer_cost[cur + adj.neighbor]) {
          layer_cost[cur + adj.neighbor] = candidate;
          layer_via[cur + adj.neighbor] = adj.edge;
        }
      }
    }
    // Only strict improvers are re-expanded: a walk that reaches a node at
    // cost >= an earlier layer's label is dominated edge-for-edge by
    // extending that earlier, cheaper-and-shorter label instead. This is
    // what keeps the frontier sparse (and the labels bit-identical to the
    // dense hop_bounded_min_cost relaxation, which carries the dominated
    // entries along without ever letting them win).
    frontier.clear();
    for (NodeId node : fresh) {
      touched[node] = 0;
      if (layer_cost[cur + node] < best[node]) {
        best[node] = layer_cost[cur + node];
        best_layer[node] = h;
        frontier.push_back(node);
      }
    }
  }
  // Backwalk: every reached destination's winning label sits at
  // (best_layer[v], v); its predecessor chain passes only through nodes
  // that were strict improvers at their layer, so each hop of the walk has
  // a recorded via edge. OR the path edges into the shared bitmap.
  for (NodeId v = 0; v < n; ++v) {
    if (v == src || best[v] == kInfiniteCost) continue;
    NodeId node = v;
    for (std::uint32_t h = best_layer[v]; h > 0; --h) {
      const EdgeId e = layer_via[h * n + node];
      used_edges[e / 64] |= std::uint64_t{1} << (e % 64);
      node = graph.edge(e).other(node);
    }
  }
  if (rounds_out != nullptr) *rounds_out = rounds;
}

Path hop_bounded_path(const Graph& graph, NodeId src, NodeId dst,
                      std::span<const double> edge_cost,
                      std::uint32_t max_hops) {
  if (edge_cost.size() != graph.edge_count())
    throw std::invalid_argument("hop_bounded_path: edge_cost size mismatch");
  if (src >= graph.node_count() || dst >= graph.node_count())
    throw std::out_of_range("hop_bounded_path: node out of range");
  Path path;
  if (src == dst) {
    path.nodes.push_back(src);
    return path;
  }
  const std::uint32_t bound =
      max_hops == 0 ? static_cast<std::uint32_t>(graph.node_count()) - 1 : max_hops;
  // Layered DP with per-layer predecessors: layer h holds the best cost of
  // reaching each node in exactly h hops. The (bound+1) x n layer tables are
  // flattened into per-thread scratch reused across calls.
  const std::size_t n = graph.node_count();
  static thread_local std::vector<double> cost;
  static thread_local std::vector<EdgeId> via;
  cost.assign((bound + 1) * n, kInfiniteCost);
  via.assign((bound + 1) * n, kInvalidEdge);
  cost[src] = 0.0;  // layer 0
  double best = kInfiniteCost;
  std::uint32_t best_layer = 0;
  for (std::uint32_t h = 1; h <= bound; ++h) {
    const std::size_t prev = (h - 1) * n;
    const std::size_t cur = h * n;
    for (NodeId node = 0; node < n; ++node) {
      if (cost[prev + node] == kInfiniteCost) continue;
      for (const Adjacency& adj : graph.neighbors(node)) {
        const double candidate = cost[prev + node] + edge_cost[adj.edge];
        if (candidate < cost[cur + adj.neighbor]) {
          cost[cur + adj.neighbor] = candidate;
          via[cur + adj.neighbor] = adj.edge;
        }
      }
    }
    if (cost[cur + dst] < best) {
      best = cost[cur + dst];
      best_layer = h;
    }
  }
  if (best == kInfiniteCost) return path;  // unreachable within the bound
  // Walk predecessors back from (best_layer, dst).
  NodeId node = dst;
  for (std::uint32_t h = best_layer; h > 0; --h) {
    const EdgeId edge = via[h * n + node];
    path.edges.push_back(edge);
    path.nodes.push_back(node);
    node = graph.edge(edge).other(node);
  }
  path.nodes.push_back(src);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

std::vector<Path> edge_disjoint_paths(const Graph& graph, NodeId src,
                                      NodeId dst,
                                      std::span<const double> edge_cost,
                                      std::size_t k) {
  if (edge_cost.size() != graph.edge_count())
    throw std::invalid_argument("edge_disjoint_paths: edge_cost size mismatch");
  std::vector<Path> paths;
  if (k == 0 || src == dst) return paths;
  // Unit-capacity min-cost flow; an undirected edge becomes one arc per
  // direction. With non-negative costs an optimal integral flow never uses
  // both directions of the same edge, so arc-disjointness in the flow is
  // edge-disjointness in the graph. Arc ids are dense and sequential: arc
  // 2e is edge e in a->b orientation, arc 2e+1 the reverse — no associative
  // bookkeeping needed in the path-peeling loop below.
  solver::MinCostFlow mcf(graph.node_count());
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    if (edge_cost[e] < 0)
      throw std::invalid_argument("edge_disjoint_paths: negative cost");
    mcf.add_arc(edge.a, edge.b, 1.0, edge_cost[e]);
    mcf.add_arc(edge.b, edge.a, 1.0, edge_cost[e]);
  }
  const auto result = mcf.solve(src, dst, static_cast<double>(k));
  const auto flows = static_cast<std::size_t>(result.max_flow + 0.5);
  if (flows == 0) return paths;
  // Collect used directed arcs (net usage) and peel off paths.
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> outgoing(
      graph.node_count());
  for (std::size_t arc = 0; arc < 2 * graph.edge_count(); ++arc) {
    if (mcf.arc_flow(arc) < 0.5) continue;
    const EdgeId e = static_cast<EdgeId>(arc / 2);
    const bool forward = (arc % 2) == 0;
    const Edge& edge = graph.edge(e);
    const NodeId from = forward ? edge.a : edge.b;
    const NodeId to = forward ? edge.b : edge.a;
    outgoing[from].emplace_back(to, e);
  }
  for (std::size_t i = 0; i < flows; ++i) {
    Path path;
    path.nodes.push_back(src);
    NodeId node = src;
    while (node != dst) {
      auto& arcs = outgoing[node];
      if (arcs.empty()) {
        path.nodes.clear();  // degenerate (cancelled flow); give up this one
        path.edges.clear();
        break;
      }
      const auto [next, edge] = arcs.back();
      arcs.pop_back();
      path.nodes.push_back(next);
      path.edges.push_back(edge);
      node = next;
    }
    if (!path.nodes.empty()) paths.push_back(std::move(path));
  }
  return paths;
}

namespace {

/// Shared DFS state for exhaustive simple-path enumeration.
struct EnumerationState {
  const Graph* graph = nullptr;
  std::uint32_t max_hops = 0;
  const std::function<bool(NodeId)>* is_target = nullptr;
  const std::function<bool(const Path&)>* visit = nullptr;
  std::vector<char> on_path;
  Path path;
  bool stopped = false;

  void dfs(NodeId node) {
    if ((*is_target)(node) && !path.edges.empty()) {
      if (!(*visit)(path)) {
        stopped = true;
        return;
      }
    }
    if (path.edges.size() >= max_hops) return;
    for (const Adjacency& adj : graph->neighbors(node)) {
      if (on_path[adj.neighbor]) continue;
      on_path[adj.neighbor] = 1;
      path.nodes.push_back(adj.neighbor);
      path.edges.push_back(adj.edge);
      dfs(adj.neighbor);
      path.edges.pop_back();
      path.nodes.pop_back();
      on_path[adj.neighbor] = 0;
      if (stopped) return;
    }
  }
};

}  // namespace

void for_each_simple_path(const Graph& graph, NodeId src,
                          const std::function<bool(NodeId)>& is_target,
                          std::uint32_t max_hops,
                          const std::function<bool(const Path&)>& visit) {
  if (src >= graph.node_count())
    throw std::out_of_range("for_each_simple_path: src");
  EnumerationState state;
  state.graph = &graph;
  state.max_hops = max_hops == 0
                       ? static_cast<std::uint32_t>(graph.node_count()) - 1
                       : max_hops;
  state.is_target = &is_target;
  state.visit = &visit;
  state.on_path.assign(graph.node_count(), 0);
  state.on_path[src] = 1;
  state.path.nodes.push_back(src);
  state.dfs(src);
}

std::vector<Path> enumerate_simple_paths(const Graph& graph, NodeId src,
                                         NodeId dst, std::uint32_t max_hops,
                                         std::size_t max_paths) {
  std::vector<Path> result;
  for_each_simple_path(
      graph, src, [dst](NodeId node) { return node == dst; }, max_hops,
      [&result, max_paths](const Path& path) {
        result.push_back(path);
        return max_paths == 0 || result.size() < max_paths;
      });
  return result;
}

std::size_t count_simple_paths(const Graph& graph, NodeId src, NodeId dst,
                               std::uint32_t max_hops) {
  std::size_t count = 0;
  for_each_simple_path(
      graph, src, [dst](NodeId node) { return node == dst; }, max_hops,
      [&count](const Path&) {
        ++count;
        return true;
      });
  return count;
}

std::vector<Path> k_shortest_paths(const Graph& graph, NodeId src, NodeId dst,
                                   std::span<const double> edge_cost,
                                   std::size_t k) {
  std::vector<Path> accepted;
  if (k == 0) return accepted;
  std::vector<double> cost(edge_cost.begin(), edge_cost.end());
  {
    const ShortestPathTree tree = dijkstra(graph, src, cost);
    Path first = tree.extract(graph, src, dst);
    if (first.nodes.empty()) return accepted;
    accepted.push_back(std::move(first));
  }
  // Candidate pool with each path's cost computed once at insertion (the
  // min_element comparator below then compares cached doubles instead of
  // re-walking both paths' edges per comparison); set-based dedup on the
  // node sequence.
  std::vector<Path> candidates;
  std::vector<double> candidate_cost;
  std::set<std::vector<NodeId>> seen;
  seen.insert(accepted[0].nodes);

  while (accepted.size() < k) {
    const Path& previous = accepted.back();
    // Spur from every node of the previous path.
    for (std::size_t spur_index = 0; spur_index < previous.nodes.size() - 1;
         ++spur_index) {
      const NodeId spur_node = previous.nodes[spur_index];
      // Root = previous path up to the spur node.
      std::vector<NodeId> root_nodes(previous.nodes.begin(),
                                     previous.nodes.begin() + spur_index + 1);
      // Ban edges that would recreate an already-accepted path with this root,
      // and ban root nodes (except the spur) to keep paths loopless.
      std::vector<double> banned = cost;
      for (const Path& path : accepted) {
        if (path.nodes.size() > spur_index + 1 &&
            std::equal(root_nodes.begin(), root_nodes.end(), path.nodes.begin()))
          banned[path.edges[spur_index]] = kInfiniteCost;
      }
      std::vector<char> removed(graph.node_count(), 0);
      for (std::size_t i = 0; i < spur_index; ++i)
        removed[previous.nodes[i]] = 1;
      for (EdgeId e = 0; e < graph.edge_count(); ++e) {
        const Edge& edge = graph.edge(e);
        if (removed[edge.a] || removed[edge.b]) banned[e] = kInfiniteCost;
      }
      const ShortestPathTree tree = dijkstra(graph, spur_node, banned);
      Path spur = tree.extract(graph, spur_node, dst);
      if (spur.nodes.empty() || tree.distance[dst] == kInfiniteCost) continue;
      // Total = root + spur.
      Path total;
      total.nodes = root_nodes;
      total.edges.assign(previous.edges.begin(),
                         previous.edges.begin() + spur_index);
      total.nodes.insert(total.nodes.end(), spur.nodes.begin() + 1,
                         spur.nodes.end());
      total.edges.insert(total.edges.end(), spur.edges.begin(), spur.edges.end());
      if (seen.insert(total.nodes).second) {
        candidate_cost.push_back(total.cost(cost));
        candidates.push_back(std::move(total));
      }
    }
    if (candidates.empty()) break;
    const auto best_cost =
        std::min_element(candidate_cost.begin(), candidate_cost.end());
    const auto index =
        static_cast<std::size_t>(best_cost - candidate_cost.begin());
    accepted.push_back(std::move(candidates[index]));
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(index));
    candidate_cost.erase(best_cost);
  }
  return accepted;
}

}  // namespace dust::graph
