// Topology generators.
//
// The paper evaluates on k-port fat-trees counted at the *switch* level
// (no hosts): 5k^2/4 nodes and k^3/2 links — 20/32 for k=4, 80/256 for k=8,
// 320/2048 for k=16, 5120/131072 for k=64 (§V-B). FatTree reproduces exactly
// those counts. Additional generators cover the "versatile, deployable across
// various network topologies" claim (§III) and give tests non-fat-tree cases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dust::graph {

enum class SwitchLayer : std::uint8_t { kCore, kAggregation, kEdge };

/// k-port fat-tree at switch granularity (Al-Fares et al., SIGCOMM'08).
class FatTree {
 public:
  /// k must be even and >= 2.
  explicit FatTree(std::uint32_t k);

  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

  [[nodiscard]] std::size_t core_count() const noexcept { return (k_ / 2) * (k_ / 2); }
  [[nodiscard]] std::size_t pod_count() const noexcept { return k_; }
  [[nodiscard]] std::size_t aggregation_per_pod() const noexcept { return k_ / 2; }
  [[nodiscard]] std::size_t edge_per_pod() const noexcept { return k_ / 2; }

  [[nodiscard]] SwitchLayer layer(NodeId node) const;
  /// Pod index for aggregation/edge switches; throws for core switches.
  [[nodiscard]] std::uint32_t pod(NodeId node) const;

  [[nodiscard]] NodeId core(std::uint32_t index) const;
  [[nodiscard]] NodeId aggregation(std::uint32_t pod, std::uint32_t index) const;
  [[nodiscard]] NodeId edge_switch(std::uint32_t pod, std::uint32_t index) const;

  /// Human-readable name, e.g. "core3", "agg1.0", "edge2.1".
  [[nodiscard]] std::string node_name(NodeId node) const;

 private:
  std::uint32_t k_;
  Graph graph_;
};

/// Two-tier leaf-spine: every leaf connects to every spine.
Graph make_leaf_spine(std::uint32_t spines, std::uint32_t leaves);

/// Cycle of n >= 3 nodes.
Graph make_ring(std::uint32_t n);

/// rows x cols 2D mesh.
Graph make_grid(std::uint32_t rows, std::uint32_t cols);

/// Star: node 0 is the hub.
Graph make_star(std::uint32_t leaves);

/// Connected random graph: a random spanning tree plus `extra_edges`
/// additional distinct random edges.
Graph make_random_connected(std::uint32_t n, std::uint32_t extra_edges,
                            util::Rng& rng);

}  // namespace dust::graph
