// GraphViz DOT export for topologies and offload plans — handy for
// debugging placements and documenting scenarios.
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "graph/graph.hpp"

namespace dust::graph {

struct DotOptions {
  /// Label for a node (defaults to its id).
  std::function<std::string(NodeId)> node_label;
  /// Optional fill color per node (empty = default).
  std::function<std::string(NodeId)> node_color;
  /// Optional label per edge (empty = none).
  std::function<std::string(EdgeId)> edge_label;
  std::string graph_name = "dust";
};

/// Write the graph as an undirected DOT document.
void write_dot(std::ostream& os, const Graph& graph,
               const DotOptions& options = {});

}  // namespace dust::graph
