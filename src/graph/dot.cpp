#include "graph/dot.hpp"

namespace dust::graph {

namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

}  // namespace

void write_dot(std::ostream& os, const Graph& graph, const DotOptions& options) {
  os << "graph " << options.graph_name << " {\n";
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    os << "  n" << v;
    const std::string label =
        options.node_label ? options.node_label(v) : std::to_string(v);
    os << " [label=\"" << escape(label) << '"';
    if (options.node_color) {
      const std::string color = options.node_color(v);
      if (!color.empty())
        os << ", style=filled, fillcolor=\"" << escape(color) << '"';
    }
    os << "];\n";
  }
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    os << "  n" << edge.a << " -- n" << edge.b;
    if (options.edge_label) {
      const std::string label = options.edge_label(e);
      if (!label.empty()) os << " [label=\"" << escape(label) << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace dust::graph
