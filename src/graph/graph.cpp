#include "graph/graph.hpp"

#include <stdexcept>

namespace dust::graph {

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

EdgeId Graph::add_edge(NodeId a, NodeId b) {
  if (a >= node_count() || b >= node_count())
    throw std::out_of_range("Graph::add_edge: node id out of range");
  if (a == b) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (find_edge(a, b)) throw std::invalid_argument("Graph::add_edge: parallel edge");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{a, b});
  adjacency_[a].push_back(Adjacency{b, id});
  adjacency_[b].push_back(Adjacency{a, id});
  return id;
}

std::optional<EdgeId> Graph::find_edge(NodeId a, NodeId b) const {
  if (a >= node_count() || b >= node_count()) return std::nullopt;
  // Scan the smaller adjacency list.
  const NodeId base = adjacency_[a].size() <= adjacency_[b].size() ? a : b;
  const NodeId target = base == a ? b : a;
  for (const Adjacency& adj : adjacency_[base])
    if (adj.neighbor == target) return adj.edge;
  return std::nullopt;
}

bool Graph::connected() const {
  if (node_count() == 0) return true;
  std::vector<char> seen(node_count(), 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId node = stack.back();
    stack.pop_back();
    for (const Adjacency& adj : adjacency_[node]) {
      if (!seen[adj.neighbor]) {
        seen[adj.neighbor] = 1;
        ++visited;
        stack.push_back(adj.neighbor);
      }
    }
  }
  return visited == node_count();
}

}  // namespace dust::graph
