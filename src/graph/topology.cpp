#include "graph/topology.hpp"

#include <stdexcept>

namespace dust::graph {

// Node layout: cores [0, c) with c = (k/2)^2, then per pod p:
// aggregations [c + p*k, c + p*k + k/2), edges [c + p*k + k/2, c + (p+1)*k).
FatTree::FatTree(std::uint32_t k) : k_(k) {
  if (k < 2 || k % 2 != 0)
    throw std::invalid_argument("FatTree: k must be even and >= 2");
  const std::uint32_t half = k / 2;
  const std::size_t nodes = static_cast<std::size_t>(half) * half +
                            static_cast<std::size_t>(k) * k;
  graph_ = Graph(nodes);

  // Aggregation-to-core: aggregation switch `a` of each pod connects to the
  // `half` core switches in core group `a` (cores [a*half, (a+1)*half)).
  for (std::uint32_t p = 0; p < k; ++p) {
    for (std::uint32_t a = 0; a < half; ++a) {
      const NodeId agg = aggregation(p, a);
      for (std::uint32_t c = 0; c < half; ++c)
        graph_.add_edge(agg, core(a * half + c));
    }
  }
  // Intra-pod full bipartite aggregation-to-edge.
  for (std::uint32_t p = 0; p < k; ++p)
    for (std::uint32_t a = 0; a < half; ++a)
      for (std::uint32_t e = 0; e < half; ++e)
        graph_.add_edge(aggregation(p, a), edge_switch(p, e));
}

SwitchLayer FatTree::layer(NodeId node) const {
  const std::uint32_t half = k_ / 2;
  if (node < half * half) return SwitchLayer::kCore;
  const std::uint32_t offset = (node - half * half) % k_;
  return offset < half ? SwitchLayer::kAggregation : SwitchLayer::kEdge;
}

std::uint32_t FatTree::pod(NodeId node) const {
  const std::uint32_t half = k_ / 2;
  if (node < half * half)
    throw std::invalid_argument("FatTree::pod: core switches have no pod");
  return (node - half * half) / k_;
}

NodeId FatTree::core(std::uint32_t index) const {
  const std::uint32_t half = k_ / 2;
  if (index >= half * half) throw std::out_of_range("FatTree::core");
  return index;
}

NodeId FatTree::aggregation(std::uint32_t pod, std::uint32_t index) const {
  const std::uint32_t half = k_ / 2;
  if (pod >= k_ || index >= half) throw std::out_of_range("FatTree::aggregation");
  return half * half + pod * k_ + index;
}

NodeId FatTree::edge_switch(std::uint32_t pod, std::uint32_t index) const {
  const std::uint32_t half = k_ / 2;
  if (pod >= k_ || index >= half) throw std::out_of_range("FatTree::edge_switch");
  return half * half + pod * k_ + half + index;
}

std::string FatTree::node_name(NodeId node) const {
  const std::uint32_t half = k_ / 2;
  if (node < half * half) return "core" + std::to_string(node);
  const std::uint32_t p = pod(node);
  const std::uint32_t offset = (node - half * half) % k_;
  if (offset < half)
    return "agg" + std::to_string(p) + "." + std::to_string(offset);
  return "edge" + std::to_string(p) + "." + std::to_string(offset - half);
}

Graph make_leaf_spine(std::uint32_t spines, std::uint32_t leaves) {
  if (spines == 0 || leaves == 0)
    throw std::invalid_argument("make_leaf_spine: empty tier");
  Graph graph(spines + leaves);
  for (std::uint32_t leaf = 0; leaf < leaves; ++leaf)
    for (std::uint32_t spine = 0; spine < spines; ++spine)
      graph.add_edge(spine, spines + leaf);
  return graph;
}

Graph make_ring(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("make_ring: n < 3");
  Graph graph(n);
  for (std::uint32_t i = 0; i < n; ++i) graph.add_edge(i, (i + 1) % n);
  return graph;
}

Graph make_grid(std::uint32_t rows, std::uint32_t cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("make_grid: empty");
  Graph graph(static_cast<std::size_t>(rows) * cols);
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) graph.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) graph.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return graph;
}

Graph make_star(std::uint32_t leaves) {
  if (leaves == 0) throw std::invalid_argument("make_star: no leaves");
  Graph graph(leaves + 1);
  for (std::uint32_t leaf = 1; leaf <= leaves; ++leaf) graph.add_edge(0, leaf);
  return graph;
}

Graph make_random_connected(std::uint32_t n, std::uint32_t extra_edges,
                            util::Rng& rng) {
  if (n == 0) throw std::invalid_argument("make_random_connected: n == 0");
  Graph graph(n);
  // Random spanning tree: attach each node i >= 1 to a uniformly random
  // earlier node, after shuffling labels so the tree shape is unbiased by id.
  std::vector<NodeId> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  for (std::uint32_t i = 1; i < n; ++i) {
    const NodeId parent = order[rng.below(i)];
    graph.add_edge(order[i], parent);
  }
  const std::size_t max_edges = static_cast<std::size_t>(n) * (n - 1) / 2;
  std::uint32_t added = 0;
  std::uint32_t attempts = 0;
  while (added < extra_edges && graph.edge_count() < max_edges &&
         attempts < extra_edges * 64 + 1024) {
    ++attempts;
    const auto a = static_cast<NodeId>(rng.below(n));
    const auto b = static_cast<NodeId>(rng.below(n));
    if (a == b || graph.find_edge(a, b)) continue;
    graph.add_edge(a, b);
    ++added;
  }
  return graph;
}

}  // namespace dust::graph
