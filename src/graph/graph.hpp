// Undirected graph core.
//
// Nodes are dense integer ids [0, node_count). Edges are dense integer ids
// [0, edge_count) with the two endpoints recorded; adjacency lists store
// (neighbor, edge id) pairs so per-edge attributes (bandwidth, utilization)
// can live in parallel arrays owned by higher layers (net::NetworkState).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace dust::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

struct Edge {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;

  /// The endpoint that is not `from` (precondition: from is an endpoint).
  [[nodiscard]] NodeId other(NodeId from) const noexcept {
    return from == a ? b : a;
  }
};

/// (neighbor, connecting edge) adjacency entry.
struct Adjacency {
  NodeId neighbor = kInvalidNode;
  EdgeId edge = kInvalidEdge;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count) : adjacency_(node_count) {}

  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Append a node; returns its id.
  NodeId add_node();

  /// Add an undirected edge a—b; returns its id. Parallel edges and
  /// self-loops are rejected (the network model has no use for them).
  EdgeId add_edge(NodeId a, NodeId b);

  [[nodiscard]] const Edge& edge(EdgeId id) const { return edges_.at(id); }
  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId node) const {
    return adjacency_.at(node);
  }
  [[nodiscard]] std::size_t degree(NodeId node) const {
    return adjacency_.at(node).size();
  }

  /// Edge id between a and b if present.
  [[nodiscard]] std::optional<EdgeId> find_edge(NodeId a, NodeId b) const;

  /// True if every node is reachable from node 0 (vacuously true when empty).
  [[nodiscard]] bool connected() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

}  // namespace dust::graph
