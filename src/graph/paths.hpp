// Path algorithms: BFS hop counts, Dijkstra, hop-bounded min-cost DP,
// exhaustive simple-path enumeration (paper Eq. 2), and Yen k-shortest paths.
//
// DUST's response-time model (Eq. 1-2) takes the minimum of an additive
// per-edge cost over all simple paths of bounded hop count. Two evaluators:
//   * for_each_simple_path / enumerate_simple_paths — the paper-faithful
//     exhaustive enumeration (exponential in max_hops; this is what makes the
//     paper's optimization runtime curves in Figs 8/10 grow with max-hop);
//   * hop_bounded_min_cost — layered Bellman-Ford DP, O(max_hops * |E|),
//     which computes the same minimum when costs are non-negative (a walk
//     that revisits a node is never cheaper than its shortcut sub-path).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dust::graph {

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();
inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

struct Path {
  std::vector<NodeId> nodes;  // nodes.size() == edges.size() + 1
  std::vector<EdgeId> edges;

  [[nodiscard]] std::size_t hops() const noexcept { return edges.size(); }
  [[nodiscard]] NodeId source() const { return nodes.front(); }
  [[nodiscard]] NodeId destination() const { return nodes.back(); }
  [[nodiscard]] double cost(std::span<const double> edge_cost) const;

  bool operator==(const Path&) const = default;
};

/// Hop distance from `src` to every node (kUnreachable where disconnected).
std::vector<std::uint32_t> bfs_hops(const Graph& graph, NodeId src);

struct ShortestPathTree {
  std::vector<double> distance;    // kInfiniteCost where unreachable
  std::vector<EdgeId> parent_edge; // kInvalidEdge at src / unreachable

  /// Reconstruct the path src -> dst (empty nodes if unreachable).
  [[nodiscard]] Path extract(const Graph& graph, NodeId src, NodeId dst) const;
};

/// Dijkstra with non-negative per-edge costs.
ShortestPathTree dijkstra(const Graph& graph, NodeId src,
                          std::span<const double> edge_cost);

/// Minimum additive cost src -> each node over walks of at most `max_hops`
/// edges (layered Bellman-Ford). Equals the simple-path minimum for
/// non-negative costs. max_hops == 0 means "no bound" (uses node_count - 1).
std::vector<double> hop_bounded_min_cost(const Graph& graph, NodeId src,
                                         std::span<const double> edge_cost,
                                         std::uint32_t max_hops);

/// As hop_bounded_min_cost, writing into `out` (resized to node_count) and
/// reusing per-thread relaxation scratch — allocation-free in steady state.
/// Safe to call concurrently from multiple threads.
void hop_bounded_min_cost_into(const Graph& graph, NodeId src,
                               std::span<const double> edge_cost,
                               std::uint32_t max_hops,
                               std::vector<double>& out);

/// Shared-frontier label sweep (DESIGN.md §13): one layered-DP pass from
/// `src` that produces, for *every* node simultaneously,
///   * the hop-bounded min cost (== hop_bounded_min_cost for the same
///     inputs, bit-identical), and
///   * the edge support of one winning path per destination, OR-ed into a
///     single bitmap over EdgeId (word e/64, bit e%64) — the same contract
///     ResponseTimeResult::used_edges documents for the exhaustive
///     enumerator, at O(rounds * |E|) instead of exponential cost.
///
/// The sweep keeps a sparse frontier (only nodes whose label strictly
/// improved are re-expanded; with strictly positive costs a longer walk to
/// an equal-or-worse label is dominated) and a per-layer predecessor table
/// for the backwalk, so the work is bounded by the converged round count,
/// not by max_hops. Scratch is per-thread and reused across calls —
/// allocation-free in steady state, safe to call concurrently.
///
/// `used_edges` is resized to ceil(edge_count/64); `rounds_out` (optional)
/// receives the number of relaxation rounds executed.
void shared_frontier_labels_into(const Graph& graph, NodeId src,
                                 std::span<const double> edge_cost,
                                 std::uint32_t max_hops,
                                 std::vector<double>& best,
                                 std::vector<std::uint64_t>& used_edges,
                                 std::size_t* rounds_out = nullptr);

/// Reconstruct a concrete minimum-cost path src -> dst over paths of at most
/// `max_hops` edges (0 = unbounded). Empty path if unreachable within the
/// bound. The returned path achieves hop_bounded_min_cost(...)[dst].
Path hop_bounded_path(const Graph& graph, NodeId src, NodeId dst,
                      std::span<const double> edge_cost,
                      std::uint32_t max_hops);

/// Up to `k` pairwise edge-disjoint s-t paths of minimum total cost
/// (computed via unit-capacity min-cost flow). Fewer than `k` are returned
/// when the graph does not admit that many disjoint routes. Used to give an
/// offload relationship an independent backup route.
std::vector<Path> edge_disjoint_paths(const Graph& graph, NodeId src,
                                      NodeId dst,
                                      std::span<const double> edge_cost,
                                      std::size_t k);

/// Visit every simple path from `src` whose destination satisfies
/// `is_target(dst)` and whose hop count is <= max_hops (0 = unbounded).
/// The callback receives the current path; return false from it to stop
/// the whole enumeration early. Exhaustive DFS — exponential; this is the
/// paper-faithful Eq. 2 evaluator.
void for_each_simple_path(const Graph& graph, NodeId src,
                          const std::function<bool(NodeId)>& is_target,
                          std::uint32_t max_hops,
                          const std::function<bool(const Path&)>& visit);

/// Materialize all simple paths src -> dst with hop count <= max_hops
/// (0 = unbounded), stopping after max_paths (0 = no cap).
std::vector<Path> enumerate_simple_paths(const Graph& graph, NodeId src,
                                         NodeId dst, std::uint32_t max_hops,
                                         std::size_t max_paths = 0);

/// Count simple paths src -> dst with hop count <= max_hops (0 = unbounded).
std::size_t count_simple_paths(const Graph& graph, NodeId src, NodeId dst,
                               std::uint32_t max_hops);

/// Yen's algorithm: up to k loopless shortest paths by increasing cost.
std::vector<Path> k_shortest_paths(const Graph& graph, NodeId src, NodeId dst,
                                   std::span<const double> edge_cost,
                                   std::size_t k);

}  // namespace dust::graph
