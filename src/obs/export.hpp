// Exporters for registry scrapes: human-readable table (util::Table),
// JSON lines (one object per metric), and Prometheus text exposition
// format. All operate on an immutable RegistrySnapshot so a scrape can be
// taken once and exported in several formats.
#pragma once

#include <ostream>

#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace dust::obs {

/// One row per metric: counters/gauges show their value, histograms show
/// count / mean / p50 / p90 / p99 / max.
[[nodiscard]] util::Table to_table(const RegistrySnapshot& snapshot);

/// Recent completed spans (name, wall ms, sim ms); empty table if none.
[[nodiscard]] util::Table spans_to_table(const RegistrySnapshot& snapshot);

/// JSON lines: {"name":...,"type":"counter","value":N} per line; histograms
/// carry count/sum/min/max/quantiles plus the raw buckets.
void write_jsonl(const RegistrySnapshot& snapshot, std::ostream& os);

/// Prometheus text format (version 0.0.4): # TYPE headers, cumulative
/// `_bucket{le=...}` series with +Inf, `_sum` and `_count` per histogram.
void write_prometheus(const RegistrySnapshot& snapshot, std::ostream& os);

}  // namespace dust::obs
