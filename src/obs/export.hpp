// Exporters for registry scrapes: human-readable table (util::Table),
// JSON lines (one object per metric), Prometheus text exposition format,
// and Perfetto/Chrome trace-event JSON for span trees. All operate on an
// immutable RegistrySnapshot so a scrape can be taken once and exported in
// several formats.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace dust::obs {

/// One row per metric: counters/gauges show their value, histograms show
/// count / mean / p50 / p90 / p99 / max.
[[nodiscard]] util::Table to_table(const RegistrySnapshot& snapshot);

/// Recent completed spans (name, wall ms, sim ms); empty table if none.
[[nodiscard]] util::Table spans_to_table(const RegistrySnapshot& snapshot);

/// JSON lines: {"name":...,"type":"counter","value":N} per line; histograms
/// carry count/sum/min/max/quantiles plus the raw buckets.
void write_jsonl(const RegistrySnapshot& snapshot, std::ostream& os);

/// Prometheus text format (version 0.0.4): # TYPE headers, cumulative
/// `_bucket{le=...}` series with +Inf, `_sum` and `_count` per histogram.
void write_prometheus(const RegistrySnapshot& snapshot, std::ostream& os);

/// Perfetto / Chrome trace-event JSON (open in ui.perfetto.dev or
/// chrome://tracing). Each distinct span track ("manager", "client-3", ...)
/// becomes a process; within it, tid 1 carries the sim-time axis and tid 2
/// the wall-time axis, so protocol causality and CPU cost are visible side
/// by side. Every span is emitted as an "X" complete event with trace_id /
/// span_id / parent_span_id in args; causal links additionally get flow
/// events ("s"/"f") so Perfetto draws arrows between parent and child.
void write_perfetto(const RegistrySnapshot& snapshot, std::ostream& os);

/// One causal trace reassembled from SpanRecords: the spans sharing a
/// trace_id, ordered parent-before-child (then by sim start). Spans with
/// trace_id == 0 are untraced and never appear here.
struct TraceTree {
  std::uint64_t trace_id = 0;
  std::vector<SpanRecord> spans;

  [[nodiscard]] const SpanRecord* find(const std::string& name) const;
  /// Root-to-leaf names joined by '>', following each span's first child
  /// ("stat>solve>offload_request>offload_ack>rep" for a clean offload).
  [[nodiscard]] std::string chain() const;
};

/// Group the snapshot's traced spans by trace_id, topologically ordered
/// within each trace. Traces are returned oldest-root first.
[[nodiscard]] std::vector<TraceTree> assemble_traces(
    const RegistrySnapshot& snapshot);

}  // namespace dust::obs
