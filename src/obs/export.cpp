#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace dust::obs {

namespace {

// Format doubles compactly and JSON-safely (no inf/nan literals).
std::string number(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  std::ostringstream out;
  out.precision(9);
  out << v;
  return out.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += ' ';
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

}  // namespace

util::Table to_table(const RegistrySnapshot& snapshot) {
  util::Table table("metric registry");
  table.set_precision(3).header(
      {"metric", "type", "value/count", "mean", "p50", "p90", "p99", "max"});
  for (const CounterSnapshot& c : snapshot.counters)
    table.row({c.name, std::string("counter"),
               static_cast<std::int64_t>(c.value), std::string(""),
               std::string(""), std::string(""), std::string(""),
               std::string("")});
  for (const GaugeSnapshot& g : snapshot.gauges)
    table.row({g.name, std::string("gauge"), g.value, std::string(""),
               std::string(""), std::string(""), std::string(""),
               std::string("")});
  for (const NamedHistogramSnapshot& h : snapshot.histograms)
    table.row({h.name, std::string("histogram"),
               static_cast<std::int64_t>(h.count), h.mean(), h.quantile(0.5),
               h.quantile(0.9), h.quantile(0.99), h.max});
  return table;
}

util::Table spans_to_table(const RegistrySnapshot& snapshot) {
  util::Table table("recent spans");
  table.set_precision(3).header(
      {"span", "wall_ms", "sim_start_ms", "sim_duration_ms"});
  for (const SpanRecord& span : snapshot.spans)
    table.row({span.name, span.wall_ms, span.sim_start_ms,
               span.sim_duration_ms});
  return table;
}

void write_jsonl(const RegistrySnapshot& snapshot, std::ostream& os) {
  for (const CounterSnapshot& c : snapshot.counters)
    os << "{\"name\":\"" << json_escape(c.name)
       << "\",\"type\":\"counter\",\"value\":" << c.value << "}\n";
  for (const GaugeSnapshot& g : snapshot.gauges)
    os << "{\"name\":\"" << json_escape(g.name)
       << "\",\"type\":\"gauge\",\"value\":" << number(g.value) << "}\n";
  for (const NamedHistogramSnapshot& h : snapshot.histograms) {
    os << "{\"name\":\"" << json_escape(h.name)
       << "\",\"type\":\"histogram\",\"count\":" << h.count
       << ",\"sum\":" << number(h.sum) << ",\"min\":" << number(h.min)
       << ",\"max\":" << number(h.max) << ",\"p50\":" << number(h.quantile(0.5))
       << ",\"p90\":" << number(h.quantile(0.9))
       << ",\"p99\":" << number(h.quantile(0.99)) << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) os << ',';
      os << "[" << number(h.buckets[i].upper) << "," << h.buckets[i].count
         << "]";
    }
    os << "]}\n";
  }
  for (const SpanRecord& span : snapshot.spans)
    os << "{\"name\":\"" << json_escape(span.name)
       << "\",\"type\":\"span\",\"wall_ms\":" << number(span.wall_ms)
       << ",\"sim_start_ms\":" << span.sim_start_ms
       << ",\"sim_duration_ms\":" << span.sim_duration_ms << "}\n";
}

void write_prometheus(const RegistrySnapshot& snapshot, std::ostream& os) {
  for (const CounterSnapshot& c : snapshot.counters) {
    os << "# TYPE " << c.name << " counter\n";
    os << c.name << " " << c.value << "\n";
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    os << "# TYPE " << g.name << " gauge\n";
    os << g.name << " " << number(g.value) << "\n";
  }
  for (const NamedHistogramSnapshot& h : snapshot.histograms) {
    os << "# TYPE " << h.name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const BucketSnapshot& bucket : h.buckets) {
      cumulative += bucket.count;
      os << h.name << "_bucket{le=\"" << number(bucket.upper) << "\"} "
         << cumulative << "\n";
    }
    os << h.name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << h.name << "_sum " << number(h.sum) << "\n";
    os << h.name << "_count " << h.count << "\n";
  }
}

namespace {

// One Chrome trace event. ts/dur are microseconds (the format's unit).
void write_trace_event(std::ostream& os, bool& first, const char* ph,
                       const std::string& name, int pid, int tid, double ts_us,
                       double dur_us, const std::string& extra) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"ph\":\"" << ph << "\",\"name\":\"" << json_escape(name)
     << "\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"ts\":" << number(ts_us);
  if (dur_us >= 0.0) os << ",\"dur\":" << number(std::max(dur_us, 1.0));
  if (!extra.empty()) os << ',' << extra;
  os << '}';
}

std::string span_args(const SpanRecord& span) {
  std::ostringstream out;
  out << "\"args\":{\"trace_id\":" << span.trace_id
      << ",\"span_id\":" << span.span_id
      << ",\"parent_span_id\":" << span.parent_span_id
      << ",\"wall_ms\":" << number(span.wall_ms) << '}';
  return out.str();
}

}  // namespace

void write_perfetto(const RegistrySnapshot& snapshot, std::ostream& os) {
  constexpr int kSimTid = 1;
  constexpr int kWallTid = 2;

  // Assign a stable pid per track, in first-seen order.
  std::vector<std::string> tracks;
  std::unordered_map<std::string, int> pid_of;
  for (const SpanRecord& span : snapshot.spans) {
    const std::string& track = span.track.empty() ? "untracked" : span.track;
    if (pid_of.emplace(track, static_cast<int>(tracks.size()) + 1).second)
      tracks.push_back(track);
  }

  // Sim-time start of every traced span, for flow-event endpoints.
  std::unordered_map<std::uint64_t, const SpanRecord*> by_span_id;
  for (const SpanRecord& span : snapshot.spans)
    if (span.span_id != 0) by_span_id.emplace(span.span_id, &span);

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  for (std::size_t i = 0; i < tracks.size(); ++i) {
    const int pid = static_cast<int>(i) + 1;
    write_trace_event(os, first, "M", "process_name", pid, 0, 0.0, -1.0,
                      "\"args\":{\"name\":\"" + json_escape(tracks[i]) +
                          "\"}");
    write_trace_event(os, first, "M", "thread_name", pid, kSimTid, 0.0, -1.0,
                      "\"args\":{\"name\":\"sim-time\"}");
    write_trace_event(os, first, "M", "thread_name", pid, kWallTid, 0.0, -1.0,
                      "\"args\":{\"name\":\"wall-time\"}");
  }

  for (const SpanRecord& span : snapshot.spans) {
    const std::string& track = span.track.empty() ? "untracked" : span.track;
    const int pid = pid_of[track];
    const std::string args = span_args(span);

    if (span.sim_start_ms >= 0) {
      const double ts = static_cast<double>(span.sim_start_ms) * 1000.0;
      const double dur =
          static_cast<double>(std::max<std::int64_t>(span.sim_duration_ms, 0)) *
          1000.0;
      write_trace_event(os, first, "X", span.name, pid, kSimTid, ts, dur, args);

      // Flow arrow from parent to child on the sim-time axis, when both
      // ends survived the span ring. Flow id = child span_id (unique).
      if (span.parent_span_id != 0) {
        auto parent = by_span_id.find(span.parent_span_id);
        if (parent != by_span_id.end() && parent->second->sim_start_ms >= 0) {
          const int parent_pid =
              pid_of[parent->second->track.empty() ? "untracked"
                                                   : parent->second->track];
          std::ostringstream id;
          id << "\"id\":" << span.span_id << ",\"cat\":\"causal\"";
          write_trace_event(
              os, first, "s", "causal", parent_pid, kSimTid,
              static_cast<double>(parent->second->sim_start_ms) * 1000.0, -1.0,
              id.str());
          write_trace_event(os, first, "f", "causal", pid, kSimTid, ts, -1.0,
                            id.str() + ",\"bp\":\"e\"");
        }
      }
    }

    if (span.wall_start_ms >= 0.0) {
      write_trace_event(os, first, "X", span.name, pid, kWallTid,
                        span.wall_start_ms * 1000.0, span.wall_ms * 1000.0,
                        args);
    }
  }

  os << "\n]}\n";
}

const SpanRecord* TraceTree::find(const std::string& name) const {
  for (const SpanRecord& span : spans)
    if (span.name == name) return &span;
  return nullptr;
}

std::string TraceTree::chain() const {
  if (spans.empty()) return {};
  // Root = first span whose parent is not in this trace.
  std::unordered_set<std::uint64_t> ids;
  for (const SpanRecord& span : spans) ids.insert(span.span_id);
  const SpanRecord* current = nullptr;
  for (const SpanRecord& span : spans) {
    if (span.parent_span_id == 0 || ids.count(span.parent_span_id) == 0) {
      current = &span;
      break;
    }
  }
  if (current == nullptr) current = &spans.front();
  std::string out = current->name;
  // Follow first children; bounded by span count (no cycles possible, but
  // stay defensive against malformed records).
  for (std::size_t hops = 0; hops < spans.size(); ++hops) {
    const SpanRecord* child = nullptr;
    for (const SpanRecord& span : spans) {
      if (span.parent_span_id == current->span_id && &span != current) {
        child = &span;
        break;
      }
    }
    if (child == nullptr) break;
    out += '>';
    out += child->name;
    current = child;
  }
  return out;
}

std::vector<TraceTree> assemble_traces(const RegistrySnapshot& snapshot) {
  std::vector<TraceTree> traces;
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  for (const SpanRecord& span : snapshot.spans) {
    if (span.trace_id == 0) continue;
    auto [it, inserted] = index_of.emplace(span.trace_id, traces.size());
    if (inserted) traces.push_back(TraceTree{span.trace_id, {}});
    traces[it->second].spans.push_back(span);
  }
  // Order each trace parent-before-child (stable for siblings). Spans whose
  // parent was evicted from the ring count as roots.
  for (TraceTree& trace : traces) {
    std::vector<SpanRecord> pending = std::move(trace.spans);
    trace.spans.clear();
    std::unordered_set<std::uint64_t> placed;
    std::unordered_set<std::uint64_t> present;
    for (const SpanRecord& span : pending) present.insert(span.span_id);
    bool progressed = true;
    while (!pending.empty() && progressed) {
      progressed = false;
      for (auto it = pending.begin(); it != pending.end();) {
        const bool ready = it->parent_span_id == 0 ||
                           present.count(it->parent_span_id) == 0 ||
                           placed.count(it->parent_span_id) != 0;
        if (ready) {
          placed.insert(it->span_id);
          trace.spans.push_back(std::move(*it));
          it = pending.erase(it);
          progressed = true;
        } else {
          ++it;
        }
      }
    }
    for (SpanRecord& span : pending) trace.spans.push_back(std::move(span));
  }
  return traces;
}

}  // namespace dust::obs
