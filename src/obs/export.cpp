#include "obs/export.hpp"

#include <cmath>
#include <sstream>

namespace dust::obs {

namespace {

// Format doubles compactly and JSON-safely (no inf/nan literals).
std::string number(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  std::ostringstream out;
  out.precision(9);
  out << v;
  return out.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += ' ';
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

}  // namespace

util::Table to_table(const RegistrySnapshot& snapshot) {
  util::Table table("metric registry");
  table.set_precision(3).header(
      {"metric", "type", "value/count", "mean", "p50", "p90", "p99", "max"});
  for (const CounterSnapshot& c : snapshot.counters)
    table.row({c.name, std::string("counter"),
               static_cast<std::int64_t>(c.value), std::string(""),
               std::string(""), std::string(""), std::string(""),
               std::string("")});
  for (const GaugeSnapshot& g : snapshot.gauges)
    table.row({g.name, std::string("gauge"), g.value, std::string(""),
               std::string(""), std::string(""), std::string(""),
               std::string("")});
  for (const NamedHistogramSnapshot& h : snapshot.histograms)
    table.row({h.name, std::string("histogram"),
               static_cast<std::int64_t>(h.count), h.mean(), h.quantile(0.5),
               h.quantile(0.9), h.quantile(0.99), h.max});
  return table;
}

util::Table spans_to_table(const RegistrySnapshot& snapshot) {
  util::Table table("recent spans");
  table.set_precision(3).header(
      {"span", "wall_ms", "sim_start_ms", "sim_duration_ms"});
  for (const SpanRecord& span : snapshot.spans)
    table.row({span.name, span.wall_ms, span.sim_start_ms,
               span.sim_duration_ms});
  return table;
}

void write_jsonl(const RegistrySnapshot& snapshot, std::ostream& os) {
  for (const CounterSnapshot& c : snapshot.counters)
    os << "{\"name\":\"" << json_escape(c.name)
       << "\",\"type\":\"counter\",\"value\":" << c.value << "}\n";
  for (const GaugeSnapshot& g : snapshot.gauges)
    os << "{\"name\":\"" << json_escape(g.name)
       << "\",\"type\":\"gauge\",\"value\":" << number(g.value) << "}\n";
  for (const NamedHistogramSnapshot& h : snapshot.histograms) {
    os << "{\"name\":\"" << json_escape(h.name)
       << "\",\"type\":\"histogram\",\"count\":" << h.count
       << ",\"sum\":" << number(h.sum) << ",\"min\":" << number(h.min)
       << ",\"max\":" << number(h.max) << ",\"p50\":" << number(h.quantile(0.5))
       << ",\"p90\":" << number(h.quantile(0.9))
       << ",\"p99\":" << number(h.quantile(0.99)) << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) os << ',';
      os << "[" << number(h.buckets[i].upper) << "," << h.buckets[i].count
         << "]";
    }
    os << "]}\n";
  }
  for (const SpanRecord& span : snapshot.spans)
    os << "{\"name\":\"" << json_escape(span.name)
       << "\",\"type\":\"span\",\"wall_ms\":" << number(span.wall_ms)
       << ",\"sim_start_ms\":" << span.sim_start_ms
       << ",\"sim_duration_ms\":" << span.sim_duration_ms << "}\n";
}

void write_prometheus(const RegistrySnapshot& snapshot, std::ostream& os) {
  for (const CounterSnapshot& c : snapshot.counters) {
    os << "# TYPE " << c.name << " counter\n";
    os << c.name << " " << c.value << "\n";
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    os << "# TYPE " << g.name << " gauge\n";
    os << g.name << " " << number(g.value) << "\n";
  }
  for (const NamedHistogramSnapshot& h : snapshot.histograms) {
    os << "# TYPE " << h.name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const BucketSnapshot& bucket : h.buckets) {
      cumulative += bucket.count;
      os << h.name << "_bucket{le=\"" << number(bucket.upper) << "\"} "
         << cumulative << "\n";
    }
    os << h.name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << h.name << "_sum " << number(h.sum) << "\n";
    os << h.name << "_count " << h.count << "\n";
  }
}

}  // namespace dust::obs
