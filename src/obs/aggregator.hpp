// obs::Aggregator — the fleet-wide observability plane (DESIGN.md §15).
//
// Each DUST process keeps its own MetricRegistry; the aggregator merges the
// snapshot deltas scraped from every node into one fleet view:
//
//   - per-node metric stores keyed by the snapshot codec's interned ids,
//     resolved to names as definitions arrive;
//   - fleet queries (counter totals, gauge sums/maxima, merged histograms
//     with working quantiles) for watchdog rules and dashboards;
//   - a Prometheus/JSONL exporter that labels every series `node="..."`;
//   - per-node scrape staleness so a silent node is visible as data, not as
//     an absence of data;
//   - cross-process trace stitching: spans harvested from different
//     processes keep their trace_id/span_id links, tracks are prefixed
//     "node/track", and trace_snapshot() feeds the existing
//     assemble_traces / write_perfetto machinery — one Perfetto file shows
//     the STAT→solve→offload→ACK→data-block chain across four daemons.
//
// The aggregator is transport-agnostic (it consumes decoded SnapshotDelta
// values); wire::ObsScraper owns the frame plumbing. FleetWatchdog evaluates
// fleet-level rules over the aggregated state the same way obs::Watchdog
// evaluates per-process rules over one registry.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace dust::obs {

/// Per-node scrape bookkeeping, exposed to dashboards and the fleet
/// watchdog's node-silent rule.
struct FleetNodeStatus {
  std::uint64_t applied_seq = 0;    ///< last snapshot merged in
  std::int64_t last_update_ms = -1; ///< aggregator clock at that merge
  std::int64_t source_now_ms = 0;   ///< node's own clock inside the snapshot
  std::uint64_t snapshots_applied = 0;
  std::uint64_t snapshots_rejected = 0;
  std::uint64_t bytes_received = 0;  ///< encoded payload bytes accepted
  std::uint64_t spans_merged = 0;
};

class Aggregator {
 public:
  enum class ApplyResult {
    kApplied,   ///< merged; ack `delta.seq` back to the responder
    kRejected,  ///< baseline mismatch; request a full snapshot instead
  };

  /// Merge one decoded snapshot from `node`. A delta is accepted only when
  /// `delta.full` (node state is reset first) or its base_seq equals the seq
  /// this aggregator last applied — anything else would double-count, so it
  /// is rejected and the caller should set the request-full flag on the next
  /// scrape. `now_ms` is the aggregator's clock (staleness baseline);
  /// `encoded_bytes` sizes the payload for the bandwidth tally.
  ApplyResult apply(const std::string& node, const SnapshotDelta& delta,
                    std::int64_t now_ms, std::size_t encoded_bytes = 0);

  /// Merge the calling process's own registry under `node` (the manager is
  /// part of its own fleet). Runs the real codec round-trip internally —
  /// encode, decode, apply, ack — so local ingestion exercises the same
  /// path remote snapshots take. No change since last call ⇒ no-op.
  void ingest_local(const std::string& node, const MetricRegistry& registry,
                    std::int64_t now_ms);

  [[nodiscard]] std::vector<std::string> nodes() const;
  [[nodiscard]] const FleetNodeStatus* status(const std::string& node) const;
  /// ms since the last applied snapshot from `node`; -1 if never seen.
  [[nodiscard]] std::int64_t staleness_ms(const std::string& node,
                                          std::int64_t now_ms) const;

  // --- fleet queries (for FleetWatchdog and dashboards) -------------------
  [[nodiscard]] std::uint64_t counter_value(const std::string& node,
                                            const std::string& name) const;
  [[nodiscard]] std::uint64_t fleet_counter_total(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& node,
                                   const std::string& name) const;
  [[nodiscard]] double fleet_gauge_sum(const std::string& name) const;
  [[nodiscard]] double fleet_gauge_max(const std::string& name) const;
  /// All nodes' buckets merged into one histogram (quantiles work on it).
  [[nodiscard]] HistogramSnapshot fleet_histogram(const std::string& name) const;

  // --- spans / trace stitching -------------------------------------------
  /// Snapshot holding every merged span (tracks "node/track", oldest first)
  /// for assemble_traces / write_perfetto. Metric vectors are left empty —
  /// fleet metrics need node labels the generic exporters don't speak.
  [[nodiscard]] RegistrySnapshot trace_snapshot() const;
  [[nodiscard]] std::size_t span_count() const { return spans_.size(); }

  // --- fleet export -------------------------------------------------------
  /// Prometheus text format with one `# TYPE` line per family and a
  /// `node="..."` label on every series (histograms get labeled
  /// _bucket/_sum/_count plus interpolated p50/p90/p99 gauges).
  void write_prometheus(std::ostream& os) const;
  /// JSON lines: one object per (node, metric), plus one per node status.
  void write_jsonl(std::ostream& os) const;
  /// Terminal dashboard ("fleet top"): per-node scrape status, the largest
  /// fleet counters, gauge sums, and histogram tails — what scenario_cli
  /// --obs-top and examples/fleet_top redraw each tick. `now_ms` drives the
  /// staleness column; `max_rows` caps the counter table.
  void write_top(std::ostream& os, std::int64_t now_ms,
                 std::size_t max_rows = 16) const;

  /// Oldest merged spans are evicted past this bound.
  static constexpr std::size_t kMaxFleetSpans = 4096;

 private:
  struct HistState {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t buckets[Histogram::kBuckets] = {};
  };
  struct NodeState {
    std::unordered_map<std::uint32_t, std::string> counter_names;
    std::unordered_map<std::uint32_t, std::string> gauge_names;
    std::unordered_map<std::uint32_t, std::string> hist_names;
    std::map<std::string, std::uint64_t> counters;  // ordered for export
    std::map<std::string, double> gauges;
    std::map<std::string, HistState> histograms;
    std::unordered_set<std::uint64_t> seen_span_ids;
    FleetNodeStatus status;
  };

  void merge_spans(const std::string& node, NodeState& state,
                   const std::vector<SpanRecord>& spans);

  std::map<std::string, NodeState> nodes_;  // ordered for deterministic export
  std::vector<SpanRecord> spans_;           // fleet-wide, oldest first
  struct LocalFeed {
    std::unique_ptr<SnapshotEncoder> encoder;
  };
  std::map<std::string, LocalFeed> local_feeds_;
  std::vector<std::uint8_t> local_buffer_;
};

/// Fleet-level health rules over an Aggregator, mirroring obs::Watchdog's
/// window semantics (deltas between consecutive evaluate() calls; the first
/// call only primes the cursors).
struct FleetWatchdogConfig {
  /// node-silent: alert when a node's last applied snapshot is older than
  /// this (ms of aggregator clock). <= 0 disables the rule.
  std::int64_t scrape_gap_ms = 2000;
  /// fleet-undeclared-loss: alert when the fleet-wide undeclared-gap
  /// counter grows inside a window — some node is silently losing data.
  bool check_undeclared_loss = true;
  /// fleet-distrust-spike: alert when the fleet sum of
  /// dust_core_distrusted_nodes exceeds this.
  double distrusted_nodes_limit = 0.0;
  /// fleet-tail-latency: alert when the windowed `tail_quantile` of
  /// `tail_histogram` (merged across nodes) exceeds `tail_limit_ms`.
  /// Empty histogram name disables the rule.
  std::string tail_histogram = "dust_core_placement_solve_ms";
  double tail_quantile = 0.99;
  double tail_limit_ms = 0.0;  ///< <= 0 disables
  std::uint64_t min_tail_samples = 3;
};

struct FleetAlert {
  std::string rule;  ///< "node-silent", "fleet-undeclared-loss", ...
  std::string node;  ///< offending node, empty for fleet-wide rules
  std::string message;
  double value = 0.0;
  std::int64_t now_ms = -1;
};

class FleetWatchdog {
 public:
  explicit FleetWatchdog(FleetWatchdogConfig config = {},
                         MetricRegistry& registry = MetricRegistry::global());

  /// Evaluate every rule against the aggregator's current state. Alerts are
  /// returned and tallied on dust_obs_fleet_alerts_total (+ per-rule
  /// counters) in the local registry.
  std::vector<FleetAlert> evaluate(const Aggregator& aggregator,
                                   std::int64_t now_ms);

  [[nodiscard]] std::uint64_t alerts_raised() const noexcept {
    return alerts_raised_;
  }

 private:
  struct TailCursor {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::uint64_t buckets[Histogram::kBuckets] = {};
  };

  void raise(std::vector<FleetAlert>& out, std::string rule, std::string node,
             std::string message, double value, std::int64_t now_ms);

  FleetWatchdogConfig config_;
  MetricRegistry* registry_;
  bool primed_ = false;
  std::uint64_t undeclared_seen_ = 0;
  TailCursor tail_cursor_;
  std::uint64_t alerts_raised_ = 0;
  Counter* alerts_total_ = nullptr;
};

}  // namespace dust::obs
