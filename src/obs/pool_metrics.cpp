#include "obs/pool_metrics.hpp"

#include "util/thread_pool.hpp"

namespace dust::obs {

void attach_pool_metrics(MetricRegistry& registry) {
  // Handles resolved once here; the observer itself is two relaxed incs.
  Counter* tasks = &registry.counter("dust_pool_tasks_total");
  Counter* steals = &registry.counter("dust_pool_steal_total");
  util::set_pool_observer(
      [tasks, steals](std::uint64_t chunks, std::uint64_t stolen) {
        tasks->inc(chunks);
        steals->inc(stolen);
      });
}

void detach_pool_metrics() { util::set_pool_observer(nullptr); }

}  // namespace dust::obs
